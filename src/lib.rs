//! # accturbo
//!
//! A from-scratch Rust reproduction of **"Aggregate-Based Congestion
//! Control for Pulse-Wave DDoS Defense"** (Gran Alcoz et al., ACM SIGCOMM
//! 2022) — the ACC-Turbo system — together with every substrate the paper
//! depends on: a deterministic packet-level network simulator, classic
//! ACC (Mahajan et al. 2002), a behavioural model of Jaqen (Liu et al.
//! 2021), synthetic CAIDA/CICDDoS-like workloads, the full
//! online-clustering design space of §4, and the programmable-scheduling
//! control plane of §5.
//!
//! This facade re-exports the member crates under stable paths:
//!
//! * [`netsim`] — the simulator substrate (packets, queues, engine).
//! * [`traffic`] — workload generators (background, attack vectors,
//!   pulse waves, the Fig. 2/3 scenarios, the CICDDoS-like day).
//! * [`clustering`] — §4's online clustering (distances, searches,
//!   representations) plus k-means/hybrid baselines and purity/recall.
//! * [`sched`] — §5's ranking algorithms and the control plane.
//! * [`core`] — the assembled [`core::AccTurboSwitch`] and the
//!   ground-truth [`core::IdealPifoSwitch`].
//! * [`acc`] — the classic-ACC baseline switch.
//! * [`jaqen`] — the Jaqen baseline switch.
//! * [`telemetry`] — scores, reaction times, report rendering.
//! * [`obs`] — tracing, metrics, and span timing (also re-exported as
//!   [`telemetry::obs`]).
//!
//! ## Quickstart
//!
//! ```
//! use accturbo::core::{AccTurboConfig, AccTurboSwitch};
//! use accturbo::clustering::FeatureSet;
//! use accturbo::netsim::{run, Bandwidth, EngineConfig, SimDuration};
//! use accturbo::traffic::scenarios;
//!
//! // The paper's Fig. 3 pulse-wave workload on a 10 Mbps bottleneck ...
//! let mut source = scenarios::fig3_source(10_000_000, 42);
//! // ... defended by ACC-Turbo's simulation profile.
//! let mut switch =
//!     AccTurboSwitch::new(AccTurboConfig::simulation(FeatureSet::simulation_default()));
//! let cfg = EngineConfig::new(Bandwidth::from_mbps(10))
//!     .with_control_period(SimDuration::from_millis(250))
//!     .with_end_time(accturbo::netsim::SimTime::from_secs(10));
//! let result = run(&mut source, &mut switch, &cfg);
//! assert!(result.departures > 0);
//! ```

#![deny(missing_docs)]

pub use accturbo_acc as acc;
pub use accturbo_clustering as clustering;
pub use accturbo_core as core;
pub use accturbo_jaqen as jaqen;
pub use accturbo_netsim as netsim;
pub use accturbo_obs as obs;
pub use accturbo_sched as sched;
pub use accturbo_telemetry as telemetry;
pub use accturbo_traffic as traffic;
