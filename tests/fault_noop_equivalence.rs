//! Differential lockdown of the fault-injection layer (DESIGN.md §9):
//! threading a do-nothing injector through the engine must leave every
//! figure byte-identical to the plain `run` path. This is the guarantee
//! that lets `run_with_faults` exist at all — the fault plane costs
//! nothing (no behaviour change, no RNG draws) until a fault is
//! actually configured.
//!
//! A single `#[test]` covers all pre-existing figures because the noop
//! toggle is process-global: parallel test threads must not observe
//! each other's engine selection.

use accturbo_clustering::FeatureSet;
use accturbo_core::{AccTurboConfig, AccTurboSwitch};
use accturbo_experiments::common::force_noop_fault_injection;
use accturbo_experiments::{Figure, Scale, FIGURES};
use accturbo_netsim::{FaultInjector, Packet, SimTime, Switch};
use std::net::Ipv4Addr;

/// Every figure that predates the fault layer, regenerated with the
/// plain engine and with the noop-injector engine: rendered reports and
/// golden serializations must be byte-identical. (`robustness` itself
/// is excluded — its faulted cells use the injector by design.)
#[test]
fn figures_are_byte_identical_with_a_noop_injector() {
    for spec in FIGURES.iter().filter(|s| s.name != "robustness") {
        force_noop_fault_injection(false);
        let plain: Figure = spec.run_default(Scale::Quick);
        force_noop_fault_injection(true);
        let noop: Figure = spec.run_default(Scale::Quick);
        force_noop_fault_injection(false);
        assert_eq!(
            plain.rendered, noop.rendered,
            "{}: rendered report drifted under the noop injector",
            spec.name
        );
        assert_eq!(
            plain.result.to_golden(),
            noop.result.to_golden(),
            "{}: golden serialization drifted under the noop injector",
            spec.name
        );
    }
}

/// Switch-level differential: an [`AccTurboSwitch`] with a noop injector
/// installed processes an identical packet stream into identical state —
/// same admissions, same backlog, same control-tick outcomes.
#[test]
fn accturbo_switch_state_is_identical_with_a_noop_injector() {
    fn drive(sw: &mut AccTurboSwitch) -> (usize, usize, Vec<u32>) {
        let mut drops = Vec::new();
        let mut departures = Vec::new();
        for i in 0..2_000u64 {
            let t = SimTime::from_nanos(i * 40_000);
            let pkt = Packet::new(t)
                .with_size(200 + (i % 7) as u32 * 150)
                .with_src(Ipv4Addr::from((i % 13) as u32 * 0x0101_0101));
            sw.ingress(pkt, t, &mut drops);
            if i % 25 == 0 {
                if let Some(p) = sw.dequeue(t) {
                    departures.push(p.size);
                }
            }
            if i % 500 == 0 {
                sw.control_tick(t);
            }
        }
        (drops.len(), sw.backlog_pkts(), departures)
    }

    let cfg = AccTurboConfig::simulation(FeatureSet::simulation_default());
    let mut plain = AccTurboSwitch::new(cfg.clone());
    let mut faulted = AccTurboSwitch::new(cfg);
    faulted.set_faults(FaultInjector::noop());

    assert_eq!(
        drive(&mut plain),
        drive(&mut faulted),
        "noop injector changed the switch's packet-level behaviour"
    );
    assert_eq!(faulted.missed_ticks(), 0);
    assert_eq!(faulted.degradation().fallbacks(), 0);
}
