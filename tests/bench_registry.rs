//! Consistency lockdown between the committed `BENCH_datapath.json`
//! artifact and the live bench registry: every row name in the artifact
//! must resolve to a bench `xp bench-export` can actually run today.
//!
//! This is the other half of the export-side guard (`benchx::to_json`
//! refuses to emit unregistered rows): the export refuses to *create*
//! phantom rows, this test refuses to *keep* them. Together they make it
//! impossible for the committed artifact to advertise a number no code
//! in the tree produces — the failure mode behind the old sharded
//! strawman rows, whose prototype never landed.

use accturbo_experiments::benchx;
use std::path::PathBuf;

/// Extracts every `"name": "<...>"` value from the artifact. The file
/// is written by `benchx::to_json` with one row object per line, so a
/// line-oriented scan is exact — no JSON parser dependency needed.
fn committed_row_names() -> Vec<String> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_datapath.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut names = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix("{ \"name\": \"") else {
            continue;
        };
        let name = rest
            .split('"')
            .next()
            .expect("split always yields a first element");
        names.push(name.to_string());
    }
    names
}

#[test]
fn every_committed_bench_row_resolves_against_the_registry() {
    let names = committed_row_names();
    assert!(
        !names.is_empty(),
        "BENCH_datapath.json has no bench rows — the scan or the artifact is broken"
    );
    for name in &names {
        assert!(
            benchx::is_registered(name),
            "BENCH_datapath.json row `{name}` has no registered live bench; \
             regenerate the artifact with `xp bench-export` or register the bench"
        );
    }
}

#[test]
fn artifact_records_the_host_core_count() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_datapath.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert!(
        text.contains("\"host_cores\":"),
        "BENCH_datapath.json must record the host core count the numbers were taken on"
    );
}
