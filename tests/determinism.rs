//! Differential determinism tests for the parallel experiment runner:
//! the observable output of a figure run must depend only on (figure,
//! scale, seed) — never on the worker count or completion order.

use accturbo_experiments::cli::{self, Cli};
use accturbo_experiments::{Figure, Scale, FIGURES};

/// Runs the full figure set through the worker pool and returns the
/// delivered figures in index order.
fn run_all(jobs: usize) -> Vec<Figure> {
    accturbo_runner::run(jobs, FIGURES.len(), |i| {
        FIGURES[i].run_default(Scale::Quick)
    })
    .into_iter()
    .map(|r| r.output)
    .collect()
}

/// The full figure set, serially and with 4 workers: rendered reports
/// byte-identical, machine-readable results identical field-for-field.
#[test]
fn full_figure_set_is_identical_serial_and_parallel() {
    let serial = run_all(1);
    let parallel = run_all(4);
    assert_eq!(serial.len(), parallel.len());
    for ((spec, s), p) in FIGURES.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            s.rendered, p.rendered,
            "{}: rendered output differs between --jobs 1 and --jobs 4",
            spec.name
        );
        assert_eq!(
            s.result, p.result,
            "{}: FigureResult differs between --jobs 1 and --jobs 4",
            spec.name
        );
        assert_eq!(s.result.figure, spec.name);
    }
}

fn cli_for(targets: &[&str], jobs: usize, seeds: Vec<u64>) -> Cli {
    let mut args: Vec<String> = targets.iter().map(|s| s.to_string()).collect();
    args.push("--quick".into());
    let mut cli = cli::parse(&args).expect("valid targets");
    cli.jobs = jobs;
    cli.seeds = seeds;
    cli
}

fn rendered_stream(cli: &Cli) -> String {
    let mut out = String::new();
    cli::run_figures(cli, |block| out.push_str(block));
    out
}

/// The assembled `xp` byte stream (headers, blocks, separators) through
/// the real CLI pipeline is identical for any worker count — checked on
/// the cheap figures so the full-set case above stays the long pole.
#[test]
fn cli_stream_is_byte_identical_across_job_counts() {
    let targets = ["fig7", "pushback", "fig6", "fig2"];
    let serial = rendered_stream(&cli_for(&targets, 1, vec![]));
    let parallel = rendered_stream(&cli_for(&targets, 4, vec![]));
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "stdout must not depend on --jobs");
    for name in targets {
        assert!(
            serial.contains(&format!("==================== {name} ====================")),
            "missing block for {name}"
        );
    }
}

/// The adversarial search, end-to-end through the `xp search` CLI path
/// (real simulations, not the adversary crate's synthetic landscape):
/// same seed + budget twice is byte-identical, and the jobs count never
/// leaks into the report or the corpus bytes.
#[test]
fn search_cli_is_reproducible_and_jobs_invariant() {
    let render = |jobs: &str| {
        let args: Vec<String> = [
            "defense=fifo",
            "secs=4",
            "--quick",
            "--budget",
            "5",
            "--top",
            "3",
            "--seed",
            "21",
            "--jobs",
            jobs,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cmd = cli::parse_search(&args).expect("valid search args");
        cli::render_search(&cmd).expect("search runs")
    };
    let serial = render("1");
    let again = render("1");
    let parallel = render("4");
    assert_eq!(serial, again, "same seed twice must be byte-identical");
    assert_eq!(serial, parallel, "search output must not depend on --jobs");
    assert!(
        serial.contains("# accturbo adversarial corpus v1"),
        "{serial}"
    );
}

/// Seeded multi-run output (per-seed blocks + aggregate) is also
/// jobs-invariant, and two identically-seeded invocations agree.
#[test]
fn seeded_runs_are_reproducible_and_jobs_invariant() {
    let serial = rendered_stream(&cli_for(&["pushback"], 1, vec![7, 8]));
    let parallel = rendered_stream(&cli_for(&["pushback"], 4, vec![7, 8]));
    let again = rendered_stream(&cli_for(&["pushback"], 4, vec![7, 8]));
    assert_eq!(serial, parallel, "seeded stream must not depend on --jobs");
    assert_eq!(parallel, again, "same seeds twice must be byte-identical");
    assert!(serial.contains("pushback (seed 7)"), "{serial}");
    assert!(
        serial.contains("pushback aggregate over 2 seeds"),
        "{serial}"
    );
}
