//! Property tests for the declarative spec grammars: ~200 PRNG-generated
//! instances per spec type must survive `Display` → `FromStr` exactly
//! (`parse(display(x)) == x`).
//!
//! The hand-picked cases in `crates/experiments/src/spec.rs` pin the
//! canonical strings; this file sweeps the whole knob product space so a
//! formatting/parsing asymmetry in any single option (a forgotten
//! default-elision branch, a unit mismatch, a renamed token) cannot hide
//! in an untested combination. The generators draw every duration from a
//! millisecond grid and every bandwidth from a megabit grid — exactly
//! the quantization the grammar's shortest-float rendering round-trips
//! losslessly, and the same grid the adversarial search explores.

use accturbo_experiments::cli;
use accturbo_experiments::spec::{
    AccTurboSpec, DefenseSpec, EdgeDefense, FeatureProfile, JaqenSpec, Profile, ScenarioSpec,
    TopologyShape, TopologySpec, WorkloadSpec,
};
use accturbo_netsim::{SimDuration, SimTime};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use accturbo_sched::RankingAlgorithm;
use accturbo_traffic::workloads::{AdversarialScenario, FloodVariation};
use accturbo_traffic::{AttackVector, PulseAttackConfig};

const INSTANCES: usize = 200;

fn ms(rng: &mut StdRng, lo: u64, hi: u64) -> SimDuration {
    SimDuration::from_millis(rng.gen_range(lo..=hi))
}

fn vector_mix(rng: &mut StdRng, max: usize) -> Vec<AttackVector> {
    let mut pool = AttackVector::ALL.to_vec();
    let n = rng.gen_range(1..=max);
    (0..n)
        .map(|_| pool.remove(rng.gen_range(0..pool.len())))
        .collect()
}

fn random_accturbo(rng: &mut StdRng) -> AccTurboSpec {
    let profile = if rng.gen_bool(0.5) {
        Profile::Simulation
    } else {
        Profile::Hardware
    };
    // profile=hw rejects the 19-feature simulation set, so hardware
    // draws only from the deployable profiles.
    let features = match (profile, rng.gen_range(0..3u32)) {
        (Profile::Simulation, 0) => FeatureProfile::Simulation,
        (_, 1) => FeatureProfile::HwDstBytes,
        _ => FeatureProfile::HwFig6,
    };
    let mut spec = match profile {
        Profile::Simulation => AccTurboSpec::simulation(),
        Profile::Hardware => AccTurboSpec::hardware(features),
    };
    spec.features = features;
    if rng.gen_bool(0.4) {
        spec = spec.with_clusters(rng.gen_range(1..=64));
    }
    if rng.gen_bool(0.4) {
        spec = spec.with_distance(
            *[
                accturbo_clustering::DistanceKind::Manhattan,
                accturbo_clustering::DistanceKind::Anime,
                accturbo_clustering::DistanceKind::Euclidean,
            ]
            .get(rng.gen_range(0..3usize))
            .unwrap(),
        );
    }
    if rng.gen_bool(0.4) {
        spec = spec.with_search(if rng.gen_bool(0.5) {
            accturbo_clustering::SearchKind::Fast
        } else {
            accturbo_clustering::SearchKind::Exhaustive
        });
    }
    if rng.gen_bool(0.4) {
        spec = spec.with_rep(if rng.gen_bool(0.5) {
            accturbo_clustering::RepMode::LastPacket
        } else {
            accturbo_clustering::RepMode::RangeMidpoint
        });
    }
    if rng.gen_bool(0.4) {
        spec = spec.with_init(if rng.gen_bool(0.5) {
            accturbo_clustering::InitMode::Anchors
        } else {
            accturbo_clustering::InitMode::FromTraffic
        });
    }
    if rng.gen_bool(0.4) {
        spec = spec.with_budget(if rng.gen_bool(0.3) {
            None // explicitly unlimited: `budget=unlimited`
        } else {
            Some(rng.gen_range(1..=4096))
        });
    }
    if rng.gen_bool(0.3) {
        spec = spec.with_bloom(1 << rng.gen_range(6..=16u32));
    }
    if rng.gen_bool(0.4) {
        spec = spec.with_ranking(
            *[
                RankingAlgorithm::Throughput,
                RankingAlgorithm::NumPackets,
                RankingAlgorithm::ThroughputOverSize,
                RankingAlgorithm::NumPacketsOverSize,
            ]
            .get(rng.gen_range(0..4usize))
            .unwrap(),
        );
    }
    spec
}

fn random_defense(rng: &mut StdRng) -> DefenseSpec {
    match rng.gen_range(0..8u32) {
        0 => DefenseSpec::Fifo,
        1 => DefenseSpec::Red,
        2 => DefenseSpec::Acc {
            k: ms(rng, 100, 10_000),
        },
        3 => DefenseSpec::AccTurbo(random_accturbo(rng)),
        4 => DefenseSpec::RankedAccTurbo(random_accturbo(rng)),
        5 => {
            let sig = if rng.gen_bool(0.5) {
                accturbo_jaqen::Signature::FiveTuple
            } else {
                accturbo_jaqen::Signature::SrcIp
            };
            let mut j = JaqenSpec::new(sig, rng.gen_range(1..=100_000));
            if rng.gen_bool(0.4) {
                j = j.with_window(ms(rng, 50, 5000));
            }
            if rng.gen_bool(0.4) {
                j = j.with_deploy_delay(ms(rng, 10, 2000));
            }
            DefenseSpec::Jaqen(j)
        }
        6 => DefenseSpec::IdealPifo,
        _ => DefenseSpec::ProgramSwap {
            start: SimTime::ZERO + ms(rng, 0, 120_000),
            downtime: ms(rng, 100, 30_000),
        },
    }
}

fn random_pulse(rng: &mut StdRng) -> PulseAttackConfig {
    PulseAttackConfig {
        period: ms(rng, 100, 5000),
        duty: rng.gen_range(1..=100u32) as f64 / 100.0,
        amp_bps: rng.gen_range(1..=80u64) * 1_000_000,
        vectors: vector_mix(rng, 8),
        spread: rng.gen_range(0..=3),
        ramp: ms(rng, 0, 1000),
    }
}

fn random_workload(rng: &mut StdRng) -> WorkloadSpec {
    match rng.gen_range(0..10u32) {
        0 => WorkloadSpec::Fig2,
        1 => WorkloadSpec::Fig3,
        2 => WorkloadSpec::Fig6,
        3 => WorkloadSpec::Fig7,
        4 => WorkloadSpec::Background,
        5 => WorkloadSpec::Elephant,
        6 => WorkloadSpec::Flood(
            *[
                FloodVariation::NoAttack,
                FloodVariation::SingleFlow,
                FloodVariation::CarpetBombing,
                FloodVariation::SourceSpoofing,
            ]
            .get(rng.gen_range(0..4usize))
            .unwrap(),
        ),
        7 => WorkloadSpec::Adversarial(
            *[
                AdversarialScenario::PlainFlood,
                AdversarialScenario::PacketLevelEvasion,
                AdversarialScenario::AggregateLevelEvasion,
                AdversarialScenario::Swapping,
                AdversarialScenario::Imitation,
            ]
            .get(rng.gen_range(0..5usize))
            .unwrap(),
        ),
        8 => WorkloadSpec::Pulse(random_pulse(rng)),
        _ => WorkloadSpec::CicDay {
            vectors: rng.gen_bool(0.5).then(|| vector_mix(rng, 5)),
            episode: rng.gen_bool(0.5).then(|| ms(rng, 500, 20_000)),
            gap: rng.gen_bool(0.5).then(|| ms(rng, 100, 10_000)),
        },
    }
}

fn random_topology(rng: &mut StdRng) -> TopologySpec {
    let shape = match rng.gen_range(0..4u32) {
        0 => TopologyShape::Line(rng.gen_range(1..=32)),
        1 => TopologyShape::Star(rng.gen_range(1..=64)),
        2 => TopologyShape::FatTree(rng.gen_range(2..=6)),
        _ => TopologyShape::IspEdge,
    };
    let mut spec = TopologySpec::new(shape);
    if rng.gen_bool(0.4) {
        spec.delay = Some(ms(rng, 1, 500));
    }
    if rng.gen_bool(0.4) {
        spec.uplink_bps = Some(rng.gen_range(1..=1000u64) * 1_000_000);
    }
    if rng.gen_bool(0.4) {
        // A strictly-ascending non-empty subset of the shape's leaves.
        let leaves = spec.leaf_count();
        let picks = rng.gen_range(1..=leaves.min(6));
        let mut att: Vec<usize> = (0..picks).map(|_| rng.gen_range(0..leaves)).collect();
        att.sort_unstable();
        att.dedup();
        spec.attackers = Some(att);
    }
    if rng.gen_bool(0.3) {
        spec.edges = EdgeDefense::Same;
    }
    spec.pushback = rng.gen_bool(0.4);
    if rng.gen_bool(0.3) {
        spec.refresh = Some(ms(rng, 50, 2000));
    }
    spec
}

#[test]
fn defense_specs_round_trip_through_the_grammar() {
    let mut rng = StdRng::seed_from_u64(0xD3F_0001);
    for i in 0..INSTANCES {
        let spec = random_defense(&mut rng);
        let text = spec.to_string();
        let back: DefenseSpec = text
            .parse()
            .unwrap_or_else(|e| panic!("instance {i}: `{text}` does not parse back: {e}"));
        assert_eq!(
            back, spec,
            "instance {i}: `{text}` changed across the round-trip"
        );
        assert!(
            !text.contains(' '),
            "instance {i}: `{text}` contains a space"
        );
    }
}

#[test]
fn workload_specs_round_trip_through_the_grammar() {
    let mut rng = StdRng::seed_from_u64(0x307_0002);
    for i in 0..INSTANCES {
        let spec = random_workload(&mut rng);
        let text = spec.to_string();
        let back: WorkloadSpec = text
            .parse()
            .unwrap_or_else(|e| panic!("instance {i}: `{text}` does not parse back: {e}"));
        assert_eq!(
            back, spec,
            "instance {i}: `{text}` changed across the round-trip"
        );
        assert!(
            !text.contains(' '),
            "instance {i}: `{text}` contains a space"
        );
    }
}

#[test]
fn topology_specs_round_trip_through_the_grammar() {
    let mut rng = StdRng::seed_from_u64(0x7090_0004);
    for i in 0..INSTANCES {
        let spec = random_topology(&mut rng);
        let text = spec.to_string();
        let back: TopologySpec = text
            .parse()
            .unwrap_or_else(|e| panic!("instance {i}: `{text}` does not parse back: {e}"));
        assert_eq!(
            back, spec,
            "instance {i}: `{text}` changed across the round-trip"
        );
        assert!(
            !text.contains(' '),
            "instance {i}: `{text}` contains a space"
        );
    }
}

/// A full scenario renders as the `xp run` KEY=VAL sentence; feeding that
/// sentence back through the real CLI parser must reconstruct the same
/// scenario. (This is the property that makes every report header and
/// corpus replay line copy-pasteable.) Topology-bearing sentences stay
/// exact because `Display` always emits an explicit `secs=`, which
/// overrides `parse_run`'s topology-aware padding.
#[test]
fn scenario_specs_round_trip_through_the_xp_run_sentence() {
    let mut rng = StdRng::seed_from_u64(0x5CE_0003);
    for i in 0..INSTANCES {
        let mut spec = ScenarioSpec::new(random_workload(&mut rng), random_defense(&mut rng))
            .with_secs(rng.gen_range(1..=300))
            .with_seed(rng.gen())
            .with_link(rng.gen_range(1..=10_000u64) * 1_000_000);
        if rng.gen_bool(0.3) {
            spec = spec.with_period(ms(&mut rng, 10, 2000));
        }
        if rng.gen_bool(0.4) {
            spec = spec.with_topology(random_topology(&mut rng));
        } else if rng.gen_bool(0.3) {
            // shards= and topology= are mutually exclusive in the CLI, so
            // the sharded knob only rides on single-switch sentences.
            spec = spec.with_shards(rng.gen_range(2..=16));
        }
        let sentence = spec.to_string();
        let argv: Vec<String> = sentence.split(' ').map(str::to_string).collect();
        let cmd = cli::parse_run(&argv)
            .unwrap_or_else(|e| panic!("instance {i}: `{sentence}` does not parse back: {e}"));
        assert_eq!(
            cmd.spec, spec,
            "instance {i}: `{sentence}` changed across the round-trip"
        );
    }
}
