//! Serial-vs-sharded byte-identity differentials (DESIGN.md §14): the
//! sharded windowed datapath must reproduce the serial engine's output
//! **bit-exactly** for every shard count, on the figure scenarios and on
//! the adversarial worst-case corpus.
//!
//! The sharded engine partitions sources (or flows, in stream mode) by
//! FNV hash, runs each shard's calendar inside a one-control-period time
//! window, and merges at window boundaries with a deterministic
//! (time, shard, tie-break) order. Any divergence from the serial path —
//! a reordered tie, a window boundary off by one tick — shows up here as
//! a full `RunResult` debug diff naming the scenario and shard count.

use accturbo_adversary::Corpus;
use accturbo_experiments::spec::{DefenseSpec, ScenarioSpec, WorkloadSpec};
use std::path::PathBuf;

/// Shard counts exercised against the serial (`shards=1`) baseline.
/// 2 is the smallest real split; 8 oversubscribes the windows enough
/// that any merge-order bug has many chances to fire.
const SHARD_COUNTS: &[usize] = &[2, 8];

/// Runs `spec` serially and at every sharded count, asserting the full
/// `RunResult` (debug form covers every counter, per-second series and
/// stats field) and the terminal backlog are byte-identical.
fn assert_shard_identity(spec: &ScenarioSpec, label: &str) {
    let serial = spec.clone().with_shards(1).execute();
    let serial_result = format!("{:?}", serial.result);
    for &shards in SHARD_COUNTS {
        let sharded = spec.clone().with_shards(shards).execute();
        assert_eq!(
            format!("{:?}", sharded.result),
            serial_result,
            "{label}: RunResult drifted between serial and shards={shards}"
        );
        assert_eq!(
            sharded.backlog_pkts, serial.backlog_pkts,
            "{label}: terminal backlog drifted between serial and shards={shards}"
        );
    }
}

/// The Fig. 2 ramping-attack scenario under every defense the figure
/// plots (FIFO baseline, ACC, ACC-Turbo).
#[test]
fn fig2_scenarios_are_byte_identical_under_sharding() {
    for defense in [
        DefenseSpec::Fifo,
        "acc".parse::<DefenseSpec>().expect("acc grammar"),
        DefenseSpec::accturbo(),
    ] {
        let label = format!("fig2/{defense}");
        let spec = ScenarioSpec::new(WorkloadSpec::Fig2, defense).with_secs(15);
        assert_shard_identity(&spec, &label);
    }
}

/// Fig. 6's pulse-wave attack: the pulses concentrate arrivals into
/// bursts, the sharpest stress on per-window shard merging.
#[test]
fn fig6_scenario_is_byte_identical_under_sharding() {
    for defense in [DefenseSpec::Fifo, DefenseSpec::accturbo()] {
        let label = format!("fig6/{defense}");
        let spec = ScenarioSpec::new(WorkloadSpec::Fig6, defense).with_secs(15);
        assert_shard_identity(&spec, &label);
    }
}

/// The CICDDoS-style day behind Figs. 9–11: many concurrent attack
/// vectors and the widest source-address diversity, so the FNV source
/// partition actually spreads traffic across all shards.
#[test]
fn fig9_day_is_byte_identical_under_sharding() {
    let workload: WorkloadSpec = "cicday:vectors=NTP+MSSQL:episode=2:gap=1"
        .parse()
        .expect("cicday grammar");
    let spec = ScenarioSpec::new(workload, DefenseSpec::accturbo()).with_secs(10);
    assert_shard_identity(&spec, "fig9/cicday");
}

/// Every committed worst-case corpus entry replays identically under
/// sharding: the adversarial frontier is exactly where pulse timing is
/// most extreme, so a window-boundary bug that survives the figure
/// scenarios gets caught here.
#[test]
fn attack_corpus_replays_byte_identically_under_sharding() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus");
    let mut checked = 0usize;
    for name in ["accturbo", "fifo"] {
        let path = dir.join(format!("{name}.corpus"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let corpus = Corpus::parse(&text)
            .unwrap_or_else(|e| panic!("corrupt corpus {}: {e}", path.display()));
        let defense: DefenseSpec = corpus
            .defense
            .parse()
            .unwrap_or_else(|e| panic!("{name}.corpus: bad defense header: {e}"));
        // The top of the frontier is the most damaging (and slowest)
        // attack; three entries per defense keeps the differential sharp
        // without replaying the whole corpus twice per shard count.
        for (i, entry) in corpus.entries.iter().take(3).enumerate() {
            let workload: WorkloadSpec = entry
                .workload
                .parse()
                .unwrap_or_else(|e| panic!("{name}.corpus entry {i}: {e}"));
            let spec = ScenarioSpec::new(workload, defense.clone())
                .with_link(corpus.link_bps)
                .with_secs(corpus.secs)
                .with_seed(corpus.seed);
            assert_shard_identity(&spec, &format!("{name}.corpus entry {i}"));
            checked += 1;
        }
    }
    assert!(checked >= 6, "corpus differential must cover both defenses");
}
