//! Golden-figure regression tests: every registry figure runs at smoke
//! (`Quick`) scale and its machine-readable [`FigureResult`] is compared
//! structurally against the checked-in snapshot under `tests/goldens/`.
//!
//! * Numeric fields pass within the golden's declared relative tolerance;
//!   integer/text fields (including the `rendered_fnv` digest of the full
//!   rendered report) compare exactly.
//! * A failure names the figure and every drifted field.
//! * To bless intentional changes, regenerate all snapshots with
//!   `UPDATE_GOLDENS=1 cargo test --test figure_goldens`.

use accturbo_experiments::{figure_spec, FigureResult, Scale, FIGURES};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
}

fn blessing() -> bool {
    std::env::var_os("UPDATE_GOLDENS").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Runs `name` at smoke scale and checks (or, under `UPDATE_GOLDENS=1`,
/// rewrites) its golden snapshot.
fn check(name: &str) {
    let spec = figure_spec(name).unwrap_or_else(|| panic!("`{name}` is not in FIGURES"));
    let fresh = spec.run_default(Scale::Quick).result;
    let path = golden_dir().join(format!("{name}.golden"));

    if blessing() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/goldens");
        std::fs::write(&path, fresh.to_golden())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("blessed {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "no golden snapshot for `{name}` ({}: {e});\n\
             create it with `UPDATE_GOLDENS=1 cargo test --test figure_goldens`",
            path.display()
        )
    });
    let golden = FigureResult::parse_golden(&text)
        .unwrap_or_else(|e| panic!("corrupt golden {}: {e}", path.display()));
    let diffs = golden.compare(&fresh);
    assert!(
        diffs.is_empty(),
        "golden drift in `{name}` ({} field{}):\n  {}\n\
         if this change is intended, re-bless with \
         `UPDATE_GOLDENS=1 cargo test --test figure_goldens`",
        diffs.len(),
        if diffs.len() == 1 { "" } else { "s" },
        diffs.join("\n  ")
    );
}

/// Every `FIGURES` entry has a snapshot on disk and no stale snapshot
/// lingers — adding a figure without a golden (or renaming one) fails
/// here even before its per-figure test exists.
#[test]
fn goldens_cover_the_whole_registry() {
    if blessing() {
        return; // the per-figure tests are rewriting the set right now
    }
    let mut on_disk: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/goldens must exist (bless with UPDATE_GOLDENS=1)")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".golden").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = FIGURES.iter().map(|s| s.name.to_string()).collect();
    expected.sort();
    assert_eq!(
        on_disk, expected,
        "tests/goldens/*.golden must match the FIGURES registry exactly"
    );
}

macro_rules! golden_tests {
    ($($name:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                check(stringify!($name));
            }
        )*
    };
}

golden_tests!(
    fig2,
    fig3,
    fig6,
    fig7,
    table3,
    fig8,
    fig9,
    fig10,
    fig11,
    adversarial,
    ablations,
    pushback,
    robustness,
    worstcase,
    topology,
);

/// The macro list above must not fall behind the registry.
#[test]
fn every_registry_entry_has_a_test() {
    const TESTED: &[&str] = &[
        "fig2",
        "fig3",
        "fig6",
        "fig7",
        "table3",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "adversarial",
        "ablations",
        "pushback",
        "robustness",
        "worstcase",
        "topology",
    ];
    for spec in FIGURES {
        assert!(
            TESTED.contains(&spec.name),
            "figure `{}` has no golden test — add it to golden_tests! and TESTED",
            spec.name
        );
    }
    assert_eq!(TESTED.len(), FIGURES.len());
}
