//! Differential lockdown of the datapath fast path (DESIGN.md §8): the
//! optimized kernels (calendar event loop, specialized distance scans,
//! allocation-free control path) must regenerate the paper figures
//! byte-identically to the pre-optimization reference kernels kept
//! under the `reference` feature.
//!
//! A single `#[test]` covers all figures because the reference toggle
//! is process-global: parallel test threads must not observe each
//! other's kernel selection.

use accturbo_clustering::online::reference::force_reference_kernels;
use accturbo_experiments::{figure_spec, Scale};

#[test]
fn figures_are_byte_identical_across_kernel_paths() {
    for name in ["fig2", "fig6", "fig9"] {
        let spec = figure_spec(name).expect("figure is registered");
        force_reference_kernels(false);
        let fast = spec.run_default(Scale::Quick);
        force_reference_kernels(true);
        let reference = spec.run_default(Scale::Quick);
        force_reference_kernels(false);
        assert_eq!(
            fast.rendered, reference.rendered,
            "{name}: rendered report drifted between kernel paths"
        );
        assert_eq!(
            fast.result.to_golden(),
            reference.result.to_golden(),
            "{name}: golden serialization drifted between kernel paths"
        );
    }
}
