//! Lockdown for the streaming telemetry layer (DESIGN.md §11):
//!
//! * bounded memory — an internet-day-shaped run keeps the sink ring and
//!   flow reservoir at their capacities no matter how many packets flow,
//! * non-perturbation — threading a live `Telemetry` through a scenario
//!   changes nothing about the simulation itself,
//! * determinism — same seed ⇒ byte-identical dataset export,
//! * flight recorder — a faulted run dumps an incident window, a clean
//!   run dumps nothing,
//! * fan-out — `TeeSink` delivers every line to every sink in order,
//!   including when fed from the parallel runner's in-order stream.

use accturbo_experiments::cli::{build_telemetry, parse_run};
use accturbo_obs::{
    shared_recorder, DatasetSink, FlightRecorder, FlowSampler, RingSink, Sink, TeeSink, Telemetry,
};
use std::cell::RefCell;
use std::rc::Rc;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("accturbo_stream_{}_{name}", std::process::id()))
}

/// A sink whose lines stay inspectable after the sink itself has been
/// boxed and moved into a recorder or telemetry bundle.
#[derive(Clone, Default)]
struct ProbeSink(Rc<RefCell<Vec<String>>>);

impl Sink for ProbeSink {
    fn emit(&mut self, line: &str) {
        self.0.borrow_mut().push(line.to_string());
    }
    fn flush(&mut self) {}
}

/// The acceptance scenario: a quick-scale CICDDoS day replay with both
/// a JSONL sink and a dataset exporter attached stays within the
/// configured capacities even though millions of packets (and far more
/// flows than the reservoir holds) pass through.
#[test]
fn cicday_quick_run_keeps_telemetry_memory_bounded() {
    const RING: usize = 64;
    const FLOWS: usize = 256;
    let cmd = parse_run(&args(&[
        "workload=cicday",
        "defense=accturbo",
        "--quick",
        "secs=30",
    ]))
    .unwrap();
    let probe = ProbeSink::default();
    let mut ring = TeeSink::new();
    ring.push(Box::new(RingSink::new(RING)));
    let dataset_path = tmp_path("bounded.csv");
    let mut tel = Telemetry::new()
        .with_sink(Box::new(probe.clone()))
        .with_flow_sampler(FlowSampler::new(FLOWS, cmd.spec.seed))
        .with_dataset(DatasetSink::create(&dataset_path).unwrap());
    let outcome = cmd.spec.execute_streamed(Some(&mut tel));

    assert!(outcome.result.arrivals > 100_000, "workload too small");
    assert!(
        tel.flows_seen() > FLOWS as u64 * 10,
        "need many more flows than reservoir slots, saw {}",
        tel.flows_seen()
    );
    assert!(
        tel.flows_sampled() <= FLOWS,
        "reservoir exceeded capacity: {}",
        tel.flows_sampled()
    );
    assert_eq!(tel.dataset_rows() as usize, tel.flows_sampled());
    // One period per simulated second plus the final end-of-run flush.
    assert!(
        tel.periods() == 30 || tel.periods() == 31,
        "periods: {}",
        tel.periods()
    );
    // The sink was flushed every period, not accumulated: a bounded ring
    // fed the same stream would have evicted most of it.
    let mut bounded = RingSink::new(RING);
    for line in probe.0.borrow().iter() {
        bounded.emit(line);
    }
    assert_eq!(bounded.len(), RING);
    assert_eq!(bounded.total_emitted(), tel.sink_lines());
    assert!(tel.sink_lines() > RING as u64);
    std::fs::remove_file(&dataset_path).ok();
}

/// Attaching a full telemetry bundle must not perturb the simulation:
/// the streamed outcome matches the plain `execute()` packet for packet.
#[test]
fn telemetry_does_not_perturb_the_scenario() {
    let cmd = parse_run(&args(&[
        "workload=fig2",
        "defense=accturbo",
        "secs=6",
        "--quick",
    ]))
    .unwrap();
    let plain = cmd.spec.execute();
    let mut tel = Telemetry::new().with_sink(Box::new(RingSink::new(1024)));
    let streamed = cmd.spec.execute_streamed(Some(&mut tel));
    assert_eq!(plain.result.arrivals, streamed.result.arrivals);
    assert_eq!(plain.result.departures, streamed.result.departures);
    assert_eq!(plain.result.drops, streamed.result.drops);
    assert_eq!(plain.backlog_pkts, streamed.backlog_pkts);
    assert!(tel.periods() > 0 && tel.sink_lines() > 0);
}

/// Same seed ⇒ byte-identical dataset export, twice over.
#[test]
fn dataset_export_is_deterministic_per_seed() {
    let run = |path: &std::path::Path| {
        let cmd = parse_run(&args(&[
            "workload=fig2",
            "defense=accturbo",
            "secs=6",
            "--quick",
        ]))
        .unwrap();
        let mut tel = build_telemetry(None, Some(path.to_str().unwrap()), None, cmd.spec.seed)
            .unwrap()
            .unwrap();
        cmd.spec.execute_streamed(Some(&mut tel));
        std::fs::read(path).unwrap()
    };
    let a_path = tmp_path("det_a.csv");
    let b_path = tmp_path("det_b.csv");
    let a = run(&a_path);
    let b = run(&b_path);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must produce a byte-identical dataset");
    std::fs::remove_file(&a_path).ok();
    std::fs::remove_file(&b_path).ok();
}

/// A fault-injected run trips the flight recorder and dumps a non-empty
/// incident window; the identical clean run dumps nothing. The
/// pulse-onset heuristic is floored out of reach on both sides so the
/// only difference between the runs is the fault plane.
#[test]
fn flight_recorder_fires_on_faults_and_stays_silent_when_clean() {
    let run = |faulted: bool| {
        let mut argv = vec![
            "workload=flood".to_string(),
            "defense=accturbo".to_string(),
            "secs=10".to_string(),
        ];
        if faulted {
            argv.push("faults=ctrl_drop:1.0".to_string());
        }
        let cmd = parse_run(&argv).unwrap();
        let probe = ProbeSink::default();
        let rec = FlightRecorder::new(256, 32, Box::new(probe.clone()));
        let mut tel = Telemetry::new()
            .with_recorder(shared_recorder(rec))
            .with_pulse_onset(4.0, u64::MAX);
        cmd.spec.execute_streamed(Some(&mut tel));
        let lines = probe.0.borrow().clone();
        (tel.recorder_windows(), lines)
    };

    let (clean_windows, clean_lines) = run(false);
    assert_eq!(clean_windows, 0, "clean run must not trigger the recorder");
    assert!(clean_lines.is_empty(), "clean run dumped: {clean_lines:?}");

    let (fault_windows, fault_lines) = run(true);
    assert!(fault_windows >= 1, "faulted run must dump a window");
    assert!(
        fault_lines[0].contains("\"ev\":\"flight_window\""),
        "window header first: {}",
        fault_lines[0]
    );
    assert!(
        fault_lines.len() > 1,
        "window must contain the buffered events, got {fault_lines:?}"
    );
}

/// `TeeSink` fan-out keeps ordering when fed from the parallel runner:
/// jobs finish in arbitrary order across workers, `run_streaming`
/// re-sequences them, and every fanned-out sink sees the exact same
/// line sequence.
#[test]
fn tee_fanout_preserves_order_under_the_parallel_runner() {
    let first = ProbeSink::default();
    let second = ProbeSink::default();
    let mut tee = TeeSink::new();
    tee.push(Box::new(first.clone()));
    tee.push(Box::new(second.clone()));

    const JOBS: usize = 16;
    accturbo_runner::run_streaming(
        4,
        JOBS,
        |index| {
            // Later jobs are cheaper, so completion order inverts
            // delivery order on any multi-worker schedule.
            let spins = (JOBS - index) * 50_000;
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i as u64);
            }
            std::hint::black_box(acc);
            (0..3)
                .map(|l| format!("{{\"job\":{index},\"line\":{l}}}"))
                .collect::<Vec<_>>()
        },
        |result| {
            for line in &result.output {
                tee.emit(line);
            }
            tee.flush();
        },
    );

    let expected: Vec<String> = (0..JOBS)
        .flat_map(|j| (0..3).map(move |l| format!("{{\"job\":{j},\"line\":{l}}}")))
        .collect();
    assert_eq!(*first.0.borrow(), expected);
    assert_eq!(*second.0.borrow(), expected);
}
