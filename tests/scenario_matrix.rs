//! Matrix smoke test over the declarative scenario layer: every
//! [`DefenseSpec`] the factory can build runs the same short flood
//! workload end to end, conserves packets, and round-trips its spec
//! string. A second test pins `xp run workload=fig2 defense=accturbo`
//! to the Fig. 2d experiment it claims to reproduce.

use accturbo_experiments::common::{share_series, Scale};
use accturbo_experiments::spec::{self, DefenseSpec, ScenarioSpec, WorkloadSpec};

/// Every defense in the matrix survives a short pulse-wave flood and
/// conserves packets (arrivals = departures + drops + backlog).
///
/// The flood attack window opens at t = 5 s, so `secs` must be at
/// least 10 for the attack to actually exercise the defense.
#[test]
fn every_defense_conserves_packets_on_the_flood_workload() {
    let flood: WorkloadSpec = "flood".parse().unwrap();
    for defense in spec::all_defenses() {
        let name = defense.to_string();
        let outcome = ScenarioSpec::new(flood.clone(), defense)
            .with_secs(10)
            .execute();
        let res = &outcome.result;
        assert!(res.arrivals > 0, "{name}: no packets arrived");
        assert_eq!(
            res.arrivals,
            res.departures + res.drops + outcome.backlog_pkts as u64,
            "{name}: packet conservation violated \
             (arrivals {} != departures {} + drops {} + backlog {})",
            res.arrivals,
            res.departures,
            res.drops,
            outcome.backlog_pkts,
        );
    }
}

/// Every defense's display form parses back to the same spec.
#[test]
fn every_defense_round_trips_through_its_spec_string() {
    for defense in spec::all_defenses() {
        let s = defense.to_string();
        let parsed: DefenseSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        assert_eq!(parsed.to_string(), s, "display/parse round trip");
    }
}

/// `xp run workload=fig2 defense=accturbo` is the Fig. 2d experiment:
/// the scenario's defaults land on the figure's seed, and the mean
/// per-aggregate shares of the spec-built run equal the figure's own
/// `d.aggN.mean_share` summary numbers bit for bit (checked at quick
/// scale so the test stays fast in debug builds).
#[test]
fn fig2_accturbo_scenario_reproduces_fig2d() {
    use accturbo_experiments::result::Value;

    let full = ScenarioSpec::new(WorkloadSpec::Fig2, DefenseSpec::accturbo());
    assert_eq!(full.secs, WorkloadSpec::Fig2.default_secs(Scale::Full));
    assert_eq!(full.seed, 2022);

    let secs = WorkloadSpec::Fig2.default_secs(Scale::Quick);
    let spec = full.with_secs(secs);
    let via_spec = spec.execute().result;
    let figure = accturbo_experiments::fig2::figure(Scale::Quick, spec.seed);

    let classes = WorkloadSpec::Fig2.share_classes().unwrap();
    let shares = share_series(&via_spec, spec.link_bps, &classes, secs);
    for (i, &c) in classes.iter().enumerate() {
        let mean = shares.iter().map(|row| row[i]).sum::<f64>() / secs as f64;
        let key = format!("d.agg{}.mean_share", c.0);
        let golden = figure
            .result
            .get(&key)
            .unwrap_or_else(|| panic!("fig2 result lacks {key}"));
        match golden.value {
            Value::Num(v) => assert_eq!(v, mean, "{key}: figure {v} vs scenario {mean}"),
            ref other => panic!("{key}: unexpected value {other:?}"),
        }
        if c.0 <= 4 {
            assert!(
                (0.15..=0.25).contains(&mean),
                "benign agg{} mean share {mean:.3} out of the Fig. 2d band",
                c.0
            );
        } else {
            assert!(
                mean < 0.12,
                "attack mean share {mean:.3} not suppressed as in Fig. 2d"
            );
        }
    }
}
