//! Cross-crate integration tests: full workloads through full defenses,
//! exercising the public facade exactly as a downstream user would.

use accturbo::acc::{AccConfig, AccSwitch};
use accturbo::clustering::FeatureSet;
use accturbo::core::{AccTurboConfig, AccTurboSwitch, IdealPifoSwitch};
use accturbo::jaqen::{JaqenConfig, JaqenSwitch, Signature};
use accturbo::netsim::{
    run, Bandwidth, ClassId, EngineConfig, FifoQueue, MergedSource, PacketSource, RunResult,
    SimDuration, SimTime, SingleQueueSwitch, Switch,
};
use accturbo::traffic::{
    scenarios, AttackConfig, AttackSource, AttackVector, BackgroundConfig, BackgroundSource,
};

const LINK: u64 = 10_000_000;

fn engine(secs: u64, control_ms: Option<u64>) -> EngineConfig {
    let mut cfg = EngineConfig::new(Bandwidth::from_bps(LINK))
        .with_stats_interval(SimDuration::from_secs(1))
        .with_end_time(SimTime::from_secs(secs));
    if let Some(ms) = control_ms {
        cfg = cfg.with_control_period(SimDuration::from_millis(ms));
    }
    cfg
}

fn flood_over_background(secs: u64) -> MergedSource {
    let end = SimTime::from_secs(secs);
    let bg: Box<dyn PacketSource> = Box::new(BackgroundSource::new(BackgroundConfig::new(
        6_000_000,
        SimTime::ZERO,
        end,
        5,
    )));
    let attack: Box<dyn PacketSource> = Box::new(AttackSource::new(
        AttackConfig::new(
            AttackVector::UdpFlood,
            40_000_000,
            SimTime::from_secs(3),
            end,
            ClassId(1),
            6,
        )
        .with_single_flow(),
    ));
    MergedSource::new(vec![bg, attack])
}

/// Every defense and baseline processes the same flood without losing
/// packet conservation: arrivals = departures + drops, per class.
#[test]
fn packet_conservation_across_all_defenses() {
    let secs = 20;
    let run_one = |switch: &mut dyn Switch, control: Option<u64>| -> RunResult {
        let mut src = flood_over_background(secs);
        run(&mut src, switch, &engine(secs, control))
    };
    let mut fifo = SingleQueueSwitch::new(FifoQueue::new(512 * 1024));
    let mut acc = AccSwitch::new(AccConfig::default(), Bandwidth::from_bps(LINK));
    let mut jaqen = JaqenSwitch::new(JaqenConfig::best_case(Signature::FiveTuple, 2_000));
    let mut turbo = AccTurboSwitch::new(AccTurboConfig::hardware(FeatureSet::hardware_dst_bytes()));
    let mut ideal = IdealPifoSwitch::new(512 * 1024);

    for (name, sw, control) in [
        ("fifo", &mut fifo as &mut dyn Switch, None),
        ("acc", &mut acc, Some(100)),
        ("jaqen", &mut jaqen, Some(100)),
        ("accturbo", &mut turbo, Some(50)),
        ("ideal", &mut ideal, None),
    ] {
        let res = run_one(sw, control);
        assert_eq!(
            res.arrivals,
            res.departures + res.drops,
            "{name}: conservation violated"
        );
        for class in [ClassId::BENIGN, ClassId(1)] {
            let a = res.stats.total_arrived(class).pkts;
            let d = res.stats.total_departed(class).pkts;
            let x = res.stats.total_dropped(class).pkts;
            assert_eq!(a, d + x, "{name}/{class}: per-class conservation violated");
        }
    }
}

/// The paper's headline ordering on the same flood: ideal ≤ ACC-Turbo <
/// FIFO for benign drops, and every defense hurts the attack more than
/// benign traffic.
#[test]
fn defense_ordering_on_a_flood() {
    let secs = 30;
    let pct = |switch: &mut dyn Switch, control: Option<u64>| -> (f64, f64) {
        let mut src = flood_over_background(secs);
        let res = run(&mut src, switch, &engine(secs, control));
        (res.stats.benign_drop_pct(), res.stats.attack_drop_pct())
    };
    let mut fifo = SingleQueueSwitch::new(FifoQueue::new(512 * 1024));
    let (fifo_benign, _) = pct(&mut fifo, None);
    let mut turbo = AccTurboSwitch::new(AccTurboConfig::hardware(FeatureSet::hardware_dst_bytes()));
    let (turbo_benign, turbo_attack) = pct(&mut turbo, Some(50));
    let mut ideal = IdealPifoSwitch::new(512 * 1024);
    let (ideal_benign, ideal_attack) = pct(&mut ideal, None);

    assert!(ideal_benign <= turbo_benign + 1.0, "oracle must dominate");
    assert!(
        turbo_benign < fifo_benign - 20.0,
        "ACC-Turbo ({turbo_benign:.1}%) must clearly beat FIFO ({fifo_benign:.1}%)"
    );
    assert!(
        turbo_attack > turbo_benign,
        "the attack must absorb the loss"
    );
    assert!(ideal_attack > 50.0, "the oracle sheds attack traffic");
}

/// Bit-exact determinism of a full defended run, across the whole stack
/// (workload generation, clustering, scheduling, engine).
#[test]
fn full_runs_are_deterministic() {
    let run_once = || {
        let mut src = scenarios::fig3_source(LINK, 7);
        let mut sw =
            AccTurboSwitch::new(AccTurboConfig::simulation(FeatureSet::simulation_default()));
        let res = run(&mut src, &mut sw, &engine(scenarios::RUN_SECS, Some(250)));
        let series: Vec<u64> = (0..scenarios::RUN_SECS as usize)
            .flat_map(|t| (1..=5).map(move |c| (t, c)).collect::<Vec<_>>())
            .map(|(t, c)| res.stats.throughput_bps(t, ClassId(c)) as u64)
            .collect();
        (res.arrivals, res.departures, res.drops, series)
    };
    assert_eq!(run_once(), run_once());
}

/// The facade's modules compose: classic ACC's prefix inference can be
/// driven by headers recorded from any simulated run.
#[test]
fn acc_inference_composes_with_the_simulator() {
    let mut src = flood_over_background(10);
    let mut dropped_dsts = Vec::new();
    let mut sw = SingleQueueSwitch::new(FifoQueue::new(64 * 1024));
    let mut drops = Vec::new();
    let mut i = 0u64;
    while let Some(pkt) = src.next_packet() {
        drops.clear();
        sw.ingress(pkt, SimTime::ZERO, &mut drops);
        // Drain slower than the flood arrives so the queue overflows.
        if i.is_multiple_of(8) {
            sw.dequeue(SimTime::ZERO);
        }
        i += 1;
        for d in &drops {
            dropped_dsts.push(u32::from(d.packet.dst));
        }
    }
    let aggregates = accturbo::acc::infer_aggregates(&dropped_dsts, 5, 0.9);
    assert!(!aggregates.is_empty(), "the flood must be inferred");
    // The flood targets 198.18.0.10; the top aggregate must contain it.
    assert!(
        aggregates[0]
            .prefix
            .contains(u32::from_be_bytes([198, 18, 0, 10])),
        "top aggregate {} misses the victim",
        aggregates[0].prefix
    );
}

/// Deprioritization is delay, not drops, until the buffer overflows
/// (paper §3.2/§10): under congestion the attack's queueing delay must
/// far exceed benign traffic's.
#[test]
fn deprioritized_traffic_waits_longer() {
    let secs = 20;
    let mut src = flood_over_background(secs);
    let mut turbo = AccTurboSwitch::new(AccTurboConfig::hardware(FeatureSet::hardware_dst_bytes()));
    let res = run(&mut src, &mut turbo, &engine(secs, Some(50)));
    let benign_p50 = res
        .delays
        .percentile(ClassId::BENIGN, 50.0)
        .expect("benign delivered");
    let attack_p50 = res
        .delays
        .percentile(ClassId(1), 50.0)
        .expect("some attack delivered");
    assert!(
        attack_p50.as_nanos() > 3 * benign_p50.as_nanos(),
        "attack p50 {attack_p50} vs benign p50 {benign_p50}"
    );
}

/// Pulse gaps leave ACC-Turbo completely transparent: no drops, identical
/// benign delivery to FIFO.
#[test]
fn transparency_between_pulses() {
    let secs = 8;
    let end = SimTime::from_secs(secs);
    let benign_only = || -> MergedSource {
        MergedSource::new(vec![Box::new(BackgroundSource::new(BackgroundConfig::new(
            6_000_000,
            SimTime::ZERO,
            end,
            9,
        ))) as Box<dyn PacketSource>])
    };
    let mut src = benign_only();
    let mut turbo =
        AccTurboSwitch::new(AccTurboConfig::simulation(FeatureSet::simulation_default()));
    let turbo_res = run(&mut src, &mut turbo, &engine(secs, Some(50)));
    assert_eq!(turbo_res.drops, 0, "no congestion, no drops");
    let mut src = benign_only();
    let mut fifo = SingleQueueSwitch::new(FifoQueue::new(512 * 1024));
    let fifo_res = run(&mut src, &mut fifo, &engine(secs, None));
    assert_eq!(turbo_res.departures, fifo_res.departures);
}
