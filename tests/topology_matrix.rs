//! Property tests for the multi-switch topology layer:
//!
//! * every topology shape × every defense conserves packets end to end
//!   (no packet is created or lost crossing a link), with per-node drop
//!   accounting summing to the end-to-end total;
//! * a `line:1` topology is **byte-identical** to the single-switch
//!   `ScenarioSpec::execute()` for the fig2 and fig6 workloads — the
//!   differential that proves the topology layer composes the existing
//!   engine rather than re-implementing it;
//! * the `topology` registry figure is deterministic at a fixed seed and
//!   invariant under the worker count (`--jobs`).

use accturbo_experiments::cli::{self, Cli};
use accturbo_experiments::spec::{self, ScenarioSpec, TopologySpec, WorkloadSpec};
use accturbo_experiments::{topology, Scale};

const SHAPES: &[&str] = &["line:2", "star:3", "fattree:2", "isp-edge"];

/// Every shape × every defense the factory can build: the flood enters
/// at the leaves, crosses links, and every packet is accounted for at
/// exactly one place (departed, dropped at some node, or still queued).
#[test]
fn every_shape_and_defense_conserves_packets() {
    let flood: WorkloadSpec = "flood".parse().unwrap();
    for shape in SHAPES {
        for defense in spec::all_defenses() {
            let name = format!("{shape} × {defense}");
            let t = ScenarioSpec::new(flood.clone(), defense)
                .with_secs(10)
                .with_topology(shape.parse().unwrap())
                .execute_topology();
            let res = &t.result;
            assert!(res.arrivals > 0, "{name}: no packets arrived");
            assert_eq!(
                res.arrivals,
                res.departures + res.drops + t.backlog_pkts as u64,
                "{name}: packet conservation violated \
                 (arrivals {} != departures {} + drops {} + backlog {})",
                res.arrivals,
                res.departures,
                res.drops,
                t.backlog_pkts,
            );
            assert_eq!(
                res.drops,
                t.node_drops.iter().sum::<u64>(),
                "{name}: per-node drops must sum to the end-to-end total"
            );
            assert!(t.hops > 0, "{name}: no link was ever crossed");
        }
    }
}

/// The pushback variant of the matrix: limits flowing upstream must
/// never break conservation (policer drops are still drops).
#[test]
fn pushback_never_breaks_conservation() {
    let flood: WorkloadSpec = "flood".parse().unwrap();
    for shape in ["line:3:pushback=on", "star:3:pushback=on:refresh=0.25"] {
        let t = ScenarioSpec::new(flood.clone(), "acc".parse().unwrap())
            .with_secs(12)
            .with_topology(shape.parse().unwrap())
            .execute_topology();
        assert_eq!(
            t.result.arrivals,
            t.result.departures + t.result.drops + t.backlog_pkts as u64,
            "{shape}: conservation violated"
        );
    }
}

/// `line:1` is the single-switch model: the entire `RunResult` (stats
/// buckets, delay histograms, final time, counters) must match the
/// classic `ScenarioSpec::execute()` byte for byte, workload and
/// control plane included.
#[test]
fn line1_is_byte_identical_to_the_single_switch_engine() {
    for (workload, defense) in [("fig2", "accturbo"), ("fig6", "acc"), ("fig2", "fifo")] {
        let base = ScenarioSpec::new(workload.parse().unwrap(), defense.parse().unwrap());
        let secs = base.workload.default_secs(Scale::Quick);
        let base = base.with_secs(secs);

        let single = base.clone().execute();
        let multi = base
            .clone()
            .with_topology("line:1".parse::<TopologySpec>().unwrap())
            .execute_topology();

        assert_eq!(
            format!("{:?}", single.result),
            format!("{:?}", multi.result),
            "{workload} × {defense}: line:1 diverged from the single-switch engine"
        );
        assert_eq!(
            single.backlog_pkts, multi.backlog_pkts,
            "{workload} × {defense}: backlog diverged"
        );
        assert_eq!(multi.hops, 0, "a one-node topology crosses no links");
        assert_eq!(multi.node_drops.len(), 1);
    }
}

/// The `execute()` wrapper must agree with `execute_topology()` so both
/// CLI paths (summary rendering vs. figure internals) see one truth.
#[test]
fn execute_and_execute_topology_agree() {
    let spec = ScenarioSpec::new("flood".parse().unwrap(), "red".parse().unwrap())
        .with_secs(10)
        .with_topology("star:4:attackers=0+1".parse().unwrap());
    let a = spec.execute();
    let b = spec.execute_topology();
    assert_eq!(format!("{:?}", a.result), format!("{:?}", b.result));
    assert_eq!(a.backlog_pkts, b.backlog_pkts);
}

/// Same seed, same figure, twice: identical rendered report and result.
#[test]
fn topology_figure_is_seed_deterministic() {
    let a = topology::figure(Scale::Quick, topology::DEFAULT_SEED);
    let b = topology::figure(Scale::Quick, topology::DEFAULT_SEED);
    assert_eq!(a.rendered, b.rendered);
    assert_eq!(a.result, b.result);
    assert_eq!(a.result.figure, "topology");
}

fn cli_for(targets: &[&str], jobs: usize) -> Cli {
    let mut args: Vec<String> = targets.iter().map(|s| s.to_string()).collect();
    args.push("--quick".into());
    let mut cli = cli::parse(&args).expect("valid targets");
    cli.jobs = jobs;
    cli
}

fn rendered_stream(cli: &Cli) -> String {
    let mut out = String::new();
    cli::run_figures(cli, |block| out.push_str(block));
    out
}

/// The new figure through the real `xp` fan-out: the assembled byte
/// stream is identical for any `--jobs` value.
#[test]
fn topology_figure_is_jobs_invariant_through_the_cli() {
    let targets = ["topology", "fig7", "pushback"];
    let serial = rendered_stream(&cli_for(&targets, 1));
    let parallel = rendered_stream(&cli_for(&targets, 4));
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "stdout must not depend on --jobs");
    assert!(
        serial.contains("==================== topology ===================="),
        "missing the topology block"
    );
}
