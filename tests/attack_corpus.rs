//! Worst-case attack regression corpus: every committed corpus entry
//! under `tests/corpus/` replays through the declarative scenario layer
//! and must reproduce its recorded damage metrics **bit-exactly**.
//!
//! Each `<defense>.corpus` file was produced by `xp search` and freezes
//! that defense's worst-case frontier: the attacks the adversarial
//! optimizer found most damaging. Replaying them is a sharper regression
//! net than the average-case goldens — a datapath change that only moves
//! behaviour under extreme pulse shapes shows up here first, as a
//! per-entry, per-field diff naming the exact attack that drifted.
//!
//! To bless intentional changes (the attacks stay, their metrics are
//! re-measured):
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --release --test attack_corpus
//! ```

use accturbo_adversary::{Corpus, DamageMetrics};
use accturbo_experiments::spec::{DefenseSpec, WorkloadSpec};
use accturbo_experiments::worstcase::{self, FRONTIER_DEFENSES};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn blessing() -> bool {
    std::env::var_os("UPDATE_GOLDENS").is_some_and(|v| !v.is_empty() && v != "0")
}

fn load(name: &str) -> Corpus {
    let path = corpus_dir().join(format!("{name}.corpus"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "no corpus for `{name}` ({}: {e});\n\
             generate it with `xp search defense={name} --budget 48 --top 10 \
             --quick --out tests/corpus/{name}.corpus`",
            path.display()
        )
    });
    Corpus::parse(&text).unwrap_or_else(|e| panic!("corrupt corpus {}: {e}", path.display()))
}

/// Replays every entry of `name`'s corpus (in parallel — replay order
/// cannot matter, each entry is an independent simulation) and fails
/// with one line per drifted field. Under `UPDATE_GOLDENS=1` the file is
/// rewritten with the fresh metrics instead, keeping the attacks.
fn check(name: &str) {
    let corpus = load(name);
    let defense: DefenseSpec = corpus
        .defense
        .parse()
        .unwrap_or_else(|e| panic!("{name}.corpus: bad defense header: {e}"));

    let fresh: Vec<DamageMetrics> = accturbo_runner::run(
        accturbo_runner::default_threads(),
        corpus.entries.len(),
        |i| {
            let workload: WorkloadSpec = corpus.entries[i].workload.parse().unwrap_or_else(|e| {
                panic!(
                    "{name}.corpus entry {i}: `{}` no longer parses: {e}",
                    corpus.entries[i].workload
                )
            });
            worstcase::evaluate_workload(
                &defense,
                &workload,
                corpus.link_bps,
                corpus.secs,
                corpus.seed,
            )
        },
    )
    .into_iter()
    .map(|r| r.output)
    .collect();

    if blessing() {
        let mut blessed = corpus.clone();
        for (entry, m) in blessed.entries.iter_mut().zip(&fresh) {
            entry.metrics = *m;
        }
        let path = corpus_dir().join(format!("{name}.corpus"));
        std::fs::write(&path, blessed.to_text())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("blessed {}", path.display());
        return;
    }

    let mut diffs: Vec<String> = Vec::new();
    for (i, (entry, fresh)) in corpus.entries.iter().zip(&fresh).enumerate() {
        let golden = &entry.metrics;
        for (field, want, got) in [
            ("damage", golden.damage, fresh.damage),
            (
                "benign_drop_pct",
                golden.benign_drop_pct,
                fresh.benign_drop_pct,
            ),
            (
                "attack_drop_pct",
                golden.attack_drop_pct,
                fresh.attack_drop_pct,
            ),
            ("benign_mbps", golden.benign_mbps, fresh.benign_mbps),
        ] {
            if want.to_bits() != got.to_bits() {
                diffs.push(format!(
                    "entry {i} ({}): {field} recorded {want:?}, replayed {got:?}",
                    entry.workload
                ));
            }
        }
    }
    assert!(
        diffs.is_empty(),
        "corpus drift in `{name}` ({} field{}):\n  {}\n\
         if this change is intended, re-bless with \
         `UPDATE_GOLDENS=1 cargo test --release --test attack_corpus`",
        diffs.len(),
        if diffs.len() == 1 { "" } else { "s" },
        diffs.join("\n  ")
    );
}

macro_rules! corpus_tests {
    ($($name:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                check(stringify!($name));
            }
        )*
    };
}

corpus_tests!(fifo, red, acc, accturbo, jaqen);

/// The committed corpus set tracks the frontier defense list exactly,
/// every file is internally consistent (matching defense header, the
/// canonical frame) and carries a meaningful frontier (≥ 10 attacks,
/// sorted by damage, no duplicate attacks).
#[test]
fn corpus_set_matches_the_frontier_defenses() {
    let mut on_disk: Vec<String> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".corpus").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = FRONTIER_DEFENSES.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(
        on_disk, expected,
        "tests/corpus/*.corpus must match worstcase::FRONTIER_DEFENSES exactly"
    );

    for name in FRONTIER_DEFENSES {
        let corpus = load(name);
        assert_eq!(&corpus.defense, name, "{name}.corpus: defense header");
        assert!(
            corpus.entries.len() >= 10,
            "{name}.corpus: only {} entries (need ≥ 10)",
            corpus.entries.len()
        );
        assert_eq!(corpus.seed, worstcase::DEFAULT_SEED, "{name}.corpus: seed");
        let damages: Vec<f64> = corpus.entries.iter().map(|e| e.metrics.damage).collect();
        assert!(
            damages.windows(2).all(|w| w[0] >= w[1]),
            "{name}.corpus: frontier not sorted by damage"
        );
        let mut workloads: Vec<&str> = corpus.entries.iter().map(|e| e.workload.as_str()).collect();
        workloads.sort_unstable();
        workloads.dedup();
        assert_eq!(
            workloads.len(),
            corpus.entries.len(),
            "{name}.corpus: duplicate attacks in the frontier"
        );
    }
}
