//! # accturbo-telemetry
//!
//! Evaluation metrics and reporting for the experiment harness: the
//! Fig. 11a scheduling score, reaction-time measurement on throughput
//! series (§7.2.2), and plain-text table/CSV rendering used by every
//! figure and table regeneration.
//!
//! The [`obs`] module is the structured observability layer (event
//! tracing, metrics registry, span timing). It lives in its own
//! dependency-free crate (`accturbo-obs`) so the datapath crates below
//! this one can thread its `Tracer` hooks, and is re-exported here as
//! the canonical downstream path.

#![deny(missing_docs)]

pub mod reaction;
pub mod report;
pub mod score;

/// Structured observability: event trace, metrics registry, span
/// timing. Re-export of the dependency-free `accturbo-obs` crate.
pub use accturbo_obs as obs;

pub use reaction::benign_recovery_time;
pub use report::{csv, f, Table};
pub use score::SchedulingScore;
