//! # accturbo-telemetry
//!
//! Evaluation metrics and reporting for the experiment harness: the
//! Fig. 11a scheduling score, reaction-time measurement on throughput
//! series (§7.2.2), and plain-text table/CSV rendering used by every
//! figure and table regeneration.

#![deny(missing_docs)]

pub mod reaction;
pub mod report;
pub mod score;

pub use reaction::benign_recovery_time;
pub use report::{csv, f, Table};
pub use score::SchedulingScore;
