//! Plain-text report formatting for the experiment harness.
//!
//! Every figure/table regeneration prints either an aligned table (for
//! the paper's tables) or a CSV series (for the figures, ready to plot).

use std::fmt::Write as _;

/// An aligned plain-text table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Renders a CSV series: one header line, then one line per record.
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row arity mismatch");
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a float with sensible experiment precision.
pub fn f(x: f64) -> String {
    if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a  "));
        // All data lines have the value column starting at the same offset.
        let off = lines[2].find('1').expect("value present");
        assert_eq!(&lines[3][off..off + 4], "22.5");
    }

    #[test]
    fn csv_round_trip_shape() {
        let s = csv(
            &["t", "v"],
            &[
                vec!["0".into(), "1.5".into()],
                vec!["1".into(), "2.5".into()],
            ],
        );
        assert_eq!(s, "t,v\n0,1.5\n1,2.5\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.12345), "0.12");
        assert_eq!(f(1234.5), "1234.5");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
