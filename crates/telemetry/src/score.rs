//! The scheduling score of Fig. 11a.
//!
//! The paper scores a ranking algorithm as "the percentage of one-second
//! intervals in the simulation where the average priority given to benign
//! traffic is higher than the one given to malicious traffic". Priorities
//! here are queue indices (lower = better), so an interval scores when
//! benign's mean queue index is strictly lower than malicious's.

use accturbo_netsim::{ClassId, SimDuration, SimTime};

/// Accumulates per-interval priority averages per traffic kind.
#[derive(Debug, Clone)]
pub struct SchedulingScore {
    interval: SimDuration,
    /// Per interval: (benign priority sum, benign count, attack priority
    /// sum, attack count).
    intervals: Vec<(u64, u64, u64, u64)>,
}

impl SchedulingScore {
    /// Creates a scorer with the paper's 1 s intervals.
    pub fn new() -> Self {
        Self::with_interval(SimDuration::from_secs(1))
    }

    /// Creates a scorer with a custom interval width.
    pub fn with_interval(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        SchedulingScore {
            interval,
            intervals: Vec::new(),
        }
    }

    /// Records a packet scheduled at `now` with priority `queue` (lower =
    /// better) and ground truth `class`.
    pub fn record(&mut self, now: SimTime, queue: usize, class: ClassId) {
        let idx = now.bucket(self.interval) as usize;
        if self.intervals.len() <= idx {
            self.intervals.resize(idx + 1, (0, 0, 0, 0));
        }
        let slot = &mut self.intervals[idx];
        if class.is_benign() {
            slot.0 += queue as u64;
            slot.1 += 1;
        } else {
            slot.2 += queue as u64;
            slot.3 += 1;
        }
    }

    /// The score: percentage of mixed intervals where benign traffic's
    /// average queue index is strictly lower (better) than malicious
    /// traffic's. Zero when no interval carried both kinds.
    pub fn score(&self) -> f64 {
        let mut mixed = 0u64;
        let mut won = 0u64;
        for &(bsum, bcnt, msum, mcnt) in &self.intervals {
            if bcnt == 0 || mcnt == 0 {
                continue;
            }
            mixed += 1;
            let b_avg = bsum as f64 / bcnt as f64;
            let m_avg = msum as f64 / mcnt as f64;
            if b_avg < m_avg {
                won += 1;
            }
        }
        if mixed == 0 {
            0.0
        } else {
            100.0 * won as f64 / mixed as f64
        }
    }

    /// Number of intervals carrying both benign and malicious traffic.
    pub fn mixed_intervals(&self) -> usize {
        self.intervals
            .iter()
            .filter(|&&(_, b, _, m)| b > 0 && m > 0)
            .count()
    }
}

impl Default for SchedulingScore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_scores_100() {
        let mut s = SchedulingScore::new();
        for sec in 0..10u64 {
            let t = SimTime::from_secs(sec);
            s.record(t, 0, ClassId::BENIGN);
            s.record(t, 3, ClassId(1));
        }
        assert_eq!(s.score(), 100.0);
        assert_eq!(s.mixed_intervals(), 10);
    }

    #[test]
    fn inverted_priorities_score_0() {
        let mut s = SchedulingScore::new();
        for sec in 0..10u64 {
            let t = SimTime::from_secs(sec);
            s.record(t, 3, ClassId::BENIGN);
            s.record(t, 0, ClassId(1));
        }
        assert_eq!(s.score(), 0.0);
    }

    #[test]
    fn ties_do_not_count_as_wins() {
        let mut s = SchedulingScore::new();
        s.record(SimTime::ZERO, 1, ClassId::BENIGN);
        s.record(SimTime::ZERO, 1, ClassId(1));
        assert_eq!(s.score(), 0.0);
    }

    #[test]
    fn single_kind_intervals_are_skipped() {
        let mut s = SchedulingScore::new();
        s.record(SimTime::from_secs(0), 0, ClassId::BENIGN); // benign only
        s.record(SimTime::from_secs(1), 0, ClassId::BENIGN);
        s.record(SimTime::from_secs(1), 3, ClassId(1)); // mixed, won
        assert_eq!(s.mixed_intervals(), 1);
        assert_eq!(s.score(), 100.0);
    }

    #[test]
    fn averaging_within_an_interval() {
        let mut s = SchedulingScore::new();
        // Benign avg (0+2)/2 = 1; malicious avg 2 -> win.
        s.record(SimTime::ZERO, 0, ClassId::BENIGN);
        s.record(SimTime::ZERO, 2, ClassId::BENIGN);
        s.record(SimTime::ZERO, 2, ClassId(1));
        assert_eq!(s.score(), 100.0);
    }

    #[test]
    fn empty_scorer_is_zero() {
        assert_eq!(SchedulingScore::new().score(), 0.0);
    }
}
