//! Reaction-time measurement (paper §7.2.2).
//!
//! The paper defines reaction time as "the time since [a defense] sees
//! the first attack packet until it starts mitigating the attack". On a
//! throughput time series this is observable as the moment benign
//! throughput recovers (or attack throughput collapses) after the attack
//! begins.

use accturbo_netsim::{ClassId, SimTime, StatsCollector};

/// Measures when benign throughput recovers above `recover_frac` of its
/// pre-attack level, after an attack starting at `attack_start`.
///
/// Returns the reaction time, or `None` when benign traffic never
/// recovers before the series ends. The pre-attack level is the mean
/// benign throughput over the buckets strictly before `attack_start`.
pub fn benign_recovery_time(
    stats: &StatsCollector,
    attack_start: SimTime,
    recover_frac: f64,
) -> Option<SimTime> {
    assert!(
        (0.0..=1.0).contains(&recover_frac),
        "recover_frac must be in [0, 1]"
    );
    let interval = stats.interval();
    let start_bucket = attack_start.bucket(interval) as usize;
    assert!(start_bucket > 0, "need at least one pre-attack bucket");

    let baseline: f64 = (0..start_bucket)
        .map(|b| stats.throughput_bps(b, ClassId::BENIGN))
        .sum::<f64>()
        / start_bucket as f64;
    if baseline <= 0.0 {
        return None;
    }
    let target = baseline * recover_frac;

    // Find the first post-attack bucket where benign throughput dipped
    // (the attack actually bit) ...
    let impacted = (start_bucket..stats.num_buckets())
        .find(|&b| stats.throughput_bps(b, ClassId::BENIGN) < target)?;
    // ... then the first bucket after it that recovers.
    let recovered = (impacted..stats.num_buckets())
        .find(|&b| stats.throughput_bps(b, ClassId::BENIGN) >= target)?;
    let recovered_at = SimTime::from_nanos(recovered as u64 * interval.as_nanos());
    Some(SimTime::from_nanos(
        recovered_at
            .as_nanos()
            .saturating_sub(attack_start.as_nanos()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_netsim::{Packet, SimDuration};

    /// Builds a stats series with the given per-second benign Mbps.
    fn series(mbps_per_sec: &[f64]) -> StatsCollector {
        let mut s = StatsCollector::new(SimDuration::from_secs(1));
        for (sec, &mbps) in mbps_per_sec.iter().enumerate() {
            let bytes = (mbps * 1e6 / 8.0) as u32;
            let t = SimTime::from_millis(sec as u64 * 1000 + 500);
            let p = Packet::new(t).with_size(bytes.max(1));
            s.on_depart(&p, t);
        }
        s
    }

    #[test]
    fn measures_the_dip_and_recovery() {
        // Baseline 8 Mbps; attack at t=3 s crushes throughput for 2 s.
        let s = series(&[8.0, 8.0, 8.0, 1.0, 1.0, 8.0, 8.0]);
        let r = benign_recovery_time(&s, SimTime::from_secs(3), 0.9).expect("recovers");
        assert_eq!(r, SimTime::from_secs(2));
    }

    #[test]
    fn none_when_never_recovering() {
        let s = series(&[8.0, 8.0, 1.0, 1.0, 1.0]);
        assert!(benign_recovery_time(&s, SimTime::from_secs(2), 0.9).is_none());
    }

    #[test]
    fn immediate_recovery_is_fast() {
        // Dip for one bucket only.
        let s = series(&[8.0, 8.0, 1.0, 8.0]);
        let r = benign_recovery_time(&s, SimTime::from_secs(2), 0.9).expect("recovers");
        assert_eq!(r, SimTime::from_secs(1));
    }

    #[test]
    fn no_dip_means_no_reaction_needed() {
        // Attack never bites: there is no "impacted" bucket.
        let s = series(&[8.0, 8.0, 8.0, 8.0]);
        assert!(benign_recovery_time(&s, SimTime::from_secs(2), 0.9).is_none());
    }
}
