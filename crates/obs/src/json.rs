//! Minimal JSON formatting and field-extraction helpers shared by the
//! whole observability layer (and re-used downstream by `experiments`).
//!
//! These existed as private copies in several crates; they live here
//! once, tested, because every JSONL producer in the workspace must
//! agree on escaping and number formatting for the goldens to stay
//! byte-stable. This is intentionally not a JSON library: the schema is
//! flat one-object-per-line JSONL that the workspace itself emits.

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as JSON (finite → shortest form; non-finite → null,
/// since JSON has no Infinity/NaN literals).
pub fn json_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// Renders a big-endian `u32` address as dotted-quad (`a.b.c.d`).
pub fn dotted(addr: u32) -> String {
    let b = addr.to_be_bytes();
    format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3])
}

/// The raw text of `"key":<value>` in a flat one-line JSON object body
/// (outer braces stripped), stopping at the next top-level comma.
/// String values keep their surrounding quotes.
pub fn raw_field<'s>(body: &'s str, key: &str) -> Option<&'s str> {
    let pat = format!("\"{key}\":");
    let start = body.find(&pat)? + pat.len();
    let rest = &body[start..];
    let (mut depth, mut in_str, mut esc) = (0usize, false, false);
    for (i, ch) in rest.char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match ch {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth = depth.saturating_sub(1),
            ',' if !in_str && depth == 0 => return Some(&rest[..i]),
            _ => {}
        }
    }
    Some(rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials_and_control_chars() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\re\tf\u{1}g", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\re\\tf\\u0001g");
    }

    #[test]
    fn escape_passes_unicode_through() {
        let mut out = String::new();
        escape_json("héllo→", &mut out);
        assert_eq!(out, "héllo→");
    }

    #[test]
    fn json_f64_finite_and_nonfinite() {
        let mut out = String::new();
        json_f64(1.5, &mut out);
        out.push(',');
        json_f64(f64::NAN, &mut out);
        out.push(',');
        json_f64(f64::INFINITY, &mut out);
        assert_eq!(out, "1.5,null,null");
    }

    #[test]
    fn dotted_renders_big_endian_octets() {
        assert_eq!(dotted(u32::from_be_bytes([198, 18, 5, 7])), "198.18.5.7");
        assert_eq!(dotted(0), "0.0.0.0");
    }

    #[test]
    fn raw_field_extracts_values_arrays_and_strings() {
        let body = "\"ts\":12,\"name\":\"a,b\",\"buckets\":[[\"1\",2],[\"+inf\",3]],\"last\":7";
        assert_eq!(raw_field(body, "ts"), Some("12"));
        assert_eq!(raw_field(body, "name"), Some("\"a,b\""));
        assert_eq!(raw_field(body, "buckets"), Some("[[\"1\",2],[\"+inf\",3]]"));
        assert_eq!(raw_field(body, "last"), Some("7"));
        assert_eq!(raw_field(body, "missing"), None);
    }

    #[test]
    fn raw_field_skips_escaped_quotes_inside_strings() {
        let body = "\"reason\":\"he said \\\"no,\\\" twice\",\"size\":9";
        assert_eq!(
            raw_field(body, "reason"),
            Some("\"he said \\\"no,\\\" twice\"")
        );
        assert_eq!(raw_field(body, "size"), Some("9"));
    }
}
