//! Wall-clock span timing for pipeline stages.
//!
//! [`StageClock`] accumulates real (host) elapsed time per named stage
//! using `std::time::Instant`. Unlike the event trace and metrics —
//! which live in simulated time — this measures how long the *host*
//! spends in each hot-path stage (classify, rank, enqueue), which is
//! what the <2% NoopTracer overhead bound is stated against.

use std::time::{Duration, Instant};

/// Handle to a registered stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageId(usize);

#[derive(Debug, Clone, Default)]
struct Stage {
    name: String,
    total: Duration,
    calls: u64,
}

/// Accumulates wall-clock time per pipeline stage.
#[derive(Debug, Clone, Default)]
pub struct StageClock {
    stages: Vec<Stage>,
    enabled: bool,
}

impl StageClock {
    /// Creates a clock. When `enabled` is false, [`StageClock::time`]
    /// runs its closure without touching `Instant` at all.
    pub fn new(enabled: bool) -> Self {
        StageClock {
            stages: Vec::new(),
            enabled,
        }
    }

    /// Whether timing is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns timing on or off; accumulated totals are kept.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Registers (or re-resolves) a stage by name.
    pub fn stage(&mut self, name: &str) -> StageId {
        if let Some(i) = self.stages.iter().position(|s| s.name == name) {
            return StageId(i);
        }
        self.stages.push(Stage {
            name: name.to_string(),
            ..Stage::default()
        });
        StageId(self.stages.len() - 1)
    }

    /// Runs `f`, attributing its wall-clock time to `stage`.
    #[inline]
    pub fn time<R>(&mut self, stage: StageId, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let r = f();
        let s = &mut self.stages[stage.0];
        s.total += start.elapsed();
        s.calls += 1;
        r
    }

    /// Manually attributes an already-measured duration to `stage`.
    #[inline]
    pub fn add(&mut self, stage: StageId, elapsed: Duration) {
        if self.enabled {
            let s = &mut self.stages[stage.0];
            s.total += elapsed;
            s.calls += 1;
        }
    }

    /// Total time attributed to `stage`.
    pub fn total(&self, stage: StageId) -> Duration {
        self.stages[stage.0].total
    }

    /// Call count for `stage`.
    pub fn calls(&self, stage: StageId) -> u64 {
        self.stages[stage.0].calls
    }

    /// `(name, total, calls)` for every registered stage, in
    /// registration order.
    pub fn report(&self) -> Vec<(&str, Duration, u64)> {
        self.stages
            .iter()
            .map(|s| (s.name.as_str(), s.total, s.calls))
            .collect()
    }

    /// A human-readable multi-line summary (empty string when nothing
    /// was timed).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in &self.stages {
            if s.calls == 0 {
                continue;
            }
            let per_call = s.total.as_nanos() as f64 / s.calls as f64;
            out.push_str(&format!(
                "  {:<12} {:>10.3} ms total  {:>10} calls  {:>8.1} ns/call\n",
                s.name,
                s.total.as_secs_f64() * 1e3,
                s.calls,
                per_call
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_clock_records_nothing() {
        let mut c = StageClock::new(false);
        let s = c.stage("classify");
        let v = c.time(s, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(c.calls(s), 0);
        assert_eq!(c.total(s), Duration::ZERO);
    }

    #[test]
    fn enabled_clock_accumulates() {
        let mut c = StageClock::new(true);
        let s = c.stage("rank");
        for _ in 0..3 {
            c.time(s, || std::hint::black_box(1u64 + 1));
        }
        assert_eq!(c.calls(s), 3);
        assert!(c.total(s) > Duration::ZERO);
        let report = c.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].0, "rank");
        assert!(c.summary().contains("rank"));
    }

    #[test]
    fn stage_names_deduplicate() {
        let mut c = StageClock::new(true);
        let a = c.stage("enqueue");
        let b = c.stage("enqueue");
        assert_eq!(a, b);
    }
}
