//! The [`Tracer`] trait and its two implementations: [`NoopTracer`]
//! (the default — compiles to nothing) and [`RingTracer`] (a bounded
//! in-memory ring buffer with JSONL export).

use crate::event::{Event, OwnedEvent};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A sink for datapath trace events.
///
/// Emission sites guard with [`Tracer::enabled`] before constructing
/// events whose arguments are non-trivial to compute, then call
/// [`Tracer::record`]. `NoopTracer` returns `false`/does nothing, so a
/// monomorphised or well-predicted dynamic call disappears from the hot
/// path.
pub trait Tracer {
    /// Whether events will actually be kept. Emission sites may skip
    /// event construction entirely when this is `false`.
    fn enabled(&self) -> bool;

    /// Records one event at simulated time `ts_ns`.
    fn record(&mut self, ts_ns: u64, event: &Event<'_>);
}

/// The default tracer: drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _ts_ns: u64, _event: &Event<'_>) {}
}

/// A bounded ring buffer of trace events.
///
/// Keeps the most recent `capacity` events; older ones are evicted
/// silently but counted in [`RingTracer::total_recorded`], so exports
/// note truncation honestly.
#[derive(Debug, Clone)]
pub struct RingTracer {
    buf: VecDeque<(u64, OwnedEvent)>,
    capacity: usize,
    total: u64,
}

impl RingTracer {
    /// Creates a tracer keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingTracer {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total: 0,
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Iterates over the buffered `(ts_ns, event)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, OwnedEvent)> {
        self.buf.iter()
    }

    /// Renders the buffer as JSONL, one event per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.buf.len() * 64);
        for (ts, ev) in &self.buf {
            ev.write_jsonl(*ts, &mut out);
        }
        out
    }

    /// Writes the buffer as JSONL to `path`.
    pub fn write_jsonl_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Drops all buffered events (the total-recorded count is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Tracer for RingTracer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ts_ns: u64, event: &Event<'_>) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((ts_ns, event.to_owned()));
        self.total += 1;
    }
}

/// A tracer shareable between the engine and the switch it drives
/// (both need `&mut` access during one simulation step).
pub type SharedTracer = Rc<RefCell<RingTracer>>;

/// Wraps a [`RingTracer`] for sharing across the engine/switch boundary.
pub fn shared(tracer: RingTracer) -> SharedTracer {
    Rc::new(RefCell::new(tracer))
}

impl<T: Tracer> Tracer for Rc<RefCell<T>> {
    #[inline]
    fn enabled(&self) -> bool {
        self.borrow().enabled()
    }

    #[inline]
    fn record(&mut self, ts_ns: u64, event: &Event<'_>) {
        self.borrow_mut().record(ts_ns, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let mut t = NoopTracer;
        assert!(!t.enabled());
        t.record(0, &Event::ControlTick { tick: 0 });
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_total() {
        let mut t = RingTracer::new(3);
        for tick in 0..5u64 {
            t.record(tick * 10, &Event::ControlTick { tick });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_recorded(), 5);
        let ticks: Vec<u64> = t
            .iter()
            .map(|(_, ev)| match ev {
                OwnedEvent::ControlTick { tick } => *tick,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ticks, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_export_has_one_line_per_event() {
        let mut t = RingTracer::new(16);
        t.record(1, &Event::ControlTick { tick: 1 });
        t.record(2, &Event::Depart { class: 0, size: 64 });
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn shared_tracer_records_through_clones() {
        let t = shared(RingTracer::new(8));
        let mut a = t.clone();
        let mut b = t.clone();
        a.record(1, &Event::ControlTick { tick: 1 });
        b.record(2, &Event::ControlTick { tick: 2 });
        assert_eq!(t.borrow().len(), 2);
        assert!(t.enabled());
    }
}
