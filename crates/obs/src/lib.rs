//! # accturbo-obs
//!
//! The in-tree observability core: structured event tracing, a metrics
//! registry, and wall-clock span timing for the datapath, clustering and
//! control plane. Dependency-free by construction (the build environment
//! has no crates.io access) and dependency-*root* by design: `netsim`,
//! `clustering`, `sched`, `acc` and `core` all thread [`Tracer`] hooks,
//! so this crate must sit below all of them in the workspace DAG.
//! Downstream consumers use it as `accturbo_telemetry::obs`, which
//! re-exports this crate wholesale.
//!
//! Three pillars:
//!
//! * [`event`] / [`tracer`] — a structured record of datapath decisions
//!   (enqueue/drop with queue id, cluster seed/assign/merge, priority
//!   remap, control tick, pushback rate-limit change), emitted through
//!   the [`Tracer`] trait. [`NoopTracer`] is the default and compiles to
//!   nothing on the hot path; [`RingTracer`] buffers the last N events
//!   and exports JSONL.
//! * [`metrics`] — named counters, gauges, and fixed-bucket histograms,
//!   snapshotted per stats interval into JSONL lines.
//! * [`span`] — wall-clock self-profiling of pipeline stages
//!   (classify/rank/enqueue) using `std::time::Instant`.
//!
//! Timestamps are raw `u64` simulated nanoseconds rather than `SimTime`
//! so this crate stays below `netsim` in the dependency graph.

#![deny(missing_docs)]

pub mod event;
pub mod metrics;
pub mod span;
pub mod tracer;

pub use event::{Event, OwnedEvent};
pub use metrics::{CounterId, GaugeId, Histogram, HistogramId, MetricsHandle, Registry};
pub use span::{StageClock, StageId};
pub use tracer::{shared, NoopTracer, RingTracer, SharedTracer, Tracer};

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as JSON (finite → shortest form; non-finite → null,
/// since JSON has no Infinity/NaN literals).
pub(crate) fn json_f64(x: f64, out: &mut String) {
    use std::fmt::Write as _;
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}
