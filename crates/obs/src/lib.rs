//! # accturbo-obs
//!
//! The in-tree observability core: structured event tracing, a metrics
//! registry, and wall-clock span timing for the datapath, clustering and
//! control plane. Dependency-free by construction (the build environment
//! has no crates.io access) and dependency-*root* by design: `netsim`,
//! `clustering`, `sched`, `acc` and `core` all thread [`Tracer`] hooks,
//! so this crate must sit below all of them in the workspace DAG.
//! Downstream consumers use it as `accturbo_telemetry::obs`, which
//! re-exports this crate wholesale.
//!
//! Three pillars:
//!
//! * [`event`] / [`tracer`] — a structured record of datapath decisions
//!   (enqueue/drop with queue id, cluster seed/assign/merge, priority
//!   remap, control tick, pushback rate-limit change), emitted through
//!   the [`Tracer`] trait. [`NoopTracer`] is the default and compiles to
//!   nothing on the hot path; [`RingTracer`] buffers the last N events
//!   and exports JSONL.
//! * [`metrics`] — named counters, gauges, and fixed-bucket histograms,
//!   snapshotted per stats interval into JSONL lines.
//! * [`span`] — wall-clock self-profiling of pipeline stages
//!   (classify/rank/enqueue) using `std::time::Instant`.
//!
//! Plus the streaming layer for runs too long to buffer:
//!
//! * [`sink`] — where telemetry *goes* (JSONL file, bounded ring,
//!   fan-out tee, CSV/JSONL dataset exporter), flushed per period.
//! * [`stream`] — the per-period aggregation stage ([`Aggregator`]) and
//!   the per-run bundle ([`Telemetry`]) the engine drives.
//! * [`sample`] — deterministic reservoir sampling of per-flow records
//!   ([`FlowSampler`]), exported as labeled datasets.
//! * [`flight`] — the [`FlightRecorder`]: a silent ring that dumps a
//!   window of events around faults, degradation, or pulse onsets.
//! * [`json`] — the shared JSON escaping/formatting helpers every
//!   producer in the workspace uses.
//!
//! Timestamps are raw `u64` simulated nanoseconds rather than `SimTime`
//! so this crate stays below `netsim` in the dependency graph.

#![deny(missing_docs)]

pub mod event;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod sample;
pub mod sink;
pub mod span;
pub mod stream;
pub mod tracer;

pub use event::{Event, OwnedEvent};
pub use flight::{shared_recorder, FlightRecorder, SharedFlightRecorder};
pub use json::{escape_json, json_f64, raw_field};
pub use metrics::{CounterId, GaugeId, Histogram, HistogramId, MetricsHandle, Registry};
pub use sample::{FlowKey, FlowRecord, FlowSampler};
pub use sink::{DatasetFormat, DatasetSink, JsonlSink, RingSink, Sink, TeeSink};
pub use span::{StageClock, StageId};
pub use stream::{Aggregator, Telemetry};
pub use tracer::{shared, NoopTracer, RingTracer, SharedTracer, Tracer};
