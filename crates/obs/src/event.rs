//! The structured trace-event vocabulary.
//!
//! Every datapath decision the ACC-Turbo pipeline makes maps to one
//! variant here. [`Event`] borrows (so hot-path emission never
//! allocates); [`OwnedEvent`] is the buffered form kept by ring tracers.
//!
//! The JSONL schema is one object per line:
//! `{"ts":<ns>,"ev":"<kind>", ...variant fields...}` — documented per
//! variant below and in DESIGN.md §"Observability".

use crate::json::{dotted, escape_json, raw_field};
use std::fmt::Write as _;

/// A borrowed trace event, cheap to construct on the hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event<'a> {
    /// A packet was accepted into priority queue `queue`
    /// (`{"queue":q,"cluster":c|null,"class":k,"size":b}`).
    Enqueue {
        /// Destination priority queue.
        queue: usize,
        /// The cluster that routed the packet there, when classified.
        cluster: Option<usize>,
        /// Ground-truth traffic class.
        class: u16,
        /// Packet size in bytes.
        size: u32,
    },
    /// A packet was dropped
    /// (`{"queue":q|null,"class":k,"size":b,"reason":"..."}`).
    Drop {
        /// The queue that rejected it, when known at the emission site.
        queue: Option<usize>,
        /// Ground-truth traffic class.
        class: u16,
        /// Packet size in bytes.
        size: u32,
        /// Drop reason (tail drop, RED early, policer, ...).
        reason: &'static str,
    },
    /// A packet finished transmission on the output link
    /// (`{"class":k,"size":b}`).
    Depart {
        /// Ground-truth traffic class.
        class: u16,
        /// Packet size in bytes.
        size: u32,
    },
    /// A cluster slot was (re-)seeded at a packet
    /// (`{"cluster":c}`).
    ClusterSeed {
        /// The seeded slot.
        cluster: usize,
    },
    /// A packet was assigned to a cluster
    /// (`{"cluster":c,"distance":d,"expanded":bool}`).
    ClusterAssign {
        /// The chosen cluster.
        cluster: usize,
        /// Distance from the packet to the cluster before admission.
        distance: f64,
        /// Whether the cluster grew to cover the packet.
        expanded: bool,
    },
    /// Two clusters were merged to free a slot
    /// (`{"from":a,"into":b}`).
    ClusterMerge {
        /// The slot that was absorbed (and re-seeded).
        from: usize,
        /// The surviving slot.
        into: usize,
    },
    /// The control plane deployed a new cluster → queue mapping
    /// (`{"mapping":[q0,q1,...]}`).
    PriorityRemap {
        /// `mapping[c]` is the queue now serving cluster `c`.
        mapping: &'a [usize],
    },
    /// A control-plane tick ran (`{"tick":n}`).
    ControlTick {
        /// Monotone tick counter.
        tick: u64,
    },
    /// A pushback rate limit was installed or refreshed on an upstream
    /// (`{"upstream":u,"prefix":"a.b.c.d/len","bps":r}`).
    PushbackLimit {
        /// Index of the upstream switch the limit was pushed to.
        upstream: usize,
        /// The policed destination prefix, as a `u32` address.
        prefix: u32,
        /// Prefix length in bits.
        prefix_len: u8,
        /// The allocated rate, bits per second.
        bps: u64,
    },
    /// A packet crossed an inter-switch link in a multi-node topology
    /// (`{"node":n,"class":k,"size":b}`; `node` is the receiving switch).
    Hop {
        /// The switch the packet was delivered to.
        node: usize,
        /// Ground-truth traffic class.
        class: u16,
        /// Packet size in bytes.
        size: u32,
    },
    /// The engine crossed a stats-interval boundary (`{"bucket":n}`).
    StatsTick {
        /// Index of the bucket that just began.
        bucket: u64,
    },
    /// An ad-hoc named scalar (`{"name":"...","value":v}`).
    Custom {
        /// Event name.
        name: &'static str,
        /// Scalar payload.
        value: f64,
    },
    /// One experiment-runner job span, recorded post-hoc by `xp` when a
    /// parallel run is traced (`{"job":"...","seed":s,"worker":w,
    /// "elapsed_ns":n}`; the line's `ts` is the job's start, measured
    /// from the pool's launch).
    JobSpan {
        /// The job label (the figure's registry name).
        job: &'a str,
        /// The seed the figure ran at.
        seed: u64,
        /// The worker thread (0-based) that ran the job.
        worker: usize,
        /// Wall-clock nanoseconds the job took.
        elapsed_ns: u64,
    },
    /// A fault schedule injected a fault
    /// (`{"kind":"...","value":v}`; kinds: `ctrl_drop`, `ctrl_delay`,
    /// `stale_snapshot`, `pkt_drop`, `pkt_reorder`, `link_flap`).
    FaultInjected {
        /// Fault kind tag.
        kind: &'static str,
        /// Kind-specific magnitude (delay/jitter/window ns, or 0).
        value: f64,
    },
    /// The controller's graceful-degradation policy acted on a missed or
    /// stale control tick (`{"action":"...","missed":n}`; actions:
    /// `keep_last_good`, `fallback_fifo`, `fallback_strict`, `recover`).
    Degrade {
        /// The degradation decision taken.
        action: &'static str,
        /// Consecutive control ticks missed when the decision was made.
        missed: u64,
    },
}

/// The buffered (owning) form of [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedEvent {
    /// See [`Event::Enqueue`].
    Enqueue {
        /// Destination priority queue.
        queue: usize,
        /// The classifying cluster, when known.
        cluster: Option<usize>,
        /// Ground-truth traffic class.
        class: u16,
        /// Packet size in bytes.
        size: u32,
    },
    /// See [`Event::Drop`].
    Drop {
        /// The rejecting queue, when known.
        queue: Option<usize>,
        /// Ground-truth traffic class.
        class: u16,
        /// Packet size in bytes.
        size: u32,
        /// Drop reason.
        reason: String,
    },
    /// See [`Event::Depart`].
    Depart {
        /// Ground-truth traffic class.
        class: u16,
        /// Packet size in bytes.
        size: u32,
    },
    /// See [`Event::ClusterSeed`].
    ClusterSeed {
        /// The seeded slot.
        cluster: usize,
    },
    /// See [`Event::ClusterAssign`].
    ClusterAssign {
        /// The chosen cluster.
        cluster: usize,
        /// Pre-admission distance.
        distance: f64,
        /// Whether the cluster grew.
        expanded: bool,
    },
    /// See [`Event::ClusterMerge`].
    ClusterMerge {
        /// The absorbed slot.
        from: usize,
        /// The surviving slot.
        into: usize,
    },
    /// See [`Event::PriorityRemap`].
    PriorityRemap {
        /// The deployed cluster → queue mapping.
        mapping: Vec<usize>,
    },
    /// See [`Event::ControlTick`].
    ControlTick {
        /// Monotone tick counter.
        tick: u64,
    },
    /// See [`Event::PushbackLimit`].
    PushbackLimit {
        /// Upstream index.
        upstream: usize,
        /// Policed prefix address.
        prefix: u32,
        /// Prefix length in bits.
        prefix_len: u8,
        /// Allocated rate, bits per second.
        bps: u64,
    },
    /// See [`Event::Hop`].
    Hop {
        /// The switch the packet was delivered to.
        node: usize,
        /// Ground-truth traffic class.
        class: u16,
        /// Packet size in bytes.
        size: u32,
    },
    /// See [`Event::StatsTick`].
    StatsTick {
        /// Index of the bucket that just began.
        bucket: u64,
    },
    /// See [`Event::Custom`].
    Custom {
        /// Event name.
        name: String,
        /// Scalar payload.
        value: f64,
    },
    /// See [`Event::JobSpan`].
    JobSpan {
        /// The job label (the figure's registry name).
        job: String,
        /// The seed the figure ran at.
        seed: u64,
        /// The worker thread that ran the job.
        worker: usize,
        /// Wall-clock nanoseconds the job took.
        elapsed_ns: u64,
    },
    /// See [`Event::FaultInjected`].
    FaultInjected {
        /// Fault kind tag.
        kind: String,
        /// Kind-specific magnitude.
        value: f64,
    },
    /// See [`Event::Degrade`].
    Degrade {
        /// The degradation decision taken.
        action: String,
        /// Consecutive control ticks missed at decision time.
        missed: u64,
    },
}

impl Event<'_> {
    /// The event's kind tag, as written in the JSONL `"ev"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Enqueue { .. } => "enqueue",
            Event::Drop { .. } => "drop",
            Event::Depart { .. } => "depart",
            Event::ClusterSeed { .. } => "cluster_seed",
            Event::ClusterAssign { .. } => "cluster_assign",
            Event::ClusterMerge { .. } => "cluster_merge",
            Event::PriorityRemap { .. } => "priority_remap",
            Event::ControlTick { .. } => "control_tick",
            Event::PushbackLimit { .. } => "pushback_limit",
            Event::Hop { .. } => "hop",
            Event::StatsTick { .. } => "stats_tick",
            Event::Custom { .. } => "custom",
            Event::JobSpan { .. } => "job_span",
            Event::FaultInjected { .. } => "fault",
            Event::Degrade { .. } => "degrade",
        }
    }

    /// Converts to the owning form (allocates only for `PriorityRemap`,
    /// `Drop` and `Custom`).
    pub fn to_owned(&self) -> OwnedEvent {
        match *self {
            Event::Enqueue {
                queue,
                cluster,
                class,
                size,
            } => OwnedEvent::Enqueue {
                queue,
                cluster,
                class,
                size,
            },
            Event::Drop {
                queue,
                class,
                size,
                reason,
            } => OwnedEvent::Drop {
                queue,
                class,
                size,
                reason: reason.to_string(),
            },
            Event::Depart { class, size } => OwnedEvent::Depart { class, size },
            Event::ClusterSeed { cluster } => OwnedEvent::ClusterSeed { cluster },
            Event::ClusterAssign {
                cluster,
                distance,
                expanded,
            } => OwnedEvent::ClusterAssign {
                cluster,
                distance,
                expanded,
            },
            Event::ClusterMerge { from, into } => OwnedEvent::ClusterMerge { from, into },
            Event::PriorityRemap { mapping } => OwnedEvent::PriorityRemap {
                mapping: mapping.to_vec(),
            },
            Event::ControlTick { tick } => OwnedEvent::ControlTick { tick },
            Event::PushbackLimit {
                upstream,
                prefix,
                prefix_len,
                bps,
            } => OwnedEvent::PushbackLimit {
                upstream,
                prefix,
                prefix_len,
                bps,
            },
            Event::Hop { node, class, size } => OwnedEvent::Hop { node, class, size },
            Event::StatsTick { bucket } => OwnedEvent::StatsTick { bucket },
            Event::Custom { name, value } => OwnedEvent::Custom {
                name: name.to_string(),
                value,
            },
            Event::JobSpan {
                job,
                seed,
                worker,
                elapsed_ns,
            } => OwnedEvent::JobSpan {
                job: job.to_string(),
                seed,
                worker,
                elapsed_ns,
            },
            Event::FaultInjected { kind, value } => OwnedEvent::FaultInjected {
                kind: kind.to_string(),
                value,
            },
            Event::Degrade { action, missed } => OwnedEvent::Degrade {
                action: action.to_string(),
                missed,
            },
        }
    }
}

impl OwnedEvent {
    /// The event's kind tag, as written in the JSONL `"ev"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            OwnedEvent::Enqueue { .. } => "enqueue",
            OwnedEvent::Drop { .. } => "drop",
            OwnedEvent::Depart { .. } => "depart",
            OwnedEvent::ClusterSeed { .. } => "cluster_seed",
            OwnedEvent::ClusterAssign { .. } => "cluster_assign",
            OwnedEvent::ClusterMerge { .. } => "cluster_merge",
            OwnedEvent::PriorityRemap { .. } => "priority_remap",
            OwnedEvent::ControlTick { .. } => "control_tick",
            OwnedEvent::PushbackLimit { .. } => "pushback_limit",
            OwnedEvent::Hop { .. } => "hop",
            OwnedEvent::StatsTick { .. } => "stats_tick",
            OwnedEvent::Custom { .. } => "custom",
            OwnedEvent::JobSpan { .. } => "job_span",
            OwnedEvent::FaultInjected { .. } => "fault",
            OwnedEvent::Degrade { .. } => "degrade",
        }
    }

    /// Appends the event as one JSONL line (with trailing newline).
    pub fn write_jsonl(&self, ts_ns: u64, out: &mut String) {
        let _ = write!(out, "{{\"ts\":{ts_ns},\"ev\":\"{}\"", self.kind());
        match self {
            OwnedEvent::Enqueue {
                queue,
                cluster,
                class,
                size,
            } => {
                let _ = write!(out, ",\"queue\":{queue},\"cluster\":");
                match cluster {
                    Some(c) => {
                        let _ = write!(out, "{c}");
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"class\":{class},\"size\":{size}");
            }
            OwnedEvent::Drop {
                queue,
                class,
                size,
                reason,
            } => {
                out.push_str(",\"queue\":");
                match queue {
                    Some(q) => {
                        let _ = write!(out, "{q}");
                    }
                    None => out.push_str("null"),
                }
                let _ = write!(out, ",\"class\":{class},\"size\":{size},\"reason\":\"");
                escape_json(reason, out);
                out.push('"');
            }
            OwnedEvent::Depart { class, size } => {
                let _ = write!(out, ",\"class\":{class},\"size\":{size}");
            }
            OwnedEvent::ClusterSeed { cluster } => {
                let _ = write!(out, ",\"cluster\":{cluster}");
            }
            OwnedEvent::ClusterAssign {
                cluster,
                distance,
                expanded,
            } => {
                let _ = write!(out, ",\"cluster\":{cluster},\"distance\":");
                crate::json_f64(*distance, out);
                let _ = write!(out, ",\"expanded\":{expanded}");
            }
            OwnedEvent::ClusterMerge { from, into } => {
                let _ = write!(out, ",\"from\":{from},\"into\":{into}");
            }
            OwnedEvent::PriorityRemap { mapping } => {
                out.push_str(",\"mapping\":[");
                for (i, q) in mapping.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{q}");
                }
                out.push(']');
            }
            OwnedEvent::ControlTick { tick } => {
                let _ = write!(out, ",\"tick\":{tick}");
            }
            OwnedEvent::PushbackLimit {
                upstream,
                prefix,
                prefix_len,
                bps,
            } => {
                let _ = write!(
                    out,
                    ",\"upstream\":{upstream},\"prefix\":\"{}/{prefix_len}\",\"bps\":{bps}",
                    dotted(*prefix)
                );
            }
            OwnedEvent::Hop { node, class, size } => {
                let _ = write!(out, ",\"node\":{node},\"class\":{class},\"size\":{size}");
            }
            OwnedEvent::StatsTick { bucket } => {
                let _ = write!(out, ",\"bucket\":{bucket}");
            }
            OwnedEvent::Custom { name, value } => {
                out.push_str(",\"name\":\"");
                escape_json(name, out);
                out.push_str("\",\"value\":");
                crate::json_f64(*value, out);
            }
            OwnedEvent::JobSpan {
                job,
                seed,
                worker,
                elapsed_ns,
            } => {
                out.push_str(",\"job\":\"");
                escape_json(job, out);
                let _ = write!(
                    out,
                    "\",\"seed\":{seed},\"worker\":{worker},\"elapsed_ns\":{elapsed_ns}"
                );
            }
            OwnedEvent::FaultInjected { kind, value } => {
                out.push_str(",\"kind\":\"");
                escape_json(kind, out);
                out.push_str("\",\"value\":");
                crate::json_f64(*value, out);
            }
            OwnedEvent::Degrade { action, missed } => {
                out.push_str(",\"action\":\"");
                escape_json(action, out);
                let _ = write!(out, "\",\"missed\":{missed}");
            }
        }
        out.push_str("}\n");
    }

    /// A one-line human-readable rendering (the trace pretty-printer).
    pub fn pretty(&self, ts_ns: u64) -> String {
        let t = ts_ns as f64 / 1e9;
        match self {
            OwnedEvent::Enqueue {
                queue,
                cluster,
                class,
                size,
            } => match cluster {
                Some(c) => format!(
                    "{t:>12.6}s  ENQUEUE   q{queue} <- cluster {c} (class {class}, {size} B)"
                ),
                None => format!("{t:>12.6}s  ENQUEUE   q{queue} (class {class}, {size} B)"),
            },
            OwnedEvent::Drop {
                queue,
                class,
                size,
                reason,
            } => match queue {
                Some(q) => {
                    format!("{t:>12.6}s  DROP      q{q} (class {class}, {size} B, {reason})")
                }
                None => format!("{t:>12.6}s  DROP      (class {class}, {size} B, {reason})"),
            },
            OwnedEvent::Depart { class, size } => {
                format!("{t:>12.6}s  DEPART    (class {class}, {size} B)")
            }
            OwnedEvent::ClusterSeed { cluster } => {
                format!("{t:>12.6}s  SEED      cluster {cluster}")
            }
            OwnedEvent::ClusterAssign {
                cluster,
                distance,
                expanded,
            } => format!(
                "{t:>12.6}s  ASSIGN    cluster {cluster} (distance {distance:.1}{})",
                if *expanded { ", expanded" } else { "" }
            ),
            OwnedEvent::ClusterMerge { from, into } => {
                format!("{t:>12.6}s  MERGE     cluster {from} -> {into}")
            }
            OwnedEvent::PriorityRemap { mapping } => {
                format!("{t:>12.6}s  REMAP     cluster->queue {mapping:?}")
            }
            OwnedEvent::ControlTick { tick } => {
                format!("{t:>12.6}s  TICK      #{tick}")
            }
            OwnedEvent::PushbackLimit {
                upstream,
                prefix,
                prefix_len,
                bps,
            } => format!(
                "{t:>12.6}s  PUSHBACK  upstream {upstream}: {}/{prefix_len} limited to {bps} bps",
                dotted(*prefix)
            ),
            OwnedEvent::Hop { node, class, size } => {
                format!("{t:>12.6}s  HOP       -> node {node} class {class} size {size}")
            }
            OwnedEvent::StatsTick { bucket } => {
                format!("{t:>12.6}s  STATS     bucket {bucket}")
            }
            OwnedEvent::Custom { name, value } => {
                format!("{t:>12.6}s  CUSTOM    {name} = {value}")
            }
            OwnedEvent::JobSpan {
                job,
                seed,
                worker,
                elapsed_ns,
            } => format!(
                "{t:>12.6}s  JOB       {job} (seed {seed}) on worker {worker}: {:.3}s",
                *elapsed_ns as f64 / 1e9
            ),
            OwnedEvent::FaultInjected { kind, value } => {
                format!("{t:>12.6}s  FAULT     {kind} (value {value})")
            }
            OwnedEvent::Degrade { action, missed } => {
                format!("{t:>12.6}s  DEGRADE   {action} ({missed} ticks missed)")
            }
        }
    }

    /// Parses one JSONL line produced by
    /// [`write_jsonl`](OwnedEvent::write_jsonl) back into `(ts_ns, event)`.
    ///
    /// This is a schema-specific reader for the tracer's own flat output,
    /// not a general JSON parser; unknown kinds and malformed lines yield
    /// `None`.
    pub fn parse_jsonl_line(line: &str) -> Option<(u64, OwnedEvent)> {
        let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let ts: u64 = raw_field(body, "ts")?.parse().ok()?;
        let num = |key: &str| raw_field(body, key)?.parse::<u64>().ok();
        let opt = |key: &str| -> Option<Option<usize>> {
            let raw = raw_field(body, key)?;
            if raw == "null" {
                Some(None)
            } else {
                raw.parse().ok().map(Some)
            }
        };
        let string = |key: &str| Some(raw_field(body, key)?.trim_matches('"').to_string());
        let ev = match raw_field(body, "ev")?.trim_matches('"') {
            "enqueue" => OwnedEvent::Enqueue {
                queue: num("queue")? as usize,
                cluster: opt("cluster")?,
                class: num("class")? as u16,
                size: num("size")? as u32,
            },
            "drop" => OwnedEvent::Drop {
                queue: opt("queue")?,
                class: num("class")? as u16,
                size: num("size")? as u32,
                reason: string("reason")?,
            },
            "depart" => OwnedEvent::Depart {
                class: num("class")? as u16,
                size: num("size")? as u32,
            },
            "cluster_seed" => OwnedEvent::ClusterSeed {
                cluster: num("cluster")? as usize,
            },
            "cluster_assign" => OwnedEvent::ClusterAssign {
                cluster: num("cluster")? as usize,
                distance: raw_field(body, "distance")?.parse().ok()?,
                expanded: raw_field(body, "expanded")? == "true",
            },
            "cluster_merge" => OwnedEvent::ClusterMerge {
                from: num("from")? as usize,
                into: num("into")? as usize,
            },
            "priority_remap" => {
                let raw = raw_field(body, "mapping")?;
                let inner = raw.strip_prefix('[')?.strip_suffix(']')?;
                let mapping = if inner.is_empty() {
                    Vec::new()
                } else {
                    inner
                        .split(',')
                        .map(|v| v.trim().parse::<usize>())
                        .collect::<Result<Vec<_>, _>>()
                        .ok()?
                };
                OwnedEvent::PriorityRemap { mapping }
            }
            "control_tick" => OwnedEvent::ControlTick { tick: num("tick")? },
            "pushback_limit" => {
                let raw = string("prefix")?;
                let (addr, len) = raw.split_once('/')?;
                let mut prefix = 0u32;
                for octet in addr.split('.') {
                    prefix = (prefix << 8) | octet.parse::<u32>().ok()?;
                }
                OwnedEvent::PushbackLimit {
                    upstream: num("upstream")? as usize,
                    prefix,
                    prefix_len: len.parse().ok()?,
                    bps: num("bps")?,
                }
            }
            "hop" => OwnedEvent::Hop {
                node: num("node")? as usize,
                class: num("class")? as u16,
                size: num("size")? as u32,
            },
            "stats_tick" => OwnedEvent::StatsTick {
                bucket: num("bucket")?,
            },
            "custom" => OwnedEvent::Custom {
                name: string("name")?,
                value: raw_field(body, "value")?.parse().ok()?,
            },
            "job_span" => OwnedEvent::JobSpan {
                job: string("job")?,
                seed: num("seed")?,
                worker: num("worker")? as usize,
                elapsed_ns: num("elapsed_ns")?,
            },
            "fault" => OwnedEvent::FaultInjected {
                kind: string("kind")?,
                value: raw_field(body, "value")?.parse().ok()?,
            },
            "degrade" => OwnedEvent::Degrade {
                action: string("action")?,
                missed: num("missed")?,
            },
            _ => return None,
        };
        Some((ts, ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_kind() {
        let events = [
            Event::Enqueue {
                queue: 2,
                cluster: Some(7),
                class: 1,
                size: 1500,
            },
            Event::Enqueue {
                queue: 0,
                cluster: None,
                class: 0,
                size: 64,
            },
            Event::Drop {
                queue: None,
                class: 3,
                size: 900,
                reason: "red_early",
            },
            Event::Depart { class: 2, size: 40 },
            Event::ClusterSeed { cluster: 4 },
            Event::ClusterAssign {
                cluster: 1,
                distance: 12.5,
                expanded: true,
            },
            Event::ClusterMerge { from: 3, into: 0 },
            Event::PriorityRemap {
                mapping: &[0, 3, 1],
            },
            Event::ControlTick { tick: 9 },
            Event::PushbackLimit {
                upstream: 1,
                prefix: 0xC612_0000,
                prefix_len: 24,
                bps: 1_000_000,
            },
            Event::Hop {
                node: 2,
                class: 1,
                size: 1500,
            },
            Event::StatsTick { bucket: 5 },
            Event::Custom {
                name: "x",
                value: 1.5,
            },
            Event::JobSpan {
                job: "fig2",
                seed: 2022,
                worker: 3,
                elapsed_ns: 1_234_567,
            },
            Event::FaultInjected {
                kind: "ctrl_delay",
                value: 2_500_000.0,
            },
            Event::Degrade {
                action: "fallback_fifo",
                missed: 4,
            },
        ];
        for (i, ev) in events.iter().enumerate() {
            let owned = ev.to_owned();
            let mut line = String::new();
            owned.write_jsonl(i as u64 * 10, &mut line);
            let (ts, parsed) =
                OwnedEvent::parse_jsonl_line(&line).unwrap_or_else(|| panic!("line {i}: {line}"));
            assert_eq!(ts, i as u64 * 10);
            assert_eq!(parsed, owned, "event {i}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(OwnedEvent::parse_jsonl_line("").is_none());
        assert!(OwnedEvent::parse_jsonl_line("not json").is_none());
        assert!(OwnedEvent::parse_jsonl_line("{\"ts\":1,\"ev\":\"nope\"}").is_none());
        assert!(OwnedEvent::parse_jsonl_line("{\"ts\":1,\"ev\":\"enqueue\"}").is_none());
    }

    #[test]
    fn jsonl_schema_round_trip_shape() {
        let mut out = String::new();
        Event::Enqueue {
            queue: 2,
            cluster: Some(7),
            class: 1,
            size: 1500,
        }
        .to_owned()
        .write_jsonl(1_500_000, &mut out);
        assert_eq!(
            out,
            "{\"ts\":1500000,\"ev\":\"enqueue\",\"queue\":2,\"cluster\":7,\"class\":1,\"size\":1500}\n"
        );

        out.clear();
        Event::Drop {
            queue: None,
            class: 0,
            size: 64,
            reason: "tail_drop",
        }
        .to_owned()
        .write_jsonl(0, &mut out);
        assert_eq!(
            out,
            "{\"ts\":0,\"ev\":\"drop\",\"queue\":null,\"class\":0,\"size\":64,\"reason\":\"tail_drop\"}\n"
        );

        out.clear();
        Event::PriorityRemap {
            mapping: &[0, 3, 1],
        }
        .to_owned()
        .write_jsonl(42, &mut out);
        assert_eq!(
            out,
            "{\"ts\":42,\"ev\":\"priority_remap\",\"mapping\":[0,3,1]}\n"
        );
    }

    #[test]
    fn pushback_prefix_renders_dotted() {
        let mut out = String::new();
        Event::PushbackLimit {
            upstream: 1,
            prefix: u32::from_be_bytes([198, 18, 5, 0]),
            prefix_len: 24,
            bps: 1_000_000,
        }
        .to_owned()
        .write_jsonl(9, &mut out);
        assert!(out.contains("\"prefix\":\"198.18.5.0/24\""), "{out}");
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Event::ControlTick { tick: 1 }.kind(), "control_tick");
        assert_eq!(
            Event::ControlTick { tick: 1 }.to_owned().kind(),
            "control_tick"
        );
        let hop = Event::Hop {
            node: 3,
            class: 1,
            size: 64,
        };
        assert_eq!(hop.kind(), "hop");
        assert_eq!(hop.to_owned().kind(), "hop");
    }

    #[test]
    fn pretty_lines_are_single_line() {
        let ev = Event::ClusterMerge { from: 1, into: 0 }.to_owned();
        let line = ev.pretty(2_000_000_000);
        assert!(line.contains("MERGE"));
        assert!(!line.contains('\n'));
    }
}
