//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with JSONL snapshots.
//!
//! Hot paths register once (getting a typed id handle) and then update
//! through the id — an O(1) vector index, no string hashing per packet.
//! The engine snapshots the registry at every stats interval; snapshots
//! accumulate in the registry and export as JSONL, one metric per line:
//!
//! ```json
//! {"ts":1000000,"metric":"pkts_enqueued","type":"counter","value":412}
//! {"ts":1000000,"metric":"queue_depth_pkts","type":"gauge","value":7}
//! {"ts":1000000,"metric":"cluster_distance","type":"histogram",
//!  "count":412,"sum":8123.5,"buckets":[["1",10],["8",250],["+inf",2]]}
//! ```

use crate::{escape_json, json_f64};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram: counts of observations falling at or below
/// each upper bound, plus an implicit overflow bucket, with running
/// count and sum for mean computation.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds. An
    /// overflow bucket is appended automatically.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observed values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The configured upper bounds (excludes the implicit overflow).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    fn write_json_fields(&self, out: &mut String) {
        let _ = write!(out, ",\"count\":{},\"sum\":", self.count);
        json_f64(self.sum, out);
        out.push_str(",\"buckets\":[");
        for (i, &c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("[\"");
            if i < self.bounds.len() {
                json_f64(self.bounds[i], out);
            } else {
                out.push_str("+inf");
            }
            let _ = write!(out, "\",{c}]");
        }
        out.push(']');
    }
}

/// The metrics registry.
///
/// Register each metric once (typically at construction) to obtain an
/// id handle, then update through the handle on the hot path. Call
/// [`Registry::snapshot`] at stats-interval boundaries; the accumulated
/// snapshots export via [`Registry::to_jsonl`].
#[derive(Debug, Default)]
pub struct Registry {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<f64>,
    histogram_names: Vec<String>,
    histograms: Vec<Histogram>,
    snapshots: String,
    snapshot_count: u64,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-resolves) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or re-resolves) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name.to_string());
        self.gauges.push(0.0);
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram by name with the given bucket upper bounds.
    /// Re-registration under the same name returns the existing handle
    /// (the original bounds win).
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.histogram_names.iter().position(|n| n == name) {
            return HistogramId(i);
        }
        self.histogram_names.push(name.to_string());
        self.histograms.push(Histogram::new(bounds));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Reads a counter's current value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0] = value;
    }

    /// Reads a gauge's current value.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0]
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].observe(value);
    }

    /// Reads a histogram.
    pub fn histogram_value(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0]
    }

    /// Number of snapshots taken so far.
    pub fn snapshot_count(&self) -> u64 {
        self.snapshot_count
    }

    /// Iterates `(name, value)` over all registered counters, in
    /// registration order. Used by the streaming aggregation stage.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .map(String::as_str)
            .zip(self.counters.iter().copied())
    }

    /// Iterates `(name, value)` over all registered gauges, in
    /// registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_names
            .iter()
            .map(String::as_str)
            .zip(self.gauges.iter().copied())
    }

    /// Iterates `(name, histogram)` over all registered histograms, in
    /// registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histogram_names
            .iter()
            .map(String::as_str)
            .zip(self.histograms.iter())
    }

    /// Appends one JSONL line per registered metric at time `ts_ns`.
    /// Counters and histograms are cumulative; gauges are instantaneous.
    pub fn snapshot(&mut self, ts_ns: u64) {
        let mut out = std::mem::take(&mut self.snapshots);
        for (name, value) in self.counter_names.iter().zip(&self.counters) {
            let _ = write!(out, "{{\"ts\":{ts_ns},\"metric\":\"");
            escape_json(name, &mut out);
            let _ = writeln!(out, "\",\"type\":\"counter\",\"value\":{value}}}");
        }
        for (name, value) in self.gauge_names.iter().zip(&self.gauges) {
            let _ = write!(out, "{{\"ts\":{ts_ns},\"metric\":\"");
            escape_json(name, &mut out);
            out.push_str("\",\"type\":\"gauge\",\"value\":");
            json_f64(*value, &mut out);
            out.push_str("}\n");
        }
        for (name, h) in self.histogram_names.iter().zip(&self.histograms) {
            let _ = write!(out, "{{\"ts\":{ts_ns},\"metric\":\"");
            escape_json(name, &mut out);
            out.push_str("\",\"type\":\"histogram\"");
            h.write_json_fields(&mut out);
            out.push_str("}\n");
        }
        self.snapshots = out;
        self.snapshot_count += 1;
    }

    /// All snapshots taken so far, as JSONL.
    pub fn to_jsonl(&self) -> &str {
        &self.snapshots
    }

    /// Writes all snapshots to `path` as JSONL.
    pub fn write_jsonl_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, &self.snapshots)
    }
}

/// A registry shareable between the engine and the switch it drives.
pub type MetricsHandle = Rc<RefCell<Registry>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let mut r = Registry::new();
        let c = r.counter("pkts");
        let g = r.gauge("depth");
        r.inc(c, 3);
        r.inc(c, 2);
        r.set(g, 7.5);
        assert_eq!(r.counter_value(c), 5);
        assert_eq!(r.gauge_value(g), 7.5);
        // Re-registration resolves to the same handle.
        assert_eq!(r.counter("pkts"), c);
        assert_eq!(r.gauge("depth"), g);
    }

    #[test]
    fn histogram_buckets_by_upper_bound_inclusive() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 0 (le semantics)
        h.observe(5.0); // bucket 1
        h.observe(100.0); // bucket 2
        h.observe(1e6); // overflow
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 1_000_106.5).abs() < 1e-9);
        assert!((h.mean().unwrap() - 200_021.3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10.0, 1.0]);
    }

    #[test]
    fn snapshot_emits_one_line_per_metric() {
        let mut r = Registry::new();
        let c = r.counter("pkts");
        r.histogram("dist", &[1.0, 2.0]);
        r.inc(c, 1);
        r.snapshot(1_000_000);
        r.inc(c, 1);
        r.snapshot(2_000_000);
        let jsonl = r.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        assert_eq!(r.snapshot_count(), 2);
        assert!(
            jsonl.contains("\"ts\":1000000,\"metric\":\"pkts\",\"type\":\"counter\",\"value\":1")
        );
        assert!(
            jsonl.contains("\"ts\":2000000,\"metric\":\"pkts\",\"type\":\"counter\",\"value\":2")
        );
        assert!(jsonl.contains("\"type\":\"histogram\""));
        assert!(jsonl.contains("\"+inf\""));
    }

    #[test]
    fn histogram_snapshot_shape() {
        let mut r = Registry::new();
        let h = r.histogram("lat", &[1.0]);
        r.observe(h, 0.5);
        r.observe(h, 2.0);
        r.snapshot(5);
        let line = r.to_jsonl().lines().next().unwrap();
        assert_eq!(
            line,
            "{\"ts\":5,\"metric\":\"lat\",\"type\":\"histogram\",\"count\":2,\"sum\":2.5,\"buckets\":[[\"1\",1],[\"+inf\",1]]}"
        );
    }
}
