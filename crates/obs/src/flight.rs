//! The flight recorder: a fixed-size ring of recent trace events that
//! stays silent until something goes wrong, then dumps a window of
//! events *around* the anomaly to its sink.
//!
//! Long runs cannot afford full traces, but incidents still need
//! context. The recorder buffers the last `capacity` events; when a
//! trigger fires — a `fault` or `degrade` event arriving (automatic),
//! or [`FlightRecorder::trigger`] called by a heuristic such as the
//! pulse-onset detector — it keeps recording for `post_window` more
//! events and then emits the whole ring (pre-trigger context plus
//! post-trigger aftermath) as one JSONL window. Re-triggers while a
//! window is draining coalesce into it. A clean run emits nothing.

use crate::event::{Event, OwnedEvent};
use crate::sink::Sink;
use crate::tracer::Tracer;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// See the module docs. Implements [`Tracer`], so it can sit anywhere a
/// tracer can — including shared between the engine and a switch via
/// [`SharedFlightRecorder`].
pub struct FlightRecorder {
    ring: VecDeque<(u64, OwnedEvent)>,
    capacity: usize,
    post_window: usize,
    /// `(trigger ts, reason, events still to record before dumping)`.
    pending: Option<(u64, String, usize)>,
    sink: Box<dyn Sink>,
    windows: u64,
    triggers: u64,
    total_recorded: u64,
    line: String,
}

impl FlightRecorder {
    /// Creates a recorder holding `capacity` events that keeps recording
    /// `post_window` events past a trigger before dumping.
    pub fn new(capacity: usize, post_window: usize, sink: Box<dyn Sink>) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        assert!(
            post_window < capacity,
            "post_window must leave room for pre-trigger context"
        );
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            post_window,
            pending: None,
            sink,
            windows: 0,
            triggers: 0,
            total_recorded: 0,
            line: String::with_capacity(128),
        }
    }

    /// Arms a window dump (e.g. from the pulse-onset heuristic). No-op
    /// while a previous window is still draining — the anomalies
    /// coalesce into one window.
    pub fn trigger(&mut self, ts_ns: u64, reason: &str) {
        self.triggers += 1;
        if self.pending.is_none() {
            self.pending = Some((ts_ns, reason.to_string(), self.post_window));
        }
    }

    /// Windows dumped so far.
    pub fn windows_emitted(&self) -> u64 {
        self.windows
    }

    /// Triggers observed (including coalesced ones).
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Events currently buffered in the ring.
    pub fn buffered(&self) -> usize {
        self.ring.len()
    }

    /// Total events ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Dumps a partially filled post-trigger window at end of run, so an
    /// anomaly near the end is not lost. Clean runs emit nothing.
    pub fn finish(&mut self) {
        if self.pending.is_some() {
            self.dump();
        }
        self.sink.flush();
    }

    fn dump(&mut self) {
        let (ts, reason, _) = self.pending.take().expect("dump without trigger");
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"ts\":{ts},\"ev\":\"flight_window\",\"trigger\":\"",
        );
        crate::json::escape_json(&reason, &mut self.line);
        let _ = write!(self.line, "\",\"events\":{}}}", self.ring.len());
        let header = std::mem::take(&mut self.line);
        self.sink.emit(&header);
        self.line = header;
        for (ev_ts, ev) in &self.ring {
            self.line.clear();
            ev.write_jsonl(*ev_ts, &mut self.line);
            self.sink.emit(self.line.trim_end());
        }
        self.ring.clear();
        self.sink.flush();
        self.windows += 1;
    }
}

impl Tracer for FlightRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ts_ns: u64, event: &Event<'_>) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back((ts_ns, event.to_owned()));
        self.total_recorded += 1;
        match &mut self.pending {
            None => {
                if matches!(event, Event::FaultInjected { .. } | Event::Degrade { .. }) {
                    self.trigger(ts_ns, event.kind());
                }
            }
            Some((_, _, remaining)) => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.dump();
                }
            }
        }
    }
}

/// A flight recorder shareable between the engine and the switch it
/// drives (both need `&mut` access during one simulation step).
pub type SharedFlightRecorder = Rc<RefCell<FlightRecorder>>;

/// Wraps a [`FlightRecorder`] for sharing across the engine/switch
/// boundary; the blanket `Tracer for Rc<RefCell<T>>` impl applies.
pub fn shared_recorder(recorder: FlightRecorder) -> SharedFlightRecorder {
    Rc::new(RefCell::new(recorder))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    fn recorder(capacity: usize, post: usize) -> (FlightRecorder, SharedProbe) {
        let probe = SharedProbe::default();
        let rec = FlightRecorder::new(capacity, post, Box::new(probe.clone()));
        (rec, probe)
    }

    /// A sink that shares its captured lines with the test body.
    #[derive(Default, Clone)]
    struct SharedProbe(Rc<RefCell<Vec<String>>>);

    impl SharedProbe {
        fn lines(&self) -> Vec<String> {
            self.0.borrow().clone()
        }
    }

    impl Sink for SharedProbe {
        fn emit(&mut self, line: &str) {
            self.0.borrow_mut().push(line.to_string());
        }
        fn flush(&mut self) {}
    }

    #[test]
    fn clean_run_emits_nothing() {
        let (mut rec, probe) = recorder(8, 2);
        for tick in 0..100 {
            rec.record(tick, &Event::ControlTick { tick });
        }
        rec.finish();
        assert!(probe.lines().is_empty());
        assert_eq!(rec.windows_emitted(), 0);
        assert!(rec.buffered() <= 8);
    }

    #[test]
    fn fault_event_auto_triggers_window_with_context() {
        let (mut rec, probe) = recorder(8, 2);
        for tick in 0..5 {
            rec.record(tick, &Event::ControlTick { tick });
        }
        rec.record(
            50,
            &Event::FaultInjected {
                kind: "ctrl_drop",
                value: 0.0,
            },
        );
        rec.record(60, &Event::ControlTick { tick: 6 });
        assert_eq!(rec.windows_emitted(), 0, "window still draining");
        rec.record(70, &Event::ControlTick { tick: 7 });
        assert_eq!(rec.windows_emitted(), 1);
        let lines = probe.lines();
        // Header + 8 ring events (5 pre + fault + 2 post).
        assert_eq!(lines.len(), 9);
        assert!(lines[0].contains("\"ev\":\"flight_window\""));
        assert!(lines[0].contains("\"trigger\":\"fault\""));
        assert!(lines[0].contains("\"events\":8"));
        assert!(lines[6].contains("\"ev\":\"fault\""));
        assert_eq!(rec.buffered(), 0, "ring cleared after dump");
    }

    #[test]
    fn retrigger_while_draining_coalesces() {
        let (mut rec, probe) = recorder(8, 3);
        rec.record(
            0,
            &Event::FaultInjected {
                kind: "a",
                value: 0.0,
            },
        );
        rec.record(
            1,
            &Event::Degrade {
                action: "fallback_fifo",
                missed: 3,
            },
        );
        rec.record(2, &Event::ControlTick { tick: 1 });
        rec.record(3, &Event::ControlTick { tick: 2 });
        assert_eq!(rec.windows_emitted(), 1, "one coalesced window");
        assert_eq!(rec.triggers(), 1, "degrade consumed by the countdown");
        assert!(probe.lines()[0].contains("\"trigger\":\"fault\""));
    }

    #[test]
    fn manual_trigger_and_end_of_run_partial_window() {
        let (mut rec, probe) = recorder(16, 8);
        rec.record(0, &Event::ControlTick { tick: 0 });
        rec.trigger(5, "pulse_onset");
        rec.record(10, &Event::ControlTick { tick: 1 });
        assert_eq!(rec.windows_emitted(), 0);
        rec.finish(); // only 1 of 8 post-window events arrived
        assert_eq!(rec.windows_emitted(), 1);
        let lines = probe.lines();
        assert!(lines[0].contains("\"trigger\":\"pulse_onset\""));
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn ring_capacity_bounds_window_size() {
        let (mut rec, probe) = recorder(4, 2);
        for tick in 0..100 {
            rec.record(tick, &Event::ControlTick { tick });
        }
        rec.trigger(100, "manual");
        rec.record(101, &Event::ControlTick { tick: 101 });
        rec.record(102, &Event::ControlTick { tick: 102 });
        let lines = probe.lines();
        assert!(lines[0].contains("\"events\":4"));
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn works_behind_shared_handle_as_tracer() {
        let shared = shared_recorder(FlightRecorder::new(8, 1, Box::new(RingSink::new(32))));
        let mut a = shared.clone();
        assert!(a.enabled());
        a.record(
            0,
            &Event::FaultInjected {
                kind: "x",
                value: 1.0,
            },
        );
        a.record(1, &Event::ControlTick { tick: 1 });
        assert_eq!(shared.borrow().windows_emitted(), 1);
    }
}
