//! Deterministic reservoir sampling of per-flow records.
//!
//! An internet-day run sees far more flows than fit in memory; the
//! sampler keeps a uniform sample of `capacity` *flows* (Algorithm R
//! over distinct five-tuples) and accumulates packet/byte/drop counts
//! only for sampled flows, so telemetry memory is O(capacity) no matter
//! how many packets pass. The RNG is an inlined SplitMix64 seeded from
//! the run seed — this crate is the dependency root and cannot use
//! `accturbo-prng` — so the same seed always yields the byte-identical
//! sample, which the dataset-export tests lock down.

use crate::json::dotted;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A flow identity: the classic five-tuple, addresses as big-endian
/// `u32` so the sampler stays below `netsim` in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// IP protocol number.
    pub proto: u8,
}

/// Accumulated statistics for one sampled flow, exported as one labeled
/// dataset row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// The flow's five-tuple.
    pub key: FlowKey,
    /// Ground-truth traffic class (0 = benign).
    pub class: u16,
    /// Packets offered by this flow (accepted or dropped).
    pub pkts: u64,
    /// Bytes offered by this flow.
    pub bytes: u64,
    /// Packets of this flow dropped by the switch.
    pub drops: u64,
    /// Simulated time of the flow's first packet, nanoseconds.
    pub first_ts_ns: u64,
    /// Simulated time of the flow's most recent packet, nanoseconds.
    pub last_ts_ns: u64,
}

impl FlowRecord {
    /// The CSV header matching [`FlowRecord::write_csv`].
    pub const CSV_HEADER: &'static str =
        "src,dst,sport,dport,proto,class,label,pkts,bytes,drops,first_ns,last_ns";

    /// The ground-truth label: class 0 is benign, all others attack.
    pub fn label(&self) -> &'static str {
        if self.class == 0 {
            "benign"
        } else {
            "attack"
        }
    }

    /// Appends the record as one CSV row (no trailing newline).
    pub fn write_csv(&self, out: &mut String) {
        let _ = write!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            dotted(self.key.src),
            dotted(self.key.dst),
            self.key.sport,
            self.key.dport,
            self.key.proto,
            self.class,
            self.label(),
            self.pkts,
            self.bytes,
            self.drops,
            self.first_ts_ns,
            self.last_ts_ns,
        );
    }

    /// Appends the record as one JSON object (no trailing newline).
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"src\":\"{}\",\"dst\":\"{}\",\"sport\":{},\"dport\":{},\"proto\":{},\"class\":{},\"label\":\"{}\",\"pkts\":{},\"bytes\":{},\"drops\":{},\"first_ns\":{},\"last_ns\":{}}}",
            dotted(self.key.src),
            dotted(self.key.dst),
            self.key.sport,
            self.key.dport,
            self.key.proto,
            self.class,
            self.label(),
            self.pkts,
            self.bytes,
            self.drops,
            self.first_ts_ns,
            self.last_ts_ns,
        );
    }
}

/// SplitMix64: tiny, statistically solid, and fully determined by its
/// seed. Inlined here because `accturbo-obs` sits below `accturbo-prng`.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform reservoir (Algorithm R) over distinct flows with bounded
/// per-flow accumulation. See the module docs for the memory argument.
#[derive(Debug, Clone)]
pub struct FlowSampler {
    capacity: usize,
    rng: u64,
    records: Vec<FlowRecord>,
    index: HashMap<FlowKey, usize>,
    flows_seen: u64,
}

impl FlowSampler {
    /// Creates a sampler keeping at most `capacity` flows, deterministic
    /// in `seed`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "sampler capacity must be positive");
        FlowSampler {
            capacity,
            rng: seed ^ 0x9E37_79B9_7F4A_7C15,
            records: Vec::with_capacity(capacity.min(4096)),
            index: HashMap::with_capacity(capacity.min(4096)),
            flows_seen: 0,
        }
    }

    /// Offers one packet. Tracked flows accumulate; new flows enter the
    /// reservoir while it has room, then replace a uniformly chosen slot
    /// with probability `capacity / flows_seen` (Algorithm R).
    pub fn offer(&mut self, ts_ns: u64, key: FlowKey, class: u16, size: u32) {
        if let Some(&i) = self.index.get(&key) {
            let rec = &mut self.records[i];
            rec.pkts += 1;
            rec.bytes += u64::from(size);
            rec.last_ts_ns = ts_ns;
            return;
        }
        self.flows_seen += 1;
        let rec = FlowRecord {
            key,
            class,
            pkts: 1,
            bytes: u64::from(size),
            drops: 0,
            first_ts_ns: ts_ns,
            last_ts_ns: ts_ns,
        };
        if self.records.len() < self.capacity {
            self.index.insert(key, self.records.len());
            self.records.push(rec);
            return;
        }
        // Algorithm R: replace slot j ∈ [0, flows_seen) if j < capacity.
        let j = (splitmix64(&mut self.rng) % self.flows_seen) as usize;
        if j < self.capacity {
            self.index.remove(&self.records[j].key);
            self.index.insert(key, j);
            self.records[j] = rec;
        }
    }

    /// Records a drop for `key` if it is currently sampled.
    pub fn on_drop(&mut self, key: &FlowKey) {
        if let Some(&i) = self.index.get(key) {
            self.records[i].drops += 1;
        }
    }

    /// Flows currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no flow has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The configured reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Distinct flows ever offered (sampled or not).
    pub fn flows_seen(&self) -> u64 {
        self.flows_seen
    }

    /// The sampled records, in reservoir-slot order (deterministic for a
    /// given seed and offer sequence — slot order, never map order).
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u32) -> FlowKey {
        FlowKey {
            src: 0x0A00_0000 | n,
            dst: 0xC612_0001,
            sport: 1000 + (n % 100) as u16,
            dport: 443,
            proto: 17,
        }
    }

    fn offer_many(s: &mut FlowSampler, flows: u32, pkts_per_flow: u32) {
        for p in 0..pkts_per_flow {
            for n in 0..flows {
                s.offer(u64::from(p * flows + n) * 1000, key(n), (n % 2) as u16, 100);
            }
        }
    }

    #[test]
    fn accumulates_per_flow_under_capacity() {
        let mut s = FlowSampler::new(16, 7);
        offer_many(&mut s, 4, 3);
        assert_eq!(s.len(), 4);
        assert_eq!(s.flows_seen(), 4);
        let rec = &s.records()[1];
        assert_eq!(rec.pkts, 3);
        assert_eq!(rec.bytes, 300);
        assert!(rec.first_ts_ns < rec.last_ts_ns);
    }

    #[test]
    fn memory_is_bounded_by_capacity() {
        let mut s = FlowSampler::new(8, 1);
        offer_many(&mut s, 10_000, 1);
        assert_eq!(s.len(), 8);
        assert_eq!(s.index.len(), 8);
        assert_eq!(s.flows_seen(), 10_000);
    }

    #[test]
    fn same_seed_same_offers_is_byte_identical() {
        let render = |seed: u64| {
            let mut s = FlowSampler::new(32, seed);
            offer_many(&mut s, 500, 2);
            let mut out = String::new();
            for r in s.records() {
                r.write_csv(&mut out);
                out.push('\n');
            }
            out
        };
        assert_eq!(render(42), render(42));
        assert_ne!(render(42), render(43), "different seeds should differ");
    }

    #[test]
    fn drops_only_count_for_sampled_flows() {
        let mut s = FlowSampler::new(4, 9);
        offer_many(&mut s, 2, 1);
        s.on_drop(&key(0));
        s.on_drop(&key(99)); // never offered
        assert_eq!(s.records()[0].drops, 1);
    }

    #[test]
    fn labels_follow_class() {
        let mut s = FlowSampler::new(4, 0);
        s.offer(0, key(0), 0, 64);
        s.offer(0, key(1), 3, 64);
        assert_eq!(s.records()[0].label(), "benign");
        assert_eq!(s.records()[1].label(), "attack");
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let mut s = FlowSampler::new(1, 0);
        s.offer(5, key(1), 1, 640);
        let mut row = String::new();
        s.records()[0].write_csv(&mut row);
        assert_eq!(
            row.split(',').count(),
            FlowRecord::CSV_HEADER.split(',').count()
        );
        assert!(row.contains("attack"));
    }
}
