//! Streaming telemetry sinks: where per-period aggregates, trace lines
//! and flight-recorder windows *go* instead of accumulating in memory.
//!
//! A [`Sink`] consumes one JSONL line at a time and is flushed at every
//! control/stats period, so a run's peak telemetry memory is the sink's
//! own bound (a `BufWriter` page, a ring capacity) rather than
//! O(events). Implementations:
//!
//! * [`JsonlSink`] — buffered file writer, one JSON object per line.
//! * [`RingSink`] — bounded in-memory ring of the most recent lines
//!   (for tests and live consoles).
//! * [`TeeSink`] — fan-out to several sinks in declaration order.
//! * [`DatasetSink`] — CSV or JSONL flow-record exporter (format chosen
//!   from the file extension), fed once at end of run from the
//!   reservoir sampler.

use crate::sample::FlowRecord;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

/// A consumer of JSONL telemetry lines.
///
/// `emit` receives one complete line *without* a trailing newline;
/// `flush` is called at period boundaries and at end of run. Sinks must
/// hold bounded memory between flushes.
pub trait Sink {
    /// Consumes one JSONL line (no trailing newline).
    fn emit(&mut self, line: &str);

    /// Pushes buffered lines to their destination (period boundary).
    fn flush(&mut self);
}

/// A buffered JSONL file writer.
///
/// I/O errors are captured rather than panicking mid-simulation; check
/// [`JsonlSink::io_error`] after the run.
pub struct JsonlSink {
    w: BufWriter<File>,
    lines: u64,
    error: Option<std::io::Error>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            w: BufWriter::new(File::create(path)?),
            lines: 0,
            error: None,
        })
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error encountered, if any.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.w, "{line}") {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.w.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// A bounded in-memory ring of the most recent lines.
///
/// Older lines are evicted silently but counted in
/// [`RingSink::total_emitted`], mirroring [`crate::RingTracer`].
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<String>,
    capacity: usize,
    total: u64,
}

impl RingSink {
    /// Creates a ring keeping the most recent `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total: 0,
        }
    }

    /// Lines currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total lines ever emitted, including evicted ones.
    pub fn total_emitted(&self) -> u64 {
        self.total
    }

    /// Iterates over the buffered lines, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.buf.iter().map(String::as_str)
    }

    /// The buffered lines joined as JSONL (trailing newline included).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.buf {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl Sink for RingSink {
    fn emit(&mut self, line: &str) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(line.to_string());
        self.total += 1;
    }

    fn flush(&mut self) {}
}

/// Fan-out: forwards every line (and flush) to each inner sink, in the
/// order they were added.
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl TeeSink {
    /// Creates an empty tee.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink; lines are delivered in addition order.
    pub fn push(&mut self, sink: Box<dyn Sink>) {
        self.sinks.push(sink);
    }

    /// Number of inner sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the tee has no inner sinks.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Sink for TeeSink {
    fn emit(&mut self, line: &str) {
        for s in &mut self.sinks {
            s.emit(line);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }
}

/// Output format for [`DatasetSink`], derived from the file extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetFormat {
    /// Comma-separated values with a header row.
    Csv,
    /// One JSON object per line.
    Jsonl,
}

impl DatasetFormat {
    /// `.jsonl`/`.json` → [`DatasetFormat::Jsonl`]; anything else
    /// (including `.csv` and no extension) → [`DatasetFormat::Csv`].
    pub fn from_path(path: impl AsRef<Path>) -> Self {
        match path.as_ref().extension().and_then(|e| e.to_str()) {
            Some("jsonl") | Some("json") => DatasetFormat::Jsonl,
            _ => DatasetFormat::Csv,
        }
    }
}

/// Writes reservoir-sampled flow records as a labeled dataset (CSV with
/// header, or JSONL), for use as DDoS-detection training data.
pub struct DatasetSink {
    w: BufWriter<File>,
    format: DatasetFormat,
    rows: u64,
    error: Option<std::io::Error>,
}

impl DatasetSink {
    /// Creates (truncating) the dataset file at `path`; the format is
    /// chosen from the extension via [`DatasetFormat::from_path`].
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let format = DatasetFormat::from_path(&path);
        Ok(DatasetSink {
            w: BufWriter::new(File::create(path)?),
            format,
            rows: 0,
            error: None,
        })
    }

    /// The chosen output format.
    pub fn format(&self) -> DatasetFormat {
        self.format
    }

    /// Data rows written so far (excludes the CSV header).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The first I/O error encountered, if any.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Writes all `records` (header first for CSV) and flushes.
    pub fn export<'r>(&mut self, records: impl IntoIterator<Item = &'r FlowRecord>) {
        let mut line = String::with_capacity(128);
        if self.format == DatasetFormat::Csv && self.rows == 0 {
            self.write_line(FlowRecord::CSV_HEADER);
        }
        for rec in records {
            line.clear();
            match self.format {
                DatasetFormat::Csv => rec.write_csv(&mut line),
                DatasetFormat::Jsonl => rec.write_jsonl(&mut line),
            }
            self.write_line(&line);
            self.rows += 1;
        }
        if self.error.is_none() {
            if let Err(e) = self.w.flush() {
                self.error = Some(e);
            }
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.w, "{line}") {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_sink_keeps_most_recent_and_counts_total() {
        let mut s = RingSink::new(3);
        for i in 0..5 {
            s.emit(&format!("{{\"n\":{i}}}"));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_emitted(), 5);
        let lines: Vec<&str> = s.iter().collect();
        assert_eq!(lines, vec!["{\"n\":2}", "{\"n\":3}", "{\"n\":4}"]);
        assert_eq!(s.to_jsonl(), "{\"n\":2}\n{\"n\":3}\n{\"n\":4}\n");
    }

    #[test]
    fn tee_delivers_to_all_sinks_in_order() {
        let mut tee = TeeSink::new();
        tee.push(Box::new(RingSink::new(8)));
        tee.push(Box::new(RingSink::new(2)));
        tee.emit("a");
        tee.emit("b");
        tee.emit("c");
        tee.flush();
        assert_eq!(tee.len(), 2);
    }

    #[test]
    fn jsonl_sink_writes_lines_to_disk() {
        let path = std::env::temp_dir().join("accturbo_obs_sink_test.jsonl");
        let mut s = JsonlSink::create(&path).unwrap();
        s.emit("{\"a\":1}");
        s.emit("{\"b\":2}");
        s.flush();
        assert_eq!(s.lines(), 2);
        assert!(s.io_error().is_none());
        drop(s);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dataset_format_follows_extension() {
        assert_eq!(DatasetFormat::from_path("out.csv"), DatasetFormat::Csv);
        assert_eq!(DatasetFormat::from_path("out.jsonl"), DatasetFormat::Jsonl);
        assert_eq!(DatasetFormat::from_path("out.json"), DatasetFormat::Jsonl);
        assert_eq!(DatasetFormat::from_path("out"), DatasetFormat::Csv);
    }
}
