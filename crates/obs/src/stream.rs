//! The per-period streaming stage: what the engine flushes into a
//! [`Sink`] at every control/stats period instead of accumulating.
//!
//! [`Aggregator`] turns the live [`Registry`] into per-period JSONL
//! lines — counter *deltas*, gauge last-values, histogram merges
//! (count/sum/bucket deltas) — remembering only one previous value per
//! metric, so its memory is O(metrics), not O(periods). [`Telemetry`]
//! bundles the whole streaming configuration for one run: the output
//! sink, the aggregator, an optional reservoir [`FlowSampler`] feeding
//! a [`DatasetSink`] at end of run, an optional shared
//! [`FlightRecorder`], and a pulse-onset heuristic that arms the
//! recorder when per-period drops jump.
//!
//! Line shapes emitted each period at time `ts`:
//!
//! ```json
//! {"ts":..,"ev":"period","n":0,"arrivals":..,"departures":..,
//!  "drops":..,"bytes_in":..,"bytes_out":..,"backlog":..}
//! {"ts":..,"ev":"agg","metric":"..","type":"counter","delta":..,"total":..}
//! {"ts":..,"ev":"agg","metric":"..","type":"gauge","value":..}
//! {"ts":..,"ev":"agg","metric":"..","type":"histogram","count":..,
//!  "sum":..,"buckets":[["b",dc],..]}
//! {"ts":..,"ev":"pulse_onset","drops":..,"prev_drops":..}
//! ```

use crate::flight::SharedFlightRecorder;
use crate::json::{escape_json, json_f64};
use crate::metrics::Registry;
use crate::sample::{FlowKey, FlowSampler};
use crate::sink::{DatasetSink, Sink};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-period reduction of a [`Registry`]: counter deltas, gauge
/// last-values, histogram count/sum/bucket deltas. Holds one previous
/// value per metric.
#[derive(Debug, Default)]
pub struct Aggregator {
    prev_counters: HashMap<String, u64>,
    prev_hists: HashMap<String, (u64, f64, Vec<u64>)>,
}

impl Aggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits one `agg` line per registered metric covering the period
    /// ending at `ts_ns`, and advances the remembered previous values.
    /// Returns the number of lines emitted.
    pub fn flush(&mut self, r: &Registry, ts_ns: u64, sink: &mut dyn Sink) -> u64 {
        let mut line = String::with_capacity(128);
        let mut lines = 0u64;
        for (name, value) in r.counters() {
            let prev = self.prev_counters.get(name).copied().unwrap_or(0);
            if prev != value {
                self.prev_counters.insert(name.to_string(), value);
            }
            line.clear();
            let _ = write!(line, "{{\"ts\":{ts_ns},\"ev\":\"agg\",\"metric\":\"");
            escape_json(name, &mut line);
            let _ = write!(
                line,
                "\",\"type\":\"counter\",\"delta\":{},\"total\":{value}}}",
                value - prev
            );
            sink.emit(&line);
            lines += 1;
        }
        for (name, value) in r.gauges() {
            line.clear();
            let _ = write!(line, "{{\"ts\":{ts_ns},\"ev\":\"agg\",\"metric\":\"");
            escape_json(name, &mut line);
            line.push_str("\",\"type\":\"gauge\",\"value\":");
            json_f64(value, &mut line);
            line.push('}');
            sink.emit(&line);
            lines += 1;
        }
        for (name, h) in r.histograms() {
            let (pc, ps, pb) = self
                .prev_hists
                .get(name)
                .cloned()
                .unwrap_or_else(|| (0, 0.0, vec![0; h.bucket_counts().len()]));
            line.clear();
            let _ = write!(line, "{{\"ts\":{ts_ns},\"ev\":\"agg\",\"metric\":\"");
            escape_json(name, &mut line);
            let _ = write!(
                line,
                "\",\"type\":\"histogram\",\"count\":{},\"sum\":",
                h.count() - pc
            );
            json_f64(h.sum() - ps, &mut line);
            line.push_str(",\"buckets\":[");
            for (i, &c) in h.bucket_counts().iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str("[\"");
                if i < h.bounds().len() {
                    json_f64(h.bounds()[i], &mut line);
                } else {
                    line.push_str("+inf");
                }
                let _ = write!(line, "\",{}]", c - pb.get(i).copied().unwrap_or(0));
            }
            line.push_str("]}");
            sink.emit(&line);
            lines += 1;
            self.prev_hists.insert(
                name.to_string(),
                (h.count(), h.sum(), h.bucket_counts().to_vec()),
            );
        }
        lines
    }
}

/// Packet/byte counters for the period in flight.
#[derive(Debug, Default, Clone, Copy)]
struct PeriodCounters {
    arrivals: u64,
    departures: u64,
    drops: u64,
    bytes_in: u64,
    bytes_out: u64,
}

/// The streaming-telemetry bundle for one run. See the module docs.
///
/// Engine hot-path hooks ([`Telemetry::on_arrival`] / `on_drop` /
/// `on_depart`) only bump counters and feed the reservoir; all line
/// formatting happens in [`Telemetry::on_period`] at period boundaries.
pub struct Telemetry {
    sink: Option<Box<dyn Sink>>,
    aggregator: Aggregator,
    sampler: Option<FlowSampler>,
    dataset: Option<DatasetSink>,
    recorder: Option<SharedFlightRecorder>,
    /// Pulse-onset fires when period drops ≥ floor and > factor × prev.
    pulse_factor: f64,
    pulse_floor: u64,
    cur: PeriodCounters,
    prev_drops: u64,
    periods: u64,
    sink_lines: u64,
    pulse_onsets: u64,
    finished: bool,
    line: String,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Creates an empty bundle (no sink, no sampler, no recorder).
    pub fn new() -> Self {
        Telemetry {
            sink: None,
            aggregator: Aggregator::new(),
            sampler: None,
            dataset: None,
            recorder: None,
            pulse_factor: 4.0,
            pulse_floor: 50,
            cur: PeriodCounters::default(),
            prev_drops: 0,
            periods: 0,
            sink_lines: 0,
            pulse_onsets: 0,
            finished: false,
            line: String::with_capacity(160),
        }
    }

    /// Streams period/aggregate lines into `sink`.
    pub fn with_sink(mut self, sink: Box<dyn Sink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Samples per-flow records through `sampler`.
    pub fn with_flow_sampler(mut self, sampler: FlowSampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Exports the sampled flows into `dataset` at end of run. Implies
    /// a default 4096-flow sampler (seed 0) when none was set.
    pub fn with_dataset(mut self, dataset: DatasetSink) -> Self {
        if self.sampler.is_none() {
            self.sampler = Some(FlowSampler::new(4096, 0));
        }
        self.dataset = Some(dataset);
        self
    }

    /// Attaches a shared flight recorder; the pulse-onset heuristic
    /// arms it, and callers can hand clones of the same handle to the
    /// engine/switch as their tracer.
    pub fn with_recorder(mut self, recorder: SharedFlightRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Overrides the pulse-onset heuristic: fire when a period's drops
    /// reach `floor` and exceed `factor ×` the previous period's.
    pub fn with_pulse_onset(mut self, factor: f64, floor: u64) -> Self {
        self.pulse_factor = factor;
        self.pulse_floor = floor;
        self
    }

    /// A clone of the attached flight-recorder handle, if any.
    pub fn recorder_handle(&self) -> Option<SharedFlightRecorder> {
        self.recorder.clone()
    }

    /// Periods flushed so far.
    pub fn periods(&self) -> u64 {
        self.periods
    }

    /// Lines emitted to the sink so far.
    pub fn sink_lines(&self) -> u64 {
        self.sink_lines
    }

    /// Pulse onsets detected so far.
    pub fn pulse_onsets(&self) -> u64 {
        self.pulse_onsets
    }

    /// Distinct flows offered to the sampler (0 when not sampling).
    pub fn flows_seen(&self) -> u64 {
        self.sampler.as_ref().map_or(0, |s| s.flows_seen())
    }

    /// Flows currently held by the sampler (0 when not sampling).
    pub fn flows_sampled(&self) -> usize {
        self.sampler.as_ref().map_or(0, |s| s.len())
    }

    /// Dataset rows written (0 before [`Telemetry::finish`]).
    pub fn dataset_rows(&self) -> u64 {
        self.dataset.as_ref().map_or(0, |d| d.rows())
    }

    /// Flight-recorder windows dumped (0 without a recorder).
    pub fn recorder_windows(&self) -> u64 {
        self.recorder
            .as_ref()
            .map_or(0, |r| r.borrow().windows_emitted())
    }

    /// One packet arrived at the switch.
    #[inline]
    pub fn on_arrival(&mut self, ts_ns: u64, key: FlowKey, class: u16, size: u32) {
        self.cur.arrivals += 1;
        self.cur.bytes_in += u64::from(size);
        if let Some(s) = &mut self.sampler {
            s.offer(ts_ns, key, class, size);
        }
    }

    /// One packet was dropped by the switch.
    #[inline]
    pub fn on_drop(&mut self, key: &FlowKey) {
        self.cur.drops += 1;
        if let Some(s) = &mut self.sampler {
            s.on_drop(key);
        }
    }

    /// One packet finished transmission.
    #[inline]
    pub fn on_depart(&mut self, size: u32) {
        self.cur.departures += 1;
        self.cur.bytes_out += u64::from(size);
    }

    /// Flushes the period ending at `ts_ns`: the `period` line, one
    /// `agg` line per metric in `registry`, the pulse-onset check, and
    /// a sink flush. Resets the period counters.
    pub fn on_period(&mut self, ts_ns: u64, backlog_pkts: usize, registry: Option<&Registry>) {
        let cur = self.cur;
        if let Some(sink) = &mut self.sink {
            let mut line = std::mem::take(&mut self.line);
            line.clear();
            let _ = write!(
                line,
                "{{\"ts\":{ts_ns},\"ev\":\"period\",\"n\":{},\"arrivals\":{},\"departures\":{},\"drops\":{},\"bytes_in\":{},\"bytes_out\":{},\"backlog\":{backlog_pkts}}}",
                self.periods, cur.arrivals, cur.departures, cur.drops, cur.bytes_in, cur.bytes_out,
            );
            sink.emit(&line);
            self.line = line;
            self.sink_lines += 1;
            if let Some(r) = registry {
                self.sink_lines += self.aggregator.flush(r, ts_ns, sink.as_mut());
            }
        }
        if cur.drops >= self.pulse_floor
            && cur.drops as f64 > self.prev_drops as f64 * self.pulse_factor
        {
            self.pulse_onsets += 1;
            if let Some(sink) = &mut self.sink {
                let mut line = std::mem::take(&mut self.line);
                line.clear();
                let _ = write!(
                    line,
                    "{{\"ts\":{ts_ns},\"ev\":\"pulse_onset\",\"drops\":{},\"prev_drops\":{}}}",
                    cur.drops, self.prev_drops,
                );
                sink.emit(&line);
                self.line = line;
                self.sink_lines += 1;
            }
            if let Some(rec) = &self.recorder {
                rec.borrow_mut().trigger(ts_ns, "pulse_onset");
            }
        }
        self.prev_drops = cur.drops;
        self.cur = PeriodCounters::default();
        self.periods += 1;
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
    }

    /// End of run: flushes the final partial period, exports the
    /// dataset, and drains the flight recorder. Idempotent.
    pub fn finish(&mut self, ts_ns: u64, backlog_pkts: usize, registry: Option<&Registry>) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.on_period(ts_ns, backlog_pkts, registry);
        if let (Some(dataset), Some(sampler)) = (&mut self.dataset, &self.sampler) {
            dataset.export(sampler.records());
        }
        if let Some(rec) = &self.recorder {
            rec.borrow_mut().finish();
        }
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    fn ring_telemetry(cap: usize) -> Telemetry {
        Telemetry::new().with_sink(Box::new(RingSink::new(cap)))
    }

    fn key(n: u32) -> FlowKey {
        FlowKey {
            src: n,
            dst: 1,
            sport: 1,
            dport: 2,
            proto: 17,
        }
    }

    #[test]
    fn period_line_carries_deltas_and_resets() {
        let mut t = ring_telemetry(64);
        t.on_arrival(10, key(1), 0, 100);
        t.on_arrival(20, key(2), 1, 200);
        t.on_depart(100);
        t.on_period(1_000, 5, None);
        t.on_period(2_000, 0, None);
        assert_eq!(t.periods(), 2);
        assert_eq!(t.sink_lines(), 2);
        // Inspect via a fresh ring: re-run against a probe is clumsy, so
        // assert on the counters the lines were built from instead.
        assert_eq!(t.cur.arrivals, 0, "period counters reset");
    }

    #[test]
    fn aggregator_emits_counter_deltas_and_gauge_last_values() {
        let mut r = Registry::new();
        let c = r.counter("pkts");
        let g = r.gauge("depth");
        let h = r.histogram("lat", &[1.0]);
        let mut agg = Aggregator::new();
        let mut sink = RingSink::new(64);

        r.inc(c, 5);
        r.set(g, 2.0);
        r.observe(h, 0.5);
        agg.flush(&r, 1_000, &mut sink);
        r.inc(c, 3);
        r.set(g, 7.0);
        r.observe(h, 5.0);
        agg.flush(&r, 2_000, &mut sink);

        let text = sink.to_jsonl();
        assert!(text.contains(
            "{\"ts\":1000,\"ev\":\"agg\",\"metric\":\"pkts\",\"type\":\"counter\",\"delta\":5,\"total\":5}"
        ));
        assert!(text.contains(
            "{\"ts\":2000,\"ev\":\"agg\",\"metric\":\"pkts\",\"type\":\"counter\",\"delta\":3,\"total\":8}"
        ));
        assert!(text.contains(
            "{\"ts\":2000,\"ev\":\"agg\",\"metric\":\"depth\",\"type\":\"gauge\",\"value\":7}"
        ));
        // Second histogram flush shows only the new observation.
        assert!(text.contains(
            "{\"ts\":2000,\"ev\":\"agg\",\"metric\":\"lat\",\"type\":\"histogram\",\"count\":1,\"sum\":5,\"buckets\":[[\"1\",0],[\"+inf\",1]]}"
        ));
    }

    #[test]
    fn aggregator_memory_is_per_metric_not_per_period() {
        let mut r = Registry::new();
        let c = r.counter("pkts");
        let mut agg = Aggregator::new();
        let mut sink = RingSink::new(4);
        for i in 0..1_000 {
            r.inc(c, i);
            agg.flush(&r, i * 100, &mut sink);
        }
        assert_eq!(agg.prev_counters.len(), 1);
        assert!(sink.len() <= 4);
    }

    #[test]
    fn pulse_onset_fires_on_drop_jump_and_arms_recorder() {
        use crate::flight::{shared_recorder, FlightRecorder};
        let rec = shared_recorder(FlightRecorder::new(8, 1, Box::new(RingSink::new(32))));
        let mut t = ring_telemetry(64)
            .with_pulse_onset(4.0, 10)
            .with_recorder(rec.clone());
        // Quiet period, then a 40× jump.
        for _ in 0..2 {
            t.on_arrival(0, key(1), 0, 64);
        }
        t.on_period(1_000, 0, None);
        for _ in 0..40 {
            t.on_drop(&key(1));
        }
        t.on_period(2_000, 0, None);
        assert_eq!(t.pulse_onsets(), 1);
        assert_eq!(rec.borrow().triggers(), 1);
        // Sustained drops at the same level do not re-fire.
        for _ in 0..40 {
            t.on_drop(&key(1));
        }
        t.on_period(3_000, 0, None);
        assert_eq!(t.pulse_onsets(), 1);
    }

    #[test]
    fn finish_is_idempotent_and_exports_dataset() {
        let dir = std::env::temp_dir().join("accturbo_obs_stream_test.csv");
        let mut t = Telemetry::new()
            .with_flow_sampler(FlowSampler::new(8, 1))
            .with_dataset(DatasetSink::create(&dir).unwrap());
        t.on_arrival(5, key(1), 0, 100);
        t.on_arrival(6, key(2), 1, 200);
        t.finish(1_000, 0, None);
        t.finish(2_000, 0, None);
        assert_eq!(t.dataset_rows(), 2);
        assert_eq!(t.periods(), 1, "second finish is a no-op");
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.starts_with(FlowRecord::CSV_HEADER));
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("attack"));
        let _ = std::fs::remove_file(&dir);
    }

    use crate::sample::FlowRecord;
}
