//! # accturbo-bench
//!
//! A dependency-free micro-benchmark harness. The build environment has
//! no crates.io access (see README.md), so Criterion is not available;
//! this module provides the subset the workspace's benches need:
//! warmup, iteration-count calibration, repeated samples, and a
//! median/min/mean report with optional element throughput.
//!
//! Bench binaries (`benches/*.rs`, `harness = false`) construct a
//! [`Harness`] from the command line and register closures:
//!
//! ```no_run
//! let h = accturbo_bench::Harness::from_args();
//! h.run("my_bench", || { /* timed work */ });
//! ```
//!
//! `cargo bench` passes `--bench`; any bare argument is a substring
//! filter on bench names; `--test` (what `cargo test --benches` passes)
//! switches to smoke mode — every selected bench runs exactly once so
//! CI catches breakage without paying for timing fidelity.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct Stats {
    /// The benchmark's name as printed.
    pub name: String,
    /// Per-iteration nanoseconds, one entry per sample, sorted ascending.
    pub ns_per_iter: Vec<f64>,
    /// Elements processed per iteration (enables throughput reporting).
    pub elements: Option<u64>,
}

impl Stats {
    /// Median nanoseconds per iteration — the headline number.
    pub fn median_ns(&self) -> f64 {
        let v = &self.ns_per_iter;
        if v.is_empty() {
            return 0.0;
        }
        let mid = v.len() / 2;
        if v.len() % 2 == 1 {
            v[mid]
        } else {
            (v[mid - 1] + v[mid]) / 2.0
        }
    }

    /// Fastest sample — the least-noise estimate of the true cost.
    pub fn min_ns(&self) -> f64 {
        self.ns_per_iter.first().copied().unwrap_or(0.0)
    }

    /// Mean nanoseconds per iteration across samples.
    pub fn mean_ns(&self) -> f64 {
        if self.ns_per_iter.is_empty() {
            return 0.0;
        }
        self.ns_per_iter.iter().sum::<f64>() / self.ns_per_iter.len() as f64
    }
}

/// Relative cost of `probe` over `base` in percent, median-based:
/// `+1.5` means the probe's median iteration is 1.5% slower.
pub fn overhead_pct(base: &Stats, probe: &Stats) -> f64 {
    let b = base.median_ns();
    if b <= 0.0 {
        return 0.0;
    }
    (probe.median_ns() - b) / b * 100.0
}

/// Formats nanoseconds with a human-scale unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The bench runner: selection, calibration, and reporting policy.
pub struct Harness {
    smoke: bool,
    filter: Vec<String>,
    samples: usize,
    target_sample: Duration,
}

impl Harness {
    /// Builds a harness from the process's command line: bare arguments
    /// are name filters, `--test` selects smoke mode, other flags (such
    /// as cargo's `--bench`) are ignored.
    pub fn from_args() -> Self {
        let mut smoke = false;
        let mut filter = Vec::new();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => smoke = true,
                s if s.starts_with('-') => {}
                s => filter.push(s.to_string()),
            }
        }
        Self::new(smoke, filter)
    }

    /// Builds a harness directly (used by tests).
    pub fn new(smoke: bool, filter: Vec<String>) -> Self {
        Harness {
            smoke,
            filter,
            samples: 15,
            target_sample: Duration::from_millis(25),
        }
    }

    /// Overrides the sample count (e.g. fewer samples for benches whose
    /// single iteration already takes seconds).
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Whether smoke mode (`--test`) is active.
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.is_empty() || self.filter.iter().any(|f| name.contains(f))
    }

    /// Benches a closure with no per-iteration setup. Returns the stats,
    /// or `None` when the name filter excludes it.
    pub fn run<F: FnMut()>(&self, name: &str, mut f: F) -> Option<Stats> {
        self.run_batched(name, None, || (), |()| f())
    }

    /// [`Harness::run`] with element-throughput reporting: `elements` is
    /// how many items one iteration processes.
    pub fn throughput<F: FnMut()>(&self, name: &str, elements: u64, mut f: F) -> Option<Stats> {
        self.run_batched(name, Some(elements), || (), |()| f())
    }

    /// The general form: `setup` builds fresh (untimed) state for every
    /// iteration, `routine` consumes it under the clock. Mirrors
    /// Criterion's `iter_batched`.
    pub fn run_batched<T, S, F>(
        &self,
        name: &str,
        elements: Option<u64>,
        mut setup: S,
        mut routine: F,
    ) -> Option<Stats>
    where
        S: FnMut() -> T,
        F: FnMut(T),
    {
        if !self.selected(name) {
            return None;
        }

        // One calibration pass: warms caches and estimates the cost so
        // each sample aggregates enough iterations to be clock-readable.
        let state = setup();
        let t0 = Instant::now();
        routine(state);
        let one = t0.elapsed().max(Duration::from_nanos(1));

        let (iters, samples) = if self.smoke {
            (1u64, 1usize)
        } else {
            let iters = (self.target_sample.as_nanos() / one.as_nanos()).clamp(1, 1_000_000);
            (iters as u64, self.samples)
        };

        let mut ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let state = setup();
                let t = Instant::now();
                routine(state);
                total += t.elapsed();
            }
            ns.push(total.as_nanos() as f64 / iters as f64);
        }
        ns.sort_by(f64::total_cmp);

        let stats = Stats {
            name: name.to_string(),
            ns_per_iter: ns,
            elements,
        };
        self.report(&stats, iters);
        Some(stats)
    }

    fn report(&self, s: &Stats, iters: u64) {
        let mut line = format!(
            "{:<40} median {:>12}/iter  (min {}, mean {})",
            s.name,
            fmt_ns(s.median_ns()),
            fmt_ns(s.min_ns()),
            fmt_ns(s.mean_ns()),
        );
        if let Some(elems) = s.elements {
            let per_sec = elems as f64 / (s.median_ns() * 1e-9);
            line.push_str(&format!("  [{:.1} Melem/s]", per_sec / 1e6));
        }
        if self.smoke {
            line.push_str("  (smoke: 1 iteration)");
        } else {
            line.push_str(&format!(
                "  [{iters} iters x {} samples]",
                s.ns_per_iter.len()
            ));
        }
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        let odd = Stats {
            name: "odd".into(),
            ns_per_iter: vec![1.0, 2.0, 9.0],
            elements: None,
        };
        assert_eq!(odd.median_ns(), 2.0);
        let even = Stats {
            name: "even".into(),
            ns_per_iter: vec![1.0, 2.0, 4.0, 9.0],
            elements: None,
        };
        assert_eq!(even.median_ns(), 3.0);
        assert_eq!(even.min_ns(), 1.0);
        assert_eq!(even.mean_ns(), 4.0);
    }

    #[test]
    fn overhead_pct_is_relative_to_base() {
        let base = Stats {
            name: "b".into(),
            ns_per_iter: vec![100.0],
            elements: None,
        };
        let probe = Stats {
            name: "p".into(),
            ns_per_iter: vec![102.0],
            elements: None,
        };
        assert!((overhead_pct(&base, &probe) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn smoke_mode_runs_each_bench_exactly_once() {
        let h = Harness::new(true, Vec::new());
        let mut calls = 0u32;
        // One calibration pass + one smoke sample.
        let stats = h.run("count_calls", || calls += 1).unwrap();
        assert_eq!(calls, 2);
        assert_eq!(stats.ns_per_iter.len(), 1);
    }

    #[test]
    fn filter_excludes_unmatched_names() {
        let h = Harness::new(true, vec!["queues".into()]);
        assert!(h.run("clustering_assign", || ()).is_none());
        assert!(h.run("queues_fifo", || ()).is_some());
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000 s");
    }
}
