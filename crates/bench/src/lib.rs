//! Criterion benchmarks live in benches/.
