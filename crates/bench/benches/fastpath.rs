//! Datapath fast-path throughput benches (DESIGN.md §8): the same three
//! kernels `xp bench-export` measures — engine step over the full
//! ACC-Turbo switch, online cluster update, SP-PIFO ranked enqueue —
//! each reported with packets/second, plus their pre-optimization
//! reference counterparts where the `reference` feature keeps one.
//!
//! Run: `cargo bench --bench fastpath` (smoke: `cargo test --benches`).

use accturbo_bench::Harness;
use accturbo_experiments::benchx;

fn main() {
    let h = Harness::from_args();
    let n: u64 = if h.smoke() { 4_000 } else { 20_000 };
    benchx::check_golden_identity().expect("optimized and reference kernels must agree");
    for row in benchx::run_rows(&h, n, benchx::DEFAULT_SHARDS) {
        if let Some(s) = row.speedup {
            println!("{:<40} speedup {s:.2}x vs reference", row.name);
        }
    }
}
