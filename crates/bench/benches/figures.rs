//! One Criterion benchmark per paper table/figure: each regenerates the
//! experiment at `Scale::Quick` (shortened durations, identical code
//! paths), so regressions in any reproduction pipeline are caught and
//! timed. The full-fidelity outputs come from `cargo run -p
//! accturbo-experiments --release -- all`.

use accturbo_experiments::{fig10, fig11, fig2, fig3, fig6, fig7, fig8, fig9, table3, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig2_quick", |b| {
        b.iter(|| black_box(fig2::report(Scale::Quick)))
    });
    group.bench_function("fig3_quick", |b| {
        b.iter(|| black_box(fig3::report(Scale::Quick)))
    });
    group.bench_function("fig6_quick", |b| {
        b.iter(|| black_box(fig6::report(Scale::Quick)))
    });
    group.bench_function("fig7_quick", |b| {
        b.iter(|| black_box(fig7::report(Scale::Quick)))
    });
    group.bench_function("table3_quick", |b| {
        b.iter(|| black_box(table3::report(Scale::Quick)))
    });
    group.bench_function("fig8_quick", |b| {
        b.iter(|| black_box(fig8::report(Scale::Quick)))
    });
    group.bench_function("fig9_quick", |b| {
        b.iter(|| black_box(fig9::report(Scale::Quick)))
    });
    group.bench_function("fig10_quick", |b| {
        b.iter(|| black_box(fig10::report(Scale::Quick)))
    });
    group.bench_function("fig11_quick", |b| {
        b.iter(|| black_box(fig11::report(Scale::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
