//! One benchmark per paper table/figure: each regenerates the experiment
//! at `Scale::Quick` (shortened durations, identical code paths), so
//! regressions in any reproduction pipeline are caught and timed. The
//! full-fidelity outputs come from `cargo run -p accturbo-experiments
//! --release -- all`.

use accturbo_bench::{black_box, Harness};
use accturbo_experiments::{fig10, fig11, fig2, fig3, fig6, fig7, fig8, fig9, table3, Scale};

fn main() {
    // One quick-scale iteration already takes O(seconds); three samples
    // keep `cargo bench` tolerable while still exposing regressions.
    let h = Harness::from_args().with_samples(3);

    h.run("figures/fig2_quick", || {
        black_box(fig2::report(Scale::Quick));
    });
    h.run("figures/fig3_quick", || {
        black_box(fig3::report(Scale::Quick));
    });
    h.run("figures/fig6_quick", || {
        black_box(fig6::report(Scale::Quick));
    });
    h.run("figures/fig7_quick", || {
        black_box(fig7::report(Scale::Quick));
    });
    h.run("figures/table3_quick", || {
        black_box(table3::report(Scale::Quick));
    });
    h.run("figures/fig8_quick", || {
        black_box(fig8::report(Scale::Quick));
    });
    h.run("figures/fig9_quick", || {
        black_box(fig9::report(Scale::Quick));
    });
    h.run("figures/fig10_quick", || {
        black_box(fig10::report(Scale::Quick));
    });
    h.run("figures/fig11_quick", || {
        black_box(fig11::report(Scale::Quick));
    });
}
