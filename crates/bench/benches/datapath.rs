//! Data-path microbenchmarks: the per-packet costs that determine whether
//! the reproduction's algorithms are line-rate-plausible — the clustering
//! assignment (per distance/search), the queue disciplines, the sketch,
//! and classic ACC's control-plane primitives.

use accturbo_acc::{infer_aggregates, water_fill};
use accturbo_bench::{black_box, Harness};
use accturbo_clustering::{
    ClusteringConfig, DistanceKind, FeatureSet, NominalMode, OnlineClusterer, SearchKind,
};
use accturbo_jaqen::CountMinSketch;
use accturbo_netsim::{
    ClassId, FifoQueue, Packet, PifoQueue, PriorityBank, QueueDiscipline, RedConfig, RedQueue,
    SimTime,
};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use std::net::Ipv4Addr;

fn packets(n: usize) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(99);
    (0..n)
        .map(|i| {
            let mut p = Packet::new(SimTime::from_micros(i as u64))
                .with_src(Ipv4Addr::new(rng.gen(), rng.gen(), rng.gen(), rng.gen()))
                .with_dst(Ipv4Addr::new(rng.gen(), rng.gen(), rng.gen(), rng.gen()))
                .with_ports(rng.gen(), rng.gen_range(1..1024))
                .with_size(rng.gen_range(64..1500))
                .with_ttl(rng.gen_range(32..128))
                .with_class(ClassId(rng.gen_range(0..2)));
            p.seq = i as u64;
            p
        })
        .collect()
}

fn bench_clustering(h: &Harness) {
    let pkts = packets(10_000);
    for (name, distance, search) in [
        (
            "clustering_assign/manhattan_fast",
            DistanceKind::Manhattan,
            SearchKind::Fast,
        ),
        (
            "clustering_assign/manhattan_exhaustive",
            DistanceKind::Manhattan,
            SearchKind::Exhaustive,
        ),
        (
            "clustering_assign/anime_fast",
            DistanceKind::Anime,
            SearchKind::Fast,
        ),
        (
            "clustering_assign/euclidean_fast",
            DistanceKind::Euclidean,
            SearchKind::Fast,
        ),
    ] {
        h.run_batched(
            name,
            Some(pkts.len() as u64),
            || {
                let mut cfg = ClusteringConfig::deployable(10, FeatureSet::simulation_default());
                cfg.distance = distance;
                cfg.search = search;
                cfg.nominal = NominalMode::Exact;
                OnlineClusterer::new(cfg)
            },
            |mut oc| {
                for p in &pkts {
                    black_box(oc.assign(p));
                }
            },
        );
    }
}

fn bench_queues(h: &Harness) {
    let pkts = packets(10_000);
    let elems = Some(pkts.len() as u64);

    h.run_batched(
        "queues/fifo_enqueue_dequeue",
        elems,
        || FifoQueue::new(64 * 1024 * 1024),
        |mut q| {
            let mut drops = Vec::new();
            for p in &pkts {
                q.enqueue(p.clone(), SimTime::ZERO, &mut drops);
            }
            while q.dequeue(SimTime::ZERO).is_some() {}
            black_box(drops.len());
        },
    );

    h.run_batched(
        "queues/red_enqueue_dequeue",
        elems,
        || {
            RedQueue::new(RedConfig {
                cap_bytes: 64 * 1024 * 1024,
                min_th: 2_000.0,
                max_th: 8_000.0,
                ..RedConfig::default()
            })
        },
        |mut q| {
            let mut drops = Vec::new();
            for p in &pkts {
                q.enqueue(p.clone(), p.arrival, &mut drops);
            }
            while q.dequeue(SimTime::ZERO).is_some() {}
            black_box(drops.len());
        },
    );

    h.run_batched(
        "queues/priority_bank_8q",
        elems,
        || PriorityBank::new(8, 16 * 1024 * 1024),
        |mut bank| {
            let mut drops = Vec::new();
            for (i, p) in pkts.iter().enumerate() {
                bank.enqueue_to(i % 8, p.clone(), SimTime::ZERO, &mut drops);
            }
            while bank.dequeue(SimTime::ZERO).is_some() {}
            black_box(drops.len());
        },
    );

    h.run_batched(
        "queues/pifo_ranked",
        elems,
        || PifoQueue::new(64 * 1024 * 1024),
        |mut q| {
            let mut drops = Vec::new();
            for p in &pkts {
                let rank = p.seq % 64;
                q.enqueue_ranked(p.clone(), rank, &mut drops);
            }
            while q.dequeue(SimTime::ZERO).is_some() {}
            black_box(drops.len());
        },
    );
}

fn bench_control_plane(h: &Harness) {
    // Count-min update (Jaqen's per-packet work).
    let keys: Vec<u64> = {
        let mut rng = StdRng::seed_from_u64(3);
        (0..10_000).map(|_| rng.gen()).collect()
    };
    h.run_batched(
        "control_plane/count_min_update",
        Some(keys.len() as u64),
        || CountMinSketch::new(3, 65_536),
        |mut s| {
            for &k in &keys {
                black_box(s.update(k, 1));
            }
        },
    );

    // Classic ACC's aggregate inference on a realistic drop history.
    let dropped: Vec<u32> = {
        let mut rng = StdRng::seed_from_u64(4);
        (0..20_000)
            .map(|i| {
                if i % 4 == 0 {
                    // hot /24
                    u32::from_be_bytes([198, 18, 5, rng.gen()])
                } else {
                    rng.gen()
                }
            })
            .collect()
    };
    h.run("control_plane/acc_infer_aggregates", || {
        black_box(infer_aggregates(&dropped, 5, 0.9));
    });

    let rates: Vec<f64> = (0..64).map(|i| 1e9 / (i + 1) as f64).collect();
    h.run("control_plane/acc_water_fill", || {
        black_box(water_fill(&rates, 5e8));
    });
}

fn main() {
    let h = Harness::from_args();
    bench_clustering(&h);
    bench_queues(&h);
    bench_control_plane(&h);
}
