//! Parallel-runner speedup: the full quick-scale figure set through the
//! `xp` pipeline with 1 worker vs the machine's available parallelism.
//!
//! Asserts (always, even in smoke mode) that the two byte streams are
//! identical — the runner's core contract — and *reports* the measured
//! speedup without gating on it, since CI cores vary (on a 1-core box
//! the expected speedup is 1×; on 4+ cores the figure fan-out reaches
//! ≥2× because the job costs are uneven but numerous).

use accturbo_bench::{black_box, Harness};
use accturbo_experiments::cli::{self, Cli};

fn quick_all(jobs: usize) -> Cli {
    let mut cli = cli::parse(&["--quick".to_string()]).expect("valid args");
    cli.jobs = jobs;
    cli
}

fn rendered_stream(cli: &Cli) -> String {
    let mut out = String::new();
    cli::run_figures(cli, |block| out.push_str(block));
    out
}

fn main() {
    let h = Harness::from_args().with_samples(3);
    let threads = accturbo_runner::default_threads();

    // The determinism assertion runs unconditionally (and doubles as the
    // timing warm-up).
    let serial_out = rendered_stream(&quick_all(1));
    let parallel_out = rendered_stream(&quick_all(threads));
    assert_eq!(
        serial_out, parallel_out,
        "xp output must be byte-identical for --jobs 1 and --jobs {threads}"
    );

    let serial = h.run("runner/quick_all_jobs_1", || {
        black_box(rendered_stream(&quick_all(1)));
    });
    let parallel = h.run(&format!("runner/quick_all_jobs_{threads}"), || {
        black_box(rendered_stream(&quick_all(threads)));
    });
    if let (Some(s), Some(p)) = (serial, parallel) {
        let speedup = s.median_ns() / p.median_ns().max(1.0);
        println!(
            "runner speedup: {speedup:.2}x with {threads} worker(s) \
             (reported, not gated; byte-identity asserted above)"
        );
    }
}
