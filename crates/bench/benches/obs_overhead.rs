//! Proof that observability is pay-for-what-you-use (DESIGN.md,
//! Observability): the plain `run` entry point monomorphizes
//! `run_instrumented` over `NoopTracer`, so the tracing branches must
//! compile out of the hot path. This bench runs the Fig. 2 ACC-Turbo
//! workload three ways on identical inputs:
//!
//! * `plain`    — `run` (the pre-observability datapath),
//! * `noop`     — `run_instrumented` with `NoopTracer` and no metrics,
//! * `streamed` — `run_streamed` with telemetry disabled (`None`), the
//!   path every figure run now takes,
//! * `active`   — `run_instrumented` with a live `RingTracer`, a metrics
//!   registry on both engine and switch, and stage timing enabled.
//!
//! The budgets are **noop ≤ plain + 2%** and **streamed-disabled ≤
//! plain + 2%** (medians over samples). The active row is
//! informational: it is the price of full tracing, not a budget.

use accturbo_bench::{black_box, fmt_ns, overhead_pct, Harness};
use accturbo_clustering::FeatureSet;
use accturbo_core::{AccTurboConfig, AccTurboSwitch};
use accturbo_netsim::{
    run, run_instrumented, run_streamed, Bandwidth, EngineConfig, MergedSource, SimDuration,
    SimTime,
};
use accturbo_obs::{shared, NoopTracer, Registry, RingTracer};
use accturbo_traffic::scenarios;
use std::cell::RefCell;
use std::rc::Rc;

const LINK: u64 = 10_000_000;
const SEED: u64 = 2022;
/// Simulated seconds per iteration: long enough to cross several control
/// periods and stats intervals, short enough for many samples.
const SECS: u64 = 2;

fn cfg() -> EngineConfig {
    EngineConfig::new(Bandwidth::from_bps(LINK))
        .with_stats_interval(SimDuration::from_secs(1))
        .with_end_time(SimTime::from_secs(SECS))
        .with_control_period(SimDuration::from_millis(250))
}

fn fresh() -> (MergedSource, AccTurboSwitch<'static>) {
    let src = scenarios::fig2_source(LINK, SEED);
    let sw = AccTurboSwitch::new(AccTurboConfig::simulation(FeatureSet::simulation_default()));
    (src, sw)
}

fn main() {
    let h = Harness::from_args().with_samples(21);

    let plain = h.run_batched(
        "obs_overhead/plain_run",
        None,
        fresh,
        |(mut src, mut sw)| {
            black_box(run(&mut src, &mut sw, &cfg()));
        },
    );

    let noop = h.run_batched(
        "obs_overhead/noop_tracer",
        None,
        fresh,
        |(mut src, mut sw)| {
            black_box(run_instrumented(
                &mut src,
                &mut sw,
                &cfg(),
                &mut NoopTracer,
                None,
            ));
        },
    );

    let streamed = h.run_batched(
        "obs_overhead/streamed_disabled",
        None,
        fresh,
        |(mut src, mut sw)| {
            black_box(run_streamed(
                &mut src,
                &mut sw,
                &cfg(),
                &mut NoopTracer,
                None,
                None,
                None,
            ));
        },
    );

    let _active = h.run_batched(
        "obs_overhead/active_tracing",
        None,
        || {
            let (src, mut sw) = fresh();
            let tracer = shared(RingTracer::new(1_000_000));
            let metrics = Rc::new(RefCell::new(Registry::new()));
            sw.set_tracer(Box::new(Rc::clone(&tracer)));
            sw.set_metrics(Rc::clone(&metrics));
            sw.set_timing(true);
            (src, sw, tracer, metrics)
        },
        |(mut src, mut sw, tracer, metrics)| {
            let mut engine_tracer = Rc::clone(&tracer);
            black_box(run_instrumented(
                &mut src,
                &mut sw,
                &cfg(),
                &mut engine_tracer,
                Some(&metrics),
            ));
        },
    );

    let mut failed = false;
    if let Some(plain) = &plain {
        for (label, row) in [
            ("noop-instrumented", &noop),
            ("streamed-disabled", &streamed),
        ] {
            let Some(row) = row else { continue };
            let pct = overhead_pct(plain, row);
            let verdict = if pct <= 2.0 { "PASS" } else { "FAIL" };
            println!(
                "\n{label} vs plain: {:+.2}% (budget +2.00%) ... {}",
                pct, verdict
            );
            println!(
                "  plain median {}, {label} median {}",
                fmt_ns(plain.median_ns()),
                fmt_ns(row.median_ns())
            );
            if h.smoke() {
                println!("  (smoke mode: single iteration, percentage is noise)");
            } else if pct > 2.0 {
                failed = true;
            }
        }
    }
    // A loaded machine can push any single run past the budget; a
    // nonzero exit makes the regression visible to CI wrappers.
    if failed {
        std::process::exit(1);
    }
}
