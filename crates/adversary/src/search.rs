//! The two-phase optimizer: seeded random exploration, then batched
//! simulated-annealing refinement.

use crate::genome::AttackGenome;
use crate::space::SearchSpace;
use accturbo_prng::{Rng, SeedableRng, StdRng};

/// What one evaluation of an attack reports back: how much the attack
/// hurt legitimate traffic under the defense being probed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DamageMetrics {
    /// The objective the search maximizes, in `[0, 1]` by convention
    /// (the experiments layer uses the benign drop fraction).
    pub damage: f64,
    /// Benign packets dropped, percent.
    pub benign_drop_pct: f64,
    /// Attack packets dropped, percent (context: a good defense drops
    /// much attack and little benign).
    pub attack_drop_pct: f64,
    /// Benign goodput across the run, megabits per second.
    pub benign_mbps: f64,
}

/// A genome together with the damage it inflicted.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// The attack.
    pub genome: AttackGenome,
    /// Its measured damage.
    pub metrics: DamageMetrics,
}

/// Search hyper-parameters. Everything that shapes the trajectory is
/// here, so `(SearchSpace, SearchConfig, evaluator)` fully determines
/// the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Total number of scenario evaluations.
    pub budget: usize,
    /// PRNG seed for sampling, mutation, and acceptance draws.
    pub seed: u64,
    /// Worker threads for batch evaluation (results are index-ordered,
    /// so this never changes the outcome — only the wall clock).
    pub jobs: usize,
    /// Fraction of the budget spent on uniform random exploration
    /// before annealing starts.
    pub explore_frac: f64,
    /// Proposals evaluated per annealing round (the parallelism grain).
    pub batch: usize,
    /// Frontier size: how many distinct top attacks survive into the
    /// corpus.
    pub corpus_size: usize,
    /// Initial annealing temperature (damage units).
    pub init_temp: f64,
    /// Multiplicative cooling applied after every annealing round.
    pub cooling: f64,
}

impl SearchConfig {
    /// Defaults tuned for the repo's quick scenarios: half the budget
    /// explores, batches of 4 anneal with a 0.4 → ×0.85/round schedule.
    pub fn new(budget: usize, seed: u64) -> Self {
        SearchConfig {
            budget,
            seed,
            jobs: 1,
            explore_frac: 0.5,
            batch: 4,
            corpus_size: 10,
            init_temp: 0.4,
            cooling: 0.85,
        }
    }

    /// Overrides the worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Overrides the frontier size.
    pub fn with_corpus_size(mut self, n: usize) -> Self {
        self.corpus_size = n;
        self
    }
}

/// What [`search`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Every evaluated candidate, in evaluation order (exploration
    /// batch first, then each annealing round's proposals).
    pub evaluated: Vec<Evaluated>,
    /// The top distinct attacks by damage, best first, at most
    /// `corpus_size` long.
    pub frontier: Vec<Evaluated>,
    /// Best damage seen so far, recorded after the exploration phase
    /// and after every annealing round (monotone non-decreasing).
    pub best_trajectory: Vec<f64>,
}

impl SearchOutcome {
    /// The single worst attack found (the frontier's head).
    pub fn best(&self) -> &Evaluated {
        &self.frontier[0]
    }
}

/// Index of the highest-damage entry (first wins ties, so the reduction
/// is order-deterministic).
fn argmax(evals: &[Evaluated]) -> usize {
    let mut best = 0;
    for (i, e) in evals.iter().enumerate().skip(1) {
        if e.metrics
            .damage
            .total_cmp(&evals[best].metrics.damage)
            .is_gt()
        {
            best = i;
        }
    }
    best
}

/// Evaluates `genomes` on the runner pool; results come back in genome
/// order regardless of thread count.
fn batch_eval<E>(jobs: usize, genomes: &[AttackGenome], eval: &E) -> Vec<Evaluated>
where
    E: Fn(&AttackGenome) -> DamageMetrics + Sync,
{
    accturbo_runner::run(jobs, genomes.len(), |i| eval(&genomes[i]))
        .into_iter()
        .map(|r| Evaluated {
            genome: genomes[r.index].clone(),
            metrics: r.output,
        })
        .collect()
}

/// Runs the adversarial search: `budget · explore_frac` uniform random
/// candidates, then simulated-annealing rounds of `batch` mutations of
/// the incumbent until the budget is spent. Deterministic by
/// construction — every PRNG draw happens on the calling thread in a
/// fixed order, and candidate batches are generated *before* they are
/// evaluated, so the trajectory is independent of `jobs` and of
/// evaluation latency.
pub fn search<E>(space: &SearchSpace, cfg: &SearchConfig, eval: E) -> SearchOutcome
where
    E: Fn(&AttackGenome) -> DamageMetrics + Sync,
{
    assert!(cfg.budget >= 2, "search budget must be at least 2");
    assert!(cfg.corpus_size >= 1, "corpus size must be at least 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let explore_n = ((cfg.budget as f64 * cfg.explore_frac).round() as usize).clamp(1, cfg.budget);

    let explore: Vec<AttackGenome> = (0..explore_n).map(|_| space.sample(&mut rng)).collect();
    let mut evaluated = batch_eval(cfg.jobs, &explore, &eval);
    let mut current = evaluated[argmax(&evaluated)].clone();
    let mut best = current.clone();
    let mut best_trajectory = vec![best.metrics.damage];

    let mut temp = cfg.init_temp;
    while evaluated.len() < cfg.budget {
        let k = cfg.batch.min(cfg.budget - evaluated.len());
        let proposals: Vec<AttackGenome> = (0..k)
            .map(|_| space.mutate(&current.genome, &mut rng, temp))
            .collect();
        let round = batch_eval(cfg.jobs, &proposals, &eval);
        let candidate = round[argmax(&round)].clone();
        evaluated.extend(round);

        let delta = candidate.metrics.damage - current.metrics.damage;
        if delta >= 0.0 {
            current = candidate;
        } else {
            // Metropolis acceptance: occasionally step downhill while
            // hot, so the walk can leave local maxima. The draw happens
            // unconditionally on the main thread (fixed PRNG order).
            let p = (delta / temp.max(1e-9)).exp().clamp(0.0, 1.0);
            if rng.gen_bool(p) {
                current = candidate;
            }
        }
        if current
            .metrics
            .damage
            .total_cmp(&best.metrics.damage)
            .is_gt()
        {
            best = current.clone();
        }
        best_trajectory.push(best.metrics.damage);
        temp *= cfg.cooling;
    }

    // Frontier: the distinct top attacks. Stable sort + first-seen
    // dedup keeps the reduction order-deterministic.
    let mut ranked = evaluated.clone();
    ranked.sort_by(|a, b| b.metrics.damage.total_cmp(&a.metrics.damage));
    let mut seen = std::collections::BTreeSet::new();
    let frontier: Vec<Evaluated> = ranked
        .into_iter()
        .filter(|e| seen.insert(e.genome.key()))
        .take(cfg.corpus_size)
        .collect();

    SearchOutcome {
        evaluated,
        frontier,
        best_trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap analytic damage landscape: rewards long duty, high
    /// amplitude, some spreading, and short periods — no simulation.
    fn synthetic(g: &AttackGenome) -> DamageMetrics {
        let duty = g.duty_pct as f64 / 100.0;
        let amp = g.amp_mbps as f64 / 80.0;
        let period = 1.0 - g.period_ms as f64 / 5000.0;
        let spread = g.spread as f64 / 3.0;
        let damage = 0.4 * duty + 0.3 * amp + 0.2 * period + 0.1 * spread;
        DamageMetrics {
            damage,
            benign_drop_pct: damage * 100.0,
            attack_drop_pct: 100.0 - damage * 100.0,
            benign_mbps: (1.0 - damage) * 7.0,
        }
    }

    #[test]
    fn spends_exactly_the_budget_and_improves() {
        let space = SearchSpace::default();
        let cfg = SearchConfig::new(40, 1);
        let out = search(&space, &cfg, synthetic);
        assert_eq!(out.evaluated.len(), 40);
        let t = &out.best_trajectory;
        assert!(t.windows(2).all(|w| w[1] >= w[0]), "monotone best");
        assert!(out.best().metrics.damage >= t[0], "refinement helps");
    }

    #[test]
    fn frontier_is_sorted_distinct_and_bounded() {
        let space = SearchSpace::default();
        let cfg = SearchConfig::new(60, 2).with_corpus_size(5);
        let out = search(&space, &cfg, synthetic);
        assert!(out.frontier.len() <= 5);
        assert!(out
            .frontier
            .windows(2)
            .all(|w| w[0].metrics.damage >= w[1].metrics.damage));
        let keys: std::collections::BTreeSet<_> =
            out.frontier.iter().map(|e| e.genome.key()).collect();
        assert_eq!(keys.len(), out.frontier.len(), "frontier dedup");
    }

    #[test]
    fn downhill_moves_are_possible_but_bounded() {
        // With a hot schedule the walk must still terminate and keep
        // its best-so-far monotone (the trajectory tracks `best`, not
        // `current`).
        let space = SearchSpace::default();
        let mut cfg = SearchConfig::new(30, 3);
        cfg.init_temp = 10.0;
        cfg.cooling = 1.0;
        let out = search(&space, &cfg, synthetic);
        assert_eq!(out.evaluated.len(), 30);
        assert!(out.best_trajectory.windows(2).all(|w| w[1] >= w[0]));
    }
}
