//! The replayable worst-case corpus: a plain-text, diff-friendly record
//! of the attacks a search found and the damage each inflicted.
//!
//! Format (`# accturbo adversarial corpus v1`):
//!
//! ```text
//! # accturbo adversarial corpus v1
//! defense accturbo
//! link 100000000
//! secs 8
//! seed 2989
//! budget 48
//! entry damage 0.42 benign_drop_pct 42.0 attack_drop_pct 58.0 benign_mbps 4.1 workload pulse:duty=0.9
//! ```
//!
//! Header lines pin the scenario parameters every entry replays under;
//! each `entry` line carries the metrics and the one-line `pulse:`
//! workload spec. Floats are written with `{:?}` (shortest
//! round-trippable form), so parsing a corpus back yields bit-identical
//! values — the property the replay goldens rely on.

use crate::search::DamageMetrics;

/// One committed attack: its replayable workload spec plus the damage
/// it inflicted when found.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// The one-line `WorkloadSpec` grammar string (no spaces).
    pub workload: String,
    /// The damage measured at search time (the replay golden).
    pub metrics: DamageMetrics,
}

/// A defense's worst-case corpus: the scenario frame (defense, link,
/// secs, seed, budget) plus the frontier entries found under it.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    /// The `DefenseSpec` grammar string the attacks were found against.
    pub defense: String,
    /// Bottleneck bandwidth of every replay, bits per second.
    pub link_bps: u64,
    /// Run length of every replay, seconds.
    pub secs: u64,
    /// Workload seed of every replay (also the search seed).
    pub seed: u64,
    /// The search budget that produced this corpus.
    pub budget: usize,
    /// Frontier attacks, best first.
    pub entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// Serializes to the v1 text format (byte-deterministic).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# accturbo adversarial corpus v1\n");
        out.push_str(&format!("defense {}\n", self.defense));
        out.push_str(&format!("link {}\n", self.link_bps));
        out.push_str(&format!("secs {}\n", self.secs));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("budget {}\n", self.budget));
        for e in &self.entries {
            let m = &e.metrics;
            out.push_str(&format!(
                "entry damage {:?} benign_drop_pct {:?} attack_drop_pct {:?} \
                 benign_mbps {:?} workload {}\n",
                m.damage, m.benign_drop_pct, m.attack_drop_pct, m.benign_mbps, e.workload
            ));
        }
        out
    }

    /// Parses the v1 text format, validating the header and every entry.
    pub fn parse(text: &str) -> Result<Corpus, String> {
        let mut defense = None;
        let mut link_bps = None;
        let mut secs = None;
        let mut seed = None;
        let mut budget = None;
        let mut entries = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = |e: &str| format!("corpus line {}: {e}", ln + 1);
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| at("expected `key value`"))?;
            match key {
                "defense" => defense = Some(rest.to_string()),
                "link" => {
                    link_bps = Some(rest.parse().map_err(|_| at("bad link"))?);
                }
                "secs" => secs = Some(rest.parse().map_err(|_| at("bad secs"))?),
                "seed" => seed = Some(rest.parse().map_err(|_| at("bad seed"))?),
                "budget" => budget = Some(rest.parse().map_err(|_| at("bad budget"))?),
                "entry" => entries.push(parse_entry(rest).map_err(|e| at(&e))?),
                other => return Err(at(&format!("unknown key `{other}`"))),
            }
        }
        Ok(Corpus {
            defense: defense.ok_or("corpus missing `defense` header")?,
            link_bps: link_bps.ok_or("corpus missing `link` header")?,
            secs: secs.ok_or("corpus missing `secs` header")?,
            seed: seed.ok_or("corpus missing `seed` header")?,
            budget: budget.ok_or("corpus missing `budget` header")?,
            entries,
        })
    }
}

/// Parses the tail of an `entry` line: alternating field names and
/// values, ending with `workload <spec>`.
fn parse_entry(rest: &str) -> Result<CorpusEntry, String> {
    let mut tokens = rest.split_whitespace();
    let mut field = |name: &str| -> Result<String, String> {
        match tokens.next() {
            Some(t) if t == name => tokens
                .next()
                .map(str::to_string)
                .ok_or_else(|| format!("missing value for `{name}`")),
            got => Err(format!("expected `{name}`, got {got:?}")),
        }
    };
    let num = |name: &str, v: String| -> Result<f64, String> {
        v.parse().map_err(|_| format!("bad {name} `{v}`"))
    };
    let damage = num("damage", field("damage")?)?;
    let benign_drop_pct = num("benign_drop_pct", field("benign_drop_pct")?)?;
    let attack_drop_pct = num("attack_drop_pct", field("attack_drop_pct")?)?;
    let benign_mbps = num("benign_mbps", field("benign_mbps")?)?;
    let workload = field("workload")?;
    if tokens.next().is_some() {
        return Err("trailing tokens after workload".into());
    }
    Ok(CorpusEntry {
        workload,
        metrics: DamageMetrics {
            damage,
            benign_drop_pct,
            attack_drop_pct,
            benign_mbps,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Corpus {
        Corpus {
            defense: "accturbo:profile=hw".into(),
            link_bps: 100_000_000,
            secs: 8,
            seed: 0xA77,
            budget: 48,
            entries: vec![
                CorpusEntry {
                    workload: "pulse:duty=0.9:amp=80m".into(),
                    metrics: DamageMetrics {
                        damage: 0.421875,
                        benign_drop_pct: 42.187_5,
                        attack_drop_pct: 61.3,
                        benign_mbps: 4.052_734_375,
                    },
                },
                CorpusEntry {
                    workload: "pulse:period=0.3:vectors=SYN".into(),
                    metrics: DamageMetrics {
                        damage: 0.1 + 0.2, // deliberately non-terminating binary
                        benign_drop_pct: 30.000_000_000_000_004,
                        attack_drop_pct: 70.0,
                        benign_mbps: 4.9,
                    },
                },
            ],
        }
    }

    #[test]
    fn text_round_trips_bit_exactly() {
        let c = sample();
        let text = c.to_text();
        let back = Corpus::parse(&text).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.to_text(), text, "serialization is a fixed point");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Corpus::parse("defense x\n").is_err(), "missing headers");
        assert!(
            Corpus::parse("defense x\nlink 1\nsecs 1\nseed 0\nbudget 2\nentry damage oops\n")
                .is_err()
        );
        assert!(
            Corpus::parse("wibble 3\n").is_err(),
            "unknown keys are errors"
        );
        let mut text = sample().to_text();
        text.push_str("entry damage 0.1 benign_drop_pct 1 attack_drop_pct 2\n");
        assert!(Corpus::parse(&text).is_err(), "truncated entry");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let mut text = String::from("# hello\n\n");
        text.push_str(&sample().to_text());
        assert_eq!(Corpus::parse(&text).unwrap(), sample());
    }
}
