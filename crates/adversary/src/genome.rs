//! The quantized attack encoding the optimizer walks over.

use accturbo_netsim::SimDuration;
use accturbo_traffic::{AttackVector, PulseAttackConfig};

/// One point of the search space: a pulse-wave attack with every knob
/// quantized to integers (milliseconds, percent, megabits) so genomes
/// compare exactly, hash stably, and survive text round-trips without
/// float drift. [`AttackGenome::to_config`] maps a genome onto the
/// workload generator's [`PulseAttackConfig`]; the experiments layer
/// wraps that in the `pulse:` grammar to obtain a replayable spec line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackGenome {
    /// Full pulse cycle, milliseconds.
    pub period_ms: u64,
    /// On fraction of the cycle, percent (1..=100).
    pub duty_pct: u32,
    /// Peak burst amplitude, megabits per second.
    pub amp_mbps: u32,
    /// Vector mix, cycled per pulse (distinct, order significant).
    pub vectors: Vec<AttackVector>,
    /// Feature-spreading level (0..=3, see `PulseAttackConfig::spread`).
    pub spread: u8,
    /// Per-pulse linear ramp-up, milliseconds (0 = square pulses).
    pub ramp_ms: u64,
}

impl AttackGenome {
    /// The workload-generator config this genome denotes.
    pub fn to_config(&self) -> PulseAttackConfig {
        PulseAttackConfig {
            period: SimDuration::from_millis(self.period_ms),
            duty: self.duty_pct as f64 / 100.0,
            amp_bps: self.amp_mbps as u64 * 1_000_000,
            vectors: self.vectors.clone(),
            spread: self.spread,
            ramp: SimDuration::from_millis(self.ramp_ms),
        }
    }

    /// A canonical dedup key: two genomes denote the same attack iff
    /// their keys match.
    pub fn key(&self) -> String {
        let names: Vec<&str> = self.vectors.iter().map(|v| v.name()).collect();
        format!(
            "p{}:d{}:a{}:v{}:s{}:r{}",
            self.period_ms,
            self.duty_pct,
            self.amp_mbps,
            names.join("+"),
            self.spread,
            self.ramp_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_config_maps_units() {
        let g = AttackGenome {
            period_ms: 1500,
            duty_pct: 35,
            amp_mbps: 60,
            vectors: vec![AttackVector::SynFlood, AttackVector::Ntp],
            spread: 2,
            ramp_ms: 300,
        };
        let cfg = g.to_config();
        assert_eq!(cfg.period, SimDuration::from_millis(1500));
        assert_eq!(cfg.duty, 0.35);
        assert_eq!(cfg.amp_bps, 60_000_000);
        assert_eq!(cfg.vectors, g.vectors);
        assert_eq!(cfg.spread, 2);
        assert_eq!(cfg.ramp, SimDuration::from_millis(300));
        assert_eq!(g.key(), "p1500:d35:a60:vSYN+NTP:s2:r300");
    }
}
