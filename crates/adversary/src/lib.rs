//! # accturbo-adversary
//!
//! Deterministic adversarial attack search (ROADMAP item 3, DESIGN.md
//! §12): a PRNG-seeded optimizer that hunts for the pulse-wave attack
//! each defense handles *worst*. The search space is the set of
//! [`accturbo_traffic::PulseAttackConfig`] knobs — pulse period, duty
//! cycle, burst amplitude, vector mix, feature spreading, ramp shape —
//! quantized into an [`AttackGenome`] so every candidate is a finite,
//! exactly-reproducible point that round-trips through the `pulse:`
//! workload grammar as a one-line replayable spec.
//!
//! The optimizer ([`search`]) is a two-phase loop: seeded random
//! exploration over the whole space, then batched simulated-annealing
//! refinement around the incumbent. All PRNG draws happen on the
//! calling thread in a fixed order and candidate batches are evaluated
//! through `accturbo_runner` (index-ordered delivery), so the outcome
//! is a pure function of `(space, config, evaluator)` — byte-identical
//! across `--jobs` counts and across runs.
//!
//! What the search finds is frozen into a [`Corpus`]: a plain-text,
//! diff-friendly file of attack specs plus the damage each inflicted,
//! committed under `tests/corpus/` and replayed as goldens so future
//! datapath changes can't silently regress robustness.
//!
//! This crate deliberately does **not** depend on the experiments
//! crate: the evaluator is a closure, so the scenario layer plugs in
//! from above and the search stays testable against cheap synthetic
//! landscapes.

#![deny(missing_docs)]

pub mod corpus;
pub mod genome;
pub mod search;
pub mod space;

pub use corpus::{Corpus, CorpusEntry};
pub use genome::AttackGenome;
pub use search::{search, DamageMetrics, Evaluated, SearchConfig, SearchOutcome};
pub use space::SearchSpace;
