//! The bounded, quantized search space and its sampling/mutation moves.

use crate::genome::AttackGenome;
use accturbo_prng::{Rng, StdRng};
use accturbo_traffic::AttackVector;

/// An inclusive quantized range: values are `lo + k·step` for
/// `k = 0 ..= (hi − lo) / step`.
type SteppedRange = (u64, u64, u64);

/// The bounds the optimizer explores. Every knob is a stepped integer
/// range, so the space is finite and every sampled genome lands exactly
/// on a grammar-representable value (milliseconds, percent, megabits).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Pulse period bounds, milliseconds.
    pub period_ms: SteppedRange,
    /// Duty-cycle bounds, percent.
    pub duty_pct: SteppedRange,
    /// Burst-amplitude bounds, megabits per second.
    pub amp_mbps: SteppedRange,
    /// Vectors a genome may mix (order fixes sampling determinism).
    pub vector_pool: Vec<AttackVector>,
    /// Largest vector mix a genome may carry.
    pub max_vectors: usize,
    /// Largest feature-spreading level.
    pub max_spread: u8,
    /// Ramp-up bounds, milliseconds (0 = square pulses allowed).
    pub ramp_ms: SteppedRange,
}

impl Default for SearchSpace {
    /// The full pulse-wave attack space at the repo's scaled rates:
    /// sub-second to multi-second pulses, 5–100% duty, bursts up to 8×
    /// the bottleneck, any mix of up to 3 classic vectors, all four
    /// spreading levels, ramps up to one second.
    fn default() -> Self {
        SearchSpace {
            period_ms: (100, 5000, 100),
            duty_pct: (5, 100, 5),
            amp_mbps: (10, 80, 10),
            vector_pool: AttackVector::ALL.to_vec(),
            max_vectors: 3,
            max_spread: 3,
            ramp_ms: (0, 1000, 100),
        }
    }
}

/// Draws a uniform value from a stepped range.
fn pick(rng: &mut StdRng, (lo, hi, step): SteppedRange) -> u64 {
    lo + step * rng.gen_range(0..=(hi - lo) / step)
}

/// Jitters `cur` by up to `±width` steps (temperature-scaled), clamped
/// to the range. Always moves within the grid.
fn jitter(rng: &mut StdRng, cur: u64, (lo, hi, step): SteppedRange, temp: f64) -> u64 {
    let span = (hi - lo) / step;
    let width = ((span as f64 * 0.5 * temp).round() as u64).clamp(1, span.max(1));
    let delta = rng.gen_range(0..=2 * width) as i64 - width as i64;
    let idx = ((cur.clamp(lo, hi) - lo) / step) as i64 + delta;
    lo + step * idx.clamp(0, span as i64) as u64
}

impl SearchSpace {
    /// Draws a uniform random genome. Knob order is fixed (period, duty,
    /// amp, vectors, spread, ramp) — part of the search's determinism
    /// contract.
    pub fn sample(&self, rng: &mut StdRng) -> AttackGenome {
        let period_ms = pick(rng, self.period_ms);
        let duty_pct = pick(rng, self.duty_pct) as u32;
        let amp_mbps = pick(rng, self.amp_mbps) as u32;
        let n = rng.gen_range(1..=self.max_vectors.min(self.vector_pool.len()));
        let mut pool = self.vector_pool.clone();
        let mut vectors = Vec::with_capacity(n);
        for _ in 0..n {
            vectors.push(pool.remove(rng.gen_range(0..pool.len())));
        }
        let spread = rng.gen_range(0..=self.max_spread as u32) as u8;
        let ramp_ms = pick(rng, self.ramp_ms);
        AttackGenome {
            period_ms,
            duty_pct,
            amp_mbps,
            vectors,
            spread,
            ramp_ms,
        }
    }

    /// Proposes a neighbour of `g`: one knob is perturbed, with the
    /// perturbation width shrinking as `temp` cools. Numeric knobs move
    /// on their grid; the vector mix gains, loses, or swaps one vector.
    pub fn mutate(&self, g: &AttackGenome, rng: &mut StdRng, temp: f64) -> AttackGenome {
        let mut out = g.clone();
        match rng.gen_range(0..6u32) {
            0 => out.period_ms = jitter(rng, out.period_ms, self.period_ms, temp),
            1 => out.duty_pct = jitter(rng, out.duty_pct as u64, self.duty_pct, temp) as u32,
            2 => out.amp_mbps = jitter(rng, out.amp_mbps as u64, self.amp_mbps, temp) as u32,
            3 => self.mutate_vectors(&mut out.vectors, rng),
            4 => out.spread = rng.gen_range(0..=self.max_spread as u32) as u8,
            _ => out.ramp_ms = jitter(rng, out.ramp_ms, self.ramp_ms, temp),
        }
        out
    }

    /// One vector-mix move: add an unused pool vector, drop one, or swap
    /// one for an unused one — whichever the draw picks and the mix's
    /// size permits.
    fn mutate_vectors(&self, vectors: &mut Vec<AttackVector>, rng: &mut StdRng) {
        let unused: Vec<AttackVector> = self
            .vector_pool
            .iter()
            .copied()
            .filter(|v| !vectors.contains(v))
            .collect();
        let can_grow = vectors.len() < self.max_vectors && !unused.is_empty();
        let can_shrink = vectors.len() > 1;
        match rng.gen_range(0..3u32) {
            0 if can_grow => vectors.push(unused[rng.gen_range(0..unused.len())]),
            1 if can_shrink => {
                let at = rng.gen_range(0..vectors.len());
                vectors.remove(at);
            }
            _ if !unused.is_empty() => {
                let at = rng.gen_range(0..vectors.len());
                vectors[at] = unused[rng.gen_range(0..unused.len())];
            }
            _ => {}
        }
    }

    /// True when every knob of `g` lies on this space's grid.
    pub fn contains(&self, g: &AttackGenome) -> bool {
        let on = |v: u64, (lo, hi, step): SteppedRange| {
            v >= lo && v <= hi && (v - lo).is_multiple_of(step)
        };
        on(g.period_ms, self.period_ms)
            && on(g.duty_pct as u64, self.duty_pct)
            && on(g.amp_mbps as u64, self.amp_mbps)
            && !g.vectors.is_empty()
            && g.vectors.len() <= self.max_vectors
            && g.vectors.iter().all(|v| self.vector_pool.contains(v))
            && g.spread <= self.max_spread
            && on(g.ramp_ms, self.ramp_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_prng::SeedableRng;

    #[test]
    fn samples_stay_on_the_grid() {
        let space = SearchSpace::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let g = space.sample(&mut rng);
            assert!(space.contains(&g), "off-grid sample: {g:?}");
            let distinct: std::collections::BTreeSet<_> =
                g.vectors.iter().map(|v| v.name()).collect();
            assert_eq!(distinct.len(), g.vectors.len(), "duplicate vectors");
        }
    }

    #[test]
    fn mutations_stay_on_the_grid() {
        let space = SearchSpace::default();
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = space.sample(&mut rng);
        for round in 0..500 {
            g = space.mutate(&g, &mut rng, 0.4 * 0.85f64.powi(round / 10));
            assert!(space.contains(&g), "off-grid mutation: {g:?}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let space = SearchSpace::default();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            assert_eq!(space.sample(&mut a), space.sample(&mut b));
        }
        let mut c = StdRng::seed_from_u64(43);
        let diverged = (0..50).any(|_| space.sample(&mut a) != space.sample(&mut c));
        assert!(diverged, "different seeds should explore differently");
    }
}
