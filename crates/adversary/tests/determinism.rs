//! The search's determinism contract, checked against a cheap synthetic
//! damage landscape (no simulation): same seed + budget ⇒ identical
//! outcome and identical corpus bytes; the jobs count never changes the
//! result, only the wall clock.

use accturbo_adversary::{search, AttackGenome, Corpus, CorpusEntry, DamageMetrics};
use accturbo_adversary::{SearchConfig, SearchSpace};

/// A deterministic analytic landscape with mild multi-modality (the
/// trig term), so annealing has something to climb.
fn synthetic(g: &AttackGenome) -> DamageMetrics {
    let duty = g.duty_pct as f64 / 100.0;
    let amp = g.amp_mbps as f64 / 80.0;
    let wave = (g.period_ms as f64 / 500.0).sin().abs();
    let damage = 0.5 * duty + 0.3 * amp + 0.2 * wave;
    DamageMetrics {
        damage,
        benign_drop_pct: damage * 100.0,
        attack_drop_pct: 100.0 - damage * 50.0,
        benign_mbps: (1.0 - damage) * 7.0,
    }
}

fn corpus_for(jobs: usize, seed: u64) -> (Corpus, Vec<f64>) {
    let space = SearchSpace::default();
    let cfg = SearchConfig::new(48, seed).with_jobs(jobs);
    let out = search(&space, &cfg, synthetic);
    assert_eq!(out.evaluated.len(), cfg.budget, "budget fully spent");
    let corpus = Corpus {
        defense: "synthetic".into(),
        link_bps: 100_000_000,
        secs: 8,
        seed,
        budget: cfg.budget,
        entries: out
            .frontier
            .iter()
            .map(|e| CorpusEntry {
                workload: e.genome.key(),
                metrics: e.metrics,
            })
            .collect(),
    };
    (corpus, out.best_trajectory)
}

#[test]
fn same_seed_and_budget_give_identical_corpus_bytes() {
    let (a, ta) = corpus_for(1, 7);
    let (b, tb) = corpus_for(1, 7);
    assert_eq!(a.to_text(), b.to_text());
    assert_eq!(ta, tb);
}

#[test]
fn serial_and_parallel_search_are_byte_identical() {
    let (serial, ts) = corpus_for(1, 42);
    for jobs in [2, 4, 8] {
        let (parallel, tp) = corpus_for(jobs, 42);
        assert_eq!(
            serial.to_text(),
            parallel.to_text(),
            "jobs={jobs} changed the corpus"
        );
        assert_eq!(ts, tp, "jobs={jobs} changed the trajectory");
    }
}

#[test]
fn different_seeds_explore_differently() {
    let (a, _) = corpus_for(1, 1);
    let (b, _) = corpus_for(1, 2);
    assert_ne!(
        a.entries.first().map(|e| &e.workload),
        b.entries.first().map(|e| &e.workload),
        "distinct seeds should find distinct frontiers on this landscape"
    );
}

#[test]
fn corpus_text_replays_to_the_same_value() {
    let (c, _) = corpus_for(4, 9);
    let back = Corpus::parse(&c.to_text()).unwrap();
    assert_eq!(back, c);
    assert!(c.entries.len() <= 10);
    assert!(!c.entries.is_empty());
}
