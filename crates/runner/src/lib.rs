//! # accturbo-runner
//!
//! A dependency-free `std::thread` worker-pool for fanning out
//! independent experiment jobs (figure × seed × scale) while keeping the
//! *observable* output deterministic: results are delivered to the
//! caller **by job index, not by completion order**, so a parallel run
//! is byte-identical to a serial one.
//!
//! Scheduling is a shared atomic job counter — each idle worker claims
//! the next unclaimed index, which self-balances uneven job costs the
//! same way work stealing does, without per-worker deques. The caller's
//! thread is the single consumer: it sleeps on a condvar and drains
//! finished jobs in index order, so `consume` needs neither `Send` nor
//! any locking of its own.
//!
//! ```
//! let squares = accturbo_runner::run(4, 8, |i| i * i);
//! assert_eq!(squares.iter().map(|j| j.output).collect::<Vec<_>>(),
//!            vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```
//!
//! Panics inside a job are caught on the worker, carried to the caller,
//! and resumed on the consuming thread at that job's position in the
//! delivery order, so a failing job cannot deadlock the pool.

#![deny(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One finished job: its output plus wall-clock span data relative to
/// the pool's start (for per-job trace spans and speedup reports).
#[derive(Debug, Clone)]
pub struct JobResult<T> {
    /// The job's index in `0..n_jobs` — also its delivery position.
    pub index: usize,
    /// The worker thread (0-based) that ran the job.
    pub worker: usize,
    /// What the job closure returned.
    pub output: T,
    /// Start of the job, measured from the pool's launch.
    pub started_at: Duration,
    /// Wall-clock time the job took.
    pub elapsed: Duration,
}

type JobSlot<T> = Option<Result<JobResult<T>, Box<dyn std::any::Any + Send>>>;

/// The number of worker threads to use when the caller does not say:
/// the machine's available parallelism (1 if unknown).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `n_jobs` jobs on up to `threads` workers and hands each
/// [`JobResult`] to `consume` **in job-index order** on the calling
/// thread, as soon as every earlier job has been delivered. With
/// `threads <= 1` the jobs run inline on the caller, no threads spawned
/// — both paths produce the same delivery sequence.
pub fn run_streaming<T, F, C>(threads: usize, n_jobs: usize, job: F, mut consume: C)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(JobResult<T>),
{
    let epoch = Instant::now();
    let threads = threads.max(1).min(n_jobs);
    if threads <= 1 {
        for index in 0..n_jobs {
            let started_at = epoch.elapsed();
            let output = job(index);
            consume(JobResult {
                index,
                worker: 0,
                output,
                started_at,
                elapsed: epoch.elapsed().saturating_sub(started_at),
            });
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<JobSlot<T>>> = Mutex::new((0..n_jobs).map(|_| None).collect());
    let ready = Condvar::new();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (next, slots, ready, job) = (&next, &slots, &ready, &job);
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n_jobs {
                    break;
                }
                let started_at = epoch.elapsed();
                let outcome = catch_unwind(AssertUnwindSafe(|| job(index)));
                let elapsed = epoch.elapsed().saturating_sub(started_at);
                let finished = outcome.map(|output| JobResult {
                    index,
                    worker,
                    output,
                    started_at,
                    elapsed,
                });
                let poisoned = finished.is_err();
                {
                    let mut guard = slots.lock().unwrap();
                    guard[index] = Some(finished);
                }
                ready.notify_all();
                if poisoned {
                    // Stop claiming work after a panic; the caller will
                    // re-raise it once delivery reaches this index.
                    break;
                }
            });
        }

        let mut delivered = 0usize;
        let mut guard = slots.lock().unwrap();
        while delivered < n_jobs {
            match guard[delivered].take() {
                Some(Ok(result)) => {
                    drop(guard);
                    consume(result);
                    delivered += 1;
                    guard = slots.lock().unwrap();
                }
                Some(Err(panic)) => {
                    drop(guard);
                    // Let the remaining workers drain their current jobs
                    // before re-raising, so the scope can join them.
                    next.store(n_jobs, Ordering::Relaxed);
                    resume_unwind(panic);
                }
                None => guard = ready.wait(guard).unwrap(),
            }
        }
    });
}

/// [`run_streaming`], collecting the results into a `Vec` ordered by job
/// index.
pub fn run<T, F>(threads: usize, n_jobs: usize, job: F) -> Vec<JobResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut results = Vec::with_capacity(n_jobs);
    run_streaming(threads, n_jobs, job, |r| results.push(r));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_arrive_in_index_order_even_when_completion_inverts() {
        // Later jobs finish first (earlier jobs sleep longer); delivery
        // must still be 0, 1, 2, ...
        let n = 12;
        let mut order = Vec::new();
        run_streaming(
            4,
            n,
            |i| {
                std::thread::sleep(Duration::from_millis(((n - i) as u64) * 3));
                i * 10
            },
            |r| order.push((r.index, r.output)),
        );
        assert_eq!(order, (0..n).map(|i| (i, i * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_outputs_match() {
        let f = |i: usize| format!("job-{i}:{}", i * i);
        let serial: Vec<String> = run(1, 20, f).into_iter().map(|r| r.output).collect();
        let parallel: Vec<String> = run(8, 20, f).into_iter().map(|r| r.output).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        run(7, 100, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        let results = run(4, 0, |_| unreachable!("no jobs to run"));
        assert!(results.is_empty());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let results = run(64, 3, |i| i);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn job_spans_are_recorded() {
        let results = run(2, 4, |_| std::thread::sleep(Duration::from_millis(5)));
        for r in &results {
            assert!(r.elapsed >= Duration::from_millis(4), "job {}", r.index);
        }
        // With 2 workers and 4 equal jobs, some job must start after
        // another finished (they cannot all start at once).
        let max_start = results.iter().map(|r| r.started_at).max().unwrap();
        assert!(max_start >= Duration::from_millis(4));
    }

    #[test]
    fn worker_ids_stay_within_the_pool() {
        let results = run(3, 30, |i| i);
        assert!(results.iter().all(|r| r.worker < 3));
    }

    #[test]
    fn a_panicking_job_propagates_to_the_caller() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run(4, 8, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        }));
        let panic = caught.expect_err("panic must propagate");
        let msg = panic
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("(non-str panic)");
        assert!(msg.contains("job 5 exploded"), "{msg}");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
