//! # accturbo-prng
//!
//! A small, deterministic pseudo-random number generator exposing the
//! subset of the `rand` 0.8 API this workspace uses (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`).
//!
//! The build environment has no crates.io access (see README.md), so the
//! generator is implemented in-tree: xoshiro256++ (Blackman & Vigna)
//! seeded through SplitMix64. The streams differ from `rand`'s ChaCha12
//! `StdRng`, but every consumer in this workspace asserts *statistical*
//! properties, not exact streams, and determinism per seed — which this
//! generator provides bit-for-bit across platforms.

#![deny(missing_docs)]

/// Generator types (mirrors `rand::rngs`).
pub mod rngs {
    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Seeding (mirrors the `rand::SeedableRng` subset used here).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the recommended xoshiro seeding procedure:
        // consecutive integer seeds produce decorrelated states.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    /// The next raw 64 bits (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be sampled uniformly from raw generator output
/// (mirrors sampling with `rand::distributions::Standard`).
pub trait FromRng {
    /// Draws a uniform value.
    fn from_rng(rng: &mut StdRng) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_rng(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (mirrors `rand`'s
/// `SampleRange<T>`). Implemented for `Range` and `RangeInclusive` over
/// the primitive integers and floats. Generic over the output type so
/// untyped integer literals in `gen_range(60..120)` infer from the call
/// site's expected type, exactly as with `rand`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics when empty.
    fn sample(self, rng: &mut StdRng) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's multiply-shift reduction.
/// The modulo bias is at most `span / 2^64` — unobservable here.
#[inline]
fn below(rng: &mut StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                self.start + <$t>::from_rng(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                lo + <$t>::from_rng(rng) * (hi - lo)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// The sampling interface (mirrors the `rand::Rng` subset used here).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T`.
    fn gen<T: FromRng>(&mut self) -> T;

    /// Draws a uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }

    #[inline]
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u16..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&x));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values must appear");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}
