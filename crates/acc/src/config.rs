//! Classic ACC parameters (paper Appendix A, Table 4).

use accturbo_netsim::{RedConfig, SimDuration};

/// The ACC agent's configuration. Defaults are exactly the paper's
/// Table 4 values.
#[derive(Debug, Clone)]
pub struct AccConfig {
    /// `K`: sustained-congestion monitoring period (2 s). The drop rate
    /// over each trailing window of length `K` is checked at multiples of
    /// `K`; the agent activates when it exceeds `p_high`.
    pub k_period: SimDuration,
    /// `p_high`: sustained-congestion drop rate threshold (0.1).
    pub p_high: f64,
    /// `p_target`: the drop rate the rate limits aim for (0.05).
    pub p_target: f64,
    /// `k`: EWMA interval for rate estimation (0.1 s).
    pub ewma_interval: SimDuration,
    /// Maximum simultaneous rate-limiting sessions (5).
    pub max_sessions: usize,
    /// Minimum time an aggregate stays limited after limiting starts (10 s).
    pub release_time: SimDuration,
    /// Minimum time an aggregate must "behave" (send below its limit)
    /// before release (20 s).
    pub free_time: SimDuration,
    /// Session revisit period in steady state (5 s).
    pub cyc_time: SimDuration,
    /// Session revisit period right after creation (0.5 s).
    pub init_time: SimDuration,
    /// The RED queue in front of the output link.
    pub red: RedConfig,
}

impl Default for AccConfig {
    fn default() -> Self {
        AccConfig {
            k_period: SimDuration::from_secs(2),
            p_high: 0.1,
            p_target: 0.05,
            ewma_interval: SimDuration::from_millis(100),
            max_sessions: 5,
            release_time: SimDuration::from_secs(10),
            free_time: SimDuration::from_secs(20),
            cyc_time: SimDuration::from_secs(5),
            init_time: SimDuration::from_millis(500),
            red: RedConfig::default(),
        }
    }
}

impl AccConfig {
    /// Overrides the monitoring window `K` (the Fig. 2c / Fig. 3b sweep).
    pub fn with_k(mut self, k: SimDuration) -> Self {
        assert!(!k.is_zero(), "K must be positive");
        self.k_period = k;
        self
    }

    /// Overrides the RED configuration.
    pub fn with_red(mut self, red: RedConfig) -> Self {
        self.red = red;
        self
    }

    /// The natural control-plane tick for this configuration: rate EWMAs
    /// must refresh every `ewma_interval`, and a monitoring window
    /// shorter than that must still be sampled at least once per `K`.
    pub fn control_tick(&self) -> SimDuration {
        self.ewma_interval.min(self.k_period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the defaults to the paper's Table 4.
    #[test]
    fn defaults_match_table_4() {
        let c = AccConfig::default();
        assert_eq!(c.k_period, SimDuration::from_secs(2));
        assert_eq!(c.p_high, 0.1);
        assert_eq!(c.p_target, 0.05);
        assert_eq!(c.ewma_interval, SimDuration::from_millis(100));
        assert_eq!(c.max_sessions, 5);
        assert_eq!(c.release_time, SimDuration::from_secs(10));
        assert_eq!(c.free_time, SimDuration::from_secs(20));
        assert_eq!(c.cyc_time, SimDuration::from_secs(5));
        assert_eq!(c.init_time, SimDuration::from_millis(500));
    }
}
