//! Rate-limiting sessions (paper §2.1 and Table 4 lifecycle).
//!
//! Each inferred aggregate gets a session: a token-bucket policer at the
//! computed limit `L`, an EWMA estimate of the aggregate's arrival rate,
//! and the lifecycle timers of Table 4 — a session lives at least
//! `Release Time`, and is only released after the aggregate has behaved
//! (sent below its limit) for `Free Time`; it is revisited after
//! `Init Time` at first and every `Cyc Time` afterwards.

use crate::prefix::Prefix;
use accturbo_netsim::{Bandwidth, EwmaRate, SimDuration, SimTime, TokenBucket};

/// One rate-limiting session.
#[derive(Debug, Clone)]
pub struct Session {
    /// The policed destination prefix.
    pub prefix: Prefix,
    /// The current limit `L`.
    pub limit: Bandwidth,
    /// When the session was created.
    pub created: SimTime,
    /// Last time the aggregate was observed exceeding its limit.
    pub last_misbehave: SimTime,
    /// Next scheduled revisit.
    pub next_revisit: SimTime,
    /// Packets dropped by this session's policer.
    pub policer_drops: u64,
    limiter: TokenBucket,
    rate: EwmaRate,
}

impl Session {
    fn new(prefix: Prefix, limit: Bandwidth, now: SimTime, cfg: &SessionConfig) -> Self {
        Session {
            prefix,
            limit,
            created: now,
            last_misbehave: now,
            next_revisit: now + cfg.init_time,
            policer_drops: 0,
            limiter: TokenBucket::new(limit, cfg.burst_bytes),
            rate: EwmaRate::new(cfg.ewma_interval, 0.5),
        }
    }

    /// Offers a packet of `bytes` to the policer. Returns true when it
    /// conforms (proceed to the RED queue), false when it must drop.
    pub fn police(&mut self, bytes: u32, now: SimTime) -> bool {
        self.rate.record(bytes as u64, now);
        if self.limiter.conforms(bytes, now) {
            true
        } else {
            self.policer_drops += 1;
            false
        }
    }

    /// Current arrival-rate estimate of the aggregate (pre-policing).
    pub fn arrival_rate(&mut self, now: SimTime) -> Bandwidth {
        self.rate.rate(now)
    }

    /// Re-targets the limit.
    pub fn set_limit(&mut self, limit: Bandwidth) {
        self.limit = limit;
        self.limiter.set_rate(limit);
    }
}

/// Lifecycle parameters shared by all sessions.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Maximum simultaneous sessions.
    pub max_sessions: usize,
    /// Minimum session lifetime.
    pub release_time: SimDuration,
    /// Required good behaviour before release.
    pub free_time: SimDuration,
    /// Steady-state revisit period.
    pub cyc_time: SimDuration,
    /// First-revisit delay.
    pub init_time: SimDuration,
    /// EWMA interval for the per-session rate estimate.
    pub ewma_interval: SimDuration,
    /// Policer burst allowance in bytes.
    pub burst_bytes: u64,
}

/// The table of active sessions.
#[derive(Debug, Clone)]
pub struct SessionTable {
    cfg: SessionConfig,
    sessions: Vec<Session>,
}

impl SessionTable {
    /// Creates an empty table.
    pub fn new(cfg: SessionConfig) -> Self {
        assert!(cfg.max_sessions > 0, "need at least one session slot");
        SessionTable {
            cfg,
            sessions: Vec::new(),
        }
    }

    /// Number of active sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are active.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The active sessions.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// The first session whose prefix contains `dst`, if any. Longer
    /// prefixes win when several match.
    pub fn match_mut(&mut self, dst: u32) -> Option<&mut Session> {
        self.sessions
            .iter_mut()
            .filter(|s| s.prefix.contains(dst))
            .max_by_key(|s| s.prefix.len)
    }

    /// Installs a session for `prefix` at `limit`, or re-targets the
    /// existing session covering the same prefix. Respects the session
    /// cap; returns false when the table is full.
    pub fn install(&mut self, prefix: Prefix, limit: Bandwidth, now: SimTime) -> bool {
        if let Some(s) = self.sessions.iter_mut().find(|s| s.prefix == prefix) {
            s.set_limit(limit);
            return true;
        }
        if self.sessions.len() >= self.cfg.max_sessions {
            return false;
        }
        self.sessions
            .push(Session::new(prefix, limit, now, &self.cfg));
        true
    }

    /// Runs the lifecycle at `now`: marks misbehaving sessions and
    /// releases those that have lived out `release_time` and behaved for
    /// `free_time`. Returns the released prefixes.
    pub fn revisit(&mut self, now: SimTime) -> Vec<Prefix> {
        let cfg = self.cfg.clone();
        for s in &mut self.sessions {
            if now < s.next_revisit {
                continue;
            }
            s.next_revisit = now + cfg.cyc_time;
            let rate = s.arrival_rate(now);
            if rate.as_bps() as f64 > s.limit.as_bps() as f64 * 1.05 {
                s.last_misbehave = now;
            }
        }
        let mut released = Vec::new();
        self.sessions.retain(|s| {
            let old_enough = now.saturating_since(s.created) >= cfg.release_time;
            let behaved = now.saturating_since(s.last_misbehave) >= cfg.free_time;
            if old_enough && behaved {
                released.push(s.prefix);
                false
            } else {
                true
            }
        });
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SessionConfig {
        SessionConfig {
            max_sessions: 2,
            release_time: SimDuration::from_secs(10),
            free_time: SimDuration::from_secs(20),
            cyc_time: SimDuration::from_secs(5),
            init_time: SimDuration::from_millis(500),
            ewma_interval: SimDuration::from_millis(100),
            burst_bytes: 10_000,
        }
    }

    fn prefix(a: u8) -> Prefix {
        Prefix::new(u32::from_be_bytes([198, 18, a, 0]), 24)
    }

    #[test]
    fn policer_enforces_the_limit() {
        let mut t = SessionTable::new(cfg());
        t.install(prefix(1), Bandwidth::from_kbps(80), SimTime::ZERO);
        // Offer 100 kB/s (10x the 10 kB/s limit) for one second.
        let mut passed = 0u64;
        for i in 0..1000u64 {
            let s = t
                .match_mut(u32::from_be_bytes([198, 18, 1, 55]))
                .expect("matches the /24");
            if s.police(100, SimTime::from_millis(i)) {
                passed += 100;
            }
        }
        assert!(passed < 25_000, "policer passed {passed} bytes");
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = SessionTable::new(cfg());
        t.install(prefix(1), Bandwidth::from_mbps(1), SimTime::ZERO);
        t.install(
            Prefix::new(u32::from_be_bytes([198, 18, 1, 55]), 32),
            Bandwidth::from_kbps(1),
            SimTime::ZERO,
        );
        let s = t
            .match_mut(u32::from_be_bytes([198, 18, 1, 55]))
            .expect("matches");
        assert_eq!(s.prefix.len, 32);
    }

    #[test]
    fn table_respects_session_cap() {
        let mut t = SessionTable::new(cfg());
        assert!(t.install(prefix(1), Bandwidth::from_mbps(1), SimTime::ZERO));
        assert!(t.install(prefix(2), Bandwidth::from_mbps(1), SimTime::ZERO));
        assert!(!t.install(prefix(3), Bandwidth::from_mbps(1), SimTime::ZERO));
        assert_eq!(t.len(), 2);
        // Re-installing an existing prefix only re-targets.
        assert!(t.install(prefix(1), Bandwidth::from_mbps(2), SimTime::ZERO));
        assert_eq!(t.sessions()[0].limit, Bandwidth::from_mbps(2));
    }

    #[test]
    fn release_requires_age_and_good_behaviour() {
        let mut t = SessionTable::new(cfg());
        t.install(prefix(1), Bandwidth::from_mbps(1), SimTime::ZERO);
        // Too young at 5 s even if behaving.
        assert!(t.revisit(SimTime::from_secs(5)).is_empty());
        // At 20 s: old enough and silent since t=0 -> released.
        let released = t.revisit(SimTime::from_secs(20));
        assert_eq!(released, vec![prefix(1)]);
        assert!(t.is_empty());
    }

    #[test]
    fn misbehaving_session_is_retained() {
        let mut t = SessionTable::new(cfg());
        t.install(prefix(1), Bandwidth::from_kbps(8), SimTime::ZERO);
        // Keep sending way above the limit.
        for i in 0..30_000u64 {
            let s = t
                .match_mut(u32::from_be_bytes([198, 18, 1, 9]))
                .expect("matches");
            s.police(1000, SimTime::from_millis(i));
        }
        // Revisits observe the high rate and refresh last_misbehave.
        for sec in [1u64, 6, 12, 18, 24, 29] {
            t.revisit(SimTime::from_secs(sec));
        }
        assert_eq!(t.len(), 1, "misbehaving session must not be released");
    }
}
