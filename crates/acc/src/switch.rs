//! The ACC-enabled switch (paper Fig. 1).
//!
//! Data path: arriving packets first pass the rate-limiting sessions
//! (token-bucket policers on inferred destination prefixes), then a RED
//! output queue. Every RED drop is reported to the agent's drop history.
//!
//! Agent (control plane): at every multiple of the monitoring window `K`
//! the agent checks whether the RED drop rate over the trailing window
//! exceeded `p_high`. If so, it infers aggregates from the dropped
//! headers, computes the excess rate, water-fills the limit `L` over the
//! top `|A|` aggregates, and installs the sessions. Sessions are revisited
//! on the Table 4 cadence and released when old enough and well-behaved.

use crate::config::AccConfig;
use crate::prefix::{infer_aggregates, InferredAggregate};
use crate::ratelimit::{excess_rate, water_fill};
use crate::sessions::{SessionConfig, SessionTable};
use accturbo_netsim::{
    AggLimit, Bandwidth, DropReason, Dropped, Packet, QueueDiscipline, RedQueue, SimTime, Switch,
};
use std::collections::VecDeque;

/// Fraction of a prefix's drops a child must retain for the subtree walk
/// to descend.
const REFINE_KEEP: f64 = 0.9;

/// Fraction of the recently dropped bytes the kept aggregates must
/// cover: ranked prefixes past this cumulative coverage are treated as
/// collateral victims, not congestion-responsible aggregates.
const DROP_COVERAGE: f64 = 0.8;

/// One binned interval of RED arrival/drop counters.
#[derive(Debug, Clone, Copy, Default)]
struct Bin {
    arr_pkts: u64,
    arr_bytes: u64,
    drop_pkts: u64,
}

/// A dropped-packet header retained for inference.
#[derive(Debug, Clone, Copy)]
struct DropRecord {
    at: SimTime,
    dst: u32,
    bytes: u32,
}

/// The classic-ACC switch.
pub struct AccSwitch {
    cfg: AccConfig,
    link: Bandwidth,
    red: RedQueue,
    sessions: SessionTable,
    /// RED drop headers within the trailing monitoring window.
    drop_history: VecDeque<DropRecord>,
    /// Binned RED arrival/drop counters (bin width = EWMA interval).
    bins: VecDeque<(u64, Bin)>,
    next_k_check: SimTime,
    activations: u64,
}

impl AccSwitch {
    /// Builds the switch for a bottleneck of `link` capacity.
    pub fn new(cfg: AccConfig, link: Bandwidth) -> Self {
        let red = RedQueue::new(cfg.red.clone());
        let sessions = SessionTable::new(SessionConfig {
            max_sessions: cfg.max_sessions,
            release_time: cfg.release_time,
            free_time: cfg.free_time,
            cyc_time: cfg.cyc_time,
            init_time: cfg.init_time,
            ewma_interval: cfg.ewma_interval,
            burst_bytes: 15_000,
        });
        let next_k_check = SimTime::ZERO + cfg.k_period;
        AccSwitch {
            cfg,
            link,
            red,
            sessions,
            drop_history: VecDeque::new(),
            bins: VecDeque::new(),
            next_k_check,
            activations: 0,
        }
    }

    /// Times the agent's threshold has fired (test/report hook).
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// The active rate-limiting sessions.
    pub fn sessions(&self) -> &SessionTable {
        &self.sessions
    }

    fn bin_index(&self, now: SimTime) -> u64 {
        now.bucket(self.cfg.ewma_interval)
    }

    fn bin_mut(&mut self, now: SimTime) -> &mut Bin {
        let idx = self.bin_index(now);
        match self.bins.back() {
            Some(&(last, _)) if last == idx => {}
            Some(&(last, _)) => {
                debug_assert!(last < idx, "time went backwards");
                self.bins.push_back((idx, Bin::default()));
            }
            None => self.bins.push_back((idx, Bin::default())),
        }
        &mut self.bins.back_mut().expect("just ensured").1
    }

    fn prune(&mut self, now: SimTime) {
        let window_start = now.saturating_since(SimTime::ZERO + self.cfg.k_period);
        let _ = window_start;
        let horizon = if now.as_nanos() > self.cfg.k_period.as_nanos() {
            now - self.cfg.k_period
        } else {
            SimTime::ZERO
        };
        while let Some(front) = self.drop_history.front() {
            if front.at < horizon {
                self.drop_history.pop_front();
            } else {
                break;
            }
        }
        let horizon_bin = horizon.bucket(self.cfg.ewma_interval);
        while let Some(&(idx, _)) = self.bins.front() {
            if idx < horizon_bin {
                self.bins.pop_front();
            } else {
                break;
            }
        }
    }

    /// Drop rate and arrival byte rate over the trailing window.
    fn window_rates(&self) -> (f64, f64) {
        self.rates_over(self.bins.len())
    }

    /// Drop rate and arrival byte rate over the last `n` bins — the
    /// near-current estimate used when sizing limits (the paper's ACC
    /// estimates rates with a 0.1 s EWMA, i.e. current rates, not
    /// K-window averages; a ramping attack would otherwise be limited
    /// against a stale, much lower rate).
    fn rates_over(&self, n: usize) -> (f64, f64) {
        let bins = &self.bins.as_slices();
        let take = n.min(self.bins.len());
        let (mut arr_p, mut arr_b, mut drop_p) = (0u64, 0u64, 0u64);
        for &(_, b) in bins.1.iter().rev().chain(bins.0.iter().rev()).take(take) {
            arr_p += b.arr_pkts;
            arr_b += b.arr_bytes;
            drop_p += b.drop_pkts;
        }
        let drop_rate = if arr_p == 0 {
            0.0
        } else {
            drop_p as f64 / arr_p as f64
        };
        let span = self.cfg.ewma_interval.as_secs_f64() * take.max(1) as f64;
        let arrival_bps = arr_b as f64 * 8.0 / span;
        (drop_rate, arrival_bps)
    }

    /// Number of bins that span roughly the last second.
    fn recent_bins(&self) -> usize {
        ((1e9 / self.cfg.ewma_interval.as_nanos().max(1) as f64) as usize).max(1)
    }

    /// The agent's inference + control step (runs when the threshold
    /// fires).
    fn infer_and_limit(&mut self, now: SimTime) {
        // Aggregates are inferred from the whole K window of dropped
        // headers (more data, better prefixes); rates and the excess are
        // estimated from the last ~second so a ramping attack is limited
        // against its *current* rate.
        let dsts: Vec<u32> = self.drop_history.iter().map(|d| d.dst).collect();
        let aggregates = infer_aggregates(&dsts, self.cfg.max_sessions, REFINE_KEEP);
        if aggregates.is_empty() {
            return;
        }
        let (drop_rate, arrival_bps) = self.rates_over(self.recent_bins());
        let excess = excess_rate(arrival_bps, self.link, self.cfg.p_target);
        if excess <= 0.0 {
            return;
        }
        let recent_horizon = if now.as_nanos() > 1_000_000_000 {
            now - accturbo_netsim::SimDuration::from_secs(1)
        } else {
            SimTime::ZERO
        };
        let recent: Vec<&DropRecord> = self
            .drop_history
            .iter()
            .filter(|d| d.at >= recent_horizon)
            .collect();
        let total_dropped_bytes: u64 = recent.iter().map(|d| d.bytes as u64).sum();
        if total_dropped_bytes == 0 || drop_rate <= 0.0 {
            return;
        }
        let span = now.saturating_since(recent_horizon).as_secs_f64().max(0.1);
        let mut rated: Vec<(InferredAggregate, f64, u64)> = aggregates
            .into_iter()
            .map(|agg| {
                let agg_bytes: u64 = recent
                    .iter()
                    .filter(|d| agg.prefix.contains(d.dst))
                    .map(|d| d.bytes as u64)
                    .sum();
                let rate = agg_bytes as f64 / drop_rate * 8.0 / span;
                (agg, rate, agg_bytes)
            })
            .collect();
        rated.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("rates are finite"));
        // Identification keeps only the prefixes responsible for most of
        // the drops (the paper's criterion): walk the ranked list and stop
        // once the kept aggregates cover DROP_COVERAGE of the dropped
        // bytes. Without this, a scenario with one attack and one benign
        // destination ranks the benign /24 as a second "aggregate" (83% /
        // 17% drop split beats no 2x-mean heavy hitter) and water-fills
        // the victim down alongside the attack.
        let mut covered = 0u64;
        let mut keep = rated.len();
        for (i, &(_, _, bytes)) in rated.iter().enumerate() {
            covered += bytes;
            if covered as f64 >= DROP_COVERAGE * total_dropped_bytes as f64 {
                keep = i + 1;
                break;
            }
        }
        rated.truncate(keep);
        // When congestion persists past the first activation, the drop
        // history mixes the already-limited aggregates with collateral
        // drops from well-behaved traffic, so inference alone can no
        // longer separate attack from victim. Classic ACC handles this by
        // *revising* the limit of existing sessions as conditions change
        // (Mahajan et al. §5.2): tighten the aggregates already convicted
        // first, and only open fresh sessions for whatever excess the
        // tightening cannot shed.
        let (existing, fresh): (Vec<_>, Vec<_>) = rated.into_iter().partition(|(agg, _, _)| {
            self.sessions
                .sessions()
                .iter()
                .any(|s| s.prefix == agg.prefix)
        });
        let mut remaining = excess;
        let mut acted = false;
        if !existing.is_empty() {
            let rates: Vec<f64> = existing.iter().map(|(_, r, _)| *r).collect();
            if let Some(plan) = water_fill(&rates, remaining) {
                let level = plan.limit.as_bps() as f64;
                let shed: f64 = rates[..plan.num_limited]
                    .iter()
                    .map(|r| (r - level).max(0.0))
                    .sum();
                for (agg, _, _) in existing.iter().take(plan.num_limited) {
                    self.sessions.install(agg.prefix, plan.limit, now);
                }
                remaining -= shed;
                acted = true;
            }
        }
        if remaining > 1.0 && !fresh.is_empty() {
            let rates: Vec<f64> = fresh.iter().map(|(_, r, _)| *r).collect();
            if let Some(plan) = water_fill(&rates, remaining) {
                for (agg, _, _) in fresh.iter().take(plan.num_limited) {
                    self.sessions.install(agg.prefix, plan.limit, now);
                }
                acted = true;
            }
        }
        if acted {
            self.activations += 1;
        }
    }
}

impl Switch for AccSwitch {
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        // Rate-limiting sessions police before the RED queue (Fig. 1).
        if let Some(session) = self.sessions.match_mut(u32::from(pkt.dst)) {
            if !session.police(pkt.size, now) {
                drops.push(Dropped {
                    packet: pkt,
                    reason: DropReason::Policer,
                });
                return;
            }
        }

        // RED module: count the arrival, enqueue, and report drops to the
        // agent's history.
        {
            let bin = self.bin_mut(now);
            bin.arr_pkts += 1;
            bin.arr_bytes += pkt.size as u64;
        }
        let before = drops.len();
        self.red.enqueue(pkt, now, drops);
        for d in &drops[before..] {
            self.drop_history.push_back(DropRecord {
                at: now,
                dst: u32::from(d.packet.dst),
                bytes: d.packet.size,
            });
            self.bin_mut(now).drop_pkts += 1;
        }
        self.prune(now);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.red.dequeue(now)
    }

    fn backlog_pkts(&self) -> usize {
        self.red.len_pkts()
    }

    fn control_tick(&mut self, now: SimTime) {
        // Threshold check at multiples of K.
        if now >= self.next_k_check {
            self.prune(now);
            let (drop_rate, _) = self.window_rates();
            if drop_rate > self.cfg.p_high {
                self.infer_and_limit(now);
            }
            while self.next_k_check <= now {
                self.next_k_check += self.cfg.k_period;
            }
        }
        // Session lifecycle.
        self.sessions.revisit(now);
    }

    fn pushback_limits(&mut self, _now: SimTime, out: &mut Vec<AggLimit>) {
        // Every active rate-limiting session is also a pushback request:
        // the topology engine propagates these upstream hop by hop
        // (Mahajan §5), while the local session keeps policing as the
        // last line of defense.
        for s in self.sessions.sessions() {
            out.push(AggLimit {
                addr: s.prefix.addr,
                len: s.prefix.len,
                bps: s.limit.as_bps(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_netsim::{
        run, ClassId, EngineConfig, MergedSource, PacketSource, RedConfig, SimDuration,
    };
    use accturbo_traffic::{CbrSource, FlowTemplate};
    use std::net::Ipv4Addr;

    const LINK: u64 = 10_000_000;

    fn red() -> RedConfig {
        RedConfig {
            min_th: 20.0,
            max_th: 60.0,
            max_p: 0.1,
            cap_bytes: 100_000,
            ..RedConfig::default()
        }
    }

    fn cbr(class: u16, subnet: u8, rate: u64, start_s: u64, end_s: u64) -> Box<dyn PacketSource> {
        Box::new(CbrSource::new(
            FlowTemplate::udp(
                Ipv4Addr::new(10, 0, class as u8, 1),
                Ipv4Addr::new(198, 18, subnet, 10),
                5000 + class,
                80,
                ClassId(class),
            ),
            rate,
            SimTime::from_secs(start_s),
            SimTime::from_secs(end_s),
        ))
    }

    fn engine_cfg() -> EngineConfig {
        EngineConfig::new(Bandwidth::from_bps(LINK))
            .with_stats_interval(SimDuration::from_secs(1))
            .with_control_period(SimDuration::from_millis(100))
    }

    #[test]
    fn no_congestion_no_sessions() {
        // 8 Mbps offered on a 10 Mbps link: RED stays quiet.
        let mut src = MergedSource::new(vec![cbr(1, 1, 8_000_000, 0, 10)]);
        let mut sw = AccSwitch::new(
            AccConfig::default().with_red(red()),
            Bandwidth::from_bps(LINK),
        );
        let res = run(&mut src, &mut sw, &engine_cfg());
        assert_eq!(sw.activations(), 0);
        assert!(sw.sessions().is_empty());
        assert_eq!(res.drops, 0);
    }

    #[test]
    fn sustained_attack_triggers_a_session_on_the_right_prefix() {
        // Benign 6 Mbps to subnet 1; attack 30 Mbps to subnet 5.
        let mut src = MergedSource::new(vec![
            cbr(1, 1, 6_000_000, 0, 20),
            cbr(5, 5, 30_000_000, 0, 20),
        ]);
        let mut sw = AccSwitch::new(
            AccConfig::default().with_red(red()),
            Bandwidth::from_bps(LINK),
        );
        let res = run(&mut src, &mut sw, &engine_cfg());
        assert!(sw.activations() > 0, "the threshold must have fired");
        // The attack must be throttled: benign gets most of its traffic
        // through in the second half.
        let benign_late: f64 = (10..20)
            .map(|b| res.stats.throughput_bps(b, ClassId(1)))
            .sum::<f64>()
            / 10.0;
        assert!(
            benign_late > 5_000_000.0,
            "benign throughput {benign_late:.0} after mitigation"
        );
        let attack_late: f64 = (12..20)
            .map(|b| res.stats.throughput_bps(b, ClassId(5)))
            .sum::<f64>()
            / 8.0;
        assert!(
            attack_late < 8_000_000.0,
            "attack throughput {attack_late:.0} must be limited"
        );
    }

    #[test]
    fn policer_drops_are_attributed() {
        let mut src = MergedSource::new(vec![
            cbr(1, 1, 6_000_000, 0, 20),
            cbr(5, 5, 30_000_000, 0, 20),
        ]);
        let mut sw = AccSwitch::new(
            AccConfig::default().with_red(red()),
            Bandwidth::from_bps(LINK),
        );
        let res = run(&mut src, &mut sw, &engine_cfg());
        let attack_drops = res.stats.total_dropped(ClassId(5)).pkts;
        let benign_drops = res.stats.total_dropped(ClassId(1)).pkts;
        assert!(
            attack_drops > benign_drops * 3,
            "attack must absorb the drops"
        );
    }

    #[test]
    fn reaction_time_grows_with_k() {
        // With a larger K the first possible activation comes later.
        let first_activation = |k_secs: u64| -> Option<u64> {
            let mut src = MergedSource::new(vec![
                cbr(1, 1, 6_000_000, 0, 30),
                cbr(5, 5, 30_000_000, 5, 30),
            ]);
            let cfg = AccConfig::default()
                .with_red(red())
                .with_k(SimDuration::from_secs(k_secs));
            let mut sw = AccSwitch::new(cfg, Bandwidth::from_bps(LINK));
            let res = run(&mut src, &mut sw, &engine_cfg());
            // Find the first second where attack throughput collapses
            // below 50% of link (mitigation engaged).
            (6..30).find(|&s| {
                res.stats.throughput_bps(s as usize, ClassId(5)) < 0.5 * LINK as f64
                    && sw.activations() > 0
            })
        };
        let fast = first_activation(2).expect("K=2 must mitigate");
        let slow = first_activation(10).expect("K=10 must mitigate");
        assert!(
            slow >= fast,
            "K=10 ({slow}s) must react no faster than K=2 ({fast}s)"
        );
    }
}
