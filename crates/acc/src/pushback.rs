//! Pushback: propagating ACC's rate limits upstream.
//!
//! The original ACC (Mahajan et al. 2002) includes a *pushback* mechanism
//! that the paper scopes out (§2.1 footnote): when the congested switch
//! rate-limits an aggregate, it asks its upstream neighbours to police the
//! aggregate *before* it ever crosses the upstream links, dividing the
//! limit among contributors proportionally to their share.
//!
//! This module completes the ACC substrate with that mechanism on a
//! two-tier topology:
//!
//! ```text
//!  sources₀ ─► upstream₀ ─┐
//!  sources₁ ─► upstream₁ ─┼─(upstream links)─► bottleneck ACC ─► out
//!  sources₂ ─► upstream₂ ─┘
//! ```
//!
//! Pushback's benefit appears when the *upstream links* are themselves
//! congested by the attack: local-only ACC drops attack traffic at the
//! bottleneck, after it has already crowded benign traffic out of the
//! upstream links; with pushback the attack dies at the upstreams and the
//! benign traffic survives the shared links.

use crate::config::AccConfig;
use crate::prefix::Prefix;
use crate::switch::AccSwitch;
use accturbo_netsim::{
    Bandwidth, DropReason, Dropped, FifoQueue, Packet, PacketSource, QueueDiscipline, SimDuration,
    SimTime, StatsCollector, Switch, TokenBucket,
};
use accturbo_obs::{Event, NoopTracer, Tracer};
use std::collections::HashMap;

/// Configuration of the pushback topology.
#[derive(Debug, Clone)]
pub struct PushbackConfig {
    /// Capacity of each upstream → bottleneck link.
    pub upstream_link: Bandwidth,
    /// Capacity of the bottleneck's output link.
    pub bottleneck_link: Bandwidth,
    /// Buffer of each upstream's FIFO, in bytes.
    pub upstream_buffer: u64,
    /// The bottleneck's ACC configuration.
    pub acc: AccConfig,
    /// Whether pushback is propagated upstream (off = local ACC only).
    pub enabled: bool,
    /// How often pushback allocations are refreshed from the bottleneck's
    /// session table (the original paper refreshes periodically).
    pub refresh: SimDuration,
    /// Width of the statistics buckets.
    pub stats_interval: SimDuration,
}

impl PushbackConfig {
    /// A two-tier setup with the given link rates and Table 4 ACC.
    pub fn new(upstream_link: Bandwidth, bottleneck_link: Bandwidth) -> Self {
        PushbackConfig {
            upstream_link,
            bottleneck_link,
            upstream_buffer: 256 * 1024,
            acc: AccConfig::default(),
            enabled: true,
            refresh: SimDuration::from_millis(500),
            stats_interval: SimDuration::from_secs(1),
        }
    }

    /// Disables pushback (local-only ACC baseline).
    pub fn without_pushback(mut self) -> Self {
        self.enabled = false;
        self
    }
}

/// One upstream switch: a FIFO plus any pushback policers installed by
/// the bottleneck.
struct Upstream {
    queue: FifoQueue,
    policers: Vec<(Prefix, TokenBucket)>,
    /// Bytes forwarded per policed prefix in the current refresh window
    /// (the contribution estimate pushback divides limits by).
    contribution: HashMap<Prefix, u64>,
}

impl Upstream {
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        let dst = u32::from(pkt.dst);
        if let Some((prefix, policer)) = self
            .policers
            .iter_mut()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len)
        {
            *self.contribution.entry(*prefix).or_insert(0) += pkt.size as u64;
            if !policer.conforms(pkt.size, now) {
                drops.push(Dropped {
                    packet: pkt,
                    reason: DropReason::Policer,
                });
                return;
            }
        }
        self.queue.enqueue(pkt, now, drops);
    }
}

/// Result of a pushback simulation.
#[derive(Debug)]
pub struct PushbackResult {
    /// End-to-end statistics (arrivals at the upstreams, departures on the
    /// bottleneck's output link, drops anywhere).
    pub stats: StatsCollector,
    /// Packets dropped at the upstreams (policers + upstream queues).
    pub upstream_drops: u64,
    /// Packets dropped at the bottleneck.
    pub bottleneck_drops: u64,
    /// Pushback allocations installed over the run.
    pub pushback_installs: u64,
}

/// Runs per-upstream sources through the two-tier topology until `end`.
///
/// `sources[i]` feeds upstream `i`; each upstream forwards over its own
/// link into the bottleneck ACC switch.
pub fn run_pushback(
    sources: Vec<Box<dyn PacketSource>>,
    cfg: &PushbackConfig,
    end: SimTime,
) -> PushbackResult {
    run_pushback_traced(sources, cfg, end, &mut NoopTracer)
}

/// Like [`run_pushback`], but emits a `pushback_limit` trace event for
/// every per-upstream rate allocation installed or revised at a refresh.
pub fn run_pushback_traced<T: Tracer + ?Sized>(
    mut sources: Vec<Box<dyn PacketSource>>,
    cfg: &PushbackConfig,
    end: SimTime,
    tracer: &mut T,
) -> PushbackResult {
    assert!(!sources.is_empty(), "need at least one upstream");
    let n = sources.len();
    let mut stats = StatsCollector::new(cfg.stats_interval);
    let mut upstreams: Vec<Upstream> = (0..n)
        .map(|_| Upstream {
            queue: FifoQueue::new(cfg.upstream_buffer),
            policers: Vec::new(),
            contribution: HashMap::new(),
        })
        .collect();
    let mut bottleneck = AccSwitch::new(cfg.acc.clone(), cfg.bottleneck_link);

    // Event state.
    let mut pending: Vec<Option<Packet>> = sources
        .iter_mut()
        .map(|s| next_before(s.as_mut(), end))
        .collect();
    let mut upstream_tx: Vec<Option<(SimTime, Packet)>> = vec![None; n];
    let mut bottleneck_tx: Option<(SimTime, Packet)> = None;
    let mut control_next = SimTime::ZERO + SimDuration::from_millis(100);
    let mut refresh_next = SimTime::ZERO + cfg.refresh;
    let mut drops_buf: Vec<Dropped> = Vec::new();
    let (mut upstream_drops, mut bottleneck_drops, mut installs) = (0u64, 0u64, 0u64);
    #[allow(unused_assignments)]
    let mut now = SimTime::ZERO;

    loop {
        // Earliest event across: per-upstream arrivals and tx completions,
        // the bottleneck tx completion, the ACC control tick, and the
        // pushback refresh.
        let mut t = SimTime::MAX;
        for p in pending.iter().flatten() {
            t = t.min(p.arrival);
        }
        for tx in upstream_tx.iter().flatten() {
            t = t.min(tx.0);
        }
        if let Some((done, _)) = &bottleneck_tx {
            t = t.min(*done);
        }
        let active = pending.iter().any(|p| p.is_some())
            || upstream_tx.iter().any(|t| t.is_some())
            || bottleneck_tx.is_some()
            || bottleneck.backlog_pkts() > 0
            || upstreams.iter().any(|u| !u.queue.is_empty());
        if active {
            t = t.min(control_next).min(refresh_next);
        }
        if t == SimTime::MAX {
            break;
        }
        now = t;

        // 1. Bottleneck tx completion.
        if let Some((done, _)) = &bottleneck_tx {
            if *done == now {
                let (_, pkt) = bottleneck_tx.take().expect("just matched");
                stats.on_depart(&pkt, now);
            }
        }
        // 2. Upstream tx completions: the packet crosses into the
        //    bottleneck's data path.
        for slot in upstream_tx.iter_mut() {
            if matches!(slot, Some((done, _)) if *done == now) {
                let (_, pkt) = slot.take().expect("just matched");
                drops_buf.clear();
                bottleneck.ingress(pkt, now, &mut drops_buf);
                for d in &drops_buf {
                    stats.on_drop(d, now);
                }
                bottleneck_drops += drops_buf.len() as u64;
            }
        }
        // 3. Control tick (the bottleneck ACC agent).
        if now == control_next && active {
            bottleneck.control_tick(now);
            control_next += SimDuration::from_millis(100);
        }
        // 4. Pushback refresh: divide every session's limit among the
        //    upstreams proportionally to their contribution.
        if now == refresh_next && active {
            if cfg.enabled {
                let sessions: Vec<(Prefix, Bandwidth)> = bottleneck
                    .sessions()
                    .sessions()
                    .iter()
                    .map(|s| (s.prefix, s.limit))
                    .collect();
                for (prefix, limit) in sessions {
                    let contributions: Vec<u64> = upstreams
                        .iter()
                        .map(|u| u.contribution.get(&prefix).copied().unwrap_or(0))
                        .collect();
                    let total: u64 = contributions.iter().sum();
                    for (i, upstream) in upstreams.iter_mut().enumerate() {
                        // Proportional share with an even floor so a
                        // currently-silent upstream is not starved forever.
                        let share = if total == 0 {
                            limit.as_bps() / n as u64
                        } else {
                            (limit.as_bps() as f64
                                * (0.9 * contributions[i] as f64 / total as f64 + 0.1 / n as f64))
                                as u64
                        };
                        let share = Bandwidth::from_bps(share.max(1));
                        match upstream.policers.iter_mut().find(|(p, _)| *p == prefix) {
                            Some((_, tb)) => tb.set_rate(share),
                            None => {
                                upstream
                                    .policers
                                    .push((prefix, TokenBucket::new(share, 15_000)));
                                installs += 1;
                            }
                        }
                        if tracer.enabled() {
                            tracer.record(
                                now.as_nanos(),
                                &Event::PushbackLimit {
                                    upstream: i,
                                    prefix: prefix.addr,
                                    prefix_len: prefix.len,
                                    bps: share.as_bps(),
                                },
                            );
                        }
                    }
                }
                // Expire upstream policers whose session is gone.
                let live: Vec<Prefix> = bottleneck
                    .sessions()
                    .sessions()
                    .iter()
                    .map(|s| s.prefix)
                    .collect();
                for u in &mut upstreams {
                    u.policers.retain(|(p, _)| live.contains(p));
                    u.contribution.clear();
                }
            }
            refresh_next += cfg.refresh;
        }
        // 5. Arrivals at the upstreams.
        for i in 0..n {
            while let Some(pkt) = &pending[i] {
                if pkt.arrival != now {
                    break;
                }
                let pkt = pending[i].take().expect("just matched");
                pending[i] = next_before(sources[i].as_mut(), end);
                stats.on_arrival(&pkt);
                drops_buf.clear();
                upstreams[i].ingress(pkt, now, &mut drops_buf);
                for d in &drops_buf {
                    stats.on_drop(d, now);
                }
                upstream_drops += drops_buf.len() as u64;
            }
        }
        // 6. Start idle transmissions.
        for i in 0..n {
            if upstream_tx[i].is_none() {
                if let Some(pkt) = upstreams[i].queue.dequeue(now) {
                    let done = now + cfg.upstream_link.tx_time(pkt.size);
                    upstream_tx[i] = Some((done, pkt));
                }
            }
        }
        if bottleneck_tx.is_none() {
            if let Some(pkt) = bottleneck.dequeue(now) {
                let done = now + cfg.bottleneck_link.tx_time(pkt.size);
                bottleneck_tx = Some((done, pkt));
            }
        }
    }

    PushbackResult {
        stats,
        upstream_drops,
        bottleneck_drops,
        pushback_installs: installs,
    }
}

fn next_before(source: &mut dyn PacketSource, end: SimTime) -> Option<Packet> {
    let pkt = source.next_packet()?;
    (pkt.arrival < end).then_some(pkt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_netsim::{ClassId, RedConfig};
    use accturbo_traffic::{AttackConfig, AttackSource, AttackVector, CbrSource, FlowTemplate};
    use std::net::Ipv4Addr;

    /// Two upstreams; the attack enters upstream 0 only, congesting its
    /// link (which the benign flow on upstream 0 shares); upstream 1
    /// carries benign traffic only.
    fn sources(end_s: u64) -> Vec<Box<dyn PacketSource>> {
        let end = SimTime::from_secs(end_s);
        let benign0 = CbrSource::new(
            FlowTemplate::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(60, 1, 1, 1),
                5000,
                80,
                ClassId(1),
            ),
            4_000_000,
            SimTime::ZERO,
            end,
        );
        // A jittered flood (random packet sizes/ports) rather than a
        // strictly periodic CBR: perfectly periodic arrivals phase-lock
        // with the upstream FIFO's drain cycle and defeat the point of
        // the scenario.
        let attack0 = AttackSource::new(AttackConfig::new(
            AttackVector::UdpFlood,
            40_000_000,
            SimTime::from_secs(3),
            end,
            ClassId(5),
            0xACC,
        ));
        let up0: Box<dyn PacketSource> = Box::new(accturbo_netsim::MergedSource::new(vec![
            Box::new(benign0),
            Box::new(attack0),
        ]));
        let benign1 = CbrSource::new(
            FlowTemplate::udp(
                Ipv4Addr::new(10, 0, 1, 1),
                Ipv4Addr::new(61, 1, 1, 1),
                5001,
                80,
                ClassId(2),
            ),
            4_000_000,
            SimTime::ZERO,
            end,
        );
        vec![up0, Box::new(benign1)]
    }

    fn config(enabled: bool) -> PushbackConfig {
        let mut cfg = PushbackConfig::new(Bandwidth::from_mbps(12), Bandwidth::from_mbps(10));
        cfg.acc.red = RedConfig {
            min_th: 20.0,
            max_th: 60.0,
            cap_bytes: 100_000,
            ..RedConfig::default()
        };
        if !enabled {
            cfg = cfg.without_pushback();
        }
        cfg
    }

    #[test]
    fn pushback_rescues_the_shared_upstream_link() {
        let secs = 30;
        let with = run_pushback(sources(secs), &config(true), SimTime::from_secs(secs));
        let without = run_pushback(sources(secs), &config(false), SimTime::from_secs(secs));

        // Class 1 shares upstream 0's 12 Mbps link with a 40 Mbps attack;
        // without pushback the upstream FIFO crushes it even though the
        // bottleneck eventually rate-limits the aggregate.
        let delivered = |r: &PushbackResult| r.stats.total_departed(ClassId(1)).pkts;
        assert!(with.pushback_installs > 0, "pushback must have fired");
        assert!(
            delivered(&with) as f64 > 1.5 * delivered(&without) as f64,
            "pushback {} vs local-only {}",
            delivered(&with),
            delivered(&without)
        );
        // And the attack is dropped *upstream* when pushback is on.
        assert!(
            with.upstream_drops > without.upstream_drops,
            "drops must move upstream: {} vs {}",
            with.upstream_drops,
            without.upstream_drops
        );
    }

    #[test]
    fn unshared_upstream_is_unaffected_either_way() {
        let secs = 20;
        let with = run_pushback(sources(secs), &config(true), SimTime::from_secs(secs));
        // Upstream 1 (class 2) never sees the attack; its delivery is
        // near-perfect under pushback.
        let arrived = with.stats.total_arrived(ClassId(2)).pkts;
        let delivered = with.stats.total_departed(ClassId(2)).pkts;
        assert!(
            delivered as f64 > 0.9 * arrived as f64,
            "class 2 delivered {delivered}/{arrived}"
        );
    }

    #[test]
    fn traced_run_records_pushback_limits() {
        use accturbo_obs::RingTracer;
        let secs = 20;
        let mut t = RingTracer::new(100_000);
        let res = run_pushback_traced(
            sources(secs),
            &config(true),
            SimTime::from_secs(secs),
            &mut t,
        );
        assert!(res.pushback_installs > 0, "pushback must have fired");
        let limits = t
            .iter()
            .filter(|(_, e)| e.kind() == "pushback_limit")
            .count() as u64;
        // Every install is traced, and revisions at later refreshes add
        // more events on top.
        assert!(
            limits >= res.pushback_installs,
            "{limits} events vs {} installs",
            res.pushback_installs
        );
        let jsonl = t.to_jsonl();
        assert!(jsonl.contains("\"ev\":\"pushback_limit\""));
        assert!(jsonl.contains("\"upstream\":0"));
    }

    #[test]
    fn conservation_holds_in_the_two_tier_topology() {
        let secs = 15;
        let res = run_pushback(sources(secs), &config(true), SimTime::from_secs(secs));
        for class in [1u16, 2, 5] {
            let c = ClassId(class);
            let arrived = res.stats.total_arrived(c).pkts;
            let departed = res.stats.total_departed(c).pkts;
            let dropped = res.stats.total_dropped(c).pkts;
            // In-flight packets at the hard stop are the only slack.
            assert!(
                arrived >= departed + dropped && arrived - (departed + dropped) < 300,
                "class {class}: {arrived} vs {departed}+{dropped}"
            );
        }
    }
}
