//! Rate-limit computation (paper §2.1).
//!
//! Given the inferred aggregates sorted by drop count and the excess
//! arrival rate `R_excess` (how much traffic must be shed for the output
//! queue's drop rate to fall below `p_target`), ACC finds the minimum
//! number of aggregates `|A|` to limit and the common limit `L` such that
//!
//! ```text
//! Σ_{i=1..|A|} (rate_i − L) = R_excess
//! ```
//!
//! This is the classic water-filling solution: pour the required
//! reduction over the highest-rate aggregates until the water level `L`
//! clears the next aggregate's rate.

use accturbo_netsim::Bandwidth;

/// Result of the rate-limit computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitPlan {
    /// Number of aggregates to limit (`|A|`), counted from the
    /// highest-rate aggregate down.
    pub num_limited: usize,
    /// The common rate limit `L`.
    pub limit: Bandwidth,
}

/// Computes `R_excess` in bits/s: the arrival rate that must be shed so
/// the drop rate at a link of `capacity` falls to `p_target`. Zero when
/// the link is not oversubscribed beyond the target.
pub fn excess_rate(arrival_bps: f64, capacity: Bandwidth, p_target: f64) -> f64 {
    assert!((0.0..1.0).contains(&p_target), "p_target must be in [0, 1)");
    // Drop rate p = (A − C)/A wants to be ≤ p_target ⇒ A ≤ C/(1 − p_target).
    let allowed = capacity.as_bps() as f64 / (1.0 - p_target);
    (arrival_bps - allowed).max(0.0)
}

/// Water-fills `excess_bps` over `rates` (aggregate arrival rates in
/// bits/s, **sorted descending**). Returns `None` when no limiting is
/// needed (zero excess or no aggregates).
pub fn water_fill(rates: &[f64], excess_bps: f64) -> Option<RateLimitPlan> {
    assert!(
        rates.windows(2).all(|w| w[0] >= w[1]),
        "rates must be sorted descending"
    );
    if excess_bps <= 0.0 || rates.is_empty() {
        return None;
    }
    let mut prefix_sum = 0.0;
    for k in 1..=rates.len() {
        prefix_sum += rates[k - 1];
        let level = (prefix_sum - excess_bps) / k as f64;
        let next = rates.get(k).copied().unwrap_or(0.0);
        if level >= next {
            return Some(RateLimitPlan {
                num_limited: k,
                limit: Bandwidth::from_bps(level.max(0.0) as u64),
            });
        }
    }
    // Even limiting everything to zero cannot shed the excess: limit all
    // aggregates to zero (the best ACC can do locally).
    Some(RateLimitPlan {
        num_limited: rates.len(),
        limit: Bandwidth::ZERO,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excess_rate_zero_when_under_capacity() {
        let c = Bandwidth::from_mbps(10);
        assert_eq!(excess_rate(5e6, c, 0.05), 0.0);
        assert_eq!(excess_rate(10.5e6, c, 0.05), 0.0); // within the slack
    }

    #[test]
    fn excess_rate_formula() {
        let c = Bandwidth::from_mbps(10);
        // Allowed = 10M / 0.95 ≈ 10.526M; arrival 20M ⇒ excess ≈ 9.47M.
        let e = excess_rate(20e6, c, 0.05);
        assert!((e - (20e6 - 10e6 / 0.95)).abs() < 1.0);
    }

    #[test]
    fn single_aggregate_takes_all_the_cut() {
        let plan = water_fill(&[8e6, 1e6], 3e6).expect("limiting needed");
        // L = 8 − 3 = 5 Mbps ≥ 1 Mbps, so only the top aggregate is cut.
        assert_eq!(plan.num_limited, 1);
        assert_eq!(plan.limit.as_bps(), 5_000_000);
    }

    #[test]
    fn cut_spreads_when_level_sinks_below_next_rate() {
        // rates 8, 6; excess 5: k=1 gives L=3 < 6, so k=2:
        // L = (14 − 5)/2 = 4.5 ≥ 0.
        let plan = water_fill(&[8e6, 6e6, 1e6], 5e6).expect("limiting needed");
        assert_eq!(plan.num_limited, 2);
        assert_eq!(plan.limit.as_bps(), 4_500_000);
    }

    #[test]
    fn reduction_sums_to_excess() {
        let rates = [9e6, 7e6, 4e6, 2e6];
        let excess = 8e6;
        let plan = water_fill(&rates, excess).expect("limiting needed");
        let shed: f64 = rates[..plan.num_limited]
            .iter()
            .map(|r| r - plan.limit.as_bps() as f64)
            .sum();
        assert!(
            (shed - excess).abs() < 10.0,
            "shed {shed} != excess {excess}"
        );
    }

    #[test]
    fn impossible_excess_limits_everything_to_zero() {
        let plan = water_fill(&[1e6, 1e6], 10e6).expect("limiting needed");
        assert_eq!(plan.num_limited, 2);
        assert_eq!(plan.limit, Bandwidth::ZERO);
    }

    #[test]
    fn no_excess_means_no_plan() {
        assert!(water_fill(&[5e6], 0.0).is_none());
        assert!(water_fill(&[], 1e6).is_none());
    }

    #[test]
    #[should_panic(expected = "sorted descending")]
    fn unsorted_rates_rejected() {
        let _ = water_fill(&[1e6, 2e6], 1e6);
    }
}
