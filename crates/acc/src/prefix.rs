//! Prefix-based aggregate inference (paper §2.1, after Mahajan et al.).
//!
//! The ACC agent looks only at destination addresses of RED-dropped
//! packets. It (i) lists the addresses with more than twice the mean
//! per-address drop count, (ii) clusters them into /24 prefixes, and
//! (iii) walks each prefix's subtree downward, taking a longer prefix as
//! long as it still contains most of the drops — minimizing collateral
//! damage.

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// An IPv4 prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Network address (host bits zero).
    pub addr: u32,
    /// Prefix length, 0–32.
    pub len: u8,
}

impl Prefix {
    /// Builds a prefix, masking the host bits off.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range");
        Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// True when `ip` falls inside this prefix.
    pub fn contains(&self, ip: u32) -> bool {
        ip & Self::mask(self.len) == self.addr
    }

    /// The two children of this prefix (length + 1), or `None` at /32.
    pub fn children(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Prefix::new(self.addr, self.len + 1);
        let right = Prefix::new(self.addr | (1 << (31 - self.len)), self.len + 1);
        Some((left, right))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.addr), self.len)
    }
}

/// An inferred aggregate: a prefix plus its share of the drop history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferredAggregate {
    /// The destination prefix.
    pub prefix: Prefix,
    /// Drops attributed to the prefix in the analysis window.
    pub drops: u64,
}

/// Infers up to `max_aggregates` aggregates from the destination addresses
/// of dropped packets, per the ACC procedure. `refine_keep` is the
/// fraction of a prefix's drops a child must retain for the walk-down to
/// descend (the paper's "still contain most of the packet drops"; we use
/// 0.9 by default at the call site).
pub fn infer_aggregates(
    dropped_dsts: &[u32],
    max_aggregates: usize,
    refine_keep: f64,
) -> Vec<InferredAggregate> {
    assert!(
        (0.5..=1.0).contains(&refine_keep),
        "refine_keep must be in [0.5, 1.0]"
    );
    if dropped_dsts.is_empty() || max_aggregates == 0 {
        return Vec::new();
    }

    // (i) per-address drop counts and the high-drop address list.
    let mut per_ip: HashMap<u32, u64> = HashMap::new();
    for &ip in dropped_dsts {
        *per_ip.entry(ip).or_insert(0) += 1;
    }
    let mean = dropped_dsts.len() as f64 / per_ip.len() as f64;
    let threshold = 2.0 * mean;
    let heavy: Vec<u32> = per_ip
        .iter()
        .filter(|&(_, &c)| c as f64 > threshold)
        .map(|(&ip, _)| ip)
        .collect();
    // When drops are spread evenly (no address stands out — e.g. a whole
    // /24 being carpet-bombed), fall back to clustering all addresses:
    // the /24 aggregation below still finds the hot prefix.
    let candidates: Vec<u32> = if heavy.is_empty() {
        per_ip.keys().copied().collect()
    } else {
        heavy
    };

    // (ii) cluster candidates into /24s; attribute *all* drops per /24.
    let mut per_24: HashMap<Prefix, u64> = HashMap::new();
    for ip in candidates {
        per_24.entry(Prefix::new(ip, 24)).or_insert(0);
    }
    for (&ip, &count) in &per_ip {
        let p = Prefix::new(ip, 24);
        if let Some(c) = per_24.get_mut(&p) {
            *c += count;
        }
    }

    let mut ranked: Vec<(Prefix, u64)> = per_24.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(max_aggregates);

    // (iii) walk each prefix's subtree downward.
    ranked
        .into_iter()
        .map(|(mut prefix, mut drops)| {
            while let Some((left, right)) = prefix.children() {
                let left_drops: u64 = per_ip
                    .iter()
                    .filter(|&(&ip, _)| left.contains(ip))
                    .map(|(_, &c)| c)
                    .sum();
                let right_drops = drops - left_drops;
                let (child, child_drops) = if left_drops >= right_drops {
                    (left, left_drops)
                } else {
                    (right, right_drops)
                };
                if (child_drops as f64) < refine_keep * drops as f64 {
                    break;
                }
                prefix = child;
                drops = child_drops;
            }
            InferredAggregate { prefix, drops }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(ip(198, 18, 5, 77), 24);
        assert_eq!(p.addr, ip(198, 18, 5, 0));
        assert!(p.contains(ip(198, 18, 5, 200)));
        assert!(!p.contains(ip(198, 18, 6, 1)));
        assert_eq!(p.to_string(), "198.18.5.0/24");
    }

    #[test]
    fn children_split_the_space() {
        let p = Prefix::new(ip(10, 0, 0, 0), 24);
        let (l, r) = p.children().expect("not a /32");
        assert_eq!(l, Prefix::new(ip(10, 0, 0, 0), 25));
        assert_eq!(r, Prefix::new(ip(10, 0, 0, 128), 25));
        assert!(Prefix::new(0, 32).children().is_none());
    }

    #[test]
    fn single_hot_destination_refines_to_slash32() {
        // 1000 drops on one IP, background noise elsewhere.
        let mut drops = vec![ip(198, 18, 0, 10); 1000];
        for i in 0..50u8 {
            drops.push(ip(20, 0, i, i));
        }
        let aggs = infer_aggregates(&drops, 5, 0.9);
        assert!(!aggs.is_empty());
        assert_eq!(aggs[0].prefix, Prefix::new(ip(198, 18, 0, 10), 32));
        assert_eq!(aggs[0].drops, 1000);
    }

    #[test]
    fn carpet_bombing_stays_at_slash24() {
        // Drops spread over a whole /24: no single address is heavy, but
        // the /24 must be inferred.
        let mut drops = Vec::new();
        for i in 0..=255u8 {
            for _ in 0..4 {
                drops.push(ip(198, 18, 5, i));
            }
        }
        let aggs = infer_aggregates(&drops, 5, 0.9);
        assert_eq!(aggs[0].prefix, Prefix::new(ip(198, 18, 5, 0), 24));
        assert_eq!(aggs[0].drops, 1024);
    }

    #[test]
    fn ranks_multiple_aggregates_by_drops() {
        let mut drops = Vec::new();
        drops.extend(std::iter::repeat_n(ip(1, 1, 1, 1), 500));
        drops.extend(std::iter::repeat_n(ip(2, 2, 2, 2), 300));
        drops.extend(std::iter::repeat_n(ip(3, 3, 3, 3), 100));
        for i in 0..60u8 {
            drops.push(ip(50, i, 0, 1));
        }
        let aggs = infer_aggregates(&drops, 2, 0.9);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].prefix.addr, ip(1, 1, 1, 1));
        assert_eq!(aggs[1].prefix.addr, ip(2, 2, 2, 2));
    }

    #[test]
    fn half_slash24_refines_to_slash25() {
        // All drops in the lower half of a /24.
        let mut drops = Vec::new();
        for i in 0..128u8 {
            for _ in 0..8 {
                drops.push(ip(198, 18, 9, i));
            }
        }
        let aggs = infer_aggregates(&drops, 5, 0.9);
        assert_eq!(aggs[0].prefix.len, 25);
        assert_eq!(aggs[0].prefix.addr, ip(198, 18, 9, 0));
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(infer_aggregates(&[], 5, 0.9).is_empty());
        assert!(infer_aggregates(&[ip(1, 1, 1, 1)], 0, 0.9).is_empty());
    }
}
