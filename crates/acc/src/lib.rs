//! # accturbo-acc
//!
//! Classic Aggregate-based Congestion Control (Mahajan et al. 2002) as
//! described in the paper's §2: a RED output queue whose drops feed an
//! agent that — once the drop rate over a monitoring window `K` exceeds
//! `p_high` — infers destination-prefix aggregates from the dropped
//! headers, water-fills a rate limit over the heaviest aggregates, and
//! polices them with token-bucket sessions following the Table 4
//! lifecycle. This is the historical baseline ACC-Turbo is measured
//! against in Figs. 2 and 3.

#![deny(missing_docs)]

pub mod config;
pub mod prefix;
pub mod pushback;
pub mod ratelimit;
pub mod sessions;
pub mod switch;

pub use config::AccConfig;
pub use prefix::{infer_aggregates, InferredAggregate, Prefix};
pub use pushback::{run_pushback, run_pushback_traced, PushbackConfig, PushbackResult};
pub use ratelimit::{excess_rate, water_fill, RateLimitPlan};
pub use sessions::{Session, SessionConfig, SessionTable};
pub use switch::AccSwitch;
