//! Edge cases of classic ACC's control plane surfaced by fault
//! injection: suppressed and erratic control ticks mean the agent can
//! fire at arbitrary times against empty state (zero sessions, empty
//! drop history, empty bins). None of these paths may panic, and none
//! may conjure sessions out of nothing.

use accturbo_acc::{water_fill, AccConfig, AccSwitch};
use accturbo_netsim::{Bandwidth, Dropped, Packet, SimTime, Switch};
use std::net::Ipv4Addr;

const LINK: u64 = 10_000_000;

fn fresh() -> AccSwitch {
    AccSwitch::new(AccConfig::default(), Bandwidth::from_bps(LINK))
}

/// Control ticks against a switch that has never seen a packet: no drop
/// history, no bins, no sessions — at time zero, mid-window, far past
/// every K boundary, and repeatedly at the same instant.
#[test]
fn control_tick_with_zero_sessions_and_no_traffic_never_panics() {
    let mut sw = fresh();
    for t in [
        SimTime::ZERO,
        SimTime::from_millis(1),
        SimTime::from_secs(3),
        SimTime::from_secs(3),
        SimTime::from_secs(1_000),
        SimTime::from_secs(1_000_000),
    ] {
        sw.control_tick(t);
        assert_eq!(sw.activations(), 0, "no traffic can trigger the agent");
        assert!(sw.sessions().is_empty(), "no traffic can open sessions");
    }
}

/// The `control_missed` hook (what the engine calls when a fault
/// schedule suppresses a tick) is a default no-op for ACC: state is
/// untouched no matter how many ticks go missing.
#[test]
fn missed_control_ticks_leave_acc_state_untouched() {
    let mut sw = fresh();
    for s in 0..100u64 {
        sw.control_missed(SimTime::from_secs(s));
    }
    assert_eq!(sw.activations(), 0);
    assert!(sw.sessions().is_empty());
    assert_eq!(sw.backlog_pkts(), 0);
}

/// Below-threshold traffic followed by erratic (fault-shaped) tick
/// times: the agent's K-boundary bookkeeping must tolerate ticks that
/// jump far forward, repeat, and land exactly on boundaries, without
/// ever inferring aggregates from a drop-free window.
#[test]
fn erratic_tick_times_with_dropfree_traffic_open_no_sessions() {
    let mut sw = fresh();
    let mut drops: Vec<Dropped> = Vec::new();
    for i in 0..2_000u64 {
        // ~1.6 Mbps on a 10 Mbps link: far below any RED threshold.
        let t = SimTime::from_nanos(i * 5_000_000);
        let pkt =
            Packet::new(t)
                .with_size(1000)
                .with_dst(Ipv4Addr::new(198, 18, (i % 4) as u8, 10));
        sw.ingress(pkt, t, &mut drops);
        while sw.dequeue(t).is_some() {}
        match i % 7 {
            0 => sw.control_tick(t),
            3 => sw.control_tick(t + accturbo_netsim::SimDuration::from_secs(5)),
            5 => sw.control_missed(t),
            _ => {}
        }
    }
    assert!(drops.is_empty(), "drop-free workload must not drop");
    assert_eq!(sw.activations(), 0);
    assert!(
        sw.sessions().is_empty(),
        "a drop-free window must never open rate-limit sessions"
    );
}

/// Rate-limit planning against an empty prefix table: water-filling
/// nothing yields no plan rather than a division by zero, for any
/// excess.
#[test]
fn water_fill_on_an_empty_table_yields_no_plan() {
    for excess in [0.0, 1.0, 1e6, 1e12] {
        assert!(water_fill(&[], excess).is_none());
    }
    // All-zero rates with positive excess: the cut is infeasible, but it
    // must degrade to a zero limit, not panic.
    if let Some(plan) = water_fill(&[0.0, 0.0], 5.0) {
        assert_eq!(plan.limit.as_bps(), 0);
    }
}

/// Session revisits on an empty table at arbitrary times (the path a
/// fault-suppressed agent exercises every surviving tick) are no-ops.
#[test]
fn session_revisit_on_empty_table_is_a_noop() {
    let mut sw = fresh();
    // Interleave far-future and repeated revisit times.
    for t in [0u64, 5, 5, 100, 99_999] {
        sw.control_tick(SimTime::from_secs(t));
    }
    assert!(sw.sessions().is_empty());
}
