//! Randomized property tests for classic ACC's control-plane primitives.
//!
//! Originally written against `proptest`; the build environment has no
//! crates.io access, so these now run as seeded randomized loops over
//! `accturbo_prng` (deterministic per seed, so failures reproduce).

use accturbo_acc::{excess_rate, infer_aggregates, water_fill, Prefix};
use accturbo_netsim::Bandwidth;
use accturbo_prng::{Rng, SeedableRng, StdRng};

const CASES: usize = 128;

/// Water-filling always sheds exactly the excess (when feasible) and
/// never produces a negative limit or an empty plan for positive
/// excess.
#[test]
fn water_fill_sheds_exactly_the_excess() {
    let mut rng = StdRng::seed_from_u64(0xacc_0001);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..20);
        let mut rates: Vec<f64> = (0..n).map(|_| rng.gen_range(1e3f64..1e9)).collect();
        let excess_frac = rng.gen_range(0.01f64..0.99);
        rates.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let total: f64 = rates.iter().sum();
        let excess = total * excess_frac;
        let plan = water_fill(&rates, excess).expect("positive excess needs a plan");
        assert!(plan.num_limited >= 1 && plan.num_limited <= rates.len());
        let limit = plan.limit.as_bps() as f64;
        assert!(limit >= 0.0);
        let shed: f64 = rates[..plan.num_limited].iter().map(|r| r - limit).sum();
        // Feasible cut: shed == excess (within the integer-bps rounding of
        // the limit, amplified by the number of limited aggregates).
        let tolerance = plan.num_limited as f64 + 1.0;
        assert!(
            (shed - excess).abs() <= tolerance,
            "case {case}: shed {shed} vs excess {excess}"
        );
        // The water level never exceeds the highest rate and never cuts an
        // aggregate below zero.
        assert!(limit <= rates[0] + 1.0);
        // Aggregates outside the plan all have rate <= limit + rounding.
        for &r in &rates[plan.num_limited..] {
            assert!(
                r <= limit + tolerance,
                "case {case}: unlimited rate {r} above level {limit}"
            );
        }
    }
}

/// The excess rate is zero exactly when the arrival fits within the
/// capacity slack, and increasing arrivals never decreases it.
#[test]
fn excess_rate_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0xacc_0002);
    for case in 0..CASES {
        let arrival = rng.gen_range(0f64..1e10);
        let cap_mbps = rng.gen_range(1u64..10_000);
        let cap = Bandwidth::from_mbps(cap_mbps);
        let e1 = excess_rate(arrival, cap, 0.05);
        let e2 = excess_rate(arrival * 1.5 + 1.0, cap, 0.05);
        assert!(e1 >= 0.0, "case {case}");
        assert!(e2 >= e1, "case {case}");
        if arrival <= cap.as_bps() as f64 {
            assert_eq!(e1, 0.0, "case {case}");
        }
    }
}

/// Inferred aggregates always contain the addresses that dominated the
/// drop history, respect the cap, and report drop counts that never
/// exceed the history length.
#[test]
fn inference_finds_the_dominant_prefix() {
    let mut rng = StdRng::seed_from_u64(0xacc_0003);
    for case in 0..CASES {
        let hot_ip: u32 = rng.gen();
        let hot_count = rng.gen_range(100usize..1000);
        let n_noise = rng.gen_range(0usize..100);
        let max_aggs = rng.gen_range(1usize..8);
        let mut drops = vec![hot_ip; hot_count];
        for _ in 0..n_noise {
            drops.push(rng.gen());
        }
        let aggs = infer_aggregates(&drops, max_aggs, 0.9);
        assert!(!aggs.is_empty(), "case {case}");
        assert!(aggs.len() <= max_aggs, "case {case}");
        assert!(
            aggs[0].prefix.contains(hot_ip),
            "case {case}: top prefix misses the hot ip"
        );
        for a in &aggs {
            assert!(a.drops as usize <= drops.len(), "case {case}");
        }
    }
}

/// Prefix containment is consistent with masking: a /len prefix built
/// from an address contains exactly the addresses sharing its top bits.
#[test]
fn prefix_contains_iff_bits_match() {
    let mut rng = StdRng::seed_from_u64(0xacc_0004);
    for case in 0..CASES * 4 {
        let addr: u32 = rng.gen();
        let other: u32 = rng.gen();
        let len = rng.gen_range(0u8..=32);
        let p = Prefix::new(addr, len);
        let mask = if len == 0 {
            0u32
        } else {
            u32::MAX << (32 - len)
        };
        assert_eq!(
            p.contains(other),
            (other & mask) == (addr & mask),
            "case {case} len {len}"
        );
        assert!(p.contains(addr), "case {case}");
    }
}

/// Children partition a prefix: every address in the parent is in
/// exactly one child.
#[test]
fn prefix_children_partition() {
    let mut rng = StdRng::seed_from_u64(0xacc_0005);
    for case in 0..CASES * 4 {
        let addr: u32 = rng.gen();
        let len = rng.gen_range(0u8..32);
        let probe: u32 = rng.gen();
        let p = Prefix::new(addr, len);
        let (l, r) = p.children().expect("len < 32");
        if p.contains(probe) {
            assert!(l.contains(probe) ^ r.contains(probe), "case {case}");
        } else {
            assert!(!l.contains(probe) && !r.contains(probe), "case {case}");
        }
    }
}
