//! Property-based tests for classic ACC's control-plane primitives.

use accturbo_acc::{excess_rate, infer_aggregates, water_fill, Prefix};
use accturbo_netsim::Bandwidth;
use proptest::prelude::*;

proptest! {
    /// Water-filling always sheds exactly the excess (when feasible) and
    /// never produces a negative limit or an empty plan for positive
    /// excess.
    #[test]
    fn water_fill_sheds_exactly_the_excess(
        mut rates in prop::collection::vec(1e3f64..1e9, 1..20),
        excess_frac in 0.01f64..0.99) {
        rates.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let total: f64 = rates.iter().sum();
        let excess = total * excess_frac;
        let plan = water_fill(&rates, excess).expect("positive excess needs a plan");
        prop_assert!(plan.num_limited >= 1 && plan.num_limited <= rates.len());
        let limit = plan.limit.as_bps() as f64;
        prop_assert!(limit >= 0.0);
        let shed: f64 = rates[..plan.num_limited].iter().map(|r| r - limit).sum();
        // Feasible cut: shed == excess (within the integer-bps rounding of
        // the limit, amplified by the number of limited aggregates).
        let tolerance = plan.num_limited as f64 + 1.0;
        prop_assert!(
            (shed - excess).abs() <= tolerance,
            "shed {shed} vs excess {excess}"
        );
        // The water level never exceeds the highest rate and never cuts an
        // aggregate below zero.
        prop_assert!(limit <= rates[0] + 1.0);
        // Aggregates outside the plan all have rate <= limit + rounding.
        for &r in &rates[plan.num_limited..] {
            prop_assert!(r <= limit + tolerance, "unlimited rate {r} above level {limit}");
        }
    }

    /// The excess rate is zero exactly when the arrival fits within the
    /// capacity slack, and increasing arrivals never decreases it.
    #[test]
    fn excess_rate_is_monotone(arrival in 0f64..1e10, cap_mbps in 1u64..10_000) {
        let cap = Bandwidth::from_mbps(cap_mbps);
        let e1 = excess_rate(arrival, cap, 0.05);
        let e2 = excess_rate(arrival * 1.5 + 1.0, cap, 0.05);
        prop_assert!(e1 >= 0.0);
        prop_assert!(e2 >= e1);
        if arrival <= cap.as_bps() as f64 {
            prop_assert_eq!(e1, 0.0);
        }
    }

    /// Inferred aggregates always contain the addresses that dominated the
    /// drop history, respect the cap, and report drop counts that never
    /// exceed the history length.
    #[test]
    fn inference_finds_the_dominant_prefix(
        hot_ip in any::<u32>(),
        hot_count in 100usize..1000,
        noise in prop::collection::vec(any::<u32>(), 0..100),
        max_aggs in 1usize..8) {
        let mut drops = vec![hot_ip; hot_count];
        drops.extend(&noise);
        let aggs = infer_aggregates(&drops, max_aggs, 0.9);
        prop_assert!(!aggs.is_empty());
        prop_assert!(aggs.len() <= max_aggs);
        prop_assert!(aggs[0].prefix.contains(hot_ip), "top prefix misses the hot ip");
        for a in &aggs {
            prop_assert!(a.drops as usize <= drops.len());
        }
    }

    /// Prefix containment is consistent with masking: a /len prefix built
    /// from an address contains exactly the addresses sharing its top bits.
    #[test]
    fn prefix_contains_iff_bits_match(addr in any::<u32>(), other in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(addr, len);
        let mask = if len == 0 { 0u32 } else { u32::MAX << (32 - len) };
        prop_assert_eq!(p.contains(other), (other & mask) == (addr & mask));
        prop_assert!(p.contains(addr));
    }

    /// Children partition a prefix: every address in the parent is in
    /// exactly one child.
    #[test]
    fn prefix_children_partition(addr in any::<u32>(), len in 0u8..32, probe in any::<u32>()) {
        let p = Prefix::new(addr, len);
        let (l, r) = p.children().expect("len < 32");
        if p.contains(probe) {
            prop_assert!(l.contains(probe) ^ r.contains(probe));
        } else {
            prop_assert!(!l.contains(probe) && !r.contains(probe));
        }
    }
}
