//! ACC-Turbo switch configuration.

use accturbo_clustering::{ClusteringConfig, FeatureSet};
use accturbo_sched::RankingAlgorithm;

/// Configuration of a full ACC-Turbo switch.
#[derive(Debug, Clone)]
pub struct AccTurboConfig {
    /// The online-clustering engine (features, distance, search, |C|).
    pub clustering: ClusteringConfig,
    /// The control plane's ranking algorithm (§5.1).
    pub ranking: RankingAlgorithm,
    /// Number of strict-priority queues (≤ |C| on hardware; defaults to
    /// one queue per cluster).
    pub num_queues: usize,
    /// Per-queue buffer, in bytes.
    pub queue_capacity_bytes: u64,
    /// Shared buffer across all queues (a traffic manager's packet
    /// buffer): per-queue caps bound how much one queue can hog; the
    /// shared cap bounds the total.
    pub shared_capacity_bytes: Option<u64>,
    /// Re-seed the clusters at every control tick, as the authors'
    /// prototype does, so cluster shapes track the current traffic rather
    /// than growing monotonically (see DESIGN.md §4).
    pub reset_on_poll: bool,
}

impl AccTurboConfig {
    /// The Tofino-1 hardware profile of §6/§7: 4 clusters, 4 features, 4
    /// priority queues, Manhattan distance, fast search, throughput
    /// ranking, clusters re-seeded at every poll.
    pub fn hardware(features: FeatureSet) -> Self {
        assert!(
            features.len() <= 4,
            "the Tofino-1 profile supports at most 4 features (paper §6)"
        );
        AccTurboConfig {
            clustering: ClusteringConfig::deployable(4, features),
            ranking: RankingAlgorithm::Throughput,
            num_queues: 4,
            queue_capacity_bytes: 256 * 1024,
            shared_capacity_bytes: Some(512 * 1024),
            reset_on_poll: true,
        }
    }

    /// The simulation profile of §8: 10 clusters over the given features,
    /// deployable clustering, throughput ranking.
    pub fn simulation(features: FeatureSet) -> Self {
        AccTurboConfig {
            clustering: ClusteringConfig::deployable(10, features),
            ranking: RankingAlgorithm::Throughput,
            num_queues: 10,
            queue_capacity_bytes: 256 * 1024,
            shared_capacity_bytes: Some(1024 * 1024),
            reset_on_poll: true,
        }
    }

    /// Overrides the cluster count, keeping one priority queue per
    /// cluster (the deployable mapping both profiles use).
    pub fn with_clusters(mut self, n: usize) -> Self {
        assert!(n > 0, "cluster count must be positive");
        self.clustering.num_clusters = n;
        self.num_queues = n;
        self
    }

    /// Overrides the ranking algorithm.
    pub fn with_ranking(mut self, ranking: RankingAlgorithm) -> Self {
        self.ranking = ranking;
        self
    }

    /// Overrides the per-queue buffer size.
    pub fn with_queue_capacity(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "queue capacity must be positive");
        self.queue_capacity_bytes = bytes;
        self
    }

    /// Overrides the clustering engine wholesale (for the §8.1 design
    /// space sweeps: Anime/Euclidean distances, exhaustive search, …).
    pub fn with_clustering(mut self, clustering: ClusteringConfig) -> Self {
        self.clustering = clustering;
        self
    }

    /// Disables cluster re-seeding at polls.
    pub fn without_reset_on_poll(mut self) -> Self {
        self.reset_on_poll = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_clustering::{DistanceKind, SearchKind};

    #[test]
    fn hardware_profile_matches_the_paper() {
        let cfg = AccTurboConfig::hardware(FeatureSet::hardware_fig6());
        assert_eq!(cfg.clustering.num_clusters, 4);
        assert_eq!(cfg.clustering.features.len(), 4);
        assert_eq!(cfg.clustering.distance, DistanceKind::Manhattan);
        assert_eq!(cfg.clustering.search, SearchKind::Fast);
        assert_eq!(cfg.num_queues, 4);
        assert!(cfg.reset_on_poll);
    }

    #[test]
    fn simulation_profile_uses_ten_clusters() {
        let cfg = AccTurboConfig::simulation(FeatureSet::simulation_default());
        assert_eq!(cfg.clustering.num_clusters, 10);
        assert_eq!(cfg.num_queues, 10);
    }

    #[test]
    #[should_panic(expected = "at most 4 features")]
    fn hardware_rejects_wide_feature_sets() {
        let _ = AccTurboConfig::hardware(FeatureSet::simulation_default());
    }
}
