//! Per-packet rank scheduling for ACC-Turbo (the other end of §5's design
//! space).
//!
//! The deployed design offloads rank computation to the control plane and
//! maps whole clusters to queues. §5.1 also sketches true *per-packet*
//! ranking — `rank(p) = throughput(c)` etc. — which needs a rank-capable
//! scheduler. [`RankedAccTurboSwitch`] implements that path: every packet
//! is ranked by its cluster's last-polled score and scheduled by
//! [`accturbo_sched::SpPifo`] (the strict-priority approximation of a
//! PIFO, citing the paper's [24]).
//!
//! Compared to the cluster→queue mapping, per-packet ranks react to score
//! changes without waiting for a table update and grade priorities
//! continuously instead of in |queues| steps.

use crate::config::AccTurboConfig;
use accturbo_clustering::{OnlineClusterer, WindowStats};
use accturbo_netsim::{Dropped, Packet, SimTime, Switch};
use accturbo_sched::{RankingAlgorithm, SpPifo};

/// ACC-Turbo with per-packet ranks over an SP-PIFO scheduler.
pub struct RankedAccTurboSwitch {
    clusterer: OnlineClusterer,
    ranking: RankingAlgorithm,
    scheduler: SpPifo,
    /// Rank of each cluster, refreshed every control tick from the
    /// polled window statistics (quantized to the scheduler's integer
    /// rank space).
    cluster_rank: Vec<u64>,
    /// Control-tick scratch buffers, reused so ticks don't allocate.
    window_scratch: Vec<WindowStats>,
    scores_scratch: Vec<f64>,
    reset_on_poll: bool,
    ticks: u64,
}

/// Rank-space resolution: scores are mapped to [0, RANK_SPACE).
const RANK_SPACE: f64 = 4096.0;

impl RankedAccTurboSwitch {
    /// Builds the ranked variant from the same configuration as
    /// [`crate::AccTurboSwitch`] (the queue count bounds the SP-PIFO's
    /// queues).
    pub fn new(cfg: AccTurboConfig) -> Self {
        let n = cfg.clustering.num_clusters;
        RankedAccTurboSwitch {
            clusterer: OnlineClusterer::new(cfg.clustering),
            ranking: cfg.ranking,
            scheduler: SpPifo::new(cfg.num_queues, cfg.queue_capacity_bytes),
            cluster_rank: vec![0; n],
            window_scratch: Vec::new(),
            scores_scratch: Vec::new(),
            reset_on_poll: cfg.reset_on_poll,
            ticks: 0,
        }
    }

    /// Control ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The scheduler (bounds, unpifoness counters) for inspection.
    pub fn scheduler(&self) -> &SpPifo {
        &self.scheduler
    }
}

impl Switch for RankedAccTurboSwitch {
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        let cluster = self.clusterer.assign(&pkt);
        let rank = self.cluster_rank[cluster];
        self.scheduler.enqueue_ranked(pkt, rank, now, drops);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.scheduler.dequeue(now)
    }

    fn backlog_pkts(&self) -> usize {
        self.scheduler.len_pkts()
    }

    fn control_tick(&mut self, _now: SimTime) {
        self.clusterer.take_window_into(&mut self.window_scratch);
        self.scores_scratch.clear();
        for i in 0..self.window_scratch.len() {
            self.scores_scratch.push(
                self.ranking
                    .score(&self.window_scratch[i], self.clusterer.cost(i)),
            );
        }
        let scores = &self.scores_scratch;
        // Normalize scores into the scheduler's rank space: the heaviest
        // cluster gets the worst rank.
        let max = scores.iter().fold(0.0f64, |a, &b| a.max(b));
        for (i, &s) in scores.iter().enumerate() {
            self.cluster_rank[i] = if max <= 0.0 {
                0
            } else {
                ((s / max) * (RANK_SPACE - 1.0)) as u64
            };
        }
        if self.reset_on_poll {
            self.clusterer.reset_clusters();
        }
        self.ticks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccTurboConfig;
    use accturbo_clustering::FeatureSet;
    use accturbo_netsim::{
        run, Bandwidth, ClassId, EngineConfig, MergedSource, PacketSource, SimDuration, SimTime,
    };
    use accturbo_traffic::{
        AttackConfig, AttackSource, AttackVector, BackgroundConfig, BackgroundSource,
    };

    fn workload(secs: u64) -> MergedSource {
        let end = SimTime::from_secs(secs);
        let bg: Box<dyn PacketSource> = Box::new(BackgroundSource::new(BackgroundConfig::new(
            6_000_000,
            SimTime::ZERO,
            end,
            5,
        )));
        let attack: Box<dyn PacketSource> = Box::new(AttackSource::new(
            AttackConfig::new(
                AttackVector::UdpFlood,
                40_000_000,
                SimTime::from_secs(3),
                end,
                ClassId(1),
                6,
            )
            .with_single_flow(),
        ));
        MergedSource::new(vec![bg, attack])
    }

    #[test]
    fn ranked_variant_mitigates_a_flood() {
        let mut src = workload(25);
        let mut sw =
            RankedAccTurboSwitch::new(AccTurboConfig::hardware(FeatureSet::hardware_dst_bytes()));
        let cfg = EngineConfig::new(Bandwidth::from_mbps(10))
            .with_stats_interval(SimDuration::from_secs(1))
            .with_control_period(SimDuration::from_millis(50))
            .with_end_time(SimTime::from_secs(25));
        let res = run(&mut src, &mut sw, &cfg);
        let benign = res.stats.benign_drop_pct();
        let attack = res.stats.attack_drop_pct();
        assert!(benign < 30.0, "benign drops {benign:.1}%");
        assert!(attack > 60.0, "attack drops {attack:.1}%");
        assert!(attack > 2.0 * benign);
        assert!(sw.ticks() > 0);
    }

    #[test]
    fn ranked_variant_is_transparent_without_congestion() {
        let end = SimTime::from_secs(5);
        let mut src =
            MergedSource::new(vec![Box::new(BackgroundSource::new(BackgroundConfig::new(
                5_000_000,
                SimTime::ZERO,
                end,
                9,
            ))) as Box<dyn PacketSource>]);
        let mut sw =
            RankedAccTurboSwitch::new(AccTurboConfig::hardware(FeatureSet::hardware_dst_bytes()));
        let cfg = EngineConfig::new(Bandwidth::from_mbps(10))
            .with_control_period(SimDuration::from_millis(50))
            .with_end_time(end);
        let res = run(&mut src, &mut sw, &cfg);
        assert_eq!(res.drops, 0);
    }
}
