//! # accturbo-core
//!
//! The paper's primary contribution assembled into a runnable switch:
//! online clustering in the data path (`accturbo-clustering`, §4),
//! strict-priority scheduling with a periodic control plane
//! (`accturbo-sched`, §5), and the Tofino resource profiles of §6.
//!
//! * [`AccTurboSwitch`] — the full defense, pluggable into the
//!   `accturbo-netsim` engine as a [`accturbo_netsim::Switch`].
//! * [`AccTurboConfig`] — hardware (4 clusters × 4 features) and
//!   simulation (10 clusters) profiles, plus sweep knobs for the §8
//!   design-space studies.
//! * [`IdealPifoSwitch`] — the ground-truth "PIFO Ideal" upper bound of
//!   §8.2.

#![deny(missing_docs)]

pub mod config;
pub mod ideal;
pub mod pipeline;
pub mod ranked;
pub mod resources;

pub use config::AccTurboConfig;
pub use ideal::IdealPifoSwitch;
pub use pipeline::{AccTurboSwitch, ClassifyTap};
pub use ranked::RankedAccTurboSwitch;
pub use resources::{fits, max_clusters, usage, Target, Usage, TOFINO1, TOFINO2, TOFINO3};
