//! Tofino pipeline-resource model (paper §6).
//!
//! The prototype's footprint on Tofino 1 is dictated by its pipeline
//! structure: per ordinal feature and cluster, the min and max registers
//! are accessed sequentially (2 stages, parallelizable across
//! cluster-feature pairs); nominal features take one bloom-filter stage;
//! per-cluster distances are aggregated by a log₂|F|-deep adder tree and
//! the minimum found by a log₂|C|-deep comparator tree; cluster update
//! uses resubmission and queue selection one match-action stage. The
//! paper reports 12 stages for 4 clusters × 4 features on Tofino 1 and
//! notes Tofino 2/3 allow more-performant configurations.
//!
//! This module computes the stage/register budget of an arbitrary
//! configuration so experiments can assert "deployable on Tofino 1"
//! mechanically instead of by folklore.

use accturbo_clustering::{FeatureKind, FeatureSet};

/// A switch-ASIC resource budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Target {
    /// Marketing name.
    pub name: &'static str,
    /// Match-action stages available to the clustering program.
    pub stages: u32,
    /// Register (SRAM) budget available, in 32-bit words — a coarse model
    /// of the per-stage SRAM the prototype can claim.
    pub register_words: u64,
    /// Strict-priority queues per port usable by the scheduler.
    pub queues: u32,
}

/// Tofino 1 (the paper's deployment platform).
pub const TOFINO1: Target = Target {
    name: "Tofino 1",
    stages: 12,
    register_words: 1 << 20,
    queues: 8,
};

/// Tofino 2 (more stages; the paper's "more-performant implementations").
pub const TOFINO2: Target = Target {
    name: "Tofino 2",
    stages: 20,
    register_words: 1 << 21,
    queues: 16,
};

/// Tofino 3.
pub const TOFINO3: Target = Target {
    name: "Tofino 3",
    stages: 24,
    register_words: 1 << 22,
    queues: 16,
};

/// The resource usage of a clustering configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Usage {
    /// Pipeline stages consumed.
    pub stages: u32,
    /// Register words consumed.
    pub register_words: u64,
}

/// Computes the §6 pipeline layout for `clusters` range clusters over
/// `features`, with `bloom_bits` per nominal admission list.
pub fn usage(features: &FeatureSet, clusters: usize, bloom_bits: u64) -> Usage {
    assert!(clusters >= 1, "need at least one cluster");
    let ordinal = features
        .specs()
        .iter()
        .filter(|s| s.kind == FeatureKind::Ordinal)
        .count() as u32;
    let nominal = features.len() as u32 - ordinal;

    // Distance computation: min/max registers are read sequentially (2
    // stages) for ordinal features; bloom lookups take 1. Pairs across
    // clusters and features run in parallel within those stages.
    let distance_stages = if ordinal > 0 { 2 } else { 0 } + u32::from(nominal > 0);
    // Aggregate per-cluster feature distances: ⌈log₂ |F|⌉ adder stages.
    let agg_stages = (features.len() as u32).next_power_of_two().trailing_zeros();
    // Find the minimum across clusters: ⌈log₂ |C|⌉ comparator stages.
    let min_stages = (clusters as u32).next_power_of_two().trailing_zeros();
    // Queue selection: one match-action stage. Cluster update runs on the
    // resubmission path and reuses the distance stages.
    let queue_stage = 1;
    // Per-cluster statistics (packet/byte counters + the representative
    // register the control plane reads): one stage.
    let stats_stage = 1;

    let stages = distance_stages + agg_stages + min_stages + queue_stage + stats_stage;

    // Registers: 2 words (min/max) per ordinal feature per cluster, a
    // bloom filter per nominal feature per cluster, plus counters and the
    // representative vector per cluster.
    let per_cluster = 2 * ordinal as u64
        + nominal as u64 * bloom_bits.div_ceil(32)
        + 2 // packet + byte counters
        + features.len() as u64; // representative
    Usage {
        stages,
        register_words: clusters as u64 * per_cluster,
    }
}

/// Whether `features`×`clusters` fits on `target` (stages, registers, and
/// one priority queue per cluster).
pub fn fits(features: &FeatureSet, clusters: usize, bloom_bits: u64, target: Target) -> bool {
    let u = usage(features, clusters, bloom_bits);
    u.stages <= target.stages
        && u.register_words <= target.register_words
        && clusters as u32 <= target.queues
}

/// The largest cluster count of `features` that fits on `target`.
pub fn max_clusters(features: &FeatureSet, bloom_bits: u64, target: Target) -> usize {
    (1..=target.queues as usize)
        .take_while(|&c| fits(features, c, bloom_bits, target))
        .last()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_clustering::FeatureSet;

    #[test]
    fn the_paper_prototype_fits_tofino1_in_12_stages() {
        // §6: "Our prototype uses 12 stages and supports 4 features and 4
        // clusters."
        let features = FeatureSet::hardware_fig6();
        let u = usage(&features, 4, 1024);
        assert!(
            u.stages <= 12,
            "paper prototype needs {} stages (> 12)",
            u.stages
        );
        assert!(fits(&features, 4, 1024, TOFINO1));
    }

    #[test]
    fn ten_clusters_need_a_newer_tofino() {
        // The §8 simulation profile (10 clusters, 12 features) exceeds
        // Tofino 1's queue budget but fits the newer parts, matching the
        // paper's "more-complete versions become implementable" remark.
        let features = FeatureSet::simulation_default();
        assert!(!fits(&features, 10, 1024, TOFINO1));
        assert!(fits(&features, 10, 1024, TOFINO2));
        assert!(fits(&features, 10, 1024, TOFINO3));
    }

    #[test]
    fn stage_count_grows_logarithmically() {
        let features = FeatureSet::hardware_dst_bytes();
        let u4 = usage(&features, 4, 1024);
        let u8 = usage(&features, 8, 1024);
        let u16 = usage(&features, 16, 1024);
        assert_eq!(u8.stages - u4.stages, 1, "4→8 clusters adds one min stage");
        assert_eq!(
            u16.stages - u8.stages,
            1,
            "8→16 clusters adds one min stage"
        );
    }

    #[test]
    fn registers_scale_linearly_with_clusters() {
        let features = FeatureSet::hardware_dst_bytes();
        let u2 = usage(&features, 2, 1024);
        let u4 = usage(&features, 4, 1024);
        assert_eq!(u4.register_words, 2 * u2.register_words);
    }

    #[test]
    fn max_clusters_is_monotone_across_targets() {
        let features = FeatureSet::hardware_fig6();
        let t1 = max_clusters(&features, 1024, TOFINO1);
        let t2 = max_clusters(&features, 1024, TOFINO2);
        let t3 = max_clusters(&features, 1024, TOFINO3);
        assert!(t1 >= 4, "Tofino 1 must at least fit the paper's prototype");
        assert!(t2 >= t1 && t3 >= t2);
    }

    #[test]
    fn ordinal_only_configs_skip_the_bloom_stage() {
        let ordinal_only = FeatureSet::hardware_dst_bytes();
        let with_nominal = FeatureSet::hardware_fig6();
        let a = usage(&ordinal_only, 4, 1024);
        let b = usage(&with_nominal, 4, 1024);
        assert_eq!(b.stages, a.stages + 1, "nominal features add one stage");
    }
}
