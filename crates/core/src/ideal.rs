//! The "PIFO Ideal" baseline of §8.2: a rank-ordered queue fed by the
//! ground truth. Benign packets rank 0, attack packets rank 1, so under
//! congestion attack traffic is always shed first. This is the accuracy
//! upper bound a scheduling defense can achieve — no real defense sees
//! the ground truth.

use accturbo_netsim::{Dropped, Packet, PifoQueue, QueueDiscipline, SimTime, Switch};

/// An oracle scheduler that deprioritizes packets by their ground-truth
/// label.
#[derive(Debug, Clone)]
pub struct IdealPifoSwitch {
    queue: PifoQueue,
}

impl IdealPifoSwitch {
    /// Creates the oracle with `cap_bytes` of buffer.
    pub fn new(cap_bytes: u64) -> Self {
        IdealPifoSwitch {
            queue: PifoQueue::new(cap_bytes),
        }
    }
}

impl Switch for IdealPifoSwitch {
    fn ingress(&mut self, pkt: Packet, _now: SimTime, drops: &mut Vec<Dropped>) {
        let rank = u64::from(pkt.class.is_attack());
        self.queue.enqueue_ranked(pkt, rank, drops);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.queue.dequeue(now)
    }

    fn backlog_pkts(&self) -> usize {
        self.queue.len_pkts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_netsim::ClassId;

    fn pkt(class: u16, seq: u64) -> Packet {
        let mut p = Packet::new(SimTime::ZERO)
            .with_size(100)
            .with_class(ClassId(class));
        p.seq = seq;
        p
    }

    #[test]
    fn benign_always_dequeues_first() {
        let mut sw = IdealPifoSwitch::new(10_000);
        let mut drops = Vec::new();
        sw.ingress(pkt(1, 0), SimTime::ZERO, &mut drops);
        sw.ingress(pkt(0, 1), SimTime::ZERO, &mut drops);
        sw.ingress(pkt(2, 2), SimTime::ZERO, &mut drops);
        sw.ingress(pkt(0, 3), SimTime::ZERO, &mut drops);
        let order: Vec<u64> = std::iter::from_fn(|| sw.dequeue(SimTime::ZERO))
            .map(|p| p.seq)
            .collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn overflow_sheds_attack_traffic_first() {
        let mut sw = IdealPifoSwitch::new(300);
        let mut drops = Vec::new();
        sw.ingress(pkt(1, 0), SimTime::ZERO, &mut drops);
        sw.ingress(pkt(1, 1), SimTime::ZERO, &mut drops);
        sw.ingress(pkt(1, 2), SimTime::ZERO, &mut drops);
        // Benign arrivals evict attack residents.
        sw.ingress(pkt(0, 3), SimTime::ZERO, &mut drops);
        sw.ingress(pkt(0, 4), SimTime::ZERO, &mut drops);
        assert_eq!(drops.len(), 2);
        assert!(drops.iter().all(|d| d.packet.class.is_attack()));
    }
}
