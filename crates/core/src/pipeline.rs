//! The ACC-Turbo switch (paper §3.2, Fig. 4).
//!
//! Data plane, per packet: extract features → find the closest cluster
//! (expanding it if needed, Alg. 1) → enqueue into the cluster's current
//! priority queue. Control plane, per tick: poll per-cluster counters,
//! score clusters with the ranking algorithm, re-map clusters to queues,
//! and (as in the authors' prototype) re-seed the clusters so their
//! shapes track the present traffic.
//!
//! Because mitigation is *scheduling* rather than filtering, the switch is
//! transparent without congestion: packets are only lost when the buffer
//! actually overflows, starting with those in the most-suspect queues.

use crate::config::AccTurboConfig;
use accturbo_clustering::{OnlineClusterer, WindowStats};
use accturbo_netsim::{
    Dropped, FaultInjector, FeatureExtractor, Packet, PriorityBank, QueueDiscipline, SimTime,
    Switch,
};
use accturbo_obs::{
    CounterId, Event, GaugeId, HistogramId, MetricsHandle, StageClock, StageId, Tracer,
};
use accturbo_sched::{
    Controller, DegradationConfig, DegradationPolicy, DegradeAction, FallbackMode,
};
use std::time::Instant;

/// Observer invoked on every classified packet: `(packet, cluster, queue)`.
/// Used by the evaluation to compute purity/recall and scheduling scores
/// without touching the data path.
pub type ClassifyTap<'a> = Box<dyn FnMut(&Packet, usize, usize) + 'a>;

/// Pre-registered metric ids for the switch's registry entries.
struct SwitchMetrics {
    handle: MetricsHandle,
    enqueues: CounterId,
    drops: CounterId,
    cluster_distance: HistogramId,
    control_us: HistogramId,
    /// One `queue_depth_q{i}` gauge per queue, registered upfront so the
    /// control tick never formats metric names on the hot path.
    queue_depth: Vec<GaugeId>,
    /// Degradation-policy counters exported as gauges at each control
    /// tick, so the streaming aggregator sees per-period deltas.
    degrade_missed: GaugeId,
    degrade_stale: GaugeId,
    degrade_fallbacks: GaugeId,
    /// `(arrivals, drops, drop_ratio)` per packet class, keyed by class
    /// id. Registered once per class; ticks only update by id.
    per_class: std::collections::HashMap<u16, (CounterId, CounterId, GaugeId)>,
}

impl SwitchMetrics {
    fn new(handle: MetricsHandle, num_queues: usize) -> Self {
        let (enqueues, drops, cluster_distance, control_us, queue_depth, degrade_ids) = {
            let mut r = handle.borrow_mut();
            (
                r.counter("switch_enqueues"),
                r.counter("switch_drops"),
                r.histogram(
                    "cluster_distance",
                    &[
                        0.0, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
                    ],
                ),
                r.histogram(
                    "control_loop_us",
                    &[
                        1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0,
                    ],
                ),
                (0..num_queues)
                    .map(|q| r.gauge(&format!("queue_depth_q{q}")))
                    .collect(),
                (
                    r.gauge("control_missed_total"),
                    r.gauge("control_stale_total"),
                    r.gauge("control_fallbacks_total"),
                ),
            )
        };
        SwitchMetrics {
            handle,
            enqueues,
            drops,
            cluster_distance,
            control_us,
            queue_depth,
            degrade_missed: degrade_ids.0,
            degrade_stale: degrade_ids.1,
            degrade_fallbacks: degrade_ids.2,
            per_class: std::collections::HashMap::new(),
        }
    }

    /// Lazily registers the per-class counter pair (and drop-ratio gauge)
    /// for `class`.
    fn class_ids(&mut self, class: u16) -> (CounterId, CounterId) {
        if let Some(&(pkts, drops, _)) = self.per_class.get(&class) {
            return (pkts, drops);
        }
        let mut r = self.handle.borrow_mut();
        let ids = (
            r.counter(&format!("switch_pkts_class_{class}")),
            r.counter(&format!("switch_drops_class_{class}")),
            r.gauge(&format!("drop_ratio_class_{class}")),
        );
        drop(r);
        self.per_class.insert(class, ids);
        (ids.0, ids.1)
    }
}

/// A full ACC-Turbo switch.
pub struct AccTurboSwitch<'a> {
    clusterer: OnlineClusterer,
    controller: Controller,
    bank: PriorityBank,
    cluster_to_queue: Vec<usize>,
    /// Control-tick scratch buffers, reused every tick so the steady
    /// state allocates nothing (see DESIGN.md §8).
    window_scratch: Vec<WindowStats>,
    sizes_scratch: Vec<Option<f64>>,
    mapping_scratch: Vec<usize>,
    reset_on_poll: bool,
    ticks: u64,
    /// Fault plane (DESIGN.md §9). `None` — the default — leaves the
    /// control path byte-identical to the pre-fault pipeline.
    faults: Option<FaultInjector>,
    degradation: DegradationPolicy,
    /// Previous window's polled statistics, cached only while a fault
    /// plane is installed so stale-snapshot ticks have something old to
    /// serve. Unused (and never allocated) on the fault-free path.
    stale_window: Vec<WindowStats>,
    stale_sizes: Vec<Option<f64>>,
    have_stale: bool,
    tap: Option<ClassifyTap<'a>>,
    tracer: Option<Box<dyn Tracer + 'a>>,
    metrics: Option<SwitchMetrics>,
    clock: StageClock,
    classify_stage: StageId,
    enqueue_stage: StageId,
    control_stage: StageId,
}

impl<'a> AccTurboSwitch<'a> {
    /// Builds the switch from a configuration.
    pub fn new(cfg: AccTurboConfig) -> Self {
        let n = cfg.clustering.num_clusters;
        let clusterer = OnlineClusterer::new(cfg.clustering);
        let controller = Controller::new(cfg.ranking, cfg.num_queues);
        let mut bank = PriorityBank::new(cfg.num_queues, cfg.queue_capacity_bytes);
        if let Some(shared) = cfg.shared_capacity_bytes {
            bank = bank.with_shared_cap(shared);
        }
        // Initial mapping: identity modulo queue count. Until the first
        // poll the controller has no statistics, and this is what a
        // freshly-loaded prototype does.
        let cluster_to_queue = (0..n).map(|c| c % cfg.num_queues).collect();
        let mut clock = StageClock::new(false);
        let classify_stage = clock.stage("classify");
        let enqueue_stage = clock.stage("enqueue");
        let control_stage = clock.stage("control_tick");
        AccTurboSwitch {
            clusterer,
            controller,
            bank,
            cluster_to_queue,
            window_scratch: Vec::new(),
            sizes_scratch: Vec::new(),
            mapping_scratch: Vec::new(),
            reset_on_poll: cfg.reset_on_poll,
            ticks: 0,
            faults: None,
            degradation: DegradationPolicy::default(),
            stale_window: Vec::new(),
            stale_sizes: Vec::new(),
            have_stale: false,
            tap: None,
            tracer: None,
            metrics: None,
            clock,
            classify_stage,
            enqueue_stage,
            control_stage,
        }
    }

    /// Installs a classification observer.
    pub fn set_tap(&mut self, tap: ClassifyTap<'a>) {
        self.tap = Some(tap);
    }

    /// Installs a trace sink: the switch emits `enqueue`, cluster
    /// (`cluster_seed`/`cluster_assign`/`cluster_merge`) and
    /// `priority_remap` events. Pass a clone of the engine's
    /// `SharedTracer` (boxed) to get one interleaved timeline; drop
    /// events stay engine-side so they are never double-counted.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer + 'a>) {
        self.tracer = Some(tracer);
    }

    /// Installs a metrics registry. The switch registers
    /// `switch_enqueues` / `switch_drops` counters, `cluster_distance`
    /// and `control_loop_us` histograms, and lazily one
    /// `switch_pkts_class_{c}` / `switch_drops_class_{c}` counter pair
    /// plus a `drop_ratio_class_{c}` gauge per packet class, along with
    /// per-queue depth gauges `queue_depth_q{i}` refreshed at each
    /// control tick.
    pub fn set_metrics(&mut self, handle: MetricsHandle) {
        self.metrics = Some(SwitchMetrics::new(handle, self.bank.num_queues()));
    }

    /// Enables (or disables) wall-clock stage timing of the classify,
    /// enqueue and control-tick stages.
    pub fn set_timing(&mut self, enabled: bool) {
        self.clock.set_enabled(enabled);
    }

    /// The hot-path stage timings (classify / enqueue / control_tick).
    pub fn stage_clock(&self) -> &StageClock {
        &self.clock
    }

    /// The current cluster → queue mapping (operator interpretability,
    /// §10: every scheduling decision is inspectable).
    pub fn mapping(&self) -> &[usize] {
        &self.cluster_to_queue
    }

    /// Control ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The clustering engine (read access for reports and tests).
    pub fn clusterer(&self) -> &OnlineClusterer {
        &self.clusterer
    }

    /// The control plane (e.g. to pin clusters, §10).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// Installs a fault plane: stale-snapshot decisions for control ticks
    /// are drawn from `faults`, and the switch starts caching the
    /// previous window's poll so it has an old snapshot to serve. Missed
    /// ticks (the engine's `control_missed`) are handled by the
    /// degradation policy whether or not an injector is installed.
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = Some(faults);
    }

    /// Replaces the graceful-degradation policy knobs (bounded staleness
    /// + fallback mode; see DESIGN.md §9).
    pub fn set_degradation(&mut self, cfg: DegradationConfig) {
        self.degradation = DegradationPolicy::new(cfg);
    }

    /// The degradation policy's bookkeeping (missed/stale/fallback
    /// counters) for figures and tests.
    pub fn degradation(&self) -> &DegradationPolicy {
        &self.degradation
    }

    /// Control ticks the engine reported as suppressed.
    pub fn missed_ticks(&self) -> u64 {
        self.degradation.total_missed()
    }

    /// Deploys the control-plane-free fallback mapping.
    fn apply_fallback(&mut self, mode: FallbackMode) {
        let nq = self.controller.num_queues();
        for (c, q) in self.cluster_to_queue.iter_mut().enumerate() {
            *q = match mode {
                FallbackMode::Fifo => 0,
                FallbackMode::StrictPriority => c % nq,
            };
        }
    }

    fn trace_degrade(&mut self, now_ns: u64, action: DegradeAction) {
        if let Some(tracer) = &mut self.tracer {
            if tracer.enabled() {
                tracer.record(
                    now_ns,
                    &Event::Degrade {
                        action: action.name(),
                        missed: self.degradation.consecutive_missed(),
                    },
                );
            }
        }
    }
}

impl Switch for AccTurboSwitch<'_> {
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        // Fast path: no tracer, no metrics, no timing — identical to the
        // uninstrumented switch.
        if self.tracer.is_none() && self.metrics.is_none() && !self.clock.enabled() {
            let cluster = self.clusterer.assign(&pkt);
            let queue = self.cluster_to_queue[cluster];
            if let Some(tap) = &mut self.tap {
                tap(&pkt, cluster, queue);
            }
            self.bank.enqueue_to(queue, pkt, now, drops);
            return;
        }

        let now_ns = now.as_nanos();
        let t0 = self.clock.enabled().then(Instant::now);
        let assignment = match &mut self.tracer {
            Some(tracer) => self.clusterer.assign_traced(&pkt, tracer.as_mut(), now_ns),
            None => accturbo_clustering::Assignment {
                cluster: self.clusterer.assign(&pkt),
                distance: 0.0,
            },
        };
        if let Some(t0) = t0 {
            self.clock.add(self.classify_stage, t0.elapsed());
        }
        let cluster = assignment.cluster;
        let queue = self.cluster_to_queue[cluster];
        if let Some(tap) = &mut self.tap {
            tap(&pkt, cluster, queue);
        }
        let (class, size) = (pkt.class.0, pkt.size);
        if let Some(tracer) = &mut self.tracer {
            if tracer.enabled() {
                tracer.record(
                    now_ns,
                    &Event::Enqueue {
                        queue,
                        cluster: Some(cluster),
                        class,
                        size,
                    },
                );
            }
        }

        let t0 = self.clock.enabled().then(Instant::now);
        let drops_before = drops.len();
        self.bank.enqueue_to(queue, pkt, now, drops);
        if let Some(t0) = t0 {
            self.clock.add(self.enqueue_stage, t0.elapsed());
        }

        if let Some(m) = &mut self.metrics {
            let dropped_here = (drops.len() - drops_before) as u64;
            let (pkts_id, drops_id) = m.class_ids(class);
            let mut r = m.handle.borrow_mut();
            r.inc(m.enqueues, 1);
            r.inc(pkts_id, 1);
            if dropped_here > 0 {
                r.inc(m.drops, dropped_here);
                r.inc(drops_id, dropped_here);
            }
            if self.tracer.is_some() {
                r.observe(m.cluster_distance, assignment.distance);
            }
        }
    }

    fn ingress_featured(
        &mut self,
        pkt: Packet,
        features: &[u32],
        now: SimTime,
        drops: &mut Vec<Dropped>,
    ) {
        // Same gate as `ingress`'s fast path. `assign_values(features, ..)`
        // is exactly `assign(&pkt)` with the (pure) extraction hoisted out
        // — the sharded engine did it once while filling the arena column.
        // Instrumented runs fall back to plain ingress so tracing and
        // metrics observe the per-packet extraction they expect.
        if self.tracer.is_none() && self.metrics.is_none() && !self.clock.enabled() {
            let cluster = self.clusterer.assign_values(features, pkt.size);
            let queue = self.cluster_to_queue[cluster];
            if let Some(tap) = &mut self.tap {
                tap(&pkt, cluster, queue);
            }
            self.bank.enqueue_to(queue, pkt, now, drops);
            return;
        }
        self.ingress(pkt, now, drops);
    }

    fn feature_extractor(&self) -> Option<FeatureExtractor> {
        let features = self.clusterer.config().features.clone();
        Some(FeatureExtractor::new(
            features.len(),
            std::sync::Arc::new(move |pkt: &Packet, out: &mut Vec<u32>| {
                features.extract_into(pkt, out)
            }),
        ))
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.bank.dequeue(now)
    }

    fn backlog_pkts(&self) -> usize {
        self.bank.len_pkts()
    }

    fn control_tick(&mut self, now: SimTime) {
        // (i) poll cluster statistics, (ii) assess and rank, (iii) deploy
        // the new mapping — the three control-plane steps of §5.2.
        let wall0 = (self.clock.enabled() || self.metrics.is_some()).then(Instant::now);
        let now_ns = now.as_nanos();
        self.clusterer.take_window_into(&mut self.window_scratch);
        self.sizes_scratch.clear();
        let n = self.window_scratch.len();
        self.sizes_scratch
            .extend((0..n).map(|i| self.clusterer.cost(i)));
        // Fault plane: a stale tick ranks on the previous window's
        // snapshot instead of the fresh poll (the swap also caches the
        // fresh poll for the next stale tick). Snapshot caching is
        // skipped entirely with no injector installed; the degradation
        // policy still sees every good tick so `control_missed` (which
        // the engine can invoke with or without an injector) ages the
        // view from the right baseline.
        let mut degrade: Option<DegradeAction> = None;
        let mut fresh = true;
        if let Some(f) = &self.faults {
            if f.stale_snapshot(now) && self.have_stale {
                std::mem::swap(&mut self.window_scratch, &mut self.stale_window);
                std::mem::swap(&mut self.sizes_scratch, &mut self.stale_sizes);
                degrade = Some(self.degradation.on_stale_tick(now_ns));
                fresh = false;
            } else {
                self.stale_window.clone_from(&self.window_scratch);
                self.stale_sizes.clone_from(&self.sizes_scratch);
            }
            self.have_stale = true;
        }
        if fresh {
            self.degradation.on_good_tick(now_ns);
        }
        match &mut self.tracer {
            Some(tracer) => self.controller.assign_queues_traced_into(
                &self.window_scratch,
                &self.sizes_scratch,
                tracer.as_mut(),
                now_ns,
                &mut self.mapping_scratch,
            ),
            None => self.controller.assign_queues_into(
                &self.window_scratch,
                &self.sizes_scratch,
                &mut self.mapping_scratch,
            ),
        };
        std::mem::swap(&mut self.cluster_to_queue, &mut self.mapping_scratch);
        if let Some(action) = degrade {
            // Past the staleness bound the mapping just derived is built
            // on too-old evidence: deploy the fallback over it.
            if let DegradeAction::Fallback(mode) = action {
                self.apply_fallback(mode);
            }
            self.trace_degrade(now_ns, action);
        }
        if self.reset_on_poll {
            self.clusterer.reset_clusters();
        }
        self.ticks += 1;
        if let Some(wall0) = wall0 {
            let elapsed = wall0.elapsed();
            if self.clock.enabled() {
                self.clock.add(self.control_stage, elapsed);
            }
            if let Some(m) = &mut self.metrics {
                let d = self.degradation.counters();
                let mut r = m.handle.borrow_mut();
                r.observe(m.control_us, elapsed.as_secs_f64() * 1e6);
                for (q, &id) in m.queue_depth.iter().enumerate() {
                    r.set(id, self.bank.len_pkts_at(q) as f64);
                }
                r.set(m.degrade_missed, d.total_missed as f64);
                r.set(m.degrade_stale, d.total_stale as f64);
                r.set(m.degrade_fallbacks, d.fallbacks as f64);
                for &(pkts_id, drops_id, ratio_id) in m.per_class.values() {
                    let pkts = r.counter_value(pkts_id);
                    if pkts > 0 {
                        let ratio = r.counter_value(drops_id) as f64 / pkts as f64;
                        r.set(ratio_id, ratio);
                    }
                }
            }
        }
    }

    fn control_missed(&mut self, now: SimTime) {
        // A suppressed tick: no poll happened, the deployed mapping ages.
        // Within the staleness bound the last-good mapping stays in force
        // (KeepLastGood is a no-op on purpose); past it, fall back to a
        // scheduler that needs no control plane.
        let action = self.degradation.on_missed_tick(now.as_nanos());
        if let DegradeAction::Fallback(mode) = action {
            self.apply_fallback(mode);
        }
        self.trace_degrade(now.as_nanos(), action);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_clustering::FeatureSet;
    use accturbo_netsim::{ClassId, SimTime};
    use std::net::Ipv4Addr;

    fn switch() -> AccTurboSwitch<'static> {
        AccTurboSwitch::new(
            crate::config::AccTurboConfig::hardware(FeatureSet::hardware_fig6())
                .with_queue_capacity(1_000_000),
        )
    }

    fn benign(i: u32) -> Packet {
        Packet::new(SimTime::ZERO)
            .with_dst(Ipv4Addr::new(20, 0, (i % 7) as u8, (i % 251) as u8))
            .with_ports(1024 + (i % 5000) as u16, 443)
            .with_size(400)
    }

    fn attack(_i: u32) -> Packet {
        Packet::new(SimTime::ZERO)
            .with_dst(Ipv4Addr::new(198, 18, 0, 10))
            .with_ports(123, 4444)
            .with_size(1000)
            .with_class(ClassId(1))
    }

    #[test]
    fn attack_cluster_is_deprioritized_after_a_tick() {
        let mut sw = switch();
        let mut drops = Vec::new();
        // Heavy self-similar attack + light diverse benign traffic.
        let mut attack_cluster = None;
        for i in 0..2_000u32 {
            let pkt = attack(i);
            let cluster = sw.clusterer.assign(&pkt);
            attack_cluster = Some(cluster);
            sw.bank
                .enqueue_to(sw.cluster_to_queue[cluster], pkt, SimTime::ZERO, &mut drops);
            sw.bank.dequeue(SimTime::ZERO);
            if i % 10 == 0 {
                sw.ingress(benign(i), SimTime::ZERO, &mut drops);
                sw.dequeue(SimTime::ZERO);
            }
        }
        let attack_cluster = attack_cluster.expect("attack packets were assigned");
        sw.control_tick(SimTime::from_secs(1));
        let q_attack = sw.mapping()[attack_cluster];
        assert_eq!(
            q_attack,
            sw.controller_mut().num_queues() - 1,
            "heaviest cluster must land in the worst queue"
        );
    }

    #[test]
    fn tap_sees_every_packet() {
        let seen = std::rc::Rc::new(std::cell::RefCell::new(0u32));
        let seen2 = std::rc::Rc::clone(&seen);
        let mut sw = switch();
        sw.set_tap(Box::new(move |_, cluster, queue| {
            assert!(cluster < 4);
            assert!(queue < 4);
            *seen2.borrow_mut() += 1;
        }));
        let mut drops = Vec::new();
        for i in 0..50 {
            sw.ingress(benign(i), SimTime::ZERO, &mut drops);
        }
        drop(sw);
        assert_eq!(*seen.borrow(), 50);
    }

    #[test]
    fn reset_on_poll_restores_singleton_geometry() {
        let mut sw = switch();
        let mut drops = Vec::new();
        // Packets jittering near one anchor grow its cluster within the
        // per-window growth budget; the tick must shrink every cluster
        // back to a singleton (cost 0).
        for i in 0..40u8 {
            let p = Packet::new(SimTime::ZERO)
                .with_dst(Ipv4Addr::new(198, 18, 30 + i % 5, 30 + i % 7))
                .with_ports(8190 + (i % 9) as u16, 8190 + (i % 5) as u16)
                .with_size(200);
            sw.ingress(p, SimTime::ZERO, &mut drops);
        }
        // A fresh switch's clusters are singletons: zero range extents,
        // one admitted value per nominal feature (cost 1 each).
        let baseline: f64 = {
            let fresh = switch();
            (0..4).filter_map(|k| fresh.clusterer().cost(k)).sum()
        };
        let grown: f64 = (0..4).filter_map(|k| sw.clusterer().cost(k)).sum();
        assert!(grown > baseline, "some cluster must have grown");
        sw.control_tick(SimTime::from_secs(1));
        let after: f64 = (0..4).filter_map(|k| sw.clusterer().cost(k)).sum();
        assert_eq!(after, baseline, "clusters are singletons again after reset");
        assert_eq!(sw.ticks(), 1);
    }

    #[test]
    fn transparent_without_congestion() {
        let mut sw = switch();
        let mut drops = Vec::new();
        for i in 0..1_000 {
            sw.ingress(benign(i), SimTime::ZERO, &mut drops);
            sw.dequeue(SimTime::ZERO);
        }
        assert!(drops.is_empty(), "no congestion, no drops");
    }

    #[test]
    fn instrumented_switch_traces_and_counts() {
        use accturbo_obs::{shared, Registry, RingTracer};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut sw = switch();
        let tracer = shared(RingTracer::new(10_000));
        let metrics = Rc::new(RefCell::new(Registry::new()));
        sw.set_tracer(Box::new(Rc::clone(&tracer)));
        sw.set_metrics(Rc::clone(&metrics));
        sw.set_timing(true);

        let mut drops = Vec::new();
        for i in 0..200 {
            sw.ingress(benign(i), SimTime::ZERO, &mut drops);
        }
        for i in 0..100 {
            sw.ingress(attack(i), SimTime::ZERO, &mut drops);
        }
        sw.control_tick(SimTime::from_secs(1));

        let t = tracer.borrow();
        let enq = t.iter().filter(|(_, e)| e.kind() == "enqueue").count();
        let remaps = t
            .iter()
            .filter(|(_, e)| e.kind() == "priority_remap")
            .count();
        let cluster_events = t
            .iter()
            .filter(|(_, e)| e.kind().starts_with("cluster_"))
            .count();
        assert_eq!(enq, 300, "one enqueue event per packet");
        assert_eq!(remaps, 1, "one remap per control tick");
        assert!(cluster_events > 0, "cluster decisions must be traced");

        let mut r = metrics.borrow_mut();
        let enq_id = r.counter("switch_enqueues");
        assert_eq!(r.counter_value(enq_id), 300);
        let benign_id = r.counter("switch_pkts_class_0");
        let attack_id = r.counter("switch_pkts_class_1");
        assert_eq!(r.counter_value(benign_id), 200);
        assert_eq!(r.counter_value(attack_id), 100);
        drop(r);

        // Stage timing accumulated for both hot-path stages and control.
        let report = sw.stage_clock().report();
        for stage in ["classify", "enqueue", "control_tick"] {
            let (_, _, calls) = *report
                .iter()
                .find(|(n, _, _)| *n == stage)
                .unwrap_or_else(|| panic!("missing stage {stage}"));
            assert!(calls > 0, "{stage} never timed");
        }
    }

    #[test]
    fn instrumentation_does_not_change_decisions() {
        use accturbo_obs::{shared, RingTracer};

        let mut plain = switch();
        let mut traced = switch();
        let tracer = shared(RingTracer::new(100_000));
        traced.set_tracer(Box::new(tracer));

        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        for i in 0..500 {
            let (a, b) = if i % 3 == 0 {
                (attack(i), attack(i))
            } else {
                (benign(i), benign(i))
            };
            plain.ingress(a, SimTime::ZERO, &mut d1);
            traced.ingress(b, SimTime::ZERO, &mut d2);
            if i % 100 == 99 {
                plain.control_tick(SimTime::ZERO);
                traced.control_tick(SimTime::ZERO);
                assert_eq!(plain.mapping(), traced.mapping(), "tick {i}");
            }
        }
        assert_eq!(d1.len(), d2.len());
        assert_eq!(plain.backlog_pkts(), traced.backlog_pkts());
    }

    #[test]
    fn backlog_accounting() {
        let mut sw = switch();
        let mut drops = Vec::new();
        for i in 0..10 {
            sw.ingress(benign(i), SimTime::ZERO, &mut drops);
        }
        assert_eq!(sw.backlog_pkts(), 10);
        while sw.dequeue(SimTime::ZERO).is_some() {}
        assert_eq!(sw.backlog_pkts(), 0);
    }
}
