//! The ACC-Turbo switch (paper §3.2, Fig. 4).
//!
//! Data plane, per packet: extract features → find the closest cluster
//! (expanding it if needed, Alg. 1) → enqueue into the cluster's current
//! priority queue. Control plane, per tick: poll per-cluster counters,
//! score clusters with the ranking algorithm, re-map clusters to queues,
//! and (as in the authors' prototype) re-seed the clusters so their
//! shapes track the present traffic.
//!
//! Because mitigation is *scheduling* rather than filtering, the switch is
//! transparent without congestion: packets are only lost when the buffer
//! actually overflows, starting with those in the most-suspect queues.

use crate::config::AccTurboConfig;
use accturbo_clustering::OnlineClusterer;
use accturbo_netsim::{Dropped, Packet, PriorityBank, QueueDiscipline, SimTime, Switch};
use accturbo_sched::Controller;

/// Observer invoked on every classified packet: `(packet, cluster, queue)`.
/// Used by the evaluation to compute purity/recall and scheduling scores
/// without touching the data path.
pub type ClassifyTap<'a> = Box<dyn FnMut(&Packet, usize, usize) + 'a>;

/// A full ACC-Turbo switch.
pub struct AccTurboSwitch<'a> {
    clusterer: OnlineClusterer,
    controller: Controller,
    bank: PriorityBank,
    cluster_to_queue: Vec<usize>,
    reset_on_poll: bool,
    ticks: u64,
    tap: Option<ClassifyTap<'a>>,
}

impl<'a> AccTurboSwitch<'a> {
    /// Builds the switch from a configuration.
    pub fn new(cfg: AccTurboConfig) -> Self {
        let n = cfg.clustering.num_clusters;
        let clusterer = OnlineClusterer::new(cfg.clustering);
        let controller = Controller::new(cfg.ranking, cfg.num_queues);
        let mut bank = PriorityBank::new(cfg.num_queues, cfg.queue_capacity_bytes);
        if let Some(shared) = cfg.shared_capacity_bytes {
            bank = bank.with_shared_cap(shared);
        }
        // Initial mapping: identity modulo queue count. Until the first
        // poll the controller has no statistics, and this is what a
        // freshly-loaded prototype does.
        let cluster_to_queue = (0..n).map(|c| c % cfg.num_queues).collect();
        AccTurboSwitch {
            clusterer,
            controller,
            bank,
            cluster_to_queue,
            reset_on_poll: cfg.reset_on_poll,
            ticks: 0,
            tap: None,
        }
    }

    /// Installs a classification observer.
    pub fn set_tap(&mut self, tap: ClassifyTap<'a>) {
        self.tap = Some(tap);
    }

    /// The current cluster → queue mapping (operator interpretability,
    /// §10: every scheduling decision is inspectable).
    pub fn mapping(&self) -> &[usize] {
        &self.cluster_to_queue
    }

    /// Control ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The clustering engine (read access for reports and tests).
    pub fn clusterer(&self) -> &OnlineClusterer {
        &self.clusterer
    }

    /// The control plane (e.g. to pin clusters, §10).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }
}

impl Switch for AccTurboSwitch<'_> {
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        let cluster = self.clusterer.assign(&pkt);
        let queue = self.cluster_to_queue[cluster];
        if let Some(tap) = &mut self.tap {
            tap(&pkt, cluster, queue);
        }
        self.bank.enqueue_to(queue, pkt, now, drops);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.bank.dequeue(now)
    }

    fn backlog_pkts(&self) -> usize {
        self.bank.len_pkts()
    }

    fn control_tick(&mut self, _now: SimTime) {
        // (i) poll cluster statistics, (ii) assess and rank, (iii) deploy
        // the new mapping — the three control-plane steps of §5.2.
        let stats = self.clusterer.take_window();
        let sizes: Vec<Option<f64>> = (0..stats.len()).map(|i| self.clusterer.cost(i)).collect();
        self.cluster_to_queue = self.controller.assign_queues(&stats, &sizes);
        if self.reset_on_poll {
            self.clusterer.reset_clusters();
        }
        self.ticks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_clustering::FeatureSet;
    use accturbo_netsim::{ClassId, SimTime};
    use std::net::Ipv4Addr;

    fn switch() -> AccTurboSwitch<'static> {
        AccTurboSwitch::new(
            crate::config::AccTurboConfig::hardware(FeatureSet::hardware_fig6())
                .with_queue_capacity(1_000_000),
        )
    }

    fn benign(i: u32) -> Packet {
        Packet::new(SimTime::ZERO)
            .with_dst(Ipv4Addr::new(20, 0, (i % 7) as u8, (i % 251) as u8))
            .with_ports(1024 + (i % 5000) as u16, 443)
            .with_size(400)
    }

    fn attack(_i: u32) -> Packet {
        Packet::new(SimTime::ZERO)
            .with_dst(Ipv4Addr::new(198, 18, 0, 10))
            .with_ports(123, 4444)
            .with_size(1000)
            .with_class(ClassId(1))
    }

    #[test]
    fn attack_cluster_is_deprioritized_after_a_tick() {
        let mut sw = switch();
        let mut drops = Vec::new();
        // Heavy self-similar attack + light diverse benign traffic.
        let mut attack_cluster = None;
        for i in 0..2_000u32 {
            let pkt = attack(i);
            let cluster = sw.clusterer.assign(&pkt);
            attack_cluster = Some(cluster);
            sw.bank
                .enqueue_to(sw.cluster_to_queue[cluster], pkt, SimTime::ZERO, &mut drops);
            sw.bank.dequeue(SimTime::ZERO);
            if i % 10 == 0 {
                sw.ingress(benign(i), SimTime::ZERO, &mut drops);
                sw.dequeue(SimTime::ZERO);
            }
        }
        let attack_cluster = attack_cluster.expect("attack packets were assigned");
        sw.control_tick(SimTime::from_secs(1));
        let q_attack = sw.mapping()[attack_cluster];
        assert_eq!(
            q_attack,
            sw.controller_mut().num_queues() - 1,
            "heaviest cluster must land in the worst queue"
        );
    }

    #[test]
    fn tap_sees_every_packet() {
        let seen = std::rc::Rc::new(std::cell::RefCell::new(0u32));
        let seen2 = std::rc::Rc::clone(&seen);
        let mut sw = switch();
        sw.set_tap(Box::new(move |_, cluster, queue| {
            assert!(cluster < 4);
            assert!(queue < 4);
            *seen2.borrow_mut() += 1;
        }));
        let mut drops = Vec::new();
        for i in 0..50 {
            sw.ingress(benign(i), SimTime::ZERO, &mut drops);
        }
        drop(sw);
        assert_eq!(*seen.borrow(), 50);
    }

    #[test]
    fn reset_on_poll_restores_singleton_geometry() {
        let mut sw = switch();
        let mut drops = Vec::new();
        // Packets jittering near one anchor grow its cluster within the
        // per-window growth budget; the tick must shrink every cluster
        // back to a singleton (cost 0).
        for i in 0..40u8 {
            let p = Packet::new(SimTime::ZERO)
                .with_dst(Ipv4Addr::new(198, 18, 30 + i % 5, 30 + i % 7))
                .with_ports(8190 + (i % 9) as u16, 8190 + (i % 5) as u16)
                .with_size(200);
            sw.ingress(p, SimTime::ZERO, &mut drops);
        }
        // A fresh switch's clusters are singletons: zero range extents,
        // one admitted value per nominal feature (cost 1 each).
        let baseline: f64 = {
            let fresh = switch();
            (0..4).filter_map(|k| fresh.clusterer().cost(k)).sum()
        };
        let grown: f64 = (0..4).filter_map(|k| sw.clusterer().cost(k)).sum();
        assert!(grown > baseline, "some cluster must have grown");
        sw.control_tick(SimTime::from_secs(1));
        let after: f64 = (0..4).filter_map(|k| sw.clusterer().cost(k)).sum();
        assert_eq!(after, baseline, "clusters are singletons again after reset");
        assert_eq!(sw.ticks(), 1);
    }

    #[test]
    fn transparent_without_congestion() {
        let mut sw = switch();
        let mut drops = Vec::new();
        for i in 0..1_000 {
            sw.ingress(benign(i), SimTime::ZERO, &mut drops);
            sw.dequeue(SimTime::ZERO);
        }
        assert!(drops.is_empty(), "no congestion, no drops");
    }

    #[test]
    fn backlog_accounting() {
        let mut sw = switch();
        let mut drops = Vec::new();
        for i in 0..10 {
            sw.ingress(benign(i), SimTime::ZERO, &mut drops);
        }
        assert_eq!(sw.backlog_pkts(), 10);
        while sw.dequeue(SimTime::ZERO).is_some() {}
        assert_eq!(sw.backlog_pkts(), 0);
    }
}
