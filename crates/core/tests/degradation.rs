//! Integration tests of the pipeline's graceful-degradation behaviour
//! (DESIGN.md §9): what the deployed cluster → queue mapping does when
//! the control plane misses ticks or is fed stale snapshots.

use accturbo_clustering::FeatureSet;
use accturbo_core::{AccTurboConfig, AccTurboSwitch};
use accturbo_netsim::{
    Dropped, FaultConfig, FaultInjector, FaultSchedule, Packet, SimTime, Switch,
};
use accturbo_sched::{DegradationConfig, FallbackMode};
use std::net::Ipv4Addr;

fn switch() -> AccTurboSwitch<'static> {
    AccTurboSwitch::new(AccTurboConfig::simulation(FeatureSet::simulation_default()))
}

/// Feeds a burst of clusterable traffic and one good control tick, so a
/// non-trivial mapping is deployed.
fn warm_up(sw: &mut AccTurboSwitch) {
    let mut drops: Vec<Dropped> = Vec::new();
    for i in 0..600u64 {
        let t = SimTime::from_nanos(i * 100_000);
        let pkt = Packet::new(t)
            .with_size(400 + (i % 3) as u32 * 400)
            .with_src(Ipv4Addr::from(0x0A00_0000 | (i % 5) as u32));
        sw.ingress(pkt, t, &mut drops);
    }
    sw.control_tick(SimTime::from_millis(60));
}

/// A missed window inside the staleness bound keeps the last-good
/// mapping deployed, bit for bit.
#[test]
fn missed_window_keeps_the_last_good_mapping() {
    let mut sw = switch();
    sw.set_degradation(DegradationConfig {
        max_staleness_ns: 1_000_000_000,
        fallback: FallbackMode::Fifo,
    });
    warm_up(&mut sw);
    let deployed = sw.mapping().to_vec();

    sw.control_missed(SimTime::from_millis(310));
    sw.control_missed(SimTime::from_millis(560));
    assert_eq!(sw.mapping(), deployed.as_slice(), "mapping must freeze");
    assert_eq!(sw.missed_ticks(), 2);
    assert_eq!(sw.degradation().fallbacks(), 0);
}

/// Exceeding the staleness bound deploys the FIFO fallback: every
/// cluster collapses onto queue 0.
#[test]
fn exceeding_the_bound_deploys_the_fifo_fallback() {
    let mut sw = switch();
    sw.set_degradation(DegradationConfig {
        max_staleness_ns: 500_000_000,
        fallback: FallbackMode::Fifo,
    });
    warm_up(&mut sw);
    sw.control_missed(SimTime::from_millis(310)); // within the bound
    assert_eq!(sw.degradation().fallbacks(), 0);
    sw.control_missed(SimTime::from_millis(1_100)); // past it
    assert_eq!(sw.degradation().fallbacks(), 1);
    assert!(
        sw.mapping().iter().all(|&q| q == 0),
        "FIFO fallback must map every cluster to queue 0, got {:?}",
        sw.mapping()
    );
}

/// The strict-priority fallback deploys the static identity mapping
/// (cluster c → c mod num_queues).
#[test]
fn strict_priority_fallback_is_identity_modulo_queues() {
    let mut sw = switch();
    sw.set_degradation(DegradationConfig {
        max_staleness_ns: 100_000_000,
        fallback: FallbackMode::StrictPriority,
    });
    warm_up(&mut sw);
    sw.control_missed(SimTime::from_millis(2_000));
    let nq = {
        let m = sw.mapping();
        m.iter().max().copied().unwrap_or(0) + 1
    };
    for (c, &q) in sw.mapping().iter().enumerate() {
        assert_eq!(q, c % nq, "cluster {c}");
    }
}

/// A good tick after a fallback restores controller-derived mappings:
/// the fallback is not sticky.
#[test]
fn a_good_tick_lifts_the_fallback() {
    let mut sw = switch();
    sw.set_degradation(DegradationConfig {
        max_staleness_ns: 100_000_000,
        fallback: FallbackMode::Fifo,
    });
    warm_up(&mut sw);
    sw.control_missed(SimTime::from_millis(5_000));
    assert!(sw.mapping().iter().all(|&q| q == 0));

    // Fresh traffic + a real tick: the controller takes over again.
    let mut drops: Vec<Dropped> = Vec::new();
    for i in 0..600u64 {
        let t = SimTime::from_millis(5_100) + accturbo_netsim::SimDuration::from_nanos(i * 100_000);
        let pkt = Packet::new(t)
            .with_size(1500)
            .with_src(Ipv4Addr::from(0x0A00_0000 | (i % 5) as u32));
        sw.ingress(pkt, t, &mut drops);
    }
    sw.control_tick(SimTime::from_millis(5_200));
    assert_eq!(sw.degradation().consecutive_missed(), 0);
    // The controller ranks 5 active clusters across the queues: the
    // all-zero FIFO collapse must be gone.
    assert!(
        sw.mapping().iter().any(|&q| q != 0),
        "controller mapping must replace the fallback, got {:?}",
        sw.mapping()
    );
}

/// Stale-snapshot serving is deterministic: two switches fed the same
/// packets, ticks and fault seed deploy identical mappings at every
/// step, and stale ticks are counted.
#[test]
fn stale_snapshot_serving_is_deterministic() {
    let run = || {
        let mut sw = switch();
        sw.set_faults(FaultInjector::new(FaultSchedule::new(FaultConfig {
            stale_snapshot: 0.6,
            ..FaultConfig::none(515)
        })));
        let mut drops: Vec<Dropped> = Vec::new();
        let mut mappings: Vec<Vec<usize>> = Vec::new();
        for i in 0..4_000u64 {
            let t = SimTime::from_nanos(i * 100_000);
            let pkt = Packet::new(t)
                .with_size(200 + (i % 4) as u32 * 300)
                .with_src(Ipv4Addr::from(0x0A00_0000 | (i % 7) as u32));
            sw.ingress(pkt, t, &mut drops);
            if i % 400 == 399 {
                sw.control_tick(t);
                mappings.push(sw.mapping().to_vec());
            }
        }
        (mappings, sw.degradation().total_stale(), sw.ticks())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "stale serving must be deterministic per seed");
    assert!(a.1 > 0, "stale prob 0.6 over 10 ticks must bite");
    assert_eq!(a.2, 10);
}
