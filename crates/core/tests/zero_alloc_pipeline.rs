//! Locks down the switch datapath's "no allocation after warmup" claim:
//! classify → enqueue and the control tick reuse scratch buffers
//! (`take_window_into`, `assign_queues_into`, the mapping swap), so heap
//! allocations must not scale with the number of packets processed.
//!
//! Lives in its own integration-test binary because it installs a
//! counting global allocator.

use accturbo_clustering::FeatureSet;
use accturbo_core::{AccTurboConfig, AccTurboSwitch};
use accturbo_netsim::{ClassId, Packet, SimTime, Switch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn pkt(i: u64) -> Packet {
    if i.is_multiple_of(3) {
        Packet::new(SimTime::from_nanos(i * 1_000))
            .with_dst(Ipv4Addr::new(198, 18, 0, 10))
            .with_ports(123, 4444)
            .with_size(1000)
            .with_class(ClassId(1))
    } else {
        Packet::new(SimTime::from_nanos(i * 1_000))
            .with_dst(Ipv4Addr::new(20, 0, (i % 7) as u8, (i % 251) as u8))
            .with_ports(1024 + (i % 5000) as u16, 443)
            .with_size(400)
    }
}

/// Allocation count of driving `n` packets (with a control tick every
/// 200) through a fresh switch, measured after a warmup pass on the same
/// switch so one-time growth (cluster buffers, queue rings, metric maps)
/// is excluded.
fn allocs_during(sw: &mut AccTurboSwitch<'static>, n: u64) -> u64 {
    let mut drops = Vec::with_capacity(64);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..n {
        sw.ingress(pkt(i), SimTime::from_nanos(i * 1_000), &mut drops);
        let _ = sw.dequeue(SimTime::from_nanos(i * 1_000));
        if i % 200 == 199 {
            sw.control_tick(SimTime::from_nanos(i * 1_000));
            drops.clear();
        }
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn switch_steady_state_does_not_allocate() {
    let mut sw = AccTurboSwitch::new(
        AccTurboConfig::hardware(FeatureSet::hardware_fig6()).with_queue_capacity(1_000_000),
    );
    let _ = allocs_during(&mut sw, 1_000); // warmup
    let small = allocs_during(&mut sw, 2_000);
    let large = allocs_during(&mut sw, 8_000);
    // 4x the packets must not mean 4x the allocations: after warmup the
    // datapath and control tick run entirely out of reused buffers.
    assert!(
        large <= small + 64,
        "allocations scale with packet count: {small} allocs for 2k pkts, {large} for 8k"
    );
}
