//! Property-based tests for the Jaqen model's primitives.

use accturbo_jaqen::{CountMinSketch, Signature};
use accturbo_netsim::{Packet, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

proptest! {
    /// The count-min estimate never underestimates the true count.
    #[test]
    fn sketch_never_underestimates(
        updates in prop::collection::vec((any::<u64>(), 1u64..50), 1..500),
        rows in 1usize..5,
        cols in 16usize..4096) {
        let mut sketch = CountMinSketch::new(rows, cols);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(key, count) in &updates {
            sketch.update(key, count);
            *truth.entry(key).or_insert(0) += count;
        }
        for (&key, &count) in &truth {
            prop_assert!(
                sketch.estimate(key) >= count,
                "estimate {} below truth {count}",
                sketch.estimate(key)
            );
        }
    }

    /// With enough columns relative to keys, the estimate is exact.
    #[test]
    fn sketch_is_exact_when_sparse(keys in prop::collection::hash_set(any::<u64>(), 1..32)) {
        let mut sketch = CountMinSketch::new(4, 65_536);
        for &k in &keys {
            sketch.update(k, 7);
        }
        for &k in &keys {
            prop_assert_eq!(sketch.estimate(k), 7);
        }
    }

    /// Signature keys are deterministic and respect their field scope:
    /// the src-IP key ignores everything but the source; the 5-tuple key
    /// changes when any of its five fields changes.
    #[test]
    fn signature_key_scope(src in any::<u32>(), dst in any::<u32>(),
                           sport in any::<u16>(), dport in any::<u16>(),
                           flip in 0u8..5) {
        let base = Packet::new(SimTime::ZERO)
            .with_src(Ipv4Addr::from(src))
            .with_dst(Ipv4Addr::from(dst))
            .with_ports(sport, dport);
        let mut changed = base.clone();
        match flip {
            0 => changed.src = Ipv4Addr::from(src.wrapping_add(1)),
            1 => changed.dst = Ipv4Addr::from(dst.wrapping_add(1)),
            2 => changed.sport = sport.wrapping_add(1),
            3 => changed.dport = dport.wrapping_add(1),
            _ => changed.proto = base.proto.wrapping_add(1),
        }
        // Determinism.
        prop_assert_eq!(Signature::FiveTuple.key(&base), Signature::FiveTuple.key(&base));
        prop_assert_eq!(Signature::SrcIp.key(&base), Signature::SrcIp.key(&base));
        // Scope: the 5-tuple key must change; the srcIP key only when the
        // source changed.
        prop_assert_ne!(Signature::FiveTuple.key(&base), Signature::FiveTuple.key(&changed));
        if flip == 0 {
            prop_assert_ne!(Signature::SrcIp.key(&base), Signature::SrcIp.key(&changed));
        } else {
            prop_assert_eq!(Signature::SrcIp.key(&base), Signature::SrcIp.key(&changed));
        }
    }
}
