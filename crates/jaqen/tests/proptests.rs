//! Randomized property tests for the Jaqen model's primitives.
//!
//! Originally written against `proptest`; the build environment has no
//! crates.io access, so these now run as seeded randomized loops over
//! `accturbo_prng` (deterministic per seed, so failures reproduce).

use accturbo_jaqen::{CountMinSketch, Signature};
use accturbo_netsim::{Packet, SimTime};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

const CASES: usize = 64;

/// The count-min estimate never underestimates the true count.
#[test]
fn sketch_never_underestimates() {
    let mut rng = StdRng::seed_from_u64(0x9a9e_0001);
    for case in 0..CASES {
        let rows = rng.gen_range(1usize..5);
        let cols = rng.gen_range(16usize..4096);
        let n_updates = rng.gen_range(1usize..500);
        let mut sketch = CountMinSketch::new(rows, cols);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for _ in 0..n_updates {
            let key: u64 = rng.gen();
            let count = rng.gen_range(1u64..50);
            sketch.update(key, count);
            *truth.entry(key).or_insert(0) += count;
        }
        for (&key, &count) in &truth {
            assert!(
                sketch.estimate(key) >= count,
                "case {case}: estimate {} below truth {count}",
                sketch.estimate(key)
            );
        }
    }
}

/// With enough columns relative to keys, the estimate is exact.
#[test]
fn sketch_is_exact_when_sparse() {
    let mut rng = StdRng::seed_from_u64(0x9a9e_0002);
    for case in 0..CASES {
        let n_keys = rng.gen_range(1usize..32);
        let keys: HashSet<u64> = (0..n_keys).map(|_| rng.gen()).collect();
        let mut sketch = CountMinSketch::new(4, 65_536);
        for &k in &keys {
            sketch.update(k, 7);
        }
        for &k in &keys {
            assert_eq!(sketch.estimate(k), 7, "case {case}");
        }
    }
}

/// Signature keys are deterministic and respect their field scope:
/// the src-IP key ignores everything but the source; the 5-tuple key
/// changes when any of its five fields changes.
#[test]
fn signature_key_scope() {
    let mut rng = StdRng::seed_from_u64(0x9a9e_0003);
    for case in 0..CASES * 4 {
        let src: u32 = rng.gen();
        let dst: u32 = rng.gen();
        let sport: u16 = rng.gen();
        let dport: u16 = rng.gen();
        let flip = rng.gen_range(0u8..5);
        let base = Packet::new(SimTime::ZERO)
            .with_src(Ipv4Addr::from(src))
            .with_dst(Ipv4Addr::from(dst))
            .with_ports(sport, dport);
        let mut changed = base.clone();
        match flip {
            0 => changed.src = Ipv4Addr::from(src.wrapping_add(1)),
            1 => changed.dst = Ipv4Addr::from(dst.wrapping_add(1)),
            2 => changed.sport = sport.wrapping_add(1),
            3 => changed.dport = dport.wrapping_add(1),
            _ => changed.proto = base.proto.wrapping_add(1),
        }
        // Determinism.
        assert_eq!(
            Signature::FiveTuple.key(&base),
            Signature::FiveTuple.key(&base)
        );
        assert_eq!(Signature::SrcIp.key(&base), Signature::SrcIp.key(&base));
        // Scope: the 5-tuple key must change; the srcIP key only when the
        // source changed.
        assert_ne!(
            Signature::FiveTuple.key(&base),
            Signature::FiveTuple.key(&changed),
            "case {case} flip {flip}"
        );
        if flip == 0 {
            assert_ne!(Signature::SrcIp.key(&base), Signature::SrcIp.key(&changed));
        } else {
            assert_eq!(Signature::SrcIp.key(&base), Signature::SrcIp.key(&changed));
        }
    }
}
