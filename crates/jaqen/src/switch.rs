//! The Jaqen-model switch (paper §7.2, Table 2).
//!
//! Jaqen detects attacks with sketch-based *signatures* — a pre-configured
//! key (here: the 5-tuple, "Jaqen†", or the source IP, "Jaqen‡") whose
//! per-key packet count is compared against a threshold — and mitigates
//! by installing exact-match drop rules. Its weaknesses, which this model
//! reproduces with the paper's own measured constants, are:
//!
//! * **Signature dependence** (§7.2.1): traffic that varies the keyed
//!   fields (carpet bombing under a 5-tuple key, spoofing under either
//!   key) spreads the counts below any threshold.
//! * **Threshold activation** (§7.2.3): the detection fires only when a
//!   key's count exceeds the threshold in *two consecutive windows*; the
//!   window length is the sketch inter-reset time (Fig. 8b's x-axis).
//! * **Reaction latency** (§7.2.2): once detected, deploying the rule
//!   takes ≈10 s if the mitigation module is loaded, plus ≈11.5 s when
//!   the switch must be reprogrammed.

use crate::sketch::CountMinSketch;
use accturbo_netsim::{
    DropReason, Dropped, FifoQueue, Packet, QueueDiscipline, SimDuration, SimTime, Switch,
};
use std::collections::{HashMap, HashSet};

/// Which signature the sketch keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signature {
    /// The transport 5-tuple ("Jaqen†" in Table 3).
    FiveTuple,
    /// The source address ("Jaqen‡" in Table 3).
    SrcIp,
}

impl Signature {
    /// Grammar name of the signature (the `xp run defense=jaqen:sig=…`
    /// vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Signature::FiveTuple => "5tuple",
            Signature::SrcIp => "srcip",
        }
    }

    /// Resolves a signature from its grammar name.
    pub fn parse(s: &str) -> Option<Signature> {
        match s {
            "5tuple" => Some(Signature::FiveTuple),
            "srcip" => Some(Signature::SrcIp),
            _ => None,
        }
    }

    /// Extracts the keyed value from a packet as a hashable `u64`.
    pub fn key(self, pkt: &Packet) -> u64 {
        match self {
            Signature::FiveTuple => {
                let mut x = u32::from(pkt.src) as u64;
                x = x
                    .wrapping_mul(0x0100_0000_01B3)
                    .wrapping_add(u32::from(pkt.dst) as u64);
                x = x
                    .wrapping_mul(0x0100_0000_01B3)
                    .wrapping_add(((pkt.sport as u64) << 24) | ((pkt.dport as u64) << 8));
                x.wrapping_mul(0x0100_0000_01B3)
                    .wrapping_add(pkt.proto as u64)
            }
            Signature::SrcIp => u32::from(pkt.src) as u64,
        }
    }
}

/// Configuration of the Jaqen model.
#[derive(Debug, Clone)]
pub struct JaqenConfig {
    /// The detection signature.
    pub signature: Signature,
    /// Packet-count threshold per window.
    pub threshold: u64,
    /// Sketch inter-reset time = detection window (Fig. 8b sweeps this).
    pub window: SimDuration,
    /// Windows a key must exceed the threshold in before mitigation (the
    /// paper observes Jaqen requires two consecutive windows).
    pub consecutive_windows: u32,
    /// Delay between detection and the drop rule taking effect (≈10 s in
    /// the paper's best case; + ≈11.5 s when reprogramming is needed).
    pub deploy_delay: SimDuration,
    /// Output FIFO capacity, bytes.
    pub queue_capacity_bytes: u64,
    /// Sketch rows.
    pub sketch_rows: usize,
    /// Sketch columns.
    pub sketch_cols: usize,
}

impl JaqenConfig {
    /// The paper's best-case Jaqen: mitigation module pre-loaded, sketch
    /// read at the controller's maximum speed (1 s windows), threshold as
    /// given.
    pub fn best_case(signature: Signature, threshold: u64) -> Self {
        JaqenConfig {
            signature,
            threshold,
            window: SimDuration::from_secs(1),
            consecutive_windows: 2,
            deploy_delay: SimDuration::from_millis(500),
            queue_capacity_bytes: 512 * 1024,
            sketch_rows: 3,
            sketch_cols: 65_536,
        }
    }

    /// Sets the sketch inter-reset time (detection window).
    pub fn with_window(mut self, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        self.window = window;
        self
    }

    /// Sets the detection → mitigation delay.
    pub fn with_deploy_delay(mut self, delay: SimDuration) -> Self {
        self.deploy_delay = delay;
        self
    }
}

/// The modeled Jaqen switch.
pub struct JaqenSwitch {
    cfg: JaqenConfig,
    sketch: CountMinSketch,
    queue: FifoQueue,
    /// Keys that crossed the threshold this window.
    hot_this_window: HashSet<u64>,
    /// Consecutive hot windows per key.
    streak: HashMap<u64, u32>,
    /// Active drop rules.
    rules: HashSet<u64>,
    /// Rules detected but not yet deployed: (activation time, key).
    pending: Vec<(SimTime, u64)>,
    next_window_end: SimTime,
    detections: u64,
}

impl JaqenSwitch {
    /// Builds the switch.
    pub fn new(cfg: JaqenConfig) -> Self {
        let sketch = CountMinSketch::new(cfg.sketch_rows, cfg.sketch_cols);
        // Packet-granular cap like the experiment baseline FIFO (cells,
        // not bytes, are the scarce resource near overflow).
        let queue = FifoQueue::new(cfg.queue_capacity_bytes)
            .with_pkt_cap((cfg.queue_capacity_bytes / 660).max(1) as usize);
        let next_window_end = SimTime::ZERO + cfg.window;
        JaqenSwitch {
            cfg,
            sketch,
            queue,
            hot_this_window: HashSet::new(),
            streak: HashMap::new(),
            rules: HashSet::new(),
            pending: Vec::new(),
            next_window_end,
            detections: 0,
        }
    }

    /// Number of drop rules deployed (active + pending).
    pub fn rules_installed(&self) -> usize {
        self.rules.len() + self.pending.len()
    }

    /// Number of threshold detections fired.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    fn roll_window(&mut self, now: SimTime) {
        while now >= self.next_window_end {
            // Update streaks: keys hot this window extend theirs, all
            // other streaks reset.
            let hot = std::mem::take(&mut self.hot_this_window);
            self.streak.retain(|k, _| hot.contains(k));
            for key in hot {
                let streak = self.streak.entry(key).or_insert(0);
                *streak += 1;
                if *streak >= self.cfg.consecutive_windows && !self.rules.contains(&key) {
                    let already_pending = self.pending.iter().any(|&(_, k)| k == key);
                    if !already_pending {
                        self.pending
                            .push((self.next_window_end + self.cfg.deploy_delay, key));
                        self.detections += 1;
                    }
                }
            }
            self.sketch.reset();
            self.next_window_end += self.cfg.window;
        }
        // Activate due rules.
        let rules = &mut self.rules;
        self.pending.retain(|&(at, key)| {
            if now >= at {
                rules.insert(key);
                false
            } else {
                true
            }
        });
    }
}

impl Switch for JaqenSwitch {
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        self.roll_window(now);
        let key = self.cfg.signature.key(&pkt);
        if self.rules.contains(&key) {
            drops.push(Dropped {
                packet: pkt,
                reason: DropReason::Filter,
            });
            return;
        }
        let est = self.sketch.update(key, 1);
        if est >= self.cfg.threshold {
            self.hot_this_window.insert(key);
        }
        self.queue.enqueue(pkt, now, drops);
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.queue.dequeue(now)
    }

    fn backlog_pkts(&self) -> usize {
        self.queue.len_pkts()
    }

    fn control_tick(&mut self, now: SimTime) {
        self.roll_window(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_netsim::{run, Bandwidth, ClassId, EngineConfig, MergedSource, PacketSource};
    use accturbo_traffic::{AttackConfig, AttackSource, AttackVector, CbrSource, FlowTemplate};
    use std::net::Ipv4Addr;

    const LINK: u64 = 10_000_000;

    fn benign_src(end_s: u64) -> Box<dyn PacketSource> {
        Box::new(CbrSource::new(
            FlowTemplate::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(20, 0, 0, 1),
                5000,
                80,
                ClassId::BENIGN,
            ),
            6_000_000,
            SimTime::ZERO,
            SimTime::from_secs(end_s),
        ))
    }

    fn flood(end_s: u64) -> AttackConfig {
        AttackConfig::new(
            AttackVector::UdpFlood,
            30_000_000,
            SimTime::from_secs(2),
            SimTime::from_secs(end_s),
            ClassId(1),
            3,
        )
        .with_single_flow()
    }

    fn engine() -> EngineConfig {
        EngineConfig::new(Bandwidth::from_bps(LINK))
            .with_control_period(accturbo_netsim::SimDuration::from_millis(100))
    }

    #[test]
    fn single_flow_flood_is_detected_and_dropped() {
        let mut src =
            MergedSource::new(vec![benign_src(20), Box::new(AttackSource::new(flood(20)))]);
        let mut sw = JaqenSwitch::new(JaqenConfig::best_case(Signature::FiveTuple, 1_000));
        let res = run(&mut src, &mut sw, &engine());
        assert!(sw.detections() >= 1);
        assert!(sw.rules_installed() >= 1);
        // After mitigation, benign traffic flows; attack is filtered.
        assert!(res.stats.benign_drop_pct() < 25.0);
        assert!(res.stats.attack_drop_pct() > 60.0);
    }

    #[test]
    fn carpet_bombing_defeats_five_tuple_signature() {
        let mut src = MergedSource::new(vec![
            benign_src(20),
            Box::new(AttackSource::new(flood(20).with_carpet_bombing())),
        ]);
        let mut sw = JaqenSwitch::new(JaqenConfig::best_case(Signature::FiveTuple, 1_000));
        let res = run(&mut src, &mut sw, &engine());
        assert_eq!(
            sw.detections(),
            0,
            "per-flow counts never cross the threshold"
        );
        assert!(
            res.stats.benign_drop_pct() > 40.0,
            "benign suffers like FIFO"
        );
    }

    #[test]
    fn src_ip_signature_survives_carpet_bombing_but_not_spoofing() {
        let run_with = |cfgmod: fn(AttackConfig) -> AttackConfig| {
            let mut src = MergedSource::new(vec![
                benign_src(20),
                Box::new(AttackSource::new(cfgmod(flood(20)))),
            ]);
            let mut sw = JaqenSwitch::new(JaqenConfig::best_case(Signature::SrcIp, 1_000));
            let res = run(&mut src, &mut sw, &engine());
            (sw.detections(), res.stats.benign_drop_pct())
        };
        let (det_carpet, benign_carpet) = run_with(|c| c.with_carpet_bombing());
        assert!(det_carpet >= 1, "src stays fixed under carpet bombing");
        assert!(benign_carpet < 25.0);
        let (det_spoof, benign_spoof) = run_with(|c| c.with_source_spoofing());
        assert_eq!(det_spoof, 0, "spoofed sources spread the counts");
        assert!(benign_spoof > 40.0);
    }

    #[test]
    fn two_consecutive_windows_are_required() {
        // A one-window burst must not trigger mitigation.
        let mut sw = JaqenSwitch::new(JaqenConfig::best_case(Signature::FiveTuple, 100));
        let mut drops = Vec::new();
        for i in 0..500u64 {
            let p = Packet::new(SimTime::from_millis(i)).with_ports(1, 2);
            sw.ingress(p, SimTime::from_millis(i), &mut drops);
            sw.dequeue(SimTime::from_millis(i));
        }
        // Burst confined to window 0; windows 1.. silent.
        sw.control_tick(SimTime::from_secs(5));
        assert_eq!(sw.detections(), 0);
    }

    #[test]
    fn deploy_delay_defers_mitigation() {
        let cfg = JaqenConfig::best_case(Signature::FiveTuple, 100)
            .with_deploy_delay(SimDuration::from_secs(10));
        let mut sw = JaqenSwitch::new(cfg);
        let mut drops = Vec::new();
        // Hot in windows 0 and 1 -> detected at t=2s -> active at t=12s.
        for i in 0..2_500u64 {
            let p = Packet::new(SimTime::from_millis(i)).with_ports(1, 2);
            sw.ingress(p, SimTime::from_millis(i), &mut drops);
            sw.dequeue(SimTime::from_millis(i));
        }
        let drops_before = drops
            .iter()
            .filter(|d| d.reason == DropReason::Filter)
            .count();
        assert_eq!(drops_before, 0, "no filtering before the rule deploys");
        sw.control_tick(SimTime::from_secs(13));
        let p = Packet::new(SimTime::from_secs(13)).with_ports(1, 2);
        sw.ingress(p, SimTime::from_secs(13), &mut drops);
        assert!(
            drops.iter().any(|d| d.reason == DropReason::Filter),
            "rule must be active after the deploy delay"
        );
    }

    #[test]
    fn low_threshold_false_positives_hit_benign_flows() {
        // With an absurdly low threshold, even the benign CBR flow is
        // "detected" and dropped — Fig. 8a's left edge.
        let mut src = MergedSource::new(vec![benign_src(10)]);
        let mut sw = JaqenSwitch::new(JaqenConfig::best_case(Signature::FiveTuple, 10));
        let res = run(&mut src, &mut sw, &engine());
        assert!(
            res.stats.benign_drop_pct() > 50.0,
            "benign flow must be misclassified: {}",
            res.stats.benign_drop_pct()
        );
    }
}
