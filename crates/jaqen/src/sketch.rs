//! Count-min sketch — Jaqen's detection substrate.
//!
//! Jaqen (Liu et al., USENIX Security 2021) detects volumetric attacks
//! with sketch-based signatures in the data plane. A count-min sketch
//! estimates per-key packet counts with bounded overestimation; the
//! controller reads it periodically and compares against a threshold.

/// A count-min sketch over `u64` keys.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: usize,
    cols: usize,
    counters: Vec<u64>,
}

impl CountMinSketch {
    /// Creates a sketch with `rows` hash rows of `cols` counters each.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "sketch dimensions must be positive");
        CountMinSketch {
            rows,
            cols,
            counters: vec![0; rows * cols],
        }
    }

    /// SplitMix64 finalizer, salted per row.
    fn index(&self, key: u64, row: usize) -> usize {
        let mut x = key ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(row as u64 + 1));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        row * self.cols + (x % self.cols as u64) as usize
    }

    /// Adds `count` to `key` and returns the updated estimate.
    pub fn update(&mut self, key: u64, count: u64) -> u64 {
        let mut est = u64::MAX;
        for row in 0..self.rows {
            let i = self.index(key, row);
            self.counters[i] += count;
            est = est.min(self.counters[i]);
        }
        est
    }

    /// The current estimate for `key` (never underestimates).
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.rows)
            .map(|row| self.counters[self.index(key, row)])
            .min()
            .expect("rows > 0")
    }

    /// Zeroes all counters (the periodic reset of §7.2.3).
    pub fn reset(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_sparse_keys() {
        let mut s = CountMinSketch::new(4, 4096);
        for k in 0..100u64 {
            for _ in 0..(k + 1) {
                s.update(k, 1);
            }
        }
        for k in 0..100u64 {
            assert_eq!(s.estimate(k), k + 1, "key {k}");
        }
    }

    #[test]
    fn never_underestimates() {
        let mut s = CountMinSketch::new(2, 64);
        for k in 0..10_000u64 {
            s.update(k, 1);
        }
        for k in 0..100u64 {
            assert!(s.estimate(k) >= 1);
        }
    }

    #[test]
    fn update_returns_estimate() {
        let mut s = CountMinSketch::new(3, 1024);
        assert_eq!(s.update(42, 5), 5);
        assert_eq!(s.update(42, 5), 10);
    }

    #[test]
    fn reset_clears() {
        let mut s = CountMinSketch::new(3, 1024);
        s.update(7, 100);
        s.reset();
        assert_eq!(s.estimate(7), 0);
    }

    #[test]
    fn unseen_keys_are_zero_when_sparse() {
        let mut s = CountMinSketch::new(4, 4096);
        s.update(1, 10);
        assert_eq!(s.estimate(999), 0);
    }
}
