//! # accturbo-jaqen
//!
//! A behavioural model of Jaqen (Liu et al., USENIX Security 2021), the
//! state-of-the-art switch-native DDoS defense the paper compares against
//! in §7.2: count-min-sketch heavy-hitter detection on a pre-configured
//! signature (5-tuple or source IP), two-consecutive-window threshold
//! activation, exact-match drop rules, and the measured reaction
//! latencies (≈10 s detect+deploy, +≈11.5 s program swap). The model
//! reproduces exactly the properties the comparison exercises:
//! signature dependence, threshold sensitivity, and reaction time.

#![deny(missing_docs)]

pub mod sketch;
pub mod switch;

pub use sketch::CountMinSketch;
pub use switch::{JaqenConfig, JaqenSwitch, Signature};
