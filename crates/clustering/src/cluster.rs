//! Cluster representations.
//!
//! The paper studies two representations (§4.2.2): *range-based* (a
//! `[min, max]` interval per ordinal feature plus a value set per nominal
//! feature — what ACC-Turbo deploys) and *center-based* (a centroid moved
//! toward each new point by a learning rate — the Euclidean baseline).

use crate::bloom::BloomFilter;
use crate::feature::{FeatureKind, FeatureSet};
use std::collections::HashSet;

/// How nominal-feature value sets are stored.
#[derive(Debug, Clone)]
pub enum NominalMode {
    /// Exact hash sets (simulation; unlimited resources).
    Exact,
    /// Bloom-filter admission lists, as on Tofino (§6). False positives
    /// make values appear already admitted.
    Bloom {
        /// Bits per filter.
        bits: u64,
        /// Hash functions per filter.
        hashes: u32,
    },
}

/// A set of admitted values for one nominal feature.
#[derive(Debug, Clone)]
pub enum NominalSet {
    /// Exact membership.
    Exact(HashSet<u32>),
    /// Approximate membership with a distinct-insert counter.
    Bloom {
        /// The admission list.
        filter: BloomFilter,
        /// Number of values admitted while not already present (an
        /// estimate of the set's cardinality).
        distinct: u64,
    },
}

impl NominalSet {
    fn new(mode: &NominalMode) -> Self {
        match mode {
            NominalMode::Exact => NominalSet::Exact(HashSet::new()),
            NominalMode::Bloom { bits, hashes } => NominalSet::Bloom {
                filter: BloomFilter::new(*bits, *hashes),
                distinct: 0,
            },
        }
    }

    /// True when `value` is (or appears to be) admitted.
    pub fn contains(&self, value: u32) -> bool {
        match self {
            NominalSet::Exact(s) => s.contains(&value),
            NominalSet::Bloom { filter, .. } => filter.contains(value),
        }
    }

    /// Admits `value`.
    pub fn insert(&mut self, value: u32) {
        match self {
            NominalSet::Exact(s) => {
                s.insert(value);
            }
            NominalSet::Bloom { filter, distinct } => {
                if !filter.contains(value) {
                    *distinct += 1;
                }
                filter.insert(value);
            }
        }
    }

    /// The (estimated) number of distinct admitted values — the nominal
    /// feature's cost `δ_f(a) = |f(a)|` of Def. 4.1.
    pub fn cardinality(&self) -> u64 {
        match self {
            NominalSet::Exact(s) => s.len() as u64,
            NominalSet::Bloom { distinct, .. } => *distinct,
        }
    }

    /// Unions `other` into `self` (used by exhaustive-search merges).
    pub fn union_with(&mut self, other: &NominalSet) {
        match (self, other) {
            (NominalSet::Exact(a), NominalSet::Exact(b)) => {
                a.extend(b.iter().copied());
            }
            _ => unreachable!("mixed nominal modes never occur within one clusterer"),
        }
    }

    /// Empties the set while keeping its backing storage (hash-set
    /// capacity, bloom bit array) allocated for reuse.
    pub fn clear(&mut self) {
        match self {
            NominalSet::Exact(s) => s.clear(),
            NominalSet::Bloom { filter, distinct } => {
                filter.reset();
                *distinct = 0;
            }
        }
    }
}

/// One per-feature dimension of a range-based cluster.
#[derive(Debug, Clone)]
pub enum Dim {
    /// `[min, max]` interval for an ordinal feature.
    Range {
        /// Smallest admitted value.
        min: u32,
        /// Largest admitted value.
        max: u32,
    },
    /// Value set for a nominal feature.
    Set(NominalSet),
}

/// A range-based cluster (the representation ACC-Turbo deploys).
#[derive(Debug, Clone)]
pub struct RangeCluster {
    dims: Vec<Dim>,
}

impl RangeCluster {
    /// Seeds a cluster from a single feature vector.
    pub fn seed(features: &FeatureSet, values: &[u32], nominal: &NominalMode) -> Self {
        assert_eq!(features.len(), values.len(), "feature/value arity mismatch");
        let dims = features
            .specs()
            .iter()
            .zip(values)
            .map(|(spec, &v)| match spec.kind {
                FeatureKind::Ordinal => Dim::Range { min: v, max: v },
                FeatureKind::Nominal => {
                    let mut set = NominalSet::new(nominal);
                    set.insert(v);
                    Dim::Set(set)
                }
            })
            .collect();
        RangeCluster { dims }
    }

    /// The per-feature dimensions.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Manhattan distance from a point to this cluster (paper Eq. 5): the
    /// sum over ordinal features of the gap to the nearest range edge,
    /// plus 1 for every nominal feature whose value is not admitted.
    /// Zero means the point is covered.
    ///
    /// The ordinal gap is computed branch-free: of the two saturating
    /// differences at most one is non-zero (`min <= max` always), and a
    /// point inside the range yields zero for both.
    pub fn manhattan(&self, values: &[u32]) -> u64 {
        self.dims
            .iter()
            .zip(values)
            .map(|(dim, &v)| match dim {
                Dim::Range { min, max } => (min.saturating_sub(v) + v.saturating_sub(*max)) as u64,
                Dim::Set(set) => u64::from(!set.contains(v)),
            })
            .sum()
    }

    /// [`manhattan`](Self::manhattan) with an early-exit bound: returns as
    /// soon as the running sum reaches `bound`. Gap terms are non-negative,
    /// so any partial sum `>= bound` proves the full distance is too; the
    /// returned value then is that partial sum (still `>= bound`), which a
    /// strict `d < bound` nearest-cluster comparison rejects exactly as it
    /// would the full distance. When the result is `< bound` it *is* the
    /// exact distance.
    pub fn manhattan_bounded(&self, values: &[u32], bound: u64) -> u64 {
        let mut acc = 0u64;
        for (dim, &v) in self.dims.iter().zip(values) {
            acc += match dim {
                Dim::Range { min, max } => (min.saturating_sub(v) + v.saturating_sub(*max)) as u64,
                Dim::Set(set) => u64::from(!set.contains(v)),
            };
            if acc >= bound {
                return acc;
            }
        }
        acc
    }

    /// The original branchy per-dimension Manhattan distance, kept
    /// verbatim as the benchmark/differential baseline for the branch-free
    /// kernels above. Must stay value-identical to
    /// [`manhattan`](Self::manhattan).
    #[cfg(feature = "reference")]
    pub fn manhattan_reference(&self, values: &[u32]) -> u64 {
        self.dims
            .iter()
            .zip(values)
            .map(|(dim, &v)| match dim {
                Dim::Range { min, max } => {
                    if v < *min {
                        (*min - v) as u64
                    } else if v > *max {
                        (v - *max) as u64
                    } else {
                        0
                    }
                }
                Dim::Set(set) => u64::from(!set.contains(v)),
            })
            .sum()
    }

    /// The cluster's Manhattan cost `δ''(c)` (paper Eq. 3): the sum of
    /// range extents and nominal cardinalities.
    pub fn manhattan_cost(&self) -> u64 {
        self.dims
            .iter()
            .map(|dim| match dim {
                Dim::Range { min, max } => (max - min) as u64,
                Dim::Set(set) => set.cardinality(),
            })
            .sum()
    }

    /// The cluster's Anime cost (paper Eq. 1): the product of per-feature
    /// extents. We use `extent + 1` per ordinal feature (the number of
    /// representable values) so fresh single-point clusters have volume 1
    /// rather than a degenerate 0 (see DESIGN.md §4). Computed in `f64`
    /// because the exact value needs up to 2^157 (paper §4.2.3).
    pub fn anime_cost(&self) -> f64 {
        self.dims
            .iter()
            .map(|dim| match dim {
                Dim::Range { min, max } => (max - min) as f64 + 1.0,
                Dim::Set(set) => set.cardinality().max(1) as f64,
            })
            .product()
    }

    /// Anime distance from a point: the volume increase caused by
    /// admitting it, `δ(p ∪ c) − δ(c)`.
    pub fn anime(&self, values: &[u32]) -> f64 {
        let grown: f64 = self
            .dims
            .iter()
            .zip(values)
            .map(|(dim, &v)| match dim {
                Dim::Range { min, max } => {
                    let min = (*min).min(v);
                    let max = (*max).max(v);
                    (max - min) as f64 + 1.0
                }
                Dim::Set(set) => {
                    let card = set.cardinality().max(1);
                    if set.contains(v) {
                        card as f64
                    } else {
                        (card + 1) as f64
                    }
                }
            })
            .product();
        grown - self.anime_cost()
    }

    /// Expands the cluster to cover `values` (Alg. 1's `UpdateCluster`).
    pub fn admit(&mut self, values: &[u32]) {
        for (dim, &v) in self.dims.iter_mut().zip(values) {
            match dim {
                Dim::Range { min, max } => {
                    if v < *min {
                        *min = v;
                    }
                    if v > *max {
                        *max = v;
                    }
                }
                Dim::Set(set) => set.insert(v),
            }
        }
    }

    /// True when the cluster covers `values` exactly (distance zero).
    pub fn covers(&self, values: &[u32]) -> bool {
        self.manhattan(values) == 0
    }

    /// Collapses the cluster onto the single point `values` in place,
    /// reusing the per-dimension storage (ranges shrink to the point,
    /// nominal sets clear but keep their allocation). State-equivalent to
    /// re-running [`seed`](Self::seed) with the same feature set, without
    /// the per-reset allocations.
    pub fn reseed(&mut self, values: &[u32]) {
        assert_eq!(
            self.dims.len(),
            values.len(),
            "feature/value arity mismatch"
        );
        for (dim, &v) in self.dims.iter_mut().zip(values) {
            match dim {
                Dim::Range { min, max } => {
                    *min = v;
                    *max = v;
                }
                Dim::Set(set) => {
                    set.clear();
                    set.insert(v);
                }
            }
        }
    }

    /// Merges `other` into `self` (exhaustive search, §4.2.1): ranges
    /// become the convex hull, sets the union.
    pub fn merge(&mut self, other: &RangeCluster) {
        for (a, b) in self.dims.iter_mut().zip(&other.dims) {
            match (a, b) {
                (Dim::Range { min, max }, Dim::Range { min: m2, max: x2 }) => {
                    *min = (*min).min(*m2);
                    *max = (*max).max(*x2);
                }
                (Dim::Set(sa), Dim::Set(sb)) => sa.union_with(sb),
                _ => unreachable!("dimension kinds are fixed by the feature set"),
            }
        }
    }

    /// Manhattan cost increase of merging `self` and `other` compared to
    /// keeping them separate: `δ(ci ∪ cj) − (δ(ci) + δ(cj))`.
    pub fn manhattan_merge_cost(&self, other: &RangeCluster) -> i64 {
        let mut merged_cost = 0i64;
        for (a, b) in self.dims.iter().zip(&other.dims) {
            merged_cost += match (a, b) {
                (Dim::Range { min, max }, Dim::Range { min: m2, max: x2 }) => {
                    ((*max).max(*x2) - (*min).min(*m2)) as i64
                }
                (Dim::Set(sa), Dim::Set(sb)) => {
                    // Upper bound |A ∪ B| ≤ |A| + |B| — exact when disjoint.
                    (sa.cardinality() + sb.cardinality()) as i64
                }
                _ => unreachable!("dimension kinds are fixed by the feature set"),
            };
        }
        merged_cost - self.manhattan_cost() as i64 - other.manhattan_cost() as i64
    }

    /// Anime cost increase of merging.
    pub fn anime_merge_cost(&self, other: &RangeCluster) -> f64 {
        let merged: f64 = self
            .dims
            .iter()
            .zip(&other.dims)
            .map(|(a, b)| match (a, b) {
                (Dim::Range { min, max }, Dim::Range { min: m2, max: x2 }) => {
                    ((*max).max(*x2) - (*min).min(*m2)) as f64 + 1.0
                }
                (Dim::Set(sa), Dim::Set(sb)) => (sa.cardinality() + sb.cardinality()).max(1) as f64,
                _ => unreachable!("dimension kinds are fixed by the feature set"),
            })
            .product();
        merged - self.anime_cost() - other.anime_cost()
    }
}

/// A center-based cluster (the Euclidean baseline of §4.2.2).
#[derive(Debug, Clone)]
pub struct CenterCluster {
    center: Vec<f64>,
    /// Points absorbed so far (used for weighted merges).
    pub weight: u64,
}

impl CenterCluster {
    /// Seeds a centroid at `values`.
    pub fn seed(values: &[u32]) -> Self {
        CenterCluster {
            center: values.iter().map(|&v| v as f64).collect(),
            weight: 1,
        }
    }

    /// The centroid coordinates.
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// Squared Euclidean distance from a point to the centroid (Eq. 2).
    pub fn euclidean_sq(&self, values: &[u32]) -> f64 {
        self.center
            .iter()
            .zip(values)
            .map(|(c, &v)| {
                let d = v as f64 - c;
                d * d
            })
            .sum()
    }

    /// [`euclidean_sq`](Self::euclidean_sq) with an early-exit bound.
    /// Squared terms are non-negative, so a partial sum `>= bound` already
    /// proves the full distance is rejected by a strict `d < bound`
    /// comparison; results `< bound` are exact and accumulated in the same
    /// left-to-right order as the unbounded version (bit-identical `f64`).
    pub fn euclidean_sq_bounded(&self, values: &[u32], bound: f64) -> f64 {
        let mut acc = 0.0f64;
        for (c, &v) in self.center.iter().zip(values) {
            let d = v as f64 - c;
            acc += d * d;
            if acc >= bound {
                return acc;
            }
        }
        acc
    }

    /// Re-seeds the centroid at `values` in place, reusing the coordinate
    /// buffer. State-equivalent to [`seed`](Self::seed).
    pub fn reseed(&mut self, values: &[u32]) {
        self.center.clear();
        self.center.extend(values.iter().map(|&v| v as f64));
        self.weight = 1;
    }

    /// Moves the centroid toward `values` by `learning_rate` (§4.2.2's
    /// "pre-defined learning rate").
    pub fn admit(&mut self, values: &[u32], learning_rate: f64) {
        for (c, &v) in self.center.iter_mut().zip(values) {
            *c += learning_rate * (v as f64 - *c);
        }
        self.weight += 1;
    }

    /// Merges `other` into `self` as the weight-averaged centroid.
    pub fn merge(&mut self, other: &CenterCluster) {
        let total = (self.weight + other.weight) as f64;
        for (c, o) in self.center.iter_mut().zip(&other.center) {
            *c = (*c * self.weight as f64 + *o * other.weight as f64) / total;
        }
        self.weight += other.weight;
    }

    /// Squared distance between centroids (the exhaustive merge cost for
    /// center-based representations).
    pub fn merge_cost(&self, other: &CenterCluster) -> f64 {
        self.center
            .iter()
            .zip(&other.center)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{Feature, FeatureSpec};

    fn feats() -> FeatureSet {
        // Two ordinal (dst bytes), one nominal (dport).
        FeatureSet::new(vec![
            FeatureSpec::ordinal(Feature::DstIpByte(2)),
            FeatureSpec::ordinal(Feature::DstIpByte(3)),
            FeatureSpec::natural(Feature::DstPort),
        ])
    }

    #[test]
    fn seed_covers_itself() {
        let c = RangeCluster::seed(&feats(), &[5, 10, 80], &NominalMode::Exact);
        assert!(c.covers(&[5, 10, 80]));
        assert_eq!(c.manhattan(&[5, 10, 80]), 0);
        assert_eq!(c.manhattan_cost(), 1); // zero extents + one port
    }

    #[test]
    fn manhattan_distance_is_gap_to_nearest_edge() {
        let mut c = RangeCluster::seed(&feats(), &[5, 10, 80], &NominalMode::Exact);
        c.admit(&[8, 20, 80]);
        // Ranges now [5,8] and [10,20]; port set {80}.
        assert_eq!(c.manhattan(&[3, 25, 80]), 2 + 5);
        assert_eq!(c.manhattan(&[6, 15, 443]), 1); // nominal miss costs 1
        assert_eq!(c.manhattan(&[5, 20, 80]), 0);
    }

    #[test]
    fn admit_expands_to_cover() {
        let mut c = RangeCluster::seed(&feats(), &[5, 10, 80], &NominalMode::Exact);
        assert!(!c.covers(&[3, 25, 443]));
        c.admit(&[3, 25, 443]);
        assert!(c.covers(&[3, 25, 443]));
        assert!(c.covers(&[4, 12, 80]), "hull covers in-between points");
    }

    #[test]
    fn manhattan_cost_tracks_extents_and_cardinality() {
        let mut c = RangeCluster::seed(&feats(), &[5, 10, 80], &NominalMode::Exact);
        c.admit(&[8, 20, 443]);
        assert_eq!(c.manhattan_cost(), 3 + 10 + 2);
    }

    #[test]
    fn anime_cost_is_volume() {
        let mut c = RangeCluster::seed(&feats(), &[5, 10, 80], &NominalMode::Exact);
        assert_eq!(c.anime_cost(), 1.0);
        c.admit(&[8, 20, 443]);
        // (3+1) * (10+1) * 2 = 88.
        assert_eq!(c.anime_cost(), 88.0);
    }

    #[test]
    fn anime_distance_is_volume_increase() {
        let c = RangeCluster::seed(&feats(), &[5, 10, 80], &NominalMode::Exact);
        // Admitting (6, 10, 80): volume (1+1)*1*1 = 2, increase 1.
        assert_eq!(c.anime(&[6, 10, 80]), 1.0);
        // A covered point increases nothing.
        assert_eq!(c.anime(&[5, 10, 80]), 0.0);
    }

    #[test]
    fn merge_takes_hull_and_union() {
        let mut a = RangeCluster::seed(&feats(), &[5, 10, 80], &NominalMode::Exact);
        let b = RangeCluster::seed(&feats(), &[9, 2, 443], &NominalMode::Exact);
        a.merge(&b);
        assert!(a.covers(&[7, 5, 80]));
        assert!(a.covers(&[9, 2, 443]));
        assert_eq!(a.manhattan_cost(), 4 + 8 + 2);
    }

    #[test]
    fn merge_cost_reflects_separation() {
        let near_a = RangeCluster::seed(&feats(), &[5, 10, 80], &NominalMode::Exact);
        let near_b = RangeCluster::seed(&feats(), &[6, 11, 80], &NominalMode::Exact);
        let far = RangeCluster::seed(&feats(), &[200, 250, 9999], &NominalMode::Exact);
        assert!(near_a.manhattan_merge_cost(&near_b) < near_a.manhattan_merge_cost(&far));
        assert!(near_a.anime_merge_cost(&near_b) < near_a.anime_merge_cost(&far));
    }

    #[test]
    fn bloom_mode_admits_with_false_positive_semantics() {
        let mode = NominalMode::Bloom {
            bits: 1024,
            hashes: 3,
        };
        let mut c = RangeCluster::seed(&feats(), &[5, 10, 80], &mode);
        c.admit(&[5, 10, 443]);
        assert!(c.covers(&[5, 10, 80]));
        assert!(c.covers(&[5, 10, 443]));
        assert_eq!(c.manhattan_cost(), 2); // two distinct ports admitted
    }

    #[test]
    fn center_cluster_moves_toward_points() {
        let mut c = CenterCluster::seed(&[0, 0, 0]);
        c.admit(&[10, 10, 10], 0.5);
        assert_eq!(c.center(), &[5.0, 5.0, 5.0]);
        assert_eq!(c.euclidean_sq(&[5, 5, 5]), 0.0);
        assert_eq!(c.euclidean_sq(&[8, 5, 5]), 9.0);
    }

    #[test]
    fn bounded_manhattan_agrees_below_the_bound() {
        let mut c = RangeCluster::seed(&feats(), &[5, 10, 80], &NominalMode::Exact);
        c.admit(&[8, 20, 80]);
        for probe in [[3u32, 25, 80], [6, 15, 443], [5, 20, 80], [0, 0, 1]] {
            let full = c.manhattan(&probe);
            // An unreachable bound returns the exact distance.
            assert_eq!(c.manhattan_bounded(&probe, u64::MAX), full);
            // A tight bound still returns something >= the bound whenever
            // the full distance is >= the bound (rejection-equivalent).
            for bound in [0u64, 1, 2, full.saturating_sub(1), full, full + 1] {
                let b = c.manhattan_bounded(&probe, bound);
                if full < bound {
                    assert_eq!(b, full, "below the bound the result is exact");
                } else {
                    assert!(b >= bound, "partial {b} must not dip below bound {bound}");
                }
            }
        }
    }

    #[test]
    fn bounded_euclidean_agrees_below_the_bound() {
        let mut c = CenterCluster::seed(&[0, 0, 0]);
        c.admit(&[10, 10, 10], 0.5);
        for probe in [[5u32, 5, 5], [8, 5, 5], [100, 0, 3]] {
            let full = c.euclidean_sq(&probe);
            assert_eq!(c.euclidean_sq_bounded(&probe, f64::INFINITY), full);
            for bound in [0.0, 1.0, full / 2.0, full, full * 2.0 + 1.0] {
                let b = c.euclidean_sq_bounded(&probe, bound);
                if full < bound {
                    assert_eq!(b, full, "below the bound the result is exact");
                } else {
                    assert!(b >= bound);
                }
            }
        }
    }

    #[test]
    fn reseed_equals_fresh_seed() {
        let mut grown = RangeCluster::seed(&feats(), &[5, 10, 80], &NominalMode::Exact);
        grown.admit(&[200, 250, 9999]);
        grown.reseed(&[7, 12, 443]);
        let fresh = RangeCluster::seed(&feats(), &[7, 12, 443], &NominalMode::Exact);
        assert_eq!(grown.manhattan_cost(), fresh.manhattan_cost());
        for probe in [[7u32, 12, 443], [5, 10, 80], [0, 255, 1]] {
            assert_eq!(grown.manhattan(&probe), fresh.manhattan(&probe));
            assert_eq!(grown.anime(&probe), fresh.anime(&probe));
        }

        let mut center = CenterCluster::seed(&[1, 2, 3]);
        center.admit(&[9, 9, 9], 0.3);
        center.reseed(&[4, 5, 6]);
        assert_eq!(center.center(), &[4.0, 5.0, 6.0]);
        assert_eq!(center.weight, 1);
    }

    #[test]
    fn reseed_equals_fresh_seed_in_bloom_mode() {
        let mode = NominalMode::Bloom {
            bits: 1024,
            hashes: 3,
        };
        let mut c = RangeCluster::seed(&feats(), &[5, 10, 80], &mode);
        c.admit(&[5, 10, 443]);
        c.reseed(&[5, 10, 8080]);
        assert!(c.covers(&[5, 10, 8080]));
        assert!(!c.covers(&[5, 10, 80]), "cleared filter forgets old ports");
        assert_eq!(c.manhattan_cost(), 1);
    }

    #[test]
    fn center_merge_is_weighted() {
        let mut a = CenterCluster::seed(&[0]);
        a.admit(&[0], 0.1); // weight 2, center 0
        a.admit(&[0], 0.1); // weight 3
        let b = CenterCluster::seed(&[30]); // weight 1
        a.merge(&b);
        assert_eq!(a.weight, 4);
        assert!((a.center()[0] - 7.5).abs() < 1e-9);
    }
}
