//! The online-clustering engine (paper §4, Algorithm 1).
//!
//! Maintains `|C|` clusters over an endless packet stream. Every packet is
//! seen exactly once and triggers an irrevocable action (the
//! online-clustering framework of Def. 4.2):
//!
//! * **Fast search** (deployable on Tofino): assign the packet to its
//!   closest cluster and expand that cluster to cover it.
//! * **Exhaustive search** (simulation upper bound): additionally consider
//!   merging the two closest clusters and starting a fresh cluster at the
//!   packet, choosing whichever action increases total cost least.
//!
//! Distances: Manhattan and Anime operate on range-based clusters;
//! Euclidean on center-based clusters — the design space of §4.2.

use crate::cluster::{CenterCluster, Dim, NominalMode, RangeCluster};
use crate::feature::{FeatureKind, FeatureSet};
use accturbo_netsim::Packet;
use accturbo_obs::{Event, Tracer};

/// Reference (pre-specialization) kernel control, compiled only with the
/// `reference` cargo feature. The differential tests and the
/// `xp bench-export` baseline flip this switch to run the original
/// per-cluster `DistanceKind`-matched scan side by side with the
/// specialized kernels and assert byte-identical figure output.
#[cfg(feature = "reference")]
pub mod reference {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FORCE: AtomicBool = AtomicBool::new(false);

    /// Forces every [`OnlineClusterer`](super::OnlineClusterer)
    /// constructed *after* this call to use the original generic distance
    /// scan instead of the specialized kernels. The flag is sampled once
    /// at construction so the per-packet path stays branch-predictable.
    pub fn force_reference_kernels(on: bool) {
        FORCE.store(on, Ordering::SeqCst);
    }

    /// Whether reference kernels are currently forced.
    pub fn reference_kernels_forced() -> bool {
        FORCE.load(Ordering::SeqCst)
    }
}

/// A specialized nearest-cluster scan over range representations: one
/// pass, no per-cluster `DistanceKind` dispatch. Returns the first index
/// attaining the minimum distance (ties keep the earliest slot, exactly
/// like the original strict `d < best` scan).
type RangeScan = fn(&[Option<Repr>], &[u32]) -> Option<(usize, f64)>;

/// A specialized pairwise merge-cost kernel for range representations.
type RangeMergeCost = fn(&RangeCluster, &RangeCluster) -> f64;

fn scan_manhattan(clusters: &[Option<Repr>], values: &[u32]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, u64)> = None;
    let mut bound = u64::MAX;
    for (i, slot) in clusters.iter().enumerate() {
        let Some(Repr::Range(c)) = slot else { continue };
        // Any partial sum >= bound is rejected below exactly like the full
        // distance would be, so the early exit never changes the winner.
        let d = c.manhattan_bounded(values, bound);
        if best.is_none() || d < bound {
            best = Some((i, d));
            bound = d;
            if d == 0 {
                // Covered: no later cluster can beat a strict `< 0`.
                break;
            }
        }
    }
    best.map(|(i, d)| (i, d as f64))
}

fn scan_anime(clusters: &[Option<Repr>], values: &[u32]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, slot) in clusters.iter().enumerate() {
        let Some(Repr::Range(c)) = slot else { continue };
        let d = c.anime(values);
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((i, d));
        }
    }
    best
}

/// Struct-of-arrays mirror of every range cluster's ordinal extents:
/// flat `num_clusters × width` min/max columns the Manhattan scan walks
/// linearly instead of chasing each cluster's `Vec<Dim>`. Nominal
/// dimensions hold the sentinel `[0, u32::MAX]` (a zero gap for every
/// value), so the ordinal pass needs no per-dimension kind dispatch;
/// their set membership is resolved in a second, bound-gated pass.
/// Maintained incrementally at every geometry mutation (seed, admit,
/// merge, reset) — the same writes the mutation itself performs, so the
/// mirror costs O(width) where the mutation already pays O(width).
#[derive(Debug, Clone, Default)]
struct RangeSoa {
    width: usize,
    mins: Vec<u32>,
    maxs: Vec<u32>,
    occupied: Vec<bool>,
}

impl RangeSoa {
    fn new(num_clusters: usize, width: usize) -> Self {
        RangeSoa {
            width,
            mins: vec![0; num_clusters * width],
            maxs: vec![u32::MAX; num_clusters * width],
            occupied: vec![false; num_clusters],
        }
    }
}

fn merge_cost_manhattan(a: &RangeCluster, b: &RangeCluster) -> f64 {
    a.manhattan_merge_cost(b) as f64
}

fn merge_cost_anime(a: &RangeCluster, b: &RangeCluster) -> f64 {
    a.anime_merge_cost(b)
}

/// Distance function (paper §4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceKind {
    /// Sum of per-feature gaps — deployable (linear output space).
    Manhattan,
    /// Product-volume increase — the faithful cost of Def. 4.1 (needs up
    /// to 2^157, so not deployable; computed in `f64` here).
    Anime,
    /// Squared distance to a centroid (center-based representation).
    Euclidean,
}

/// Search strategy (paper §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchKind {
    /// Linear scan, assign-to-nearest only (deployable).
    Fast,
    /// Also consider merging two clusters to free a slot (quadratic).
    Exhaustive,
}

/// How cluster slots are (re-)initialized.
///
/// Algorithm 1 in the paper *requires* initial ranges ("Require: `p`: New
/// packet, `min`, `max`: Initial ranges"): clusters exist before the first
/// packet and are never empty. [`InitMode::Anchors`] implements that:
/// slot `k` starts as a singleton at the diagonal point
/// `(2k+1)·space_f / 2|C|` of every feature's value space, so slots have
/// stable spatial semantics across resets and a high-rate attack cannot
/// monopolize them. [`InitMode::FromTraffic`] is the classic
/// online-clustering alternative (first packets seed the slots), kept for
/// the initialization ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMode {
    /// Pre-initialized singleton clusters on the feature-space diagonal.
    Anchors,
    /// Empty slots seeded by the first arriving packets.
    FromTraffic,
}

/// Configuration of the clustering engine.
#[derive(Debug, Clone)]
pub struct ClusteringConfig {
    /// Number of cluster slots `|C|`.
    pub num_clusters: usize,
    /// The features to cluster on.
    pub features: FeatureSet,
    /// Distance function (also selects the representation).
    pub distance: DistanceKind,
    /// Search strategy.
    pub search: SearchKind,
    /// Nominal-feature set storage.
    pub nominal: NominalMode,
    /// Learning rate for center-based updates (§4.2.2).
    pub learning_rate: f64,
    /// Cluster initialization.
    pub init: InitMode,
    /// Maximum total range *growth* (in Manhattan-cost units) per cluster
    /// per window (`None` = unlimited). Models the Tofino prototype's
    /// resubmission-based cluster update (§6): resubmission bandwidth is
    /// scarce, so a cluster can only grow a bounded amount between polls.
    /// Packets beyond the budget are still assigned to their nearest
    /// cluster but no longer expand it — which keeps a hot cluster from
    /// snowballing across the feature space within one control period.
    pub update_budget: Option<u64>,
    /// How a cluster's re-seeding representative is chosen at each reset.
    pub rep: RepMode,
}

/// Where an active cluster re-seeds at a reset (anchor initialization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepMode {
    /// The last packet assigned in the window (a per-cluster register
    /// overwritten per packet): biased toward the cluster's dominant
    /// flow, so a high-rate attack becomes its own seed within a window.
    LastPacket,
    /// The midpoint of the cluster's final ranges (read from the same
    /// min/max registers the controller already polls): more stable for
    /// diffuse benign clusters, slower to lock onto a new attack.
    RangeMidpoint,
}

impl ClusteringConfig {
    /// The deployable configuration ACC-Turbo ships: Manhattan distance,
    /// fast search, exact nominal sets, anchor initialization (Alg. 1).
    pub fn deployable(num_clusters: usize, features: FeatureSet) -> Self {
        ClusteringConfig {
            num_clusters,
            features,
            distance: DistanceKind::Manhattan,
            search: SearchKind::Fast,
            nominal: NominalMode::Exact,
            learning_rate: 0.3,
            init: InitMode::Anchors,
            update_budget: Some(256),
            rep: RepMode::LastPacket,
        }
    }

    /// Switches to traffic seeding (the initialization ablation).
    pub fn with_init(mut self, init: InitMode) -> Self {
        self.init = init;
        self
    }

    /// Overrides the per-cluster per-window growth budget.
    pub fn with_update_budget(mut self, budget: Option<u64>) -> Self {
        self.update_budget = budget;
        self
    }

    /// Overrides the representative mode.
    pub fn with_rep(mut self, rep: RepMode) -> Self {
        self.rep = rep;
        self
    }
}

/// What happened structurally when a packet was assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AssignAction {
    /// The packet was already covered (or absorbed without growth).
    Covered,
    /// An empty/reused slot was seeded at the packet.
    Seeded,
    /// Two clusters merged to free the slot, which was seeded at the
    /// packet (exhaustive search only).
    Merged {
        /// The slot that was emptied (and re-seeded at the packet).
        from: usize,
        /// The slot that absorbed `from`'s extent and counters.
        into: usize,
    },
    /// The nearest cluster expanded (or would have, absent budget) to
    /// admit the packet; `grew` is whether it actually changed shape.
    Expanded {
        /// Whether the cluster's geometry actually grew.
        grew: bool,
    },
}

/// The result of a traced assignment: the chosen cluster and the
/// distance the packet had to it before any expansion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Index of the cluster the packet was assigned to.
    pub cluster: usize,
    /// Distance from the packet to that cluster before expansion
    /// (0 when the packet was covered or seeded a slot).
    pub distance: f64,
}

/// One cluster's internal representation.
#[derive(Debug, Clone)]
pub enum Repr {
    /// Range-based (Manhattan / Anime).
    Range(RangeCluster),
    /// Center-based (Euclidean).
    Center(CenterCluster),
}

/// Per-cluster traffic counters since the last [`OnlineClusterer::take_window`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Packets assigned in the window.
    pub pkts: u64,
    /// Bytes assigned in the window.
    pub bytes: u64,
}

/// The online clustering engine.
#[derive(Debug, Clone)]
pub struct OnlineClusterer {
    cfg: ClusteringConfig,
    clusters: Vec<Option<Repr>>,
    window: Vec<WindowStats>,
    totals: Vec<WindowStats>,
    scratch: Vec<u32>,
    /// Per-feature (min, max) of every value observed since the last
    /// reset (empty = nothing observed yet; the buffer is retained across
    /// resets so steady state allocates nothing). Under anchor
    /// initialization, the next reset spreads the anchors of *idle* slots
    /// over these ranges, so the anchor grid adapts to the value ranges
    /// traffic actually uses (declared field widths like ip.len's 16 bits
    /// are mostly unused; see DESIGN.md §4).
    observed: Vec<(u32, u32)>,
    /// The *last* feature vector assigned to each cluster in the current
    /// window (empty = none yet). At the next reset each active slot is
    /// re-seeded at its representative, so slots track the traffic
    /// aggregates they captured. "Last packet" is (a) trivially
    /// implementable in the data plane (a per-cluster register overwritten
    /// on every packet, read by the control plane at the poll) and (b)
    /// biased toward the cluster's dominant flow — exactly the property
    /// that makes a high-rate attack become its own seed and release any
    /// benign traffic it dragged in.
    representative: Vec<Vec<u32>>,
    /// Remaining growth budget per cluster in the current window.
    budget: Vec<u64>,
    /// Per-cluster per-feature (min, max) of every value *assigned* in the
    /// current window (empty = no traffic) — independent of the
    /// budget-limited geometry. This is what the P4 min/max registers
    /// report to the controller, and it is what the `/Size` rankings
    /// divide by: the cluster's statistical spread, not its (stabilized)
    /// geometric shape.
    stat_ranges: Vec<Vec<(u32, u32)>>,
    /// Scratch for re-seed points at resets (reused across resets).
    point_scratch: Vec<u32>,
    /// Struct-of-arrays mirror of the range clusters' ordinal extents —
    /// the column store the default Manhattan scan reads.
    soa: RangeSoa,
    /// Feature positions holding nominal (set-based) dimensions, in
    /// order — the second pass of the SoA scan.
    nominal_dims: Vec<usize>,
    /// Nearest-cluster scan kernel, resolved from `cfg.distance` once at
    /// construction (never consulted in Euclidean mode, which is
    /// center-based and has its own kernel).
    range_scan: RangeScan,
    /// Pairwise merge-cost kernel for exhaustive search, resolved once at
    /// construction.
    range_merge_cost: RangeMergeCost,
    /// Snapshot of [`reference::reference_kernels_forced`] taken at
    /// construction; always `false` without the `reference` feature.
    use_reference: bool,
}

impl OnlineClusterer {
    /// Creates an engine with all cluster slots empty; the first packets
    /// seed them (the standard online-clustering initialization).
    pub fn new(cfg: ClusteringConfig) -> Self {
        assert!(cfg.num_clusters >= 1, "need at least one cluster");
        assert!(
            cfg.learning_rate > 0.0 && cfg.learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        if cfg.search == SearchKind::Exhaustive {
            assert!(
                matches!(cfg.nominal, NominalMode::Exact),
                "exhaustive merges require exact nominal sets"
            );
        }
        let n = cfg.num_clusters;
        let (range_scan, range_merge_cost): (RangeScan, RangeMergeCost) = match cfg.distance {
            DistanceKind::Manhattan => (scan_manhattan, merge_cost_manhattan),
            DistanceKind::Anime => (scan_anime, merge_cost_anime),
            // Euclidean mode is center-based; these kernels are never
            // consulted, any valid pair keeps the fields total.
            DistanceKind::Euclidean => (scan_manhattan, merge_cost_manhattan),
        };
        #[cfg(feature = "reference")]
        let use_reference = reference::reference_kernels_forced();
        #[cfg(not(feature = "reference"))]
        let use_reference = false;
        let width = cfg.features.len();
        let soa = RangeSoa::new(n, width);
        let nominal_dims: Vec<usize> = cfg
            .features
            .specs()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == FeatureKind::Nominal)
            .map(|(f, _)| f)
            .collect();
        let mut oc = OnlineClusterer {
            cfg,
            clusters: vec![None; n],
            window: vec![WindowStats::default(); n],
            totals: vec![WindowStats::default(); n],
            scratch: Vec::new(),
            observed: Vec::new(),
            representative: vec![Vec::new(); n],
            budget: vec![0; n],
            stat_ranges: vec![Vec::new(); n],
            point_scratch: Vec::new(),
            soa,
            nominal_dims,
            range_scan,
            range_merge_cost,
            use_reference,
        };
        oc.init_clusters();
        oc
    }

    /// Rewrites the SoA mirror row of slot `i` from its cluster's
    /// current dimensions (empty and center slots mark the row vacant).
    fn soa_sync_row(&mut self, i: usize) {
        let w = self.soa.width;
        match &self.clusters[i] {
            Some(Repr::Range(c)) => {
                self.soa.occupied[i] = true;
                for (k, dim) in c.dims().iter().enumerate() {
                    let (lo, hi) = match dim {
                        Dim::Range { min, max } => (*min, *max),
                        // Zero ordinal gap for every value: set membership
                        // is resolved in the scan's second pass.
                        Dim::Set(_) => (0, u32::MAX),
                    };
                    self.soa.mins[i * w + k] = lo;
                    self.soa.maxs[i * w + k] = hi;
                }
            }
            _ => self.soa.occupied[i] = false,
        }
    }

    fn soa_sync_all(&mut self) {
        for i in 0..self.clusters.len() {
            self.soa_sync_row(i);
        }
    }

    /// The anchor coordinate of slot `k` on feature `f`: the diagonal
    /// point of the per-feature range observed since the last reset (the
    /// declared field width before any traffic has been seen).
    fn anchor_coord(&self, k: usize, f: usize) -> u32 {
        let n = self.cfg.num_clusters as u64;
        let (lo, hi) = if self.observed.is_empty() {
            (0, self.cfg.features.specs()[f].feature.space() - 1)
        } else {
            let (lo, hi) = self.observed[f];
            (lo as u64, hi as u64)
        };
        let span = hi - lo + 1;
        (lo + ((2 * k as u64 + 1) * span) / (2 * n)).min(hi) as u32
    }

    /// Writes the full anchor point of slot `k` into `out`.
    fn anchor_into(&self, k: usize, out: &mut Vec<u32>) {
        out.clear();
        for f in 0..self.cfg.features.len() {
            out.push(self.anchor_coord(k, f));
        }
    }

    /// Writes the midpoint of cluster `k`'s current representation into
    /// `out`; returns `false` (leaving `out` untouched) for empty slots.
    fn midpoint_into(&self, k: usize, out: &mut Vec<u32>) -> bool {
        match &self.clusters[k] {
            Some(Repr::Range(c)) => {
                out.clear();
                for (f, dim) in c.dims().iter().enumerate() {
                    out.push(match dim {
                        Dim::Range { min, max } => min / 2 + max / 2,
                        // Sets have no midpoint; fall back to the anchor
                        // coordinate for this feature.
                        Dim::Set(_) => self.anchor_coord(k, f),
                    });
                }
                true
            }
            Some(Repr::Center(c)) => {
                out.clear();
                out.extend(c.center().iter().map(|&v| v as u32));
                true
            }
            None => false,
        }
    }

    /// (Re-)seeds slot `k` at `point`, reusing the slot's existing
    /// representation storage when its kind already matches.
    fn seed_slot(&mut self, k: usize, point: &[u32]) {
        match (self.cfg.distance, &mut self.clusters[k]) {
            (DistanceKind::Euclidean, Some(Repr::Center(c))) => c.reseed(point),
            (DistanceKind::Euclidean, slot) => {
                *slot = Some(Repr::Center(CenterCluster::seed(point)));
            }
            (_, Some(Repr::Range(c))) => c.reseed(point),
            (_, slot) => {
                *slot = Some(Repr::Range(RangeCluster::seed(
                    &self.cfg.features,
                    point,
                    &self.cfg.nominal,
                )));
            }
        }
    }

    fn init_clusters(&mut self) {
        match self.cfg.init {
            InitMode::FromTraffic => {
                self.clusters.iter_mut().for_each(|c| *c = None);
            }
            InitMode::Anchors => {
                let mut point = std::mem::take(&mut self.point_scratch);
                for k in 0..self.cfg.num_clusters {
                    // Active slots re-seed at their representative; idle
                    // slots fall back to the diagonal anchor over the
                    // observed ranges.
                    let has_rep = !self.representative[k].is_empty();
                    match (self.cfg.rep, has_rep) {
                        (RepMode::RangeMidpoint, true) => {
                            if !self.midpoint_into(k, &mut point) {
                                self.anchor_into(k, &mut point);
                            }
                        }
                        (_, true) => {
                            point.clear();
                            point.extend_from_slice(&self.representative[k]);
                        }
                        (_, false) => self.anchor_into(k, &mut point),
                    }
                    self.seed_slot(k, &point);
                }
                self.point_scratch = point;
            }
        }
        self.representative.iter_mut().for_each(|r| r.clear());
        self.stat_ranges.iter_mut().for_each(|r| r.clear());
        let budget = self.cfg.update_budget.unwrap_or(u64::MAX);
        self.budget.iter_mut().for_each(|b| *b = budget);
        self.soa_sync_all();
    }

    /// The configuration.
    pub fn config(&self) -> &ClusteringConfig {
        &self.cfg
    }

    /// Number of cluster slots.
    pub fn num_clusters(&self) -> usize {
        self.cfg.num_clusters
    }

    /// Assigns `pkt` to a cluster and returns the cluster index.
    pub fn assign(&mut self, pkt: &Packet) -> usize {
        let mut values = std::mem::take(&mut self.scratch);
        self.cfg.features.extract_into(pkt, &mut values);
        let idx = self.assign_values(&values, pkt.size);
        self.scratch = values;
        idx
    }

    /// Like [`assign`](Self::assign), but emits `cluster_seed` /
    /// `cluster_assign` / `cluster_merge` trace events at `now_ns` and
    /// returns the pre-expansion distance alongside the cluster index.
    pub fn assign_traced<T: Tracer + ?Sized>(
        &mut self,
        pkt: &Packet,
        tracer: &mut T,
        now_ns: u64,
    ) -> Assignment {
        let mut values = std::mem::take(&mut self.scratch);
        self.cfg.features.extract_into(pkt, &mut values);
        let (cluster, distance, action) = self.assign_values_inner(&values, pkt.size);
        self.scratch = values;
        if tracer.enabled() {
            match action {
                AssignAction::Seeded => {
                    tracer.record(now_ns, &Event::ClusterSeed { cluster });
                }
                AssignAction::Merged { from, into } => {
                    tracer.record(now_ns, &Event::ClusterMerge { from, into });
                    tracer.record(now_ns, &Event::ClusterSeed { cluster });
                }
                AssignAction::Covered => {
                    tracer.record(
                        now_ns,
                        &Event::ClusterAssign {
                            cluster,
                            distance,
                            expanded: false,
                        },
                    );
                }
                AssignAction::Expanded { grew } => {
                    tracer.record(
                        now_ns,
                        &Event::ClusterAssign {
                            cluster,
                            distance,
                            expanded: grew,
                        },
                    );
                }
            }
        }
        Assignment { cluster, distance }
    }

    /// Assigns a pre-extracted feature vector carrying `bytes` of payload.
    pub fn assign_values(&mut self, values: &[u32], bytes: u32) -> usize {
        self.assign_values_inner(values, bytes).0
    }

    fn assign_values_inner(&mut self, values: &[u32], bytes: u32) -> (usize, f64, AssignAction) {
        assert_eq!(
            values.len(),
            self.cfg.features.len(),
            "feature vector arity mismatch"
        );
        if self.observed.is_empty() {
            self.observed.extend(values.iter().map(|&v| (v, v)));
        } else {
            for (r, &v) in self.observed.iter_mut().zip(values) {
                r.0 = r.0.min(v);
                r.1 = r.1.max(v);
            }
        }
        let (idx, dist, action) = match self.cfg.distance {
            DistanceKind::Euclidean => self.assign_center(values),
            _ => self.assign_range(values),
        };
        let stat = &mut self.stat_ranges[idx];
        if stat.is_empty() {
            stat.extend(values.iter().map(|&v| (v, v)));
        } else {
            for (r, &v) in stat.iter_mut().zip(values) {
                r.0 = r.0.min(v);
                r.1 = r.1.max(v);
            }
        }
        let rep = &mut self.representative[idx];
        rep.clear();
        rep.extend_from_slice(values);
        self.window[idx].pkts += 1;
        self.window[idx].bytes += bytes as u64;
        self.totals[idx].pkts += 1;
        self.totals[idx].bytes += bytes as u64;
        (idx, dist, action)
    }

    /// The original generic scan: per-cluster dispatch on
    /// `cfg.distance`, full (unbounded) distances. The baseline the
    /// specialized kernels are benchmarked and differentially tested
    /// against.
    #[cfg(feature = "reference")]
    fn scan_range_reference(&self, values: &[u32]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, slot) in self.clusters.iter().enumerate() {
            if let Some(Repr::Range(c)) = slot {
                let d = match self.cfg.distance {
                    DistanceKind::Manhattan => c.manhattan_reference(values) as f64,
                    DistanceKind::Anime => c.anime(values),
                    DistanceKind::Euclidean => unreachable!("handled separately"),
                };
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
        }
        best
    }

    #[cfg(not(feature = "reference"))]
    fn scan_range_reference(&self, _values: &[u32]) -> Option<(usize, f64)> {
        unreachable!("reference kernels require the `reference` cargo feature")
    }

    /// The struct-of-arrays Manhattan scan: a branch-free vectorizable
    /// pass over the flat ordinal min/max columns, then — only for
    /// clusters whose ordinal gap is still below the running best — the
    /// nominal set lookups. Winner and tie-break are exactly those of
    /// [`scan_aos`](Self::scan_aos): a full row distance at or above the
    /// running bound is rejected precisely like a bounded partial sum
    /// would be (the `manhattan_bounded` argument), and the first index
    /// attaining the minimum wins via the strict `d < bound` comparison.
    pub fn scan_soa(&self, values: &[u32]) -> Option<(usize, f64)> {
        debug_assert_eq!(self.cfg.distance, DistanceKind::Manhattan);
        let w = self.soa.width;
        if w == 0 {
            return None;
        }
        let mut best: Option<(usize, u64)> = None;
        let mut bound = u64::MAX;
        // `chunks_exact` + `zip` keep the inner pass free of bounds
        // checks; together with the saturating-gap form the column scan
        // compiles to straight-line arithmetic per dimension.
        let rows = self
            .soa
            .mins
            .chunks_exact(w)
            .zip(self.soa.maxs.chunks_exact(w))
            .zip(&self.soa.occupied);
        for (i, ((mins, maxs), &occupied)) in rows.enumerate() {
            if !occupied {
                continue;
            }
            // Branch-free full-row sum: a row whose partial sum would hit
            // the running bound loses the strict `d < bound` comparison
            // just the same with its full distance, so skipping the
            // per-dimension exit changes nothing about the winner — and
            // the straight-line form vectorizes, which a data-dependent
            // break never can.
            let mut d = 0u64;
            for ((&mn, &mx), &v) in mins.iter().zip(maxs).zip(values) {
                d += (mn.saturating_sub(v) + v.saturating_sub(mx)) as u64;
            }
            if d < bound && !self.nominal_dims.is_empty() {
                let Some(Repr::Range(c)) = &self.clusters[i] else {
                    unreachable!("occupied SoA row implies a range cluster")
                };
                let dims = c.dims();
                for &k in &self.nominal_dims {
                    let Dim::Set(set) = &dims[k] else {
                        unreachable!("nominal_dims indexes set dimensions")
                    };
                    d += u64::from(!set.contains(values[k]));
                    if d >= bound {
                        break;
                    }
                }
            }
            if best.is_none() || d < bound {
                best = Some((i, d));
                bound = d;
                if d == 0 {
                    break;
                }
            }
        }
        best.map(|(i, d)| (i, d as f64))
    }

    /// The per-cluster (array-of-structs) scan the SoA kernel replaced
    /// on the Manhattan path — kept as the benchmark baseline and
    /// differential oracle for [`scan_soa`](Self::scan_soa). For other
    /// distances this *is* the live kernel.
    pub fn scan_aos(&self, values: &[u32]) -> Option<(usize, f64)> {
        (self.range_scan)(&self.clusters, values)
    }

    fn assign_range(&mut self, values: &[u32]) -> (usize, f64, AssignAction) {
        // Distance to every occupied slot, via the column scan (the
        // Manhattan default), the kernel resolved at construction, or
        // the original generic scan when forced.
        let best = if self.use_reference {
            self.scan_range_reference(values)
        } else if self.cfg.distance == DistanceKind::Manhattan {
            self.scan_soa(values)
        } else {
            (self.range_scan)(&self.clusters, values)
        };

        match best {
            // Covered by an existing cluster: no growth needed.
            Some((i, d)) if d <= 0.0 => (i, 0.0, AssignAction::Covered),
            // Not covered. An empty slot (initialization phase) always
            // wins: seeding costs nothing.
            _ if self.first_empty().is_some() => {
                let slot = self.first_empty().expect("just checked");
                self.clusters[slot] = Some(Repr::Range(RangeCluster::seed(
                    &self.cfg.features,
                    values,
                    &self.cfg.nominal,
                )));
                self.soa_sync_row(slot);
                (slot, 0.0, AssignAction::Seeded)
            }
            Some((i, d)) => {
                if self.cfg.search == SearchKind::Exhaustive {
                    if let Some((a, b, merge_cost)) = self.cheapest_range_merge() {
                        // Hysteresis: only restructure when merging is
                        // *clearly* cheaper than expanding — a bare
                        // `merge_cost < d` lets every far outlier trigger a
                        // merge of two nearby clusters, cascading until one
                        // mega-cluster absorbs the space.
                        if merge_cost * 4.0 < d {
                            // Merge b into a, seed b with the new packet.
                            let other = self.clusters[b].take().expect("occupied");
                            let Repr::Range(other) = other else {
                                unreachable!("range mode holds range clusters")
                            };
                            let Some(Repr::Range(target)) = self.clusters[a].as_mut() else {
                                unreachable!("range mode holds range clusters")
                            };
                            target.merge(&other);
                            self.fold_stats(b, a);
                            self.clusters[b] = Some(Repr::Range(RangeCluster::seed(
                                &self.cfg.features,
                                values,
                                &self.cfg.nominal,
                            )));
                            self.soa_sync_row(a);
                            self.soa_sync_row(b);
                            return (b, 0.0, AssignAction::Merged { from: b, into: a });
                        }
                    }
                }
                // The Manhattan distance *is* the cost growth admitting
                // the packet would cause; only admit within budget.
                let growth = d as u64;
                let grew = self.budget[i] >= growth;
                if grew {
                    self.budget[i] -= growth;
                    let Some(Repr::Range(c)) = self.clusters[i].as_mut() else {
                        unreachable!("best index is occupied")
                    };
                    c.admit(values);
                    self.soa_sync_row(i);
                }
                (i, d, AssignAction::Expanded { grew })
            }
            None => unreachable!("no clusters and no empty slot is impossible"),
        }
    }

    /// The original center scan: full (unbounded) squared distances.
    #[cfg(feature = "reference")]
    fn scan_center_reference(&self, values: &[u32]) -> (usize, f64) {
        let mut best: (usize, f64) = (0, f64::INFINITY);
        for (i, slot) in self.clusters.iter().enumerate() {
            if let Some(Repr::Center(c)) = slot {
                let d = c.euclidean_sq(values);
                if d < best.1 {
                    best = (i, d);
                }
            }
        }
        best
    }

    #[cfg(not(feature = "reference"))]
    fn scan_center_reference(&self, _values: &[u32]) -> (usize, f64) {
        unreachable!("reference kernels require the `reference` cargo feature")
    }

    /// Single-pass center scan with early-exit partial sums: a running
    /// sum of squares that reaches the best-so-far bound already loses the
    /// strict `d < best` comparison, and a zero distance can never be
    /// beaten, so both exits leave the winner (and its exact `f64`
    /// distance) unchanged.
    fn scan_center(&self, values: &[u32]) -> (usize, f64) {
        let mut best: (usize, f64) = (0, f64::INFINITY);
        for (i, slot) in self.clusters.iter().enumerate() {
            if let Some(Repr::Center(c)) = slot {
                let d = c.euclidean_sq_bounded(values, best.1);
                if d < best.1 {
                    best = (i, d);
                    if d == 0.0 {
                        break;
                    }
                }
            }
        }
        best
    }

    fn assign_center(&mut self, values: &[u32]) -> (usize, f64, AssignAction) {
        if let Some(slot) = self.first_empty() {
            self.clusters[slot] = Some(Repr::Center(CenterCluster::seed(values)));
            return (slot, 0.0, AssignAction::Seeded);
        }
        let (i, d) = if self.use_reference {
            self.scan_center_reference(values)
        } else {
            self.scan_center(values)
        };
        if self.cfg.search == SearchKind::Exhaustive && d > 0.0 {
            if let Some((a, b, merge_cost)) = self.cheapest_center_merge() {
                if merge_cost * 4.0 < d {
                    let other = self.clusters[b].take().expect("occupied");
                    let Repr::Center(other) = other else {
                        unreachable!("center mode holds center clusters")
                    };
                    let Some(Repr::Center(target)) = self.clusters[a].as_mut() else {
                        unreachable!("center mode holds center clusters")
                    };
                    target.merge(&other);
                    self.fold_stats(b, a);
                    self.clusters[b] = Some(Repr::Center(CenterCluster::seed(values)));
                    return (b, 0.0, AssignAction::Merged { from: b, into: a });
                }
            }
        }
        let Some(Repr::Center(c)) = self.clusters[i].as_mut() else {
            unreachable!("best index is occupied")
        };
        c.admit(values, self.cfg.learning_rate);
        (i, d, AssignAction::Expanded { grew: d > 0.0 })
    }

    fn first_empty(&self) -> Option<usize> {
        self.clusters.iter().position(|c| c.is_none())
    }

    fn cheapest_range_merge(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..self.clusters.len() {
            // Only clusters that actually captured traffic this window are
            // merge candidates: consolidating two *active* aggregates frees
            // a slot for a new one. Merging idle anchors would only erode
            // the initialization grid.
            if self.window[a].pkts == 0 {
                continue;
            }
            let Some(Repr::Range(ca)) = &self.clusters[a] else {
                continue;
            };
            for b in (a + 1)..self.clusters.len() {
                if self.window[b].pkts == 0 {
                    continue;
                }
                let Some(Repr::Range(cb)) = &self.clusters[b] else {
                    continue;
                };
                let cost = (self.range_merge_cost)(ca, cb);
                if best.is_none_or(|(_, _, bc)| cost < bc) {
                    best = Some((a, b, cost));
                }
            }
        }
        best
    }

    fn cheapest_center_merge(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..self.clusters.len() {
            if self.window[a].pkts == 0 {
                continue;
            }
            let Some(Repr::Center(ca)) = &self.clusters[a] else {
                continue;
            };
            for b in (a + 1)..self.clusters.len() {
                if self.window[b].pkts == 0 {
                    continue;
                }
                let Some(Repr::Center(cb)) = &self.clusters[b] else {
                    continue;
                };
                let cost = ca.merge_cost(cb);
                if best.is_none_or(|(_, _, bc)| cost < bc) {
                    best = Some((a, b, cost));
                }
            }
        }
        best
    }

    /// Moves cluster `from`'s counters into cluster `to` (after a merge).
    fn fold_stats(&mut self, from: usize, to: usize) {
        let w = std::mem::take(&mut self.window[from]);
        self.window[to].pkts += w.pkts;
        self.window[to].bytes += w.bytes;
        let t = std::mem::take(&mut self.totals[from]);
        self.totals[to].pkts += t.pkts;
        self.totals[to].bytes += t.bytes;
    }

    /// Returns and clears the per-cluster window counters — what the
    /// control plane polls each period (§5.2).
    pub fn take_window(&mut self) -> Vec<WindowStats> {
        let mut out = Vec::with_capacity(self.window.len());
        self.take_window_into(&mut out);
        out
    }

    /// Allocation-free variant of [`take_window`](Self::take_window):
    /// copies the window counters into `out` (cleared first) and zeroes
    /// them in place. The control loop calls this every period, so the
    /// caller-owned buffer keeps the steady-state tick allocation-free.
    pub fn take_window_into(&mut self, out: &mut Vec<WindowStats>) {
        out.clear();
        out.extend_from_slice(&self.window);
        self.window
            .iter_mut()
            .for_each(|w| *w = WindowStats::default());
    }

    /// Cumulative per-cluster counters since construction.
    pub fn totals(&self) -> &[WindowStats] {
        &self.totals
    }

    /// The cluster's representation, if seeded (operator interpretability,
    /// §10: the exact packet-to-cluster mapping is inspectable).
    pub fn repr(&self, idx: usize) -> Option<&Repr> {
        self.clusters.get(idx).and_then(|c| c.as_ref())
    }

    /// The cluster's cost (its "size" `δ(c)`), used by the `/Size` ranking
    /// algorithms: the statistical per-feature spread of the traffic
    /// assigned this window (what the data plane's min/max registers
    /// report), falling back to the geometric cost when the slot saw no
    /// traffic. `None` for never-seeded slots.
    pub fn cost(&self, idx: usize) -> Option<f64> {
        if let Some(ranges) = self.stat_ranges.get(idx).filter(|r| !r.is_empty()) {
            let spread = match self.cfg.distance {
                DistanceKind::Anime => ranges
                    .iter()
                    .map(|&(lo, hi)| (hi - lo) as f64 + 1.0)
                    .product(),
                _ => ranges.iter().map(|&(lo, hi)| (hi - lo) as f64).sum(),
            };
            return Some(spread);
        }
        match self.clusters.get(idx)?.as_ref()? {
            Repr::Range(c) => Some(match self.cfg.distance {
                DistanceKind::Anime => c.anime_cost(),
                _ => c.manhattan_cost() as f64,
            }),
            Repr::Center(c) => Some(c.weight as f64),
        }
    }

    /// Re-initializes every cluster slot per the configured [`InitMode`]
    /// (the controller's periodic reset; see DESIGN.md §4). Counters are
    /// preserved. Under anchor initialization the slots keep their spatial
    /// semantics, so priority mappings computed from the previous window
    /// remain meaningful.
    pub fn reset_clusters(&mut self) {
        self.init_clusters();
        // Start a fresh observation window for the next re-anchoring (the
        // buffer is retained, so steady-state resets allocate nothing).
        self.observed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{Feature, FeatureSet, FeatureSpec};
    use accturbo_netsim::SimTime;
    use std::net::Ipv4Addr;

    fn cfg(n: usize, distance: DistanceKind, search: SearchKind) -> ClusteringConfig {
        ClusteringConfig {
            num_clusters: n,
            features: FeatureSet::new(vec![
                FeatureSpec::ordinal(Feature::DstIpByte(3)),
                FeatureSpec::ordinal(Feature::SrcPort),
            ]),
            distance,
            search,
            nominal: NominalMode::Exact,
            learning_rate: 0.3,
            init: InitMode::FromTraffic,
            update_budget: None,
            rep: RepMode::LastPacket,
        }
    }

    fn pkt(dst_last: u8, sport: u16) -> Packet {
        Packet::new(SimTime::ZERO)
            .with_dst(Ipv4Addr::new(198, 18, 0, dst_last))
            .with_ports(sport, 80)
            .with_size(100)
    }

    #[test]
    fn first_packets_seed_distinct_clusters() {
        let mut oc = OnlineClusterer::new(cfg(3, DistanceKind::Manhattan, SearchKind::Fast));
        let a = oc.assign(&pkt(1, 1000));
        let b = oc.assign(&pkt(100, 30000));
        let c = oc.assign(&pkt(200, 60000));
        let set: std::collections::HashSet<_> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 3, "three distant packets get three clusters");
    }

    #[test]
    fn covered_packets_reuse_their_cluster() {
        let mut oc = OnlineClusterer::new(cfg(2, DistanceKind::Manhattan, SearchKind::Fast));
        let a = oc.assign(&pkt(10, 1000));
        let _ = oc.assign(&pkt(200, 50000));
        let again = oc.assign(&pkt(10, 1000));
        assert_eq!(a, again);
    }

    #[test]
    fn nearby_packets_join_the_nearest_cluster_and_expand_it() {
        let mut oc = OnlineClusterer::new(cfg(2, DistanceKind::Manhattan, SearchKind::Fast));
        let a = oc.assign(&pkt(10, 1000));
        let _b = oc.assign(&pkt(200, 50000));
        let c = oc.assign(&pkt(12, 1010)); // near cluster a
        assert_eq!(a, c);
        // The cluster has grown to cover the new point.
        let d = oc.assign(&pkt(11, 1005));
        assert_eq!(d, a);
    }

    #[test]
    fn window_stats_accumulate_and_clear() {
        let mut oc = OnlineClusterer::new(cfg(2, DistanceKind::Manhattan, SearchKind::Fast));
        oc.assign(&pkt(10, 1000));
        oc.assign(&pkt(10, 1000));
        oc.assign(&pkt(200, 50000));
        let w = oc.take_window();
        let total_pkts: u64 = w.iter().map(|s| s.pkts).sum();
        let total_bytes: u64 = w.iter().map(|s| s.bytes).sum();
        assert_eq!(total_pkts, 3);
        assert_eq!(total_bytes, 300);
        let w2 = oc.take_window();
        assert!(w2.iter().all(|s| s.pkts == 0));
        assert_eq!(oc.totals().iter().map(|s| s.pkts).sum::<u64>(), 3);
    }

    #[test]
    fn reset_clusters_reseeds_but_keeps_totals() {
        let mut oc = OnlineClusterer::new(cfg(2, DistanceKind::Manhattan, SearchKind::Fast));
        oc.assign(&pkt(10, 1000));
        oc.reset_clusters();
        assert!(oc.repr(0).is_none());
        assert_eq!(oc.totals()[0].pkts, 1);
        let idx = oc.assign(&pkt(250, 60000));
        assert_eq!(idx, 0, "first packet after reset seeds slot 0");
    }

    #[test]
    fn exhaustive_merges_when_cheaper() {
        // Two clusters seeded close together; a distant packet should
        // cause a merge + fresh cluster rather than a huge expansion.
        let mut oc = OnlineClusterer::new(cfg(2, DistanceKind::Manhattan, SearchKind::Exhaustive));
        let a = oc.assign(&pkt(10, 1000));
        let b = oc.assign(&pkt(12, 1005)); // nearby -> another slot (seeding)
        assert_ne!(a, b);
        let c = oc.assign(&pkt(250, 64000)); // far away
                                             // The far packet gets its own (reused) slot; the two near clusters
                                             // are now one.
        let d = oc.assign(&pkt(11, 1002));
        assert_ne!(c, d);
        assert!(oc.repr(c).is_some() && oc.repr(d).is_some());
    }

    #[test]
    fn fast_never_merges() {
        let mut oc = OnlineClusterer::new(cfg(2, DistanceKind::Manhattan, SearchKind::Fast));
        oc.assign(&pkt(10, 1000));
        oc.assign(&pkt(12, 1005));
        let c = oc.assign(&pkt(250, 64000));
        // Fast search must expand one of the existing clusters.
        let cost: f64 = (0..2).filter_map(|i| oc.cost(i)).sum();
        assert!(cost > 1000.0, "one cluster must have stretched: {cost}");
        assert!(c < 2);
    }

    #[test]
    fn euclidean_centers_track_points() {
        let mut oc = OnlineClusterer::new(cfg(2, DistanceKind::Euclidean, SearchKind::Fast));
        let a = oc.assign(&pkt(10, 1000));
        let _ = oc.assign(&pkt(200, 60000));
        for _ in 0..20 {
            assert_eq!(oc.assign(&pkt(10, 1000)), a);
        }
        let Some(Repr::Center(c)) = oc.repr(a) else {
            panic!("expected a center cluster");
        };
        assert!((c.center()[0] - 10.0).abs() < 1.0);
        assert!((c.center()[1] - 1000.0).abs() < 50.0);
    }

    #[test]
    fn anime_distance_mode_works_end_to_end() {
        let mut oc = OnlineClusterer::new(cfg(3, DistanceKind::Anime, SearchKind::Fast));
        let a = oc.assign(&pkt(10, 1000));
        let b = oc.assign(&pkt(11, 1001));
        let c = oc.assign(&pkt(240, 64000));
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Repeat points stay put.
        assert_eq!(oc.assign(&pkt(10, 1000)), a);
    }

    #[test]
    fn cost_reports_cluster_size() {
        let mut oc = OnlineClusterer::new(cfg(2, DistanceKind::Manhattan, SearchKind::Fast));
        assert_eq!(oc.cost(0), None);
        oc.assign(&pkt(10, 1000));
        assert_eq!(oc.cost(0), Some(0.0));
        oc.assign(&pkt(200, 50000)); // slot 1
        oc.assign(&pkt(20, 1100)); // expands slot 0 by 10 + 100
        assert_eq!(oc.cost(0), Some(110.0));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_is_rejected() {
        let mut oc = OnlineClusterer::new(cfg(2, DistanceKind::Manhattan, SearchKind::Fast));
        oc.assign_values(&[1, 2, 3], 100);
    }

    #[test]
    fn anchors_fill_all_slots_on_construction() {
        let c = cfg(4, DistanceKind::Manhattan, SearchKind::Fast).with_init(InitMode::Anchors);
        let oc = OnlineClusterer::new(c);
        for k in 0..4 {
            assert!(oc.repr(k).is_some(), "anchor slot {k} must be seeded");
        }
    }

    #[test]
    fn anchors_are_spread_over_the_space() {
        let c = cfg(4, DistanceKind::Manhattan, SearchKind::Fast).with_init(InitMode::Anchors);
        let mut oc = OnlineClusterer::new(c);
        // Packets at the space's extremes must land in different slots.
        let low = oc.assign(&pkt(0, 1));
        let high = oc.assign(&pkt(255, 65000));
        assert_ne!(low, high);
        assert_eq!(low, 0, "lowest point maps to the first anchor");
        assert_eq!(high, 3, "highest point maps to the last anchor");
    }

    #[test]
    fn anchor_slots_are_stable_across_resets() {
        let c = cfg(4, DistanceKind::Manhattan, SearchKind::Fast).with_init(InitMode::Anchors);
        let mut oc = OnlineClusterer::new(c);
        let before = oc.assign(&pkt(10, 2000));
        oc.reset_clusters();
        let after = oc.assign(&pkt(10, 2000));
        assert_eq!(before, after, "same point, same slot after reset");
    }

    #[test]
    fn traced_assignment_emits_seed_assign_and_merge_events() {
        use accturbo_obs::RingTracer;
        let mut oc = OnlineClusterer::new(cfg(2, DistanceKind::Manhattan, SearchKind::Exhaustive));
        let mut t = RingTracer::new(64);
        // Two seeds, then a nearby point (assign), then a far point that
        // triggers a merge (same scenario as `exhaustive_merges_when_cheaper`).
        let a = oc.assign_traced(&pkt(10, 1000), &mut t, 1);
        assert_eq!(a.distance, 0.0);
        oc.assign_traced(&pkt(12, 1005), &mut t, 2);
        let near = oc.assign_traced(&pkt(10, 1000), &mut t, 3);
        assert_eq!(near.cluster, a.cluster);
        oc.assign_traced(&pkt(250, 64000), &mut t, 4);
        let kinds: Vec<&str> = t.iter().map(|(_, e)| e.kind()).collect();
        assert_eq!(
            kinds,
            [
                "cluster_seed",
                "cluster_seed",
                "cluster_assign",
                "cluster_merge",
                "cluster_seed"
            ]
        );
    }

    #[test]
    fn traced_and_plain_assignment_agree() {
        use accturbo_obs::NoopTracer;
        let mut a = OnlineClusterer::new(cfg(3, DistanceKind::Manhattan, SearchKind::Fast));
        let mut b = a.clone();
        for i in 0..200u32 {
            let p = pkt((i * 37 % 251) as u8, (i * 997 % 60000) as u16);
            let ia = a.assign(&p);
            let ib = b.assign_traced(&p, &mut NoopTracer, i as u64).cluster;
            assert_eq!(ia, ib, "packet {i}");
        }
    }

    #[test]
    fn take_window_into_matches_take_window() {
        let mut a = OnlineClusterer::new(cfg(3, DistanceKind::Manhattan, SearchKind::Fast));
        let mut b = a.clone();
        for i in 0..50u32 {
            let p = pkt((i * 31 % 251) as u8, (i * 773 % 60000) as u16);
            a.assign(&p);
            b.assign(&p);
        }
        let via_alloc = a.take_window();
        let mut via_scratch = Vec::new();
        b.take_window_into(&mut via_scratch);
        assert_eq!(via_alloc, via_scratch);
        assert!(a.take_window().iter().all(|w| w.pkts == 0));
        b.take_window_into(&mut via_scratch);
        assert!(via_scratch.iter().all(|w| w.pkts == 0));
    }

    /// The specialized kernels must be assignment-identical to the
    /// original generic scan across all three distance kinds, searches
    /// and resets (the in-crate differential backstop; the figure-level
    /// one lives in `tests/fastpath_equivalence.rs`).
    #[cfg(feature = "reference")]
    #[test]
    fn specialized_kernels_match_reference_scan() {
        for distance in [
            DistanceKind::Manhattan,
            DistanceKind::Anime,
            DistanceKind::Euclidean,
        ] {
            for init in [InitMode::FromTraffic, InitMode::Anchors] {
                let base = cfg(4, distance, SearchKind::Fast).with_init(init);
                reference::force_reference_kernels(true);
                let mut slow = OnlineClusterer::new(base.clone());
                reference::force_reference_kernels(false);
                let mut fast = OnlineClusterer::new(base);
                for i in 0..400u32 {
                    let p = pkt((i * 37 % 251) as u8, (i * 997 % 60000) as u16);
                    let is = slow.assign(&p);
                    let ifa = fast.assign(&p);
                    assert_eq!(is, ifa, "{distance:?}/{init:?} diverged at packet {i}");
                    if i % 97 == 0 {
                        assert_eq!(slow.take_window(), fast.take_window());
                        slow.reset_clusters();
                        fast.reset_clusters();
                    }
                }
                for k in 0..4 {
                    assert_eq!(slow.cost(k), fast.cost(k), "{distance:?}/{init:?} slot {k}");
                }
            }
        }
    }

    /// A deterministic varied packet stream exercising every feature the
    /// profiles below extract (addresses, ports, TTL, IP length), with
    /// enough repetition that clusters are revisited, expanded and merged.
    fn varied_pkt(i: u32) -> Packet {
        let x = i.wrapping_mul(2654435761); // Knuth multiplicative hash
        Packet::new(SimTime::from_micros(u64::from(i)))
            .with_src(Ipv4Addr::new(
                10,
                (x >> 8) as u8 % 4,
                (x >> 16) as u8,
                (x >> 24) as u8,
            ))
            .with_dst(Ipv4Addr::new(
                198,
                18,
                (x >> 4) as u8 % 8,
                (i * 37 % 251) as u8,
            ))
            .with_ports((x % 60000) as u16, [53, 80, 443, 123][(i % 4) as usize])
            .with_proto(if i.is_multiple_of(3) { 17 } else { 6 })
            .with_ttl((32 + x % 96) as u8)
            .with_size(64 + i % 1400)
    }

    #[test]
    fn soa_scan_matches_aos_scan_while_streaming() {
        // The SoA column scan must agree with the per-cluster scan on
        // winner index AND exact distance, at every point of a live
        // stream, across feature profiles (ordinal-only, mixed nominal),
        // search modes, init modes, and budgets.
        let profiles: Vec<(FeatureSet, SearchKind, InitMode, Option<u64>)> = vec![
            (
                FeatureSet::hardware_fig6(),
                SearchKind::Fast,
                InitMode::FromTraffic,
                None,
            ),
            (
                FeatureSet::hardware_fig6(),
                SearchKind::Exhaustive,
                InitMode::FromTraffic,
                None,
            ),
            (
                FeatureSet::simulation_default(),
                SearchKind::Fast,
                InitMode::Anchors,
                None,
            ),
            (
                FeatureSet::hardware_dst_bytes(),
                SearchKind::Fast,
                InitMode::FromTraffic,
                Some(500),
            ),
        ];
        for (features, search, init, budget) in profiles {
            let fs = features.clone();
            let mut c = cfg(5, DistanceKind::Manhattan, search).with_init(init);
            c.features = features;
            c.update_budget = budget;
            let mut oc = OnlineClusterer::new(c);
            let mut values = Vec::new();
            for i in 0..600u32 {
                let p = varied_pkt(i);
                fs.extract_into(&p, &mut values);
                assert_eq!(
                    oc.scan_soa(&values),
                    oc.scan_aos(&values),
                    "{search:?}/{init:?} diverged before packet {i}"
                );
                oc.assign(&p);
                if i == 300 {
                    // The mirror must survive a control-plane reset.
                    oc.reset_clusters();
                }
            }
        }
    }

    #[test]
    fn a_tight_attack_cannot_monopolize_anchor_slots() {
        let c = cfg(4, DistanceKind::Manhattan, SearchKind::Fast).with_init(InitMode::Anchors);
        let mut oc = OnlineClusterer::new(c);
        // Flood one corner of the space.
        let mut attack_slots = std::collections::HashSet::new();
        for i in 0..1000u32 {
            attack_slots.insert(oc.assign(&pkt((i % 16) as u8, 5000 + (i % 50) as u16)));
        }
        assert_eq!(attack_slots.len(), 1, "a tight flood stays in one slot");
        // A distant benign packet still has its own slot.
        let benign = oc.assign(&pkt(250, 60000));
        assert!(!attack_slots.contains(&benign));
    }
}
