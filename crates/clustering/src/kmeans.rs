//! Offline k-means (Lloyd's algorithm).
//!
//! The paper compares ACC-Turbo's online clustering against "offline
//! k-means with unlimited resources" (§8.1, Fig. 10): the whole window of
//! packets is available at once and the algorithm may iterate. This is the
//! accuracy upper bound the deployable algorithm is measured against.

use accturbo_prng::{Rng, SeedableRng, StdRng};

/// Result of a k-means fit.
#[derive(Debug, Clone)]
pub struct KMeansFit {
    /// Final centroids, `k × dims`.
    pub centers: Vec<Vec<f64>>,
    /// Cluster index of every input point.
    pub assignment: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs Lloyd's algorithm with k-means++-style seeding.
///
/// `points` are feature vectors (all the same arity); `k` clusters; at
/// most `max_iters` iterations; deterministic given `seed`. Panics on
/// empty input, zero `k`, or ragged points.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, seed: u64) -> KMeansFit {
    assert!(!points.is_empty(), "k-means needs at least one point");
    assert!(k >= 1, "k must be at least 1");
    let dims = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dims),
        "all points must have the same arity"
    );
    let k = k.min(points.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding: first center uniform, then proportional to D².
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist_sq(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centers; pick uniformly.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target <= d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centers.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist_sq(p, centers.last().expect("just pushed")));
        }
    }

    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = centers
                .iter()
                .enumerate()
                .map(|(c, center)| (c, dist_sq(p, center)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
                .map(|(c, _)| c)
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dims]; centers.len()];
        let mut counts = vec![0usize; centers.len()];
        for (p, &a) in points.iter().zip(&assignment) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (cv, s) in center.iter_mut().zip(&sums[c]) {
                    *cv = s / counts[c] as f64;
                }
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignment)
        .map(|(p, &a)| dist_sq(p, &centers[a]))
        .sum();
    KMeansFit {
        centers,
        assignment,
        inertia,
        iterations,
    }
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Assigns a point to the nearest of `centers`.
pub fn nearest(centers: &[Vec<f64>], point: &[f64]) -> usize {
    centers
        .iter()
        .enumerate()
        .map(|(c, center)| (c, dist_sq(point, center)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
        .map(|(c, _)| c)
        .expect("centers must be non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(vec![10.0 + (i % 5) as f64, 10.0 + (i % 3) as f64]);
            pts.push(vec![200.0 + (i % 5) as f64, 200.0 + (i % 3) as f64]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs_perfectly() {
        let pts = two_blobs();
        let fit = kmeans(&pts, 2, 50, 1);
        // Points alternate blob A / blob B; assignments must alternate too.
        let a = fit.assignment[0];
        let b = fit.assignment[1];
        assert_ne!(a, b);
        for (i, &asg) in fit.assignment.iter().enumerate() {
            assert_eq!(asg, if i % 2 == 0 { a } else { b });
        }
        assert!(fit.inertia < 50.0 * pts.len() as f64);
    }

    #[test]
    fn centers_land_on_blob_means() {
        let pts = two_blobs();
        let fit = kmeans(&pts, 2, 50, 2);
        let mut xs: Vec<f64> = fit.centers.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!((xs[0] - 12.0).abs() < 1.0, "low blob center {}", xs[0]);
        assert!((xs[1] - 202.0).abs() < 1.0, "high blob center {}", xs[1]);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![1.0], vec![2.0]];
        let fit = kmeans(&pts, 10, 10, 3);
        assert_eq!(fit.centers.len(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, 3, 20, 7);
        let b = kmeans(&pts, 3, 20, 7);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let pts = vec![vec![5.0, 5.0]; 20];
        let fit = kmeans(&pts, 4, 10, 1);
        assert_eq!(fit.inertia, 0.0);
    }

    #[test]
    fn nearest_picks_closest_center() {
        let centers = vec![vec![0.0], vec![100.0]];
        assert_eq!(nearest(&centers, &[10.0]), 0);
        assert_eq!(nearest(&centers, &[90.0]), 1);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_input_rejected() {
        let _ = kmeans(&[], 2, 10, 1);
    }
}
