//! Packet features.
//!
//! The paper (§4.1) models a packet as a set of features, one per header
//! field, split into *ordinal* features (value proximity implies
//! similarity: addresses, lengths, TTL) and *nominal* features (proximity
//! is meaningless: ports, protocol). A [`FeatureSet`] selects which fields
//! to cluster on and how to treat each; the hardware profile of §7.1, for
//! example, uses the last two bytes of the destination address plus both
//! ports, all handled as ordinal ranges as in the P4 prototype.

use accturbo_netsim::Packet;
use std::fmt;

/// A clusterable header field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feature {
    /// Full 32-bit source address.
    SrcIp,
    /// Full 32-bit destination address.
    DstIp,
    /// Byte `i` (0 = most significant) of the source address.
    SrcIpByte(u8),
    /// Byte `i` (0 = most significant) of the destination address.
    DstIpByte(u8),
    /// Transport source port.
    SrcPort,
    /// Transport destination port.
    DstPort,
    /// IP time-to-live.
    Ttl,
    /// IP total length.
    IpLen,
    /// IP protocol number.
    Proto,
    /// IP fragment offset.
    FragOffset,
    /// IP identification.
    IpId,
}

impl Feature {
    /// Extracts this feature's value from a packet.
    pub fn extract(self, pkt: &Packet) -> u32 {
        match self {
            Feature::SrcIp => u32::from(pkt.src),
            Feature::DstIp => u32::from(pkt.dst),
            Feature::SrcIpByte(i) => {
                assert!(i < 4, "IP byte index out of range");
                pkt.src.octets()[i as usize] as u32
            }
            Feature::DstIpByte(i) => {
                assert!(i < 4, "IP byte index out of range");
                pkt.dst.octets()[i as usize] as u32
            }
            Feature::SrcPort => pkt.sport as u32,
            Feature::DstPort => pkt.dport as u32,
            Feature::Ttl => pkt.ttl as u32,
            Feature::IpLen => pkt.ip_len as u32,
            Feature::Proto => pkt.proto as u32,
            Feature::FragOffset => pkt.frag_offset as u32,
            Feature::IpId => pkt.ip_id as u32,
        }
    }

    /// The natural kind of this feature per the paper's taxonomy (§4.1):
    /// addresses, lengths, TTL and offsets are ordinal; ports and
    /// protocol are nominal.
    pub fn natural_kind(self) -> FeatureKind {
        match self {
            Feature::SrcPort | Feature::DstPort | Feature::Proto => FeatureKind::Nominal,
            _ => FeatureKind::Ordinal,
        }
    }

    /// The size of this feature's value space (number of distinct values).
    pub fn space(self) -> u64 {
        match self {
            Feature::SrcIp | Feature::DstIp => 1 << 32,
            Feature::SrcIpByte(_) | Feature::DstIpByte(_) => 1 << 8,
            Feature::SrcPort | Feature::DstPort | Feature::IpLen | Feature::IpId => 1 << 16,
            Feature::Ttl | Feature::Proto => 1 << 8,
            Feature::FragOffset => 1 << 13,
        }
    }

    /// Short display name used in Fig. 9b.
    pub fn name(self) -> String {
        match self {
            Feature::SrcIp => "saddr".into(),
            Feature::DstIp => "daddr".into(),
            Feature::SrcIpByte(i) => format!("saddr[{i}]"),
            Feature::DstIpByte(i) => format!("daddr[{i}]"),
            Feature::SrcPort => "sport".into(),
            Feature::DstPort => "dport".into(),
            Feature::Ttl => "ttl".into(),
            Feature::IpLen => "len".into(),
            Feature::Proto => "proto".into(),
            Feature::FragOffset => "f.off.".into(),
            Feature::IpId => "id".into(),
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// How a feature participates in clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Represented as a `[min, max]` range; distance is range extension.
    Ordinal,
    /// Represented as a set of admitted values; distance is membership.
    Nominal,
}

/// A feature together with the kind it is treated as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSpec {
    /// The header field.
    pub feature: Feature,
    /// Ordinal or nominal handling.
    pub kind: FeatureKind,
}

impl FeatureSpec {
    /// A spec using the feature's natural kind.
    pub fn natural(feature: Feature) -> Self {
        FeatureSpec {
            feature,
            kind: feature.natural_kind(),
        }
    }

    /// A spec forcing ordinal (range) handling, as the Tofino prototype
    /// does for ports.
    pub fn ordinal(feature: Feature) -> Self {
        FeatureSpec {
            feature,
            kind: FeatureKind::Ordinal,
        }
    }
}

/// An ordered list of feature specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSet {
    specs: Vec<FeatureSpec>,
}

impl FeatureSet {
    /// Builds a feature set. Panics when empty.
    pub fn new(specs: Vec<FeatureSpec>) -> Self {
        assert!(!specs.is_empty(), "feature set must be non-empty");
        FeatureSet { specs }
    }

    /// The hardware profile of §7.1: the last two bytes of the destination
    /// address (ordinal ranges) plus the source and destination ports,
    /// treated as nominal per the paper's taxonomy (§4.1) and stored as
    /// bloom-filter admission lists on hardware (§6).
    pub fn hardware_fig6() -> Self {
        FeatureSet::new(vec![
            FeatureSpec::ordinal(Feature::DstIpByte(2)),
            FeatureSpec::ordinal(Feature::DstIpByte(3)),
            FeatureSpec::natural(Feature::SrcPort),
            FeatureSpec::natural(Feature::DstPort),
        ])
    }

    /// The §7.2 profile: the four bytes of the destination address.
    pub fn hardware_dst_bytes() -> Self {
        FeatureSet::new(
            (0..4)
                .map(|i| FeatureSpec::ordinal(Feature::DstIpByte(i)))
                .collect(),
        )
    }

    /// The simulation default of §8: every byte of source and destination
    /// address, both ports, TTL, and IP length (all ordinal, matching the
    /// NetBench configuration).
    pub fn simulation_default() -> Self {
        let mut specs = Vec::new();
        for i in 0..4 {
            specs.push(FeatureSpec::ordinal(Feature::SrcIpByte(i)));
        }
        for i in 0..4 {
            specs.push(FeatureSpec::ordinal(Feature::DstIpByte(i)));
        }
        specs.push(FeatureSpec::ordinal(Feature::SrcPort));
        specs.push(FeatureSpec::ordinal(Feature::DstPort));
        specs.push(FeatureSpec::ordinal(Feature::Ttl));
        specs.push(FeatureSpec::ordinal(Feature::IpLen));
        FeatureSet::new(specs)
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the set is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The specs, in order.
    pub fn specs(&self) -> &[FeatureSpec] {
        &self.specs
    }

    /// Extracts the feature vector of `pkt` into `out` (cleared first).
    pub fn extract_into(&self, pkt: &Packet, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.specs.iter().map(|s| s.feature.extract(pkt)));
    }

    /// Extracts the feature vector of `pkt` as a fresh vector.
    pub fn extract(&self, pkt: &Packet) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.specs.len());
        self.extract_into(pkt, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_netsim::SimTime;
    use std::net::Ipv4Addr;

    fn pkt() -> Packet {
        let mut p = Packet::new(SimTime::ZERO)
            .with_src(Ipv4Addr::new(1, 2, 3, 4))
            .with_dst(Ipv4Addr::new(9, 8, 7, 6))
            .with_ports(1234, 80)
            .with_ttl(60);
        p.ip_len = 500;
        p.ip_id = 777;
        p.frag_offset = 3;
        p
    }

    #[test]
    fn extraction_per_feature() {
        let p = pkt();
        assert_eq!(Feature::SrcIp.extract(&p), u32::from_be_bytes([1, 2, 3, 4]));
        assert_eq!(Feature::DstIpByte(0).extract(&p), 9);
        assert_eq!(Feature::DstIpByte(3).extract(&p), 6);
        assert_eq!(Feature::SrcPort.extract(&p), 1234);
        assert_eq!(Feature::DstPort.extract(&p), 80);
        assert_eq!(Feature::Ttl.extract(&p), 60);
        assert_eq!(Feature::IpLen.extract(&p), 500);
        assert_eq!(Feature::IpId.extract(&p), 777);
        assert_eq!(Feature::FragOffset.extract(&p), 3);
    }

    #[test]
    fn natural_kinds_match_the_paper() {
        assert_eq!(Feature::SrcIp.natural_kind(), FeatureKind::Ordinal);
        assert_eq!(Feature::Ttl.natural_kind(), FeatureKind::Ordinal);
        assert_eq!(Feature::IpLen.natural_kind(), FeatureKind::Ordinal);
        assert_eq!(Feature::SrcPort.natural_kind(), FeatureKind::Nominal);
        assert_eq!(Feature::DstPort.natural_kind(), FeatureKind::Nominal);
        assert_eq!(Feature::Proto.natural_kind(), FeatureKind::Nominal);
    }

    #[test]
    fn hardware_profile_shapes() {
        assert_eq!(FeatureSet::hardware_fig6().len(), 4);
        assert_eq!(FeatureSet::hardware_dst_bytes().len(), 4);
        assert_eq!(FeatureSet::simulation_default().len(), 12);
    }

    #[test]
    fn extract_vector_in_order() {
        let set = FeatureSet::hardware_fig6();
        let v = set.extract(&pkt());
        assert_eq!(v, vec![7, 6, 1234, 80]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ip_byte_index_bounds() {
        let _ = Feature::DstIpByte(4).extract(&pkt());
    }

    #[test]
    fn display_names() {
        assert_eq!(Feature::DstIp.to_string(), "daddr");
        assert_eq!(Feature::SrcIpByte(2).to_string(), "saddr[2]");
        assert_eq!(Feature::FragOffset.to_string(), "f.off.");
    }
}
