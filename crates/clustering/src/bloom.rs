//! Bloom-filter admission lists.
//!
//! The Tofino prototype stores a cluster's nominal-feature value sets as
//! bloom-filter admission lists (paper §6): a value is "in" the cluster if
//! its filter bits are set. False positives make clusters *appear* to
//! already contain a value — a hardware-fidelity behaviour the simulation
//! can reproduce or avoid (see `NominalSet` in the range module).

/// A fixed-size bloom filter over `u32` values with `k` hash functions.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    k: u32,
    entries: u64,
}

impl BloomFilter {
    /// Creates a filter with `num_bits` bits and `k` hash functions.
    ///
    /// Panics when either parameter is zero.
    pub fn new(num_bits: u64, k: u32) -> Self {
        assert!(num_bits > 0, "bloom filter needs at least one bit");
        assert!(k > 0, "bloom filter needs at least one hash");
        BloomFilter {
            bits: vec![0; num_bits.div_ceil(64) as usize],
            num_bits,
            k,
            entries: 0,
        }
    }

    /// SplitMix64 finalizer — a solid, dependency-free 64-bit mixer.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// The `i`-th bit index for `value` (double hashing).
    fn bit_index(&self, value: u32, i: u32) -> u64 {
        let h1 = Self::mix(value as u64);
        let h2 = Self::mix((value as u64) ^ 0xDEAD_BEEF_CAFE_F00D) | 1;
        h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.num_bits
    }

    /// Inserts `value`.
    pub fn insert(&mut self, value: u32) {
        for i in 0..self.k {
            let b = self.bit_index(value, i);
            self.bits[(b / 64) as usize] |= 1 << (b % 64);
        }
        self.entries += 1;
    }

    /// True when `value` may have been inserted (false positives possible,
    /// false negatives impossible).
    pub fn contains(&self, value: u32) -> bool {
        (0..self.k).all(|i| {
            let b = self.bit_index(value, i);
            self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0
        })
    }

    /// Clears the filter (the periodic reset of §7.2.3 / Fig. 8b).
    pub fn reset(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.entries = 0;
    }

    /// Number of insertions since the last reset (duplicates counted).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Fraction of bits set — a saturation indicator.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.num_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1024, 3);
        for v in 0..100u32 {
            f.insert(v * 7919);
        }
        for v in 0..100u32 {
            assert!(f.contains(v * 7919));
        }
    }

    #[test]
    fn mostly_rejects_absent_values_when_sized_right() {
        let mut f = BloomFilter::new(4096, 3);
        for v in 0..100u32 {
            f.insert(v);
        }
        let fp = (1000..11_000u32).filter(|&v| f.contains(v)).count();
        assert!(fp < 100, "false positive count {fp} too high");
    }

    #[test]
    fn saturated_filter_accepts_everything() {
        let mut f = BloomFilter::new(64, 2);
        for v in 0..10_000u32 {
            f.insert(v);
        }
        assert!(f.fill_ratio() > 0.99);
        assert!((50_000..50_100u32).all(|v| f.contains(v)));
    }

    #[test]
    fn reset_clears_state() {
        let mut f = BloomFilter::new(1024, 3);
        f.insert(42);
        assert!(f.contains(42));
        f.reset();
        assert!(!f.contains(42));
        assert_eq!(f.entries(), 0);
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn entries_counts_insertions() {
        let mut f = BloomFilter::new(1024, 3);
        f.insert(1);
        f.insert(1);
        f.insert(2);
        assert_eq!(f.entries(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        let _ = BloomFilter::new(0, 1);
    }
}
