//! The hybrid clustering approach of §8.1 ("Eucl. Fast In." in Fig. 10):
//! cluster centers are periodically recomputed offline (k-means over the
//! last window of packets) and updated online with each new packet in
//! between. The paper finds it outperforms pure-online Euclidean slightly
//! but not enough to justify the added complexity.

use crate::feature::FeatureSet;
use crate::kmeans::{kmeans, nearest};
use accturbo_netsim::Packet;

/// Hybrid offline-initialized / online-updated Euclidean clusterer.
#[derive(Debug, Clone)]
pub struct HybridClusterer {
    features: FeatureSet,
    k: usize,
    learning_rate: f64,
    refit_every: usize,
    seed: u64,
    centers: Vec<Vec<f64>>,
    buffer: Vec<Vec<f64>>,
    since_refit: usize,
    refits: u64,
}

impl HybridClusterer {
    /// Creates a hybrid clusterer that refits centers offline every
    /// `refit_every` packets.
    pub fn new(
        features: FeatureSet,
        k: usize,
        learning_rate: f64,
        refit_every: usize,
        seed: u64,
    ) -> Self {
        assert!(k >= 1, "need at least one cluster");
        assert!(refit_every >= k, "refit window must hold at least k points");
        assert!(
            learning_rate > 0.0 && learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        HybridClusterer {
            features,
            k,
            learning_rate,
            refit_every,
            seed,
            centers: Vec::new(),
            buffer: Vec::new(),
            since_refit: 0,
            refits: 0,
        }
    }

    /// Assigns `pkt` to a cluster, updating the center online and
    /// triggering an offline refit when the window fills.
    pub fn assign(&mut self, pkt: &Packet) -> usize {
        let point: Vec<f64> = self
            .features
            .extract(pkt)
            .into_iter()
            .map(|v| v as f64)
            .collect();

        self.buffer.push(point.clone());
        self.since_refit += 1;

        if self.centers.is_empty() {
            // Bootstrap: first k distinct-ish points become centers.
            if self.centers.len() < self.k {
                self.centers = vec![point.clone()];
            }
        }

        // Offline refit on a full window.
        if self.since_refit >= self.refit_every && self.buffer.len() >= self.k {
            let fit = kmeans(
                &self.buffer,
                self.k,
                20,
                self.seed.wrapping_add(self.refits),
            );
            self.centers = fit.centers;
            self.refits += 1;
            self.since_refit = 0;
            self.buffer.clear();
        }

        if self.centers.len() < self.k {
            // Still bootstrapping: add the point as a new center if it is
            // not already one.
            if !self.centers.iter().any(|c| c == &point) {
                self.centers.push(point.clone());
                return self.centers.len() - 1;
            }
        }

        let idx = nearest(&self.centers, &point);
        // Online update between refits.
        for (c, v) in self.centers[idx].iter_mut().zip(&point) {
            *c += self.learning_rate * (v - *c);
        }
        idx
    }

    /// Number of offline refits performed so far.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Current cluster count (≤ k during bootstrap).
    pub fn num_centers(&self) -> usize {
        self.centers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{Feature, FeatureSpec};
    use accturbo_netsim::SimTime;
    use std::net::Ipv4Addr;

    fn features() -> FeatureSet {
        FeatureSet::new(vec![
            FeatureSpec::ordinal(Feature::DstIpByte(3)),
            FeatureSpec::ordinal(Feature::SrcPort),
        ])
    }

    fn pkt(dst_last: u8, sport: u16) -> Packet {
        Packet::new(SimTime::ZERO)
            .with_dst(Ipv4Addr::new(198, 18, 0, dst_last))
            .with_ports(sport, 80)
    }

    #[test]
    fn separates_two_streams() {
        let mut hc = HybridClusterer::new(features(), 2, 0.2, 50, 1);
        let mut assignments = Vec::new();
        for i in 0..200u32 {
            let p = if i % 2 == 0 {
                pkt(10, 1000 + (i % 5) as u16)
            } else {
                pkt(240, 60000 + (i % 5) as u16)
            };
            assignments.push((i % 2, hc.assign(&p)));
        }
        // After the first refit, adjacent packets of the two streams must
        // land in different clusters. Labels may permute exactly at refit
        // boundaries (every 50th packet), so skip the straddling pairs.
        for (i, pair) in assignments[100..].chunks(2).enumerate() {
            let first = 100 + 2 * i;
            if (first % 50) == 48 {
                continue; // refit happens inside this pair
            }
            if let [(0, a), (1, b)] = pair {
                assert_ne!(a, b, "streams collapsed into one cluster at {first}");
            }
        }
    }

    #[test]
    fn refits_happen_at_the_configured_period() {
        let mut hc = HybridClusterer::new(features(), 2, 0.2, 25, 1);
        for i in 0..100u32 {
            hc.assign(&pkt((i % 200) as u8, 1000));
        }
        assert_eq!(hc.refits(), 4);
    }

    #[test]
    fn bootstrap_reaches_k_centers() {
        let mut hc = HybridClusterer::new(features(), 3, 0.2, 100, 1);
        hc.assign(&pkt(1, 100));
        hc.assign(&pkt(100, 20000));
        hc.assign(&pkt(200, 50000));
        assert_eq!(hc.num_centers(), 3);
    }
}
