//! Clustering-quality metrics: purity and recall (paper §8.1).
//!
//! Purity: label every cluster majority-benign or majority-malicious by
//! its packet counts, count the packets matching their cluster's label,
//! divide by the total. Recall of benign (malicious) traffic: the fraction
//! of benign (malicious) packets that landed in majority-benign
//! (majority-malicious) clusters. The paper computes these per one-minute
//! window and averages over windows containing both kinds of traffic;
//! [`WindowedEval`] implements exactly that protocol.

use accturbo_netsim::{ClassId, SimDuration, SimTime};

/// Per-cluster benign/malicious counts for one evaluation window.
#[derive(Debug, Clone, Default)]
pub struct ClusterEval {
    /// `counts[cluster] = (benign, malicious)` packet counts.
    counts: Vec<(u64, u64)>,
}

impl ClusterEval {
    /// An empty evaluation.
    pub fn new() -> Self {
        ClusterEval::default()
    }

    /// Records a packet of ground-truth `class` assigned to `cluster`.
    pub fn record(&mut self, cluster: usize, class: ClassId) {
        if self.counts.len() <= cluster {
            self.counts.resize(cluster + 1, (0, 0));
        }
        if class.is_benign() {
            self.counts[cluster].0 += 1;
        } else {
            self.counts[cluster].1 += 1;
        }
    }

    /// Total packets recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(b, m)| b + m).sum()
    }

    /// True when both benign and malicious packets were recorded (the
    /// paper only scores such windows).
    pub fn is_mixed(&self) -> bool {
        let benign: u64 = self.counts.iter().map(|(b, _)| b).sum();
        let malicious: u64 = self.counts.iter().map(|(_, m)| m).sum();
        benign > 0 && malicious > 0
    }

    /// Purity in percent (0–100). Zero when nothing was recorded.
    pub fn purity(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let matching: u64 = self.counts.iter().map(|&(b, m)| b.max(m)).sum();
        100.0 * matching as f64 / total as f64
    }

    /// Recall of benign traffic in percent: benign packets in
    /// majority-benign clusters over all benign packets.
    pub fn recall_benign(&self) -> f64 {
        let benign_total: u64 = self.counts.iter().map(|(b, _)| b).sum();
        if benign_total == 0 {
            return 0.0;
        }
        let captured: u64 = self
            .counts
            .iter()
            .filter(|&&(b, m)| b >= m && b > 0)
            .map(|(b, _)| b)
            .sum();
        100.0 * captured as f64 / benign_total as f64
    }

    /// Recall of malicious traffic in percent.
    pub fn recall_malicious(&self) -> f64 {
        let mal_total: u64 = self.counts.iter().map(|(_, m)| m).sum();
        if mal_total == 0 {
            return 0.0;
        }
        let captured: u64 = self
            .counts
            .iter()
            .filter(|&&(b, m)| m > b)
            .map(|(_, m)| m)
            .sum();
        100.0 * captured as f64 / mal_total as f64
    }
}

/// Averaged quality over an evaluation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QualitySummary {
    /// Mean purity over mixed windows, percent.
    pub purity: f64,
    /// Mean benign recall over mixed windows, percent.
    pub recall_benign: f64,
    /// Mean malicious recall over mixed windows, percent.
    pub recall_malicious: f64,
    /// Number of mixed windows scored.
    pub windows: usize,
}

/// Windowed evaluation: a fresh [`ClusterEval`] per fixed-width window,
/// summarized as the mean over windows that contained both benign and
/// malicious traffic (the paper's protocol, §8.1).
#[derive(Debug, Clone)]
pub struct WindowedEval {
    width: SimDuration,
    current_window: u64,
    current: ClusterEval,
    finished: Vec<ClusterEval>,
}

impl WindowedEval {
    /// Creates an evaluator with windows of `width` (the paper uses 1 min).
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "window width must be positive");
        WindowedEval {
            width,
            current_window: 0,
            current: ClusterEval::new(),
            finished: Vec::new(),
        }
    }

    /// Records a packet observed at `now`, assigned to `cluster`, with
    /// ground truth `class`. Must be called in nondecreasing time order.
    pub fn record(&mut self, now: SimTime, cluster: usize, class: ClassId) {
        let window = now.bucket(self.width);
        if window != self.current_window {
            let done = std::mem::take(&mut self.current);
            if done.total() > 0 {
                self.finished.push(done);
            }
            self.current_window = window;
        }
        self.current.record(cluster, class);
    }

    /// Finalizes and summarizes. Windows with only one traffic kind are
    /// skipped, as in the paper.
    pub fn finish(mut self) -> QualitySummary {
        if self.current.total() > 0 {
            self.finished.push(self.current);
        }
        let mixed: Vec<&ClusterEval> = self.finished.iter().filter(|e| e.is_mixed()).collect();
        if mixed.is_empty() {
            return QualitySummary::default();
        }
        let n = mixed.len() as f64;
        QualitySummary {
            purity: mixed.iter().map(|e| e.purity()).sum::<f64>() / n,
            recall_benign: mixed.iter().map(|e| e.recall_benign()).sum::<f64>() / n,
            recall_malicious: mixed.iter().map(|e| e.recall_malicious()).sum::<f64>() / n,
            windows: mixed.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_split_scores_100() {
        let mut e = ClusterEval::new();
        for _ in 0..10 {
            e.record(0, ClassId::BENIGN);
            e.record(1, ClassId(1));
        }
        assert_eq!(e.purity(), 100.0);
        assert_eq!(e.recall_benign(), 100.0);
        assert_eq!(e.recall_malicious(), 100.0);
        assert!(e.is_mixed());
    }

    #[test]
    fn fully_mixed_cluster_scores_50() {
        let mut e = ClusterEval::new();
        for _ in 0..10 {
            e.record(0, ClassId::BENIGN);
            e.record(0, ClassId(1));
        }
        assert_eq!(e.purity(), 50.0);
        // Cluster 0 ties benign: labeled benign (b >= m), so benign recall
        // is 100 and malicious recall 0.
        assert_eq!(e.recall_benign(), 100.0);
        assert_eq!(e.recall_malicious(), 0.0);
    }

    #[test]
    fn majority_labeling() {
        let mut e = ClusterEval::new();
        // Cluster 0: 8 benign, 2 malicious -> benign.
        for _ in 0..8 {
            e.record(0, ClassId::BENIGN);
        }
        for _ in 0..2 {
            e.record(0, ClassId(3));
        }
        // Cluster 1: 1 benign, 9 malicious -> malicious.
        e.record(1, ClassId::BENIGN);
        for _ in 0..9 {
            e.record(1, ClassId(3));
        }
        assert!((e.purity() - 85.0).abs() < 1e-9);
        assert!((e.recall_benign() - 8.0 / 9.0 * 100.0).abs() < 1e-9);
        assert!((e.recall_malicious() - 9.0 / 11.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn single_kind_window_is_not_mixed() {
        let mut e = ClusterEval::new();
        e.record(0, ClassId::BENIGN);
        assert!(!e.is_mixed());
    }

    #[test]
    fn windowed_eval_skips_pure_windows() {
        let mut we = WindowedEval::new(SimDuration::from_secs(60));
        // Window 0: benign only -> skipped.
        we.record(SimTime::from_secs(10), 0, ClassId::BENIGN);
        // Window 1: mixed, perfect split.
        we.record(SimTime::from_secs(70), 0, ClassId::BENIGN);
        we.record(SimTime::from_secs(75), 1, ClassId(1));
        // Window 2: mixed, fully confused.
        we.record(SimTime::from_secs(130), 0, ClassId::BENIGN);
        we.record(SimTime::from_secs(135), 0, ClassId(1));
        let s = we.finish();
        assert_eq!(s.windows, 2);
        assert!((s.purity - 75.0).abs() < 1e-9);
    }

    #[test]
    fn empty_eval_is_zero() {
        let we = WindowedEval::new(SimDuration::from_secs(60));
        let s = we.finish();
        assert_eq!(s, QualitySummary::default());
        assert_eq!(ClusterEval::new().purity(), 0.0);
    }
}
