//! # accturbo-clustering
//!
//! The inference half of ACC-Turbo (paper §4): online clustering of packet
//! headers, implemented across the full design space the paper studies —
//! fast vs. exhaustive search, range-based vs. center-based cluster
//! representations, Manhattan vs. Anime vs. Euclidean distances — plus the
//! offline k-means and hybrid baselines of §8.1 and the purity/recall
//! evaluation protocol.
//!
//! The deployable configuration (what runs on Tofino) is
//! [`ClusteringConfig::deployable`]: Manhattan distance, fast search,
//! range-based clusters.

#![deny(missing_docs)]

pub mod bloom;
pub mod cluster;
pub mod eval;
pub mod feature;
pub mod hybrid;
pub mod kmeans;
pub mod online;

pub use bloom::BloomFilter;
pub use cluster::{CenterCluster, Dim, NominalMode, NominalSet, RangeCluster};
pub use eval::{ClusterEval, QualitySummary, WindowedEval};
pub use feature::{Feature, FeatureKind, FeatureSet, FeatureSpec};
pub use hybrid::HybridClusterer;
pub use kmeans::{kmeans, nearest, KMeansFit};
pub use online::{
    Assignment, ClusteringConfig, DistanceKind, InitMode, OnlineClusterer, RepMode, Repr,
    SearchKind, WindowStats,
};
