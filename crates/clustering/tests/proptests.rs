//! Randomized property tests for clustering invariants.
//!
//! Originally written against `proptest`; the build environment has no
//! crates.io access, so these now run as seeded randomized loops over
//! `accturbo_prng` (deterministic per seed, so failures reproduce).

use accturbo_clustering::{
    kmeans, BloomFilter, ClusteringConfig, DistanceKind, Feature, FeatureSet, FeatureSpec,
    InitMode, NominalMode, OnlineClusterer, RangeCluster, RepMode, SearchKind,
};
use accturbo_prng::{Rng, SeedableRng, StdRng};

const CASES: usize = 48;

fn feats() -> FeatureSet {
    FeatureSet::new(vec![
        FeatureSpec::ordinal(Feature::DstIpByte(2)),
        FeatureSpec::ordinal(Feature::DstIpByte(3)),
        FeatureSpec::natural(Feature::DstPort),
    ])
}

fn arb_points(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<(u32, u32, u32)> {
    let n = rng.gen_range(lo..hi);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0u32..256),
                rng.gen_range(0u32..256),
                rng.gen_range(0u32..65536),
            )
        })
        .collect()
}

/// A range cluster covers every point it has admitted, and its
/// Manhattan cost never decreases as points are admitted.
#[test]
fn range_cluster_monotone_coverage() {
    let mut rng = StdRng::seed_from_u64(0xc1_0001);
    for case in 0..CASES {
        let points = arb_points(&mut rng, 1, 100);
        let f = feats();
        let first = [points[0].0, points[0].1, points[0].2];
        let mut c = RangeCluster::seed(&f, &first, &NominalMode::Exact);
        let mut last_cost = c.manhattan_cost();
        for &(a, b, p) in &points {
            c.admit(&[a, b, p]);
            let cost = c.manhattan_cost();
            assert!(
                cost >= last_cost,
                "case {case}: cost shrank: {last_cost} -> {cost}"
            );
            last_cost = cost;
        }
        for &(a, b, p) in &points {
            assert!(c.covers(&[a, b, p]), "case {case}");
            assert_eq!(c.manhattan(&[a, b, p]), 0, "case {case}");
        }
    }
}

/// Anime distance is nonnegative and zero exactly on covered points.
#[test]
fn anime_distance_properties() {
    let mut rng = StdRng::seed_from_u64(0xc1_0002);
    for case in 0..CASES {
        let points = arb_points(&mut rng, 2, 50);
        let f = feats();
        let first = [points[0].0, points[0].1, points[0].2];
        let mut c = RangeCluster::seed(&f, &first, &NominalMode::Exact);
        for &(a, b, p) in &points[..points.len() / 2] {
            c.admit(&[a, b, p]);
        }
        for &(a, b, p) in &points {
            let d = c.anime(&[a, b, p]);
            assert!(d >= 0.0, "case {case}: anime distance negative: {d}");
            if c.covers(&[a, b, p]) {
                assert_eq!(d, 0.0, "case {case}");
            } else {
                assert!(d > 0.0, "case {case}");
            }
        }
    }
}

/// The online clusterer always returns a valid index, never leaves a
/// slot empty while others grew (seed-first policy), and its counters
/// account for every packet, in every configuration.
#[test]
fn clusterer_accounts_for_all_packets() {
    let mut rng = StdRng::seed_from_u64(0xc1_0003);
    for case in 0..CASES {
        let points = arb_points(&mut rng, 1, 300);
        let n_clusters = rng.gen_range(1usize..8);
        let distance = match rng.gen_range(0u8..3) {
            0 => DistanceKind::Manhattan,
            1 => DistanceKind::Anime,
            _ => DistanceKind::Euclidean,
        };
        let exhaustive: bool = rng.gen();
        let anchors: bool = rng.gen();
        let search = if exhaustive {
            SearchKind::Exhaustive
        } else {
            SearchKind::Fast
        };
        let cfg = ClusteringConfig {
            num_clusters: n_clusters,
            features: feats(),
            distance,
            search,
            nominal: NominalMode::Exact,
            learning_rate: 0.3,
            init: if anchors {
                InitMode::Anchors
            } else {
                InitMode::FromTraffic
            },
            update_budget: None,
            rep: RepMode::LastPacket,
        };
        let mut oc = OnlineClusterer::new(cfg);
        for &(a, b, p) in &points {
            let idx = oc.assign_values(&[a, b, p], 100);
            assert!(idx < n_clusters, "case {case}");
        }
        let total: u64 = oc.totals().iter().map(|s| s.pkts).sum();
        assert_eq!(total, points.len() as u64, "case {case}");
        let bytes: u64 = oc.totals().iter().map(|s| s.bytes).sum();
        assert_eq!(bytes, points.len() as u64 * 100, "case {case}");
        let window: u64 = oc.take_window().iter().map(|s| s.pkts).sum();
        assert_eq!(window, points.len() as u64, "case {case}");
    }
}

/// Bloom filters never report false negatives.
#[test]
fn bloom_no_false_negatives() {
    let mut rng = StdRng::seed_from_u64(0xc1_0004);
    for case in 0..CASES {
        let n_values = rng.gen_range(1usize..200);
        let values: Vec<u32> = (0..n_values).map(|_| rng.gen()).collect();
        let bits = rng.gen_range(64u64..4096);
        let k = rng.gen_range(1u32..6);
        let mut f = BloomFilter::new(bits, k);
        for &v in &values {
            f.insert(v);
        }
        for &v in &values {
            assert!(f.contains(v), "case {case}");
        }
    }
}

/// k-means assigns every point to its nearest final center.
#[test]
fn kmeans_assignment_is_nearest() {
    let mut rng = StdRng::seed_from_u64(0xc1_0005);
    for case in 0..CASES {
        let n = rng.gen_range(2usize..100);
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0f64..1000.0), rng.gen_range(0.0f64..1000.0)])
            .collect();
        let k = rng.gen_range(1usize..5);
        let fit = kmeans(&points, k, 30, 42);
        for (p, &a) in points.iter().zip(&fit.assignment) {
            let nearest = accturbo_clustering::nearest(&fit.centers, p);
            let da: f64 = p
                .iter()
                .zip(&fit.centers[a])
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            let dn: f64 = p
                .iter()
                .zip(&fit.centers[nearest])
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            assert!(
                da <= dn + 1e-9,
                "case {case}: assignment not nearest: {da} > {dn}"
            );
        }
    }
}
