//! Property-based tests for clustering invariants.

use accturbo_clustering::{
    kmeans, BloomFilter, ClusteringConfig, DistanceKind, Feature, FeatureSet, FeatureSpec,
    InitMode, NominalMode, OnlineClusterer, RangeCluster, RepMode, SearchKind,
};
use proptest::prelude::*;

fn feats() -> FeatureSet {
    FeatureSet::new(vec![
        FeatureSpec::ordinal(Feature::DstIpByte(2)),
        FeatureSpec::ordinal(Feature::DstIpByte(3)),
        FeatureSpec::natural(Feature::DstPort),
    ])
}

proptest! {
    /// A range cluster covers every point it has admitted, and its
    /// Manhattan cost never decreases as points are admitted.
    #[test]
    fn range_cluster_monotone_coverage(points in prop::collection::vec(
        (0u32..256, 0u32..256, 0u32..65536), 1..100)) {
        let f = feats();
        let first = [points[0].0, points[0].1, points[0].2];
        let mut c = RangeCluster::seed(&f, &first, &NominalMode::Exact);
        let mut last_cost = c.manhattan_cost();
        for &(a, b, p) in &points {
            c.admit(&[a, b, p]);
            let cost = c.manhattan_cost();
            prop_assert!(cost >= last_cost, "cost shrank: {last_cost} -> {cost}");
            last_cost = cost;
        }
        for &(a, b, p) in &points {
            prop_assert!(c.covers(&[a, b, p]));
            prop_assert_eq!(c.manhattan(&[a, b, p]), 0);
        }
    }

    /// Anime distance is nonnegative and zero exactly on covered points.
    #[test]
    fn anime_distance_properties(points in prop::collection::vec(
        (0u32..256, 0u32..256, 0u32..65536), 2..50)) {
        let f = feats();
        let first = [points[0].0, points[0].1, points[0].2];
        let mut c = RangeCluster::seed(&f, &first, &NominalMode::Exact);
        for &(a, b, p) in &points[..points.len() / 2] {
            c.admit(&[a, b, p]);
        }
        for &(a, b, p) in &points {
            let d = c.anime(&[a, b, p]);
            prop_assert!(d >= 0.0, "anime distance negative: {d}");
            if c.covers(&[a, b, p]) {
                prop_assert_eq!(d, 0.0);
            } else {
                prop_assert!(d > 0.0);
            }
        }
    }

    /// The online clusterer always returns a valid index, never leaves a
    /// slot empty while others grew (seed-first policy), and its counters
    /// account for every packet, in every configuration.
    #[test]
    fn clusterer_accounts_for_all_packets(
        points in prop::collection::vec((0u32..256, 0u32..256, 0u32..65536), 1..300),
        n_clusters in 1usize..8,
        distance_pick in 0u8..3,
        exhaustive in any::<bool>(),
        anchors in any::<bool>()) {
        let distance = match distance_pick {
            0 => DistanceKind::Manhattan,
            1 => DistanceKind::Anime,
            _ => DistanceKind::Euclidean,
        };
        let search = if exhaustive { SearchKind::Exhaustive } else { SearchKind::Fast };
        let cfg = ClusteringConfig {
            num_clusters: n_clusters,
            features: feats(),
            distance,
            search,
            nominal: NominalMode::Exact,
            learning_rate: 0.3,
            init: if anchors { InitMode::Anchors } else { InitMode::FromTraffic },
            update_budget: None,
            rep: RepMode::LastPacket,
        };
        let mut oc = OnlineClusterer::new(cfg);
        for &(a, b, p) in &points {
            let idx = oc.assign_values(&[a, b, p], 100);
            prop_assert!(idx < n_clusters);
        }
        let total: u64 = oc.totals().iter().map(|s| s.pkts).sum();
        prop_assert_eq!(total, points.len() as u64);
        let bytes: u64 = oc.totals().iter().map(|s| s.bytes).sum();
        prop_assert_eq!(bytes, points.len() as u64 * 100);
        let window: u64 = oc.take_window().iter().map(|s| s.pkts).sum();
        prop_assert_eq!(window, points.len() as u64);
    }

    /// Bloom filters never report false negatives.
    #[test]
    fn bloom_no_false_negatives(values in prop::collection::vec(any::<u32>(), 1..200),
                                bits in 64u64..4096,
                                k in 1u32..6) {
        let mut f = BloomFilter::new(bits, k);
        for &v in &values {
            f.insert(v);
        }
        for &v in &values {
            prop_assert!(f.contains(v));
        }
    }

    /// k-means assigns every point to its nearest final center.
    #[test]
    fn kmeans_assignment_is_nearest(points in prop::collection::vec(
        prop::collection::vec(0.0f64..1000.0, 2), 2..100),
        k in 1usize..5) {
        let fit = kmeans(&points, k, 30, 42);
        for (p, &a) in points.iter().zip(&fit.assignment) {
            let nearest = accturbo_clustering::nearest(&fit.centers, p);
            let da: f64 = p.iter().zip(&fit.centers[a]).map(|(x, y)| (x - y) * (x - y)).sum();
            let dn: f64 = p.iter().zip(&fit.centers[nearest]).map(|(x, y)| (x - y) * (x - y)).sum();
            prop_assert!(da <= dn + 1e-9, "assignment not nearest: {da} > {dn}");
        }
    }
}
