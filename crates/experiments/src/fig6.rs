//! Figure 6: mitigation of a pulse-wave DDoS attack on the testbed (§7.1).
//!
//! CAIDA-like background traffic on a 10 G bottleneck (here rate-scaled to
//! 10 Mbps, DESIGN.md §4) plus four UDP-flood pulses of 10 s with 10 s
//! interleaves, each targeting a different IP of a common /24 and a
//! different port, peaking around 4× the bottleneck (the paper's
//! 40.789 Gbps). ACC-Turbo runs the §7.1 hardware profile: 4 clusters on
//! the last two destination-address bytes plus both ports, throughput
//! ranking, priorities updated at the controller's speed.
//!
//! Expected shape: under FIFO the pulses cut background throughput by
//! ≈61%; under ACC-Turbo the background recovers fully within ≈1 s of
//! each pulse.

use crate::common::{push_throughput_summary, throughput_panel, Scale};
use crate::result::FigureResult;
use crate::spec::{AccTurboSpec, DefenseSpec, FeatureProfile, ScenarioSpec, WorkloadSpec};
use crate::Figure;
use accturbo_netsim::{ClassId, MergedSource, RunResult};
use accturbo_telemetry::f;
use accturbo_traffic::workloads;
use std::fmt::Write as _;

/// The canonical workload seed (the historical in-module constant).
pub const DEFAULT_SEED: u64 = 0xF16;

/// Builds the Fig. 6 workload: background + 4 pulses (10 s on / 10 s off)
/// starting at t = 10 s.
pub fn source(secs: u64, seed: u64) -> MergedSource {
    workloads::fig6_pulses(secs, seed)
}

/// Runs the workload against `defense` on the scaled 10 G bottleneck.
fn run(defense: DefenseSpec, secs: u64, seed: u64) -> RunResult {
    ScenarioSpec::new(WorkloadSpec::Fig6, defense)
        .with_secs(secs)
        .with_seed(seed)
        .execute()
        .result
}

/// Runs the workload through FIFO.
pub fn fifo_run(secs: u64, seed: u64) -> RunResult {
    run(DefenseSpec::Fifo, secs, seed)
}

/// Runs the workload through the hardware-profile ACC-Turbo (the §7.1
/// feature set; the controller polls "at its maximum speed" — the
/// hardware profile's natural 50 ms).
pub fn accturbo_run(secs: u64, seed: u64) -> RunResult {
    run(
        DefenseSpec::AccTurbo(AccTurboSpec::hardware(FeatureProfile::HwFig6)),
        secs,
        seed,
    )
}

fn panel(out: &mut String, title: &str, res: &RunResult, secs: u64) {
    throughput_panel(out, title, res, secs);
}

/// Fraction of offered benign traffic *lost* during the pulse-active
/// seconds (1 − delivered/offered). This is the drop-based equivalent of
/// the paper's "throughput reduction": it compares against what benign
/// traffic actually offered, so background burstiness cancels out.
pub fn benign_loss_during_pulses(res: &RunResult, secs: u64) -> f64 {
    let (mut offered, mut delivered) = (0.0f64, 0.0f64);
    for pulse in 0..4u64 {
        let start = 10 + 20 * pulse;
        for t in start + 1..(start + 10).min(secs) {
            offered += res.stats.arrival_bps(t as usize, ClassId::BENIGN);
            delivered += res.stats.throughput_bps(t as usize, ClassId::BENIGN);
        }
    }
    if offered <= 0.0 {
        0.0
    } else {
        (1.0 - delivered / offered).max(0.0)
    }
}

/// Fraction of offered attack traffic lost during the pulse seconds.
pub fn attack_loss_during_pulses(res: &RunResult, secs: u64) -> f64 {
    let (mut offered, mut delivered) = (0.0f64, 0.0f64);
    for pulse in 0..4u64 {
        let start = 10 + 20 * pulse;
        for t in start + 1..(start + 10).min(secs) {
            let t = t as usize;
            offered += (1..=4)
                .map(|c| res.stats.arrival_bps(t, ClassId(c)))
                .sum::<f64>();
            delivered += res.stats.attack_throughput_bps(t);
        }
    }
    if offered <= 0.0 {
        0.0
    } else {
        (1.0 - delivered / offered).max(0.0)
    }
}

/// Regenerates Fig. 6 at `seed`, returning the rendered report and its
/// machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(100, 4);
    let mut out = String::new();
    let mut r = FigureResult::new("fig6");
    let fifo = fifo_run(secs, seed);
    panel(&mut out, "Fig. 6a: FIFO", &fifo, secs);
    push_throughput_summary(&mut r, "a", &fifo, secs);
    let turbo = accturbo_run(secs, seed);
    panel(&mut out, "Fig. 6b: ACC-Turbo", &turbo, secs);
    push_throughput_summary(&mut r, "b", &turbo, secs);

    let _ = writeln!(&mut out, "# Summary");
    let fifo_loss = 100.0 * benign_loss_during_pulses(&fifo, secs);
    let turbo_loss = 100.0 * benign_loss_during_pulses(&turbo, secs);
    let attack_loss = 100.0 * attack_loss_during_pulses(&turbo, secs);
    let _ = writeln!(
        &mut out,
        "benign_loss_during_pulses_fifo_pct,{}",
        f(fifo_loss)
    );
    let _ = writeln!(
        &mut out,
        "benign_loss_during_pulses_accturbo_pct,{}",
        f(turbo_loss)
    );
    let _ = writeln!(
        &mut out,
        "attack_loss_during_pulses_accturbo_pct,{}",
        f(attack_loss)
    );
    r.num("summary.benign_loss_during_pulses_fifo_pct", fifo_loss);
    r.num("summary.benign_loss_during_pulses_accturbo_pct", turbo_loss);
    r.num(
        "summary.attack_loss_during_pulses_accturbo_pct",
        attack_loss,
    );
    Figure::new(out, r)
}

/// Regenerates Fig. 6 at the canonical seed and returns the textual
/// report.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_pulses_crush_background() {
        // The pulses offer 4x the link on top of the background: under
        // FIFO, benign traffic loses roughly its proportional share (the
        // paper's testbed measured a 61% throughput reduction).
        let res = fifo_run(100, DEFAULT_SEED);
        let loss = benign_loss_during_pulses(&res, 100);
        assert!(
            (0.5..0.95).contains(&loss),
            "FIFO benign loss {loss:.2} (paper: ≈0.61 reduction)"
        );
    }

    #[test]
    fn accturbo_recovers_most_background() {
        // The paper's Fig. 6b narrates full recovery while its Table 3
        // measures ≈15% benign drops for the same profile; we hold
        // ACC-Turbo to that measured bound.
        let res = accturbo_run(100, DEFAULT_SEED);
        let loss = benign_loss_during_pulses(&res, 100);
        assert!(
            loss < 0.30,
            "ACC-Turbo benign loss {loss:.2} (paper's Table 3 measures ≈0.15-0.20 \
             for these attacks; see EXPERIMENTS.md on the 4-cluster capture floor)"
        );
    }

    #[test]
    fn accturbo_sheds_mostly_attack_traffic() {
        let res = accturbo_run(100, DEFAULT_SEED);
        let attack_loss = attack_loss_during_pulses(&res, 100);
        let benign_loss = benign_loss_during_pulses(&res, 100);
        assert!(
            attack_loss > 0.7,
            "attack must absorb the congestion: loss {attack_loss:.2}"
        );
        assert!(
            attack_loss > 3.0 * benign_loss,
            "attack loss {attack_loss:.2} vs benign loss {benign_loss:.2}"
        );
    }

    #[test]
    fn quiet_periods_are_transparent() {
        let fifo = fifo_run(30, DEFAULT_SEED);
        let turbo = accturbo_run(30, DEFAULT_SEED);
        // Before the first pulse both schemes deliver the same background.
        for t in 3..9 {
            let a = fifo.stats.throughput_bps(t, ClassId::BENIGN);
            let b = turbo.stats.throughput_bps(t, ClassId::BENIGN);
            assert!(
                (a - b).abs() / a.max(1.0) < 0.05,
                "t={t}: fifo {a:.0} vs accturbo {b:.0}"
            );
        }
    }
}
