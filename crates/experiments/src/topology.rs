//! Topology experiment: what multi-switch structure does to the defense.
//!
//! Two questions the single-switch figures cannot ask (ROADMAP item 1,
//! after Mahajan et al. 2002):
//!
//! * **Attack dispersion** — a pulse converging from many ingress leaves
//!   looks thinner on every edge link than the aggregate the core sees.
//!   Panel A runs the flood workload on a `star:4` with the attack
//!   confined to 1, 2 or all 4 leaves and reports benign/attack drop
//!   rates at increasing dispersion.
//! * **Pushback convergence** — a rate-limit request is only as fast as
//!   the path is deep. Panel B runs classic ACC with hop-by-hop pushback
//!   on `line:2..4` and reports when the leaf received its first limit
//!   and how many limit messages flowed.

use crate::common::Scale;
use crate::result::FigureResult;
use crate::spec::{DefenseSpec, ScenarioSpec, TopologySpec, WorkloadSpec};
use crate::Figure;
use accturbo_telemetry::{f, Table};
use accturbo_traffic::workloads::FloodVariation;

/// The canonical workload seed.
pub const DEFAULT_SEED: u64 = 0x7070;

fn scenario(defense: &str, topology: &str, secs: u64, seed: u64) -> ScenarioSpec {
    let defense: DefenseSpec = defense.parse().expect("valid defense");
    let topology: TopologySpec = topology.parse().expect("valid topology");
    ScenarioSpec::new(WorkloadSpec::Flood(FloodVariation::SingleFlow), defense)
        .with_secs(secs + topology.extra_secs())
        .with_seed(seed)
        .with_topology(topology)
}

/// Regenerates the topology figure at `seed`: defense efficacy vs.
/// attack dispersion, and pushback convergence vs. topology depth.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(30, 3);
    let mut r = FigureResult::new("topology");
    let mut out = String::new();

    // Panel A: the flood enters 1, 2 or all 4 leaves of a star.
    let mut ta = Table::new(&[
        "Attack dispersion (star:4, accturbo core)",
        "benign drop %",
        "attack drop %",
    ]);
    for (label, key, attackers) in [
        ("1 of 4 leaves", "disp1", "attackers=0"),
        ("2 of 4 leaves", "disp2", "attackers=0+2"),
        ("4 of 4 leaves", "disp4", "attackers=0+1+2+3"),
    ] {
        let spec = scenario("accturbo", &format!("star:4:{attackers}"), secs, seed);
        let t = spec.execute_topology();
        let benign = t.result.stats.benign_drop_pct();
        let attack = t.result.stats.attack_drop_pct();
        r.num(&format!("{key}.benign_drop_pct"), benign);
        r.num(&format!("{key}.attack_drop_pct"), attack);
        ta.row(vec![label.into(), f(benign), f(attack)]);
    }
    out.push_str(&ta.render());

    // Panel B: pushback limits ripple down a deepening line.
    let mut tb = Table::new(&[
        "Topology depth (line:N, acc + pushback)",
        "leaf converged (s)",
        "limit messages",
        "benign drop %",
    ]);
    for depth in [2u32, 3, 4] {
        let spec = scenario(
            "acc",
            &format!("line:{depth}:pushback=on"),
            secs,
            seed + depth as u64,
        );
        let t = spec.execute_topology();
        let converge = t.node_first_limit[0].map_or(-1.0, |at| at.as_secs_f64());
        let benign = t.result.stats.benign_drop_pct();
        r.num(&format!("depth{depth}.converge_s"), converge);
        r.num(
            &format!("depth{depth}.installs"),
            t.pushback_installs as f64,
        );
        r.num(&format!("depth{depth}.benign_drop_pct"), benign);
        tb.row(vec![
            format!("line:{depth}"),
            f(converge),
            t.pushback_installs.to_string(),
            f(benign),
        ]);
    }
    out.push_str(&tb.render());

    Figure::new(out, r)
}

/// Regenerates the topology figure at the canonical seed.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushback_limits_reach_the_leaf_at_every_depth() {
        for depth in [2u32, 3, 4] {
            let spec = scenario(
                "acc",
                &format!("line:{depth}:pushback=on"),
                10,
                DEFAULT_SEED + depth as u64,
            );
            let t = spec.execute_topology();
            assert!(
                t.pushback_installs > 0,
                "line:{depth}: no limit messages flowed"
            );
            assert!(
                t.node_first_limit[0].is_some(),
                "line:{depth}: the leaf never heard a limit"
            );
        }
    }

    #[test]
    fn dispersion_runs_conserve_packets() {
        let spec = scenario("accturbo", "star:4:attackers=0+2", 10, DEFAULT_SEED);
        let t = spec.execute_topology();
        assert_eq!(
            t.result.arrivals,
            t.result.departures + t.result.drops + t.backlog_pkts as u64
        );
        assert!(t.result.stats.attack_drop_pct() > 0.0, "flood must drop");
    }
}
