//! Figure 3: performance under a morphing pulse-wave attack (paper §2.2).
//!
//! Four CBR aggregates at ≈ the link capacity plus a pulse-wave attack:
//! four 5-second pulses starting at 5/15/25/35 s, each a *different*
//! vector (NTP → DNS → SNMP → NetBIOS) on a *different* target /24.
//! Regenerated panels:
//!
//! * (a) FIFO and (c) ACC and (d) ACC-Turbo — bandwidth-share series.
//! * (b) speed vs. accuracy — % benign drops as the ACC monitoring window
//!   K shrinks from 2 s to 10 ms, against the FIFO and ACC-Turbo
//!   horizontal lines.
//!
//! Expected shape (paper): ACC misses at least the early pulses for any
//! K, bottoming out near 20% benign drops; ACC-Turbo defends all pulses.

use crate::common::{push_share_summary, share_panel, Scale, LINK_10G_SCALED};
use crate::result::FigureResult;
use crate::spec::{DefenseSpec, ScenarioSpec, WorkloadSpec};
use crate::Figure;
use accturbo_netsim::{ClassId, RunResult, SimDuration};
use accturbo_telemetry::f;
use accturbo_traffic::scenarios;
use std::fmt::Write as _;

const LINK: u64 = LINK_10G_SCALED;
/// The canonical workload seed (the historical in-module constant).
pub const DEFAULT_SEED: u64 = 33;

/// % of packets of the benign aggregates (classes 1-4) dropped.
pub fn benign_pct(res: &RunResult) -> f64 {
    let classes: Vec<ClassId> = (1..=4).map(ClassId).collect();
    res.stats.drop_pct_of(&classes)
}

/// Runs the Fig. 3 workload against `defense` at its natural period.
fn run(defense: DefenseSpec, secs: u64, seed: u64) -> RunResult {
    ScenarioSpec::new(WorkloadSpec::Fig3, defense)
        .with_secs(secs)
        .with_seed(seed)
        .execute()
        .result
}

/// Runs the Fig. 3 workload through FIFO.
pub fn fifo_run(secs: u64, seed: u64) -> RunResult {
    run(DefenseSpec::Fifo, secs, seed)
}

/// Runs the Fig. 3 workload through classic ACC with monitoring window `k`.
pub fn acc_run(k: SimDuration, secs: u64, seed: u64) -> RunResult {
    run(DefenseSpec::Acc { k }, secs, seed)
}

/// Runs the Fig. 3 workload through ACC-Turbo.
pub fn accturbo_run(secs: u64, seed: u64) -> RunResult {
    run(DefenseSpec::accturbo(), secs, seed)
}

fn panel(out: &mut String, title: &str, res: &RunResult, secs: u64) {
    share_panel(out, title, res, LINK, secs, false);
}

/// Regenerates Fig. 3 at `seed`, returning the rendered report and its
/// machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(scenarios::RUN_SECS, 2);
    let mut out = String::new();
    let mut r = FigureResult::new("fig3");
    let classes: Vec<ClassId> = (1..=5).map(ClassId).collect();

    let fifo = fifo_run(secs, seed);
    panel(&mut out, "Fig. 3a: No ACC (FIFO)", &fifo, secs);
    push_share_summary(&mut r, "a", &fifo, LINK, &classes, secs);

    // (b) speed vs. accuracy: % benign drops vs K.
    let _ = writeln!(
        &mut out,
        "# Fig. 3b: Speed vs. accuracy (% benign drops vs K)"
    );
    let _ = writeln!(&mut out, "K_s,acc,accturbo,fifo");
    let fifo_pct = benign_pct(&fifo);
    let turbo = accturbo_run(secs, seed);
    let turbo_pct = benign_pct(&turbo);
    let ks: &[f64] = match scale {
        Scale::Full => &[0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0],
        Scale::Quick => &[0.1, 1.0],
    };
    for &k in ks {
        let res = acc_run(SimDuration::from_secs_f64(k), secs, seed);
        r.num(&format!("b.k{k}.acc_benign_drop_pct"), benign_pct(&res));
        let _ = writeln!(
            &mut out,
            "{k},{},{},{}",
            f(benign_pct(&res)),
            f(turbo_pct),
            f(fifo_pct),
        );
    }

    let acc = acc_run(SimDuration::from_secs(2), secs, seed);
    panel(&mut out, "Fig. 3c: ACC (K=2s)", &acc, secs);
    push_share_summary(&mut r, "c", &acc, LINK, &classes, secs);
    panel(&mut out, "Fig. 3d: ACC-Turbo", &turbo, secs);
    push_share_summary(&mut r, "d", &turbo, LINK, &classes, secs);

    let _ = writeln!(&mut out, "# Summary");
    let _ = writeln!(&mut out, "benign_drop_pct_fifo,{}", f(fifo_pct));
    let _ = writeln!(&mut out, "benign_drop_pct_acc_k2,{}", f(benign_pct(&acc)));
    let _ = writeln!(&mut out, "benign_drop_pct_accturbo,{}", f(turbo_pct));
    r.num("summary.benign_drop_pct_fifo", fifo_pct);
    r.num("summary.benign_drop_pct_acc_k2", benign_pct(&acc));
    r.num("summary.benign_drop_pct_accturbo", turbo_pct);
    Figure::new(out, r)
}

/// Regenerates Fig. 3 at the canonical seed and returns the textual
/// report.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_suffers_during_every_pulse() {
        let res = fifo_run(scenarios::RUN_SECS, DEFAULT_SEED);
        for pulse_start in [5usize, 15, 25, 35] {
            let benign: f64 = (1..=4)
                .map(|c| res.stats.throughput_bps(pulse_start + 2, ClassId(c)))
                .sum();
            assert!(
                benign < 0.6 * LINK as f64,
                "pulse at {pulse_start}s should crush benign traffic ({benign:.0})"
            );
        }
    }

    #[test]
    fn accturbo_beats_acc_on_benign_drops() {
        let secs = scenarios::RUN_SECS;
        let acc = acc_run(SimDuration::from_secs(2), secs, DEFAULT_SEED);
        let turbo = accturbo_run(secs, DEFAULT_SEED);
        let fifo = fifo_run(secs, DEFAULT_SEED);
        let acc_pct = benign_pct(&acc);
        let turbo_pct = benign_pct(&turbo);
        let fifo_pct = benign_pct(&fifo);
        assert!(
            turbo_pct < acc_pct,
            "ACC-Turbo ({turbo_pct:.1}%) must beat ACC ({acc_pct:.1}%)"
        );
        assert!(
            acc_pct <= fifo_pct + 1.0,
            "ACC ({acc_pct:.1}%) must not be worse than FIFO ({fifo_pct:.1}%)"
        );
        assert!(
            turbo_pct < 10.0,
            "ACC-Turbo drops too much: {turbo_pct:.1}%"
        );
    }

    #[test]
    fn acc_suffers_at_the_start_of_every_pulse() {
        // Classic ACC must re-run its threshold + inference loop for each
        // pulse (new vector, new target), losing the pulse's first
        // seconds every time.
        let res = acc_run(SimDuration::from_secs(2), scenarios::RUN_SECS, DEFAULT_SEED);
        for pulse_start in [5usize, 15, 25, 35] {
            let benign: f64 = (1..=4)
                .map(|c| res.stats.throughput_bps(pulse_start, ClassId(c)))
                .sum();
            assert!(
                benign < 0.8 * LINK as f64,
                "pulse at {pulse_start}s should bite before ACC re-activates ({benign:.0})"
            );
        }
    }

    #[test]
    fn accturbo_defends_later_pulses_fully() {
        let res = accturbo_run(scenarios::RUN_SECS, DEFAULT_SEED);
        // By the third and fourth pulses the defense is warm: benign
        // keeps ≥90% of its demand.
        for pulse_start in [25usize, 35] {
            let benign: f64 = (1..=4)
                .map(|c| res.stats.throughput_bps(pulse_start + 3, ClassId(c)))
                .sum();
            assert!(
                benign > 0.85 * LINK as f64,
                "pulse at {pulse_start}s: benign {benign:.0}"
            );
        }
    }
}
