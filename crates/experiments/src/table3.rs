//! Table 3: mitigation efficiency under attack variations (paper §7.2.1).
//!
//! Four defenses (FIFO, Jaqen keyed on the 5-tuple "Jaqen†", Jaqen keyed
//! on the source IP "Jaqen‡", ACC-Turbo with the four destination-address
//! bytes as features) against four traffic mixes: no attack, a
//! single-flow UDP flood, the same flood with carpet bombing (random dst
//! in the victim /24), and with source spoofing. The cell value is the
//! percentage of benign packets dropped.
//!
//! Expected shape (paper's Table 3): Jaqen wins when its signature
//! matches (≈3–4%), collapses when the varied field defeats it (carpet
//! bombing beats the 5-tuple key, spoofing beats both); ACC-Turbo is
//! never best but is robust across all variations (≈15–20%); FIFO loses
//! ≈90% whenever an attack runs.

use crate::common::Scale;
use crate::result::FigureResult;
use crate::spec::{
    AccTurboSpec, DefenseSpec, FeatureProfile, JaqenSpec, ScenarioSpec, WorkloadSpec,
    JAQEN_DEFAULT_THRESHOLD,
};
use crate::Figure;
use accturbo_jaqen::Signature;
use accturbo_netsim::MergedSource;
use accturbo_telemetry::{f, Table};
use accturbo_traffic::workloads;

/// The canonical workload seed (the historical in-module constant).
pub const DEFAULT_SEED: u64 = 0x7AB;

/// The attack variations of Table 3's rows (now a traffic-crate
/// building block shared with the spec grammar).
pub use accturbo_traffic::FloodVariation as Variation;

/// The defenses of Table 3's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// No defense.
    Fifo,
    /// Jaqen keyed on the 5-tuple (Jaqen†).
    JaqenFiveTuple,
    /// Jaqen keyed on the source address (Jaqen‡).
    JaqenSrcIp,
    /// ACC-Turbo (hardware profile, 4 dst-address bytes).
    AccTurbo,
}

impl Defense {
    /// All columns, in the paper's order.
    pub const ALL: [Defense; 4] = [
        Defense::Fifo,
        Defense::JaqenFiveTuple,
        Defense::JaqenSrcIp,
        Defense::AccTurbo,
    ];

    /// Column label.
    pub fn name(self) -> &'static str {
        match self {
            Defense::Fifo => "FIFO",
            Defense::JaqenFiveTuple => "Jaqen(5-tuple)",
            Defense::JaqenSrcIp => "Jaqen(srcIP)",
            Defense::AccTurbo => "ACC-Turbo",
        }
    }
}

/// The single-flow workload shared with Fig. 8's sweeps.
pub fn single_flow_workload(secs: u64, seed: u64) -> MergedSource {
    workloads::flood(Variation::SingleFlow, secs, seed)
}

/// Maps a Table 3 column to its declarative defense (Jaqen runs
/// calibrated at the [`JAQEN_DEFAULT_THRESHOLD`] that reproduces the
/// paper's 2.5–3.7% "No Attack" drops; ACC-Turbo runs the hardware
/// profile over the four destination-address bytes).
pub fn defense_spec(defense: Defense) -> DefenseSpec {
    match defense {
        Defense::Fifo => DefenseSpec::Fifo,
        Defense::JaqenFiveTuple => DefenseSpec::Jaqen(JaqenSpec::new(
            Signature::FiveTuple,
            JAQEN_DEFAULT_THRESHOLD,
        )),
        Defense::JaqenSrcIp => {
            DefenseSpec::Jaqen(JaqenSpec::new(Signature::SrcIp, JAQEN_DEFAULT_THRESHOLD))
        }
        Defense::AccTurbo => {
            DefenseSpec::AccTurbo(AccTurboSpec::hardware(FeatureProfile::HwDstBytes))
        }
    }
}

/// Runs one cell of the table, returning the benign-drop percentage.
pub fn cell(defense: Defense, variation: Variation, secs: u64, seed: u64) -> f64 {
    ScenarioSpec::new(WorkloadSpec::Flood(variation), defense_spec(defense))
        .with_secs(secs)
        .with_seed(seed)
        .execute()
        .result
        .stats
        .benign_drop_pct()
}

/// Regenerates Table 3 at `seed`, returning the rendered report and its
/// machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(100, 5);
    let mut r = FigureResult::new("table3");
    let mut table = Table::new(&[
        "Benign packet drops (%)",
        "FIFO",
        "Jaqen(5-tuple)",
        "Jaqen(srcIP)",
        "ACC-Turbo",
    ]);
    let slug = |s: &str| s.to_lowercase().replace([' ', '(', ')', '-'], "");
    for variation in Variation::ALL {
        let mut cells = vec![variation.name().to_string()];
        for d in Defense::ALL {
            let pct = cell(d, variation, secs, seed);
            r.num(
                &format!(
                    "{}.{}.benign_drop_pct",
                    slug(variation.name()),
                    slug(d.name())
                ),
                pct,
            );
            cells.push(f(pct));
        }
        table.row(cells);
    }
    Figure::new(table.render(), r)
}

/// Regenerates Table 3 at the canonical seed and returns the textual
/// report.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECS: u64 = 60;

    #[test]
    fn fifo_loses_most_benign_under_any_attack() {
        for v in [
            Variation::SingleFlow,
            Variation::CarpetBombing,
            Variation::SourceSpoofing,
        ] {
            let pct = cell(Defense::Fifo, v, SECS, DEFAULT_SEED);
            assert!(pct > 70.0, "{}: FIFO dropped only {pct:.1}%", v.name());
        }
        assert_eq!(
            cell(Defense::Fifo, Variation::NoAttack, SECS, DEFAULT_SEED),
            0.0
        );
    }

    #[test]
    fn jaqen_five_tuple_wins_single_flow_loses_carpet_and_spoof() {
        let single = cell(
            Defense::JaqenFiveTuple,
            Variation::SingleFlow,
            SECS,
            DEFAULT_SEED,
        );
        let carpet = cell(
            Defense::JaqenFiveTuple,
            Variation::CarpetBombing,
            SECS,
            DEFAULT_SEED,
        );
        let spoof = cell(
            Defense::JaqenFiveTuple,
            Variation::SourceSpoofing,
            SECS,
            DEFAULT_SEED,
        );
        assert!(single < 15.0, "single flow: {single:.1}%");
        assert!(
            carpet > 50.0,
            "carpet bombing must defeat the 5-tuple key: {carpet:.1}%"
        );
        assert!(
            spoof > 50.0,
            "spoofing must defeat the 5-tuple key: {spoof:.1}%"
        );
    }

    #[test]
    fn jaqen_src_ip_survives_carpet_but_not_spoofing() {
        let single = cell(
            Defense::JaqenSrcIp,
            Variation::SingleFlow,
            SECS,
            DEFAULT_SEED,
        );
        let carpet = cell(
            Defense::JaqenSrcIp,
            Variation::CarpetBombing,
            SECS,
            DEFAULT_SEED,
        );
        let spoof = cell(
            Defense::JaqenSrcIp,
            Variation::SourceSpoofing,
            SECS,
            DEFAULT_SEED,
        );
        assert!(single < 15.0, "single flow: {single:.1}%");
        assert!(
            carpet < 15.0,
            "srcIP key survives carpet bombing: {carpet:.1}%"
        );
        assert!(
            spoof > 50.0,
            "spoofing must defeat the srcIP key: {spoof:.1}%"
        );
    }

    #[test]
    fn accturbo_is_robust_across_all_variations() {
        for v in [
            Variation::SingleFlow,
            Variation::CarpetBombing,
            Variation::SourceSpoofing,
        ] {
            let pct = cell(Defense::AccTurbo, v, SECS, DEFAULT_SEED);
            assert!(
                pct < 30.0,
                "{}: ACC-Turbo dropped {pct:.1}% (paper: 15-20%)",
                v.name()
            );
        }
        let quiet = cell(Defense::AccTurbo, Variation::NoAttack, SECS, DEFAULT_SEED);
        assert!(quiet < 0.5, "transparent without attack: {quiet:.2}%");
    }
}
