//! # accturbo-experiments
//!
//! Regeneration harness for every table and figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index). Each module
//! owns one figure/table and exposes two entry points:
//!
//! * `figure(Scale, seed) -> Figure` — the rendered report *plus* a
//!   machine-readable [`FigureResult`] (the golden-snapshot payload);
//! * `report(Scale) -> String` — the rendered report at the module's
//!   canonical seed (what `xp` prints by default).
//!
//! The [`FIGURES`] registry lists every figure in the paper's order and
//! is the single source of truth for the `xp` binary, the golden
//! regression tests and the parallel-runner benches.

#![deny(missing_docs)]

pub mod ablations;
pub mod adversarial;
pub mod benchx;
pub mod cli;
pub mod common;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod pushback;
pub mod result;
pub mod robustness;
pub mod spec;
pub mod table3;
pub mod topology;
pub mod trace;
pub mod worstcase;

pub use common::Scale;
pub use result::FigureResult;

/// A figure regeneration: the rendered textual report plus its
/// machine-readable result.
#[derive(Debug, Clone)]
pub struct Figure {
    /// The report as printed by `xp`.
    pub rendered: String,
    /// The structured result, including a `rendered_fnv` digest field of
    /// the full rendered text (the golden backstop against drift that no
    /// summary field covers).
    pub result: FigureResult,
}

impl Figure {
    /// Pairs a rendered report with its result, appending the
    /// `rendered_fnv` digest field.
    pub fn new(rendered: String, mut result: FigureResult) -> Self {
        result.int("rendered_fnv", result::fnv1a64(&rendered));
        Figure { rendered, result }
    }
}

/// One registry entry: a figure's name, canonical seed and seeded entry
/// point.
#[derive(Debug)]
pub struct FigureSpec {
    /// Registry name (`fig2`, `table3`, ...).
    pub name: &'static str,
    /// The seed `xp` uses when `--seeds` is not given — kept identical
    /// to the modules' historical constants so default outputs are
    /// byte-stable across the refactor.
    pub default_seed: u64,
    /// Seeded regeneration entry point.
    pub run: fn(Scale, u64) -> Figure,
}

impl FigureSpec {
    /// Runs the figure at its canonical seed.
    pub fn run_default(&self, scale: Scale) -> Figure {
        (self.run)(scale, self.default_seed)
    }
}

/// Every figure/table `xp` can regenerate, in the paper's order.
pub const FIGURES: &[FigureSpec] = &[
    FigureSpec {
        name: "fig2",
        default_seed: fig2::DEFAULT_SEED,
        run: fig2::figure,
    },
    FigureSpec {
        name: "fig3",
        default_seed: fig3::DEFAULT_SEED,
        run: fig3::figure,
    },
    FigureSpec {
        name: "fig6",
        default_seed: fig6::DEFAULT_SEED,
        run: fig6::figure,
    },
    FigureSpec {
        name: "fig7",
        default_seed: fig7::DEFAULT_SEED,
        run: fig7::figure,
    },
    FigureSpec {
        name: "table3",
        default_seed: table3::DEFAULT_SEED,
        run: table3::figure,
    },
    FigureSpec {
        name: "fig8",
        default_seed: fig8::DEFAULT_SEED,
        run: fig8::figure,
    },
    FigureSpec {
        name: "fig9",
        default_seed: fig9::DEFAULT_SEED,
        run: fig9::figure,
    },
    FigureSpec {
        name: "fig10",
        default_seed: fig10::DEFAULT_SEED,
        run: fig10::figure,
    },
    FigureSpec {
        name: "fig11",
        default_seed: fig11::DEFAULT_SEED,
        run: fig11::figure,
    },
    FigureSpec {
        name: "adversarial",
        default_seed: adversarial::DEFAULT_SEED,
        run: adversarial::figure,
    },
    FigureSpec {
        name: "ablations",
        default_seed: ablations::DEFAULT_SEED,
        run: ablations::figure,
    },
    FigureSpec {
        name: "pushback",
        default_seed: pushback::DEFAULT_SEED,
        run: pushback::figure,
    },
    FigureSpec {
        name: "robustness",
        default_seed: robustness::DEFAULT_SEED,
        run: robustness::figure,
    },
    FigureSpec {
        name: "worstcase",
        default_seed: worstcase::DEFAULT_SEED,
        run: worstcase::figure,
    },
    FigureSpec {
        name: "topology",
        default_seed: topology::DEFAULT_SEED,
        run: topology::figure,
    },
];

/// Looks a figure up by registry name.
pub fn figure_spec(name: &str) -> Option<&'static FigureSpec> {
    FIGURES.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for (i, spec) in FIGURES.iter().enumerate() {
            assert!(
                FIGURES[..i].iter().all(|s| s.name != spec.name),
                "duplicate registry name {}",
                spec.name
            );
            assert!(figure_spec(spec.name).is_some());
        }
        assert!(figure_spec("fig99").is_none());
    }

    #[test]
    fn report_equals_default_seeded_figure() {
        // The legacy `report` entry point and the registry's canonical
        // seed must agree (here spot-checked on the cheapest module).
        let spec = figure_spec("pushback").unwrap();
        assert_eq!(
            spec.run_default(Scale::Quick).rendered,
            pushback::report(Scale::Quick)
        );
    }
}
