//! # accturbo-experiments
//!
//! Regeneration harness for every table and figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index). Each module
//! owns one figure/table and exposes `report(Scale) -> String`, printing
//! the same rows/series the paper reports. The `xp` binary dispatches.

#![deny(missing_docs)]

pub mod ablations;
pub mod adversarial;
pub mod common;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod pushback;
pub mod table3;

pub use common::Scale;
