//! `xp bench-export` — the datapath throughput baseline (DESIGN.md §8).
//!
//! Measures packets/second through the three hot kernels of the fast
//! path — the engine event loop stepping a full ACC-Turbo switch, the
//! online cluster update, and the SP-PIFO ranked enqueue — and, where a
//! pre-optimization path is kept under the `reference` feature, the same
//! workload through that path, recording the speedup. Results are
//! written as machine-readable JSON (`BENCH_datapath.json` by default)
//! so CI can archive the baseline per commit.
//!
//! The export refuses to report a speedup it cannot trust: before
//! timing anything it re-runs a subset of the paper figures with the
//! reference kernels forced on and asserts the rendered reports and
//! golden serializations are byte-identical to the optimized path.

use crate::spec::{AccTurboSpec, FeatureProfile};
use crate::{figure_spec, Scale};
use accturbo_bench::{Harness, Stats};
use accturbo_clustering::online::reference::force_reference_kernels;
use accturbo_clustering::{ClusteringConfig, FeatureSet, OnlineClusterer, WindowStats};
use accturbo_core::AccTurboSwitch;
use accturbo_netsim::engine::reference::run_reference;
use accturbo_netsim::{
    run, Bandwidth, ClassId, EngineConfig, Packet, SimDuration, SimTime, VecSource,
};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use accturbo_sched::SpPifo;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Figures re-run under both kernel paths for the byte-identity gate.
const IDENTITY_FIGURES: &[&str] = &["fig2", "fig6", "fig9"];

/// Parsed `xp bench-export` arguments.
#[derive(Debug, PartialEq, Eq)]
pub struct BenchArgs {
    /// `--smoke`: one iteration per bench (CI wiring check, no timing
    /// fidelity).
    pub smoke: bool,
    /// `--out PATH` (default `BENCH_datapath.json`).
    pub out: String,
}

/// Parses the arguments following `xp bench-export`.
pub fn parse_args(args: &[String]) -> Result<BenchArgs, String> {
    let mut parsed = BenchArgs {
        smoke: false,
        out: "BENCH_datapath.json".to_string(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--out" => {
                parsed.out = it
                    .next()
                    .ok_or_else(|| "--out requires a PATH argument".to_string())?
                    .clone();
            }
            other => return Err(format!("unknown bench-export option `{other}`")),
        }
    }
    Ok(parsed)
}

/// One exported bench row: the optimized path's throughput plus, when a
/// reference path exists, the reference throughput and the speedup.
#[derive(Debug)]
pub struct BenchRow {
    /// Bench name (`engine_step`, `cluster_update`, `sppifo_enqueue`).
    pub name: &'static str,
    /// Packets processed per timed iteration.
    pub elements: u64,
    /// Median nanoseconds per iteration, optimized path.
    pub median_ns: f64,
    /// Packets/second, optimized path.
    pub pkts_per_sec: f64,
    /// Packets/second through the pre-optimization reference path.
    pub reference_pkts_per_sec: Option<f64>,
    /// `pkts_per_sec / reference_pkts_per_sec`.
    pub speedup: Option<f64>,
}

fn row(name: &'static str, fast: &Stats, reference: Option<&Stats>) -> BenchRow {
    let elements = fast.elements.expect("throughput benches carry elements");
    let pkts = |s: &Stats| elements as f64 / (s.median_ns() * 1e-9);
    let fast_pps = pkts(fast);
    let ref_pps = reference.map(pkts);
    BenchRow {
        name,
        elements,
        median_ns: fast.median_ns(),
        pkts_per_sec: fast_pps,
        reference_pkts_per_sec: ref_pps,
        speedup: ref_pps.map(|r| fast_pps / r),
    }
}

/// The synthetic overload workload shared by the engine benches: a
/// carpet of diverse benign flows with a high-rate single-flow attack on
/// top, arriving well above the drain rate so classify, enqueue, drop
/// and dequeue paths all stay hot.
fn engine_workload(n: u64) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let t = SimTime::from_nanos(i * 4_000);
            if i.is_multiple_of(3) {
                Packet::new(t)
                    .with_dst(Ipv4Addr::new(198, 18, 0, 10))
                    .with_ports(123, 4444)
                    .with_size(1000)
                    .with_class(ClassId(1))
            } else {
                Packet::new(t)
                    .with_dst(Ipv4Addr::new(20, 0, (i % 7) as u8, (i % 251) as u8))
                    .with_ports(1024 + (i % 5000) as u16, 443)
                    .with_size(400)
            }
        })
        .collect()
}

fn engine_switch() -> AccTurboSwitch<'static> {
    AccTurboSpec {
        features: FeatureProfile::HwFig6,
        ..AccTurboSpec::simulation()
    }
    .build()
}

fn engine_cfg() -> EngineConfig {
    EngineConfig::new(Bandwidth::from_mbps(100))
        .with_stats_interval(SimDuration::from_secs(1))
        .with_control_period(SimDuration::from_millis(1))
}

/// Engine-step throughput: the calendar loop driving the full ACC-Turbo
/// switch, versus (reference) the sentinel min-scan loop driving the
/// generic per-packet-dispatch kernels.
fn bench_engine_step(h: &Harness, n: u64) -> BenchRow {
    let packets = engine_workload(n);
    let cfg = engine_cfg();
    let fast = h
        .run_batched(
            "engine_step/accturbo",
            Some(n),
            || (VecSource::new(packets.clone()), engine_switch()),
            |(mut src, mut sw)| {
                let res = run(&mut src, &mut sw, &cfg);
                assert_eq!(res.arrivals, n);
            },
        )
        .expect("unfiltered");
    force_reference_kernels(true);
    let reference = h
        .run_batched(
            "engine_step/accturbo (reference)",
            Some(n),
            || (VecSource::new(packets.clone()), engine_switch()),
            |(mut src, mut sw)| {
                let res = run_reference(&mut src, &mut sw, &cfg);
                assert_eq!(res.arrivals, n);
            },
        )
        .expect("unfiltered");
    force_reference_kernels(false);
    row("engine_step", &fast, Some(&reference))
}

/// Cluster-update throughput: `assign` over the simulation profile (10
/// clusters), with a window poll + reset every 2048 packets, versus the
/// reference per-cluster-dispatch full-distance scan.
fn bench_cluster_update(h: &Harness, n: u64) -> BenchRow {
    let packets = engine_workload(n);
    let cfg = ClusteringConfig::deployable(10, FeatureSet::hardware_fig6());
    let mut window: Vec<WindowStats> = Vec::new();
    let mut run_once = |name: &str| {
        h.run_batched(
            name,
            Some(n),
            || OnlineClusterer::new(cfg.clone()),
            |mut c| {
                for (i, pkt) in packets.iter().enumerate() {
                    accturbo_bench::black_box(c.assign(pkt));
                    if i % 2048 == 2047 {
                        c.take_window_into(&mut window);
                        c.reset_clusters();
                    }
                }
            },
        )
        .expect("unfiltered")
    };
    let fast = run_once("cluster_update/assign");
    force_reference_kernels(true);
    let reference = run_once("cluster_update/assign (reference)");
    force_reference_kernels(false);
    row("cluster_update", &fast, Some(&reference))
}

/// SP-PIFO ranked-enqueue throughput (drained interleaved, so the bench
/// isn't dominated by tail drops). No reference path: the scheduler was
/// already allocation-free; this row is the regression baseline.
fn bench_sppifo_enqueue(h: &Harness, n: u64) -> BenchRow {
    let mut rng = StdRng::seed_from_u64(0x5BF0);
    let ranked: Vec<(Packet, u64)> = (0..n)
        .map(|i| {
            let pkt = Packet::new(SimTime::from_nanos(i)).with_size(400);
            (pkt, rng.gen_range(0..4096u64))
        })
        .collect();
    let fast = h
        .run_batched(
            "sppifo_enqueue/ranked",
            Some(n),
            || SpPifo::new(8, 1 << 20),
            |mut sp| {
                let mut drops = Vec::new();
                for (i, (pkt, rank)) in ranked.iter().enumerate() {
                    sp.enqueue_ranked(
                        pkt.clone(),
                        *rank,
                        SimTime::from_nanos(i as u64),
                        &mut drops,
                    );
                    if i % 4 == 3 {
                        accturbo_bench::black_box(sp.dequeue(SimTime::from_nanos(i as u64)));
                    }
                }
            },
        )
        .expect("unfiltered");
    row("sppifo_enqueue", &fast, None)
}

/// Runs `IDENTITY_FIGURES` at quick scale under both kernel paths and
/// returns an error naming the first figure whose rendered report or
/// golden serialization differs.
pub fn check_golden_identity() -> Result<(), String> {
    for name in IDENTITY_FIGURES {
        let spec = figure_spec(name).expect("identity figure is registered");
        let fast = spec.run_default(Scale::Quick);
        force_reference_kernels(true);
        let reference = spec.run_default(Scale::Quick);
        force_reference_kernels(false);
        if fast.rendered != reference.rendered {
            return Err(format!(
                "{name}: rendered report differs between optimized and reference kernels"
            ));
        }
        if fast.result.to_golden() != reference.result.to_golden() {
            return Err(format!(
                "{name}: golden serialization differs between optimized and reference kernels"
            ));
        }
    }
    Ok(())
}

/// Serializes the export: schema tag, mode, identity verdict, rows.
/// String fields go through the shared [`accturbo_obs::escape_json`] so
/// a bench name can never corrupt the document.
pub fn to_json(smoke: bool, rows: &[BenchRow]) -> String {
    use accturbo_obs::escape_json;
    let quoted = |v: &str| {
        let mut q = String::with_capacity(v.len() + 2);
        q.push('"');
        escape_json(v, &mut q);
        q.push('"');
        q
    };
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"accturbo-bench-datapath-v1\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(
        s,
        "  \"golden_identity\": {{ \"figures\": [{}], \"identical\": true }},",
        IDENTITY_FIGURES
            .iter()
            .map(|f| quoted(f))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"name\": {}, \"elements\": {}, \"median_ns_per_iter\": {:.1}, \"pkts_per_sec\": {:.1}",
            quoted(r.name),
            r.elements,
            r.median_ns,
            r.pkts_per_sec
        );
        if let (Some(rp), Some(sp)) = (r.reference_pkts_per_sec, r.speedup) {
            let _ = write!(
                s,
                ", \"reference_pkts_per_sec\": {rp:.1}, \"speedup\": {sp:.3}"
            );
        }
        let _ = writeln!(s, " }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    s.push_str("}\n");
    s
}

/// Runs the three datapath benches on `h` with `n` packets each,
/// returning the export rows (shared with the `fastpath` bench binary).
pub fn run_rows(h: &Harness, n: u64) -> Vec<BenchRow> {
    vec![
        bench_engine_step(h, n),
        bench_cluster_update(h, n),
        bench_sppifo_enqueue(h, n),
    ]
}

/// The `xp bench-export` entry point: identity gate, three benches,
/// JSON export. Returns the path written to.
pub fn run_export(args: &BenchArgs) -> Result<String, String> {
    eprintln!("checking optimized/reference figure identity (quick scale) ...");
    check_golden_identity()?;
    let h = Harness::new(args.smoke, Vec::new());
    let n: u64 = if args.smoke { 4_000 } else { 20_000 };
    let rows = run_rows(&h, n);
    let json = to_json(args.smoke, &rows);
    std::fs::write(&args.out, &json).map_err(|e| format!("cannot write `{}`: {e}", args.out))?;
    for r in &rows {
        if let Some(s) = r.speedup {
            eprintln!("{}: {:.2}x vs reference", r.name, s);
        }
    }
    Ok(args.out.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let d = parse_args(&[]).unwrap();
        assert!(!d.smoke);
        assert_eq!(d.out, "BENCH_datapath.json");
        let p = parse_args(&args(&["--smoke", "--out", "x.json"])).unwrap();
        assert!(p.smoke);
        assert_eq!(p.out, "x.json");
    }

    #[test]
    fn parse_rejects_garbage_and_missing_out() {
        assert!(parse_args(&args(&["--out"]))
            .unwrap_err()
            .contains("requires a PATH"));
        assert!(parse_args(&args(&["--frob"]))
            .unwrap_err()
            .contains("--frob"));
    }

    #[test]
    fn json_shape_with_and_without_reference() {
        let rows = vec![
            BenchRow {
                name: "engine_step",
                elements: 100,
                median_ns: 50.0,
                pkts_per_sec: 2e9,
                reference_pkts_per_sec: Some(1e9),
                speedup: Some(2.0),
            },
            BenchRow {
                name: "sppifo_enqueue",
                elements: 100,
                median_ns: 50.0,
                pkts_per_sec: 2e9,
                reference_pkts_per_sec: None,
                speedup: None,
            },
        ];
        let json = to_json(true, &rows);
        assert!(json.contains("\"schema\": \"accturbo-bench-datapath-v1\""));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.contains("\"identical\": true"));
        let refs = json.matches("reference_pkts_per_sec").count();
        assert_eq!(refs, 1, "only the engine row carries a reference");
    }
}
