//! `xp bench-export` — the datapath throughput baseline (DESIGN.md §8).
//!
//! Measures packets/second through the three hot kernels of the fast
//! path — the engine event loop stepping a full ACC-Turbo switch, the
//! online cluster update, and the SP-PIFO ranked enqueue — and, where a
//! pre-optimization path is kept under the `reference` feature, the same
//! workload through that path, recording the speedup. Results are
//! written as machine-readable JSON (`BENCH_datapath.json` by default)
//! so CI can archive the baseline per commit.
//!
//! The export refuses to report a speedup it cannot trust: before
//! timing anything it re-runs a subset of the paper figures with the
//! reference kernels forced on and asserts the rendered reports and
//! golden serializations are byte-identical to the optimized path.

use crate::spec::{AccTurboSpec, FeatureProfile};
use crate::{figure_spec, Scale};
use accturbo_bench::{Harness, Stats};
use accturbo_clustering::online::reference::force_reference_kernels;
use accturbo_clustering::{ClusteringConfig, FeatureSet, OnlineClusterer, WindowStats};
use accturbo_core::AccTurboSwitch;
use accturbo_netsim::engine::reference::run_reference;
use accturbo_netsim::{
    run, run_sharded, Bandwidth, ClassId, EngineConfig, MergedSource, Packet, PacketSource,
    SimDuration, SimTime, VecSource,
};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use accturbo_sched::SpPifo;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Figures re-run under both kernel paths for the byte-identity gate.
const IDENTITY_FIGURES: &[&str] = &["fig2", "fig6", "fig9"];

/// Shard counts exported by default (`--shards` overrides).
pub const DEFAULT_SHARDS: &[usize] = &[2, 4, 8];

/// Parsed `xp bench-export` arguments.
#[derive(Debug, PartialEq, Eq)]
pub struct BenchArgs {
    /// `--smoke`: one iteration per bench (CI wiring check, no timing
    /// fidelity).
    pub smoke: bool,
    /// `--out PATH` (default `BENCH_datapath.json`).
    pub out: String,
    /// `--shards N[,M…]`: shard counts for the `engine_step_sharded@N`
    /// rows (default [`DEFAULT_SHARDS`]).
    pub shards: Vec<usize>,
}

/// Parses the arguments following `xp bench-export`.
pub fn parse_args(args: &[String]) -> Result<BenchArgs, String> {
    let mut parsed = BenchArgs {
        smoke: false,
        out: "BENCH_datapath.json".to_string(),
        shards: DEFAULT_SHARDS.to_vec(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--out" => {
                parsed.out = it
                    .next()
                    .ok_or_else(|| "--out requires a PATH argument".to_string())?
                    .clone();
            }
            "--shards" => {
                let list = it
                    .next()
                    .ok_or("--shards requires a count list, e.g. `--shards 2,4,8`")?;
                parsed.shards = list
                    .split(',')
                    .map(|t| {
                        t.parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| format!("`{t}` is not a shard count"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other => return Err(format!("unknown bench-export option `{other}`")),
        }
    }
    Ok(parsed)
}

/// One exported bench row: the optimized path's throughput plus, when a
/// reference path exists, the reference throughput and the speedup.
#[derive(Debug)]
pub struct BenchRow {
    /// Bench name — one of the registry's names (see [`is_registered`]).
    pub name: String,
    /// Packets processed per timed iteration.
    pub elements: u64,
    /// Median nanoseconds per iteration, optimized path.
    pub median_ns: f64,
    /// Packets/second, optimized path.
    pub pkts_per_sec: f64,
    /// Packets/second through the pre-optimization reference path.
    pub reference_pkts_per_sec: Option<f64>,
    /// `pkts_per_sec / reference_pkts_per_sec`.
    pub speedup: Option<f64>,
}

/// The bench registry: every row name this module can produce from live
/// code. `engine_step_sharded@N` resolves for any shard count ≥ 1 (the
/// count parameterizes [`bench_engine_step_sharded`]). The JSON writer
/// refuses rows outside this set, and the repo's consistency test
/// resolves every committed `BENCH_datapath.json` row against it — a
/// row from a deleted (or never-landed) bench cannot survive in the
/// archive.
pub fn is_registered(name: &str) -> bool {
    if let Some(n) = name.strip_prefix("engine_step_sharded@") {
        return n.parse::<usize>().is_ok_and(|n| n >= 1);
    }
    matches!(
        name,
        "engine_step" | "cluster_scan_soa" | "cluster_update" | "sppifo_enqueue"
    )
}

fn row(name: String, fast: &Stats, reference: Option<&Stats>) -> BenchRow {
    let elements = fast.elements.expect("throughput benches carry elements");
    let pkts = |s: &Stats| elements as f64 / (s.median_ns() * 1e-9);
    let fast_pps = pkts(fast);
    let ref_pps = reference.map(pkts);
    BenchRow {
        name,
        elements,
        median_ns: fast.median_ns(),
        pkts_per_sec: fast_pps,
        reference_pkts_per_sec: ref_pps,
        speedup: ref_pps.map(|r| fast_pps / r),
    }
}

/// The synthetic overload workload shared by the engine benches: a
/// carpet of diverse benign flows with a high-rate single-flow attack on
/// top, arriving well above the drain rate so classify, enqueue, drop
/// and dequeue paths all stay hot.
fn engine_workload(n: u64) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let t = SimTime::from_nanos(i * 4_000);
            if i.is_multiple_of(3) {
                Packet::new(t)
                    .with_dst(Ipv4Addr::new(198, 18, 0, 10))
                    .with_ports(123, 4444)
                    .with_size(1000)
                    .with_class(ClassId(1))
            } else {
                Packet::new(t)
                    .with_dst(Ipv4Addr::new(20, 0, (i % 7) as u8, (i % 251) as u8))
                    .with_ports(1024 + (i % 5000) as u16, 443)
                    .with_size(400)
            }
        })
        .collect()
}

fn engine_switch() -> AccTurboSwitch<'static> {
    AccTurboSpec {
        features: FeatureProfile::HwFig6,
        ..AccTurboSpec::simulation()
    }
    .build()
}

/// The switch for the sharded rows: the full 12-feature simulation
/// profile — the configuration ROADMAP item 2's "Internet-day at scale"
/// workloads run, and the regime the datapath rebuild targets: wide
/// per-packet feature extraction and a fully occupied cluster scan
/// dominate the step, so the arena's batched extraction and the bounded
/// SoA column scan carry the row. The serial `engine_step` row keeps
/// the 4-feature hardware profile for comparability with its committed
/// history.
fn sharded_switch() -> AccTurboSwitch<'static> {
    AccTurboSpec::simulation().build()
}

fn engine_cfg() -> EngineConfig {
    EngineConfig::new(Bandwidth::from_mbps(100))
        .with_stats_interval(SimDuration::from_secs(1))
        .with_control_period(SimDuration::from_millis(1))
}

/// Engine-step throughput: the calendar loop driving the full ACC-Turbo
/// switch, versus (reference) the sentinel min-scan loop driving the
/// generic per-packet-dispatch kernels.
fn bench_engine_step(h: &Harness, n: u64) -> BenchRow {
    let packets = engine_workload(n);
    let cfg = engine_cfg();
    let fast = h
        .run_batched(
            "engine_step/accturbo",
            Some(n),
            || (VecSource::new(packets.clone()), engine_switch()),
            |(mut src, mut sw)| {
                let res = run(&mut src, &mut sw, &cfg);
                assert_eq!(res.arrivals, n);
            },
        )
        .expect("unfiltered");
    force_reference_kernels(true);
    let reference = h
        .run_batched(
            "engine_step/accturbo (reference)",
            Some(n),
            || (VecSource::new(packets.clone()), engine_switch()),
            |(mut src, mut sw)| {
                let res = run_reference(&mut src, &mut sw, &cfg);
                assert_eq!(res.arrivals, n);
            },
        )
        .expect("unfiltered");
    force_reference_kernels(false);
    row("engine_step".into(), &fast, Some(&reference))
}

/// Source count for the sharded engine rows: enough independent
/// generators that the serial engine pays a realistically wide k-way
/// merge heap (the pulse-wave experiments' shape), while the sharded
/// datapath reassembles the same stream from per-window sorted batches.
const SHARD_SOURCES: usize = 512;

/// The engine workload split across [`SHARD_SOURCES`] generators:
/// source `j` emits every `j`-th packet of the same arrival grid, so the
/// merged stream is `engine_workload`-shaped but must be reassembled
/// from 512 interleaved heads. Per-source src addresses keep the flow
/// space diverse.
fn sharded_workload(n: u64) -> Vec<Vec<Packet>> {
    let per = (n as usize / SHARD_SOURCES).max(1);
    (0..SHARD_SOURCES)
        .map(|j| {
            (0..per)
                .map(|i| {
                    let g = (i * SHARD_SOURCES + j) as u64;
                    let t = SimTime::from_nanos(g * 4_000);
                    if g.is_multiple_of(3) {
                        Packet::new(t)
                            .with_src(Ipv4Addr::new(172, 16, (j / 256) as u8, (j % 256) as u8))
                            .with_dst(Ipv4Addr::new(198, 18, 0, 10))
                            .with_ports(123, 4444)
                            .with_size(1000)
                            .with_class(ClassId(1))
                    } else {
                        Packet::new(t)
                            .with_src(Ipv4Addr::new(10, (j / 256) as u8, (j % 256) as u8, 1))
                            .with_dst(Ipv4Addr::new(20, 0, (g % 7) as u8, (g % 251) as u8))
                            .with_ports(1024 + (g % 5000) as u16, 443)
                            .with_size(400)
                    }
                })
                .collect()
        })
        .collect()
}

fn boxed_sources(per_source: &[Vec<Packet>]) -> Vec<Box<dyn PacketSource>> {
    per_source
        .iter()
        .map(|v| Box::new(VecSource::new(v.clone())) as Box<dyn PacketSource>)
        .collect()
}

/// Sharded-datapath throughput at `shards` generation shards: the
/// windowed shard merge + arena-batched feature extraction + batched
/// link ticks feeding the calendar loop, versus (reference) the
/// pre-optimization engine — the 512-way `MergedSource` heap driving the
/// generic per-packet-dispatch kernels. Both sides drive the
/// [`sharded_switch`] simulation-profile pipeline over the same
/// workload, with byte-identical output (locked down by the
/// `tests/sharded_differential.rs` suite); the row measures what the
/// datapath rebuild is worth end to end.
fn bench_engine_step_sharded(h: &Harness, n: u64, shards: usize) -> BenchRow {
    let per_source = sharded_workload(n);
    let elements: u64 = per_source.iter().map(|v| v.len() as u64).sum();
    let cfg = engine_cfg();
    let fast = h
        .run_batched(
            &format!("engine_step_sharded@{shards}/accturbo"),
            Some(elements),
            || (boxed_sources(&per_source), sharded_switch()),
            |(srcs, mut sw)| {
                let res = run_sharded(srcs, &mut sw, &cfg, shards);
                assert_eq!(res.arrivals, elements);
            },
        )
        .expect("unfiltered");
    force_reference_kernels(true);
    let reference = h
        .run_batched(
            &format!("engine_step_sharded@{shards}/accturbo (reference)"),
            Some(elements),
            || {
                (
                    MergedSource::new(boxed_sources(&per_source)),
                    sharded_switch(),
                )
            },
            |(mut src, mut sw)| {
                let res = run_reference(&mut src, &mut sw, &cfg);
                assert_eq!(res.arrivals, elements);
            },
        )
        .expect("unfiltered");
    force_reference_kernels(false);
    row(
        format!("engine_step_sharded@{shards}"),
        &fast,
        Some(&reference),
    )
}

/// Cluster-update throughput: `assign` over the simulation profile (10
/// clusters), with a window poll + reset every 2048 packets, versus the
/// reference per-cluster-dispatch full-distance scan.
fn bench_cluster_update(h: &Harness, n: u64) -> BenchRow {
    let packets = engine_workload(n);
    let cfg = ClusteringConfig::deployable(10, FeatureSet::hardware_fig6());
    let mut window: Vec<WindowStats> = Vec::new();
    let mut run_once = |name: &str| {
        h.run_batched(
            name,
            Some(n),
            || OnlineClusterer::new(cfg.clone()),
            |mut c| {
                for (i, pkt) in packets.iter().enumerate() {
                    accturbo_bench::black_box(c.assign(pkt));
                    if i % 2048 == 2047 {
                        c.take_window_into(&mut window);
                        c.reset_clusters();
                    }
                }
            },
        )
        .expect("unfiltered")
    };
    let fast = run_once("cluster_update/assign");
    force_reference_kernels(true);
    let reference = run_once("cluster_update/assign (reference)");
    force_reference_kernels(false);
    row("cluster_update".into(), &fast, Some(&reference))
}

/// Nearest-cluster scan throughput on a realistically grown geometry:
/// the struct-of-arrays column scan (`scan_soa`, the live Manhattan
/// kernel) versus the per-cluster array-of-structs scan it replaced
/// (`scan_aos`, kept as the differential oracle). The clusterer is
/// first fed the whole workload so the ten clusters have the stretched,
/// overlapping shapes a scan meets mid-run, then each path re-scans
/// every extracted feature vector. Runs the 12-feature simulation
/// profile — the width the sharded engine rows drive the kernel at,
/// and the regime where the flat column layout pays (a 4-feature row
/// leaves nothing for the vectorized pass to chew on).
fn bench_cluster_scan_soa(h: &Harness, n: u64) -> BenchRow {
    let packets = engine_workload(n);
    let features = FeatureSet::simulation_default();
    let cfg = ClusteringConfig::deployable(10, features.clone());
    let mut clusterer = OnlineClusterer::new(cfg);
    for pkt in &packets {
        clusterer.assign(pkt);
    }
    let vectors: Vec<Vec<u32>> = packets
        .iter()
        .map(|p| {
            let mut v = Vec::new();
            features.extract_into(p, &mut v);
            v
        })
        .collect();
    let fast = h
        .run_batched(
            "cluster_scan_soa/scan",
            Some(n),
            || (),
            |()| {
                for v in &vectors {
                    accturbo_bench::black_box(clusterer.scan_soa(v));
                }
            },
        )
        .expect("unfiltered");
    let reference = h
        .run_batched(
            "cluster_scan_soa/scan (aos)",
            Some(n),
            || (),
            |()| {
                for v in &vectors {
                    accturbo_bench::black_box(clusterer.scan_aos(v));
                }
            },
        )
        .expect("unfiltered");
    row("cluster_scan_soa".into(), &fast, Some(&reference))
}

/// SP-PIFO ranked-enqueue throughput (drained interleaved, so the bench
/// isn't dominated by tail drops). No reference path: the scheduler was
/// already allocation-free; this row is the regression baseline.
fn bench_sppifo_enqueue(h: &Harness, n: u64) -> BenchRow {
    let mut rng = StdRng::seed_from_u64(0x5BF0);
    let ranked: Vec<(Packet, u64)> = (0..n)
        .map(|i| {
            let pkt = Packet::new(SimTime::from_nanos(i)).with_size(400);
            (pkt, rng.gen_range(0..4096u64))
        })
        .collect();
    let fast = h
        .run_batched(
            "sppifo_enqueue/ranked",
            Some(n),
            || SpPifo::new(8, 1 << 20),
            |mut sp| {
                let mut drops = Vec::new();
                for (i, (pkt, rank)) in ranked.iter().enumerate() {
                    sp.enqueue_ranked(
                        pkt.clone(),
                        *rank,
                        SimTime::from_nanos(i as u64),
                        &mut drops,
                    );
                    if i % 4 == 3 {
                        accturbo_bench::black_box(sp.dequeue(SimTime::from_nanos(i as u64)));
                    }
                }
            },
        )
        .expect("unfiltered");
    row("sppifo_enqueue".into(), &fast, None)
}

/// Runs `IDENTITY_FIGURES` at quick scale under both kernel paths and
/// returns an error naming the first figure whose rendered report or
/// golden serialization differs.
pub fn check_golden_identity() -> Result<(), String> {
    for name in IDENTITY_FIGURES {
        let spec = figure_spec(name).expect("identity figure is registered");
        let fast = spec.run_default(Scale::Quick);
        force_reference_kernels(true);
        let reference = spec.run_default(Scale::Quick);
        force_reference_kernels(false);
        if fast.rendered != reference.rendered {
            return Err(format!(
                "{name}: rendered report differs between optimized and reference kernels"
            ));
        }
        if fast.result.to_golden() != reference.result.to_golden() {
            return Err(format!(
                "{name}: golden serialization differs between optimized and reference kernels"
            ));
        }
    }
    Ok(())
}

/// The host's core count, recorded in the export so trajectory rows are
/// comparable across machines (a sharded speedup on one core is pure
/// algorithm; on many cores it could hide thread parallelism).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Serializes the export: schema tag, mode, host core count, identity
/// verdict, rows. Refuses any row whose name does not resolve against
/// the bench registry — the archive must never carry a number no
/// in-tree bench can reproduce. String fields go through the shared
/// [`accturbo_obs::escape_json`] so a bench name can never corrupt the
/// document.
pub fn to_json(smoke: bool, cores: usize, rows: &[BenchRow]) -> Result<String, String> {
    use accturbo_obs::escape_json;
    for r in rows {
        if !is_registered(&r.name) {
            return Err(format!(
                "refusing to export `{}`: no registered live bench produces this row",
                r.name
            ));
        }
    }
    let quoted = |v: &str| {
        let mut q = String::with_capacity(v.len() + 2);
        q.push('"');
        escape_json(v, &mut q);
        q.push('"');
        q
    };
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"accturbo-bench-datapath-v1\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"host_cores\": {cores},");
    let _ = writeln!(
        s,
        "  \"golden_identity\": {{ \"figures\": [{}], \"identical\": true }},",
        IDENTITY_FIGURES
            .iter()
            .map(|f| quoted(f))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"name\": {}, \"elements\": {}, \"median_ns_per_iter\": {:.1}, \"pkts_per_sec\": {:.1}",
            quoted(&r.name),
            r.elements,
            r.median_ns,
            r.pkts_per_sec
        );
        if let (Some(rp), Some(sp)) = (r.reference_pkts_per_sec, r.speedup) {
            let _ = write!(
                s,
                ", \"reference_pkts_per_sec\": {rp:.1}, \"speedup\": {sp:.3}"
            );
        }
        let _ = writeln!(s, " }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    s.push_str("}\n");
    Ok(s)
}

/// Runs the datapath benches on `h` with `n` packets each — the serial
/// engine step, one sharded engine step per count in `shards`, the
/// cluster kernels, and the SP-PIFO enqueue — returning the export rows
/// (shared with the `fastpath` bench binary).
pub fn run_rows(h: &Harness, n: u64, shards: &[usize]) -> Vec<BenchRow> {
    let mut rows = vec![bench_engine_step(h, n)];
    for &s in shards {
        rows.push(bench_engine_step_sharded(h, n, s));
    }
    rows.push(bench_cluster_scan_soa(h, n));
    rows.push(bench_cluster_update(h, n));
    rows.push(bench_sppifo_enqueue(h, n));
    rows
}

/// The `xp bench-export` entry point: identity gate, datapath benches,
/// JSON export. Returns the path written to.
pub fn run_export(args: &BenchArgs) -> Result<String, String> {
    eprintln!("checking optimized/reference figure identity (quick scale) ...");
    check_golden_identity()?;
    let h = Harness::new(args.smoke, Vec::new());
    let n: u64 = if args.smoke { 4_000 } else { 20_000 };
    let rows = run_rows(&h, n, &args.shards);
    let json = to_json(args.smoke, host_cores(), &rows)?;
    std::fs::write(&args.out, &json).map_err(|e| format!("cannot write `{}`: {e}", args.out))?;
    for r in &rows {
        if let Some(s) = r.speedup {
            eprintln!("{}: {:.2}x vs reference", r.name, s);
        }
    }
    Ok(args.out.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn sample_row(name: &str) -> BenchRow {
        BenchRow {
            name: name.to_string(),
            elements: 100,
            median_ns: 50.0,
            pkts_per_sec: 2e9,
            reference_pkts_per_sec: Some(1e9),
            speedup: Some(2.0),
        }
    }

    #[test]
    fn parse_defaults_and_flags() {
        let d = parse_args(&[]).unwrap();
        assert!(!d.smoke);
        assert_eq!(d.out, "BENCH_datapath.json");
        assert_eq!(d.shards, DEFAULT_SHARDS);
        let p = parse_args(&args(&["--smoke", "--out", "x.json", "--shards", "2,16"])).unwrap();
        assert!(p.smoke);
        assert_eq!(p.out, "x.json");
        assert_eq!(p.shards, vec![2, 16]);
    }

    #[test]
    fn parse_rejects_garbage_and_missing_out() {
        assert!(parse_args(&args(&["--out"]))
            .unwrap_err()
            .contains("requires a PATH"));
        assert!(parse_args(&args(&["--frob"]))
            .unwrap_err()
            .contains("--frob"));
        assert!(parse_args(&args(&["--shards", "0"]))
            .unwrap_err()
            .contains("shard count"));
        assert!(parse_args(&args(&["--shards", "2,x"]))
            .unwrap_err()
            .contains("shard count"));
    }

    #[test]
    fn json_shape_with_and_without_reference() {
        let rows = vec![
            sample_row("engine_step"),
            BenchRow {
                reference_pkts_per_sec: None,
                speedup: None,
                ..sample_row("sppifo_enqueue")
            },
        ];
        let json = to_json(true, 4, &rows).unwrap();
        assert!(json.contains("\"schema\": \"accturbo-bench-datapath-v1\""));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("\"host_cores\": 4"));
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.contains("\"identical\": true"));
        let refs = json.matches("reference_pkts_per_sec").count();
        assert_eq!(refs, 1, "only the engine row carries a reference");
    }

    #[test]
    fn registry_resolves_every_producible_row_and_nothing_else() {
        for name in [
            "engine_step",
            "engine_step_sharded@1",
            "engine_step_sharded@8",
            "engine_step_sharded@64",
            "cluster_scan_soa",
            "cluster_update",
            "sppifo_enqueue",
        ] {
            assert!(is_registered(name), "{name} must resolve");
        }
        for name in [
            "engine_step_sharded@0",
            "engine_step_sharded@",
            "engine_step_sharded@two",
            "cluster_scan",
            "made_up_bench",
        ] {
            assert!(!is_registered(name), "{name} must not resolve");
        }
    }

    #[test]
    fn export_refuses_unregistered_rows() {
        let rows = vec![sample_row("engine_step"), sample_row("made_up_bench")];
        let err = to_json(false, 1, &rows).unwrap_err();
        assert!(err.contains("made_up_bench"), "{err}");
        assert!(err.contains("no registered live bench"), "{err}");
    }
}
