//! The `xp` command-line front end: argument parsing and the parallel
//! figure-run orchestration.
//!
//! Parsing and execution live in the library (rather than `main.rs`) so
//! both are unit-testable: [`parse`] covers every flag/figure error path
//! and [`run_figures`] writes its output through a caller-supplied sink,
//! which the determinism tests point at a `String` instead of stdout.
//!
//! Output contract: the emitted byte stream depends only on the parsed
//! [`Cli`], never on `jobs` — the runner delivers results in job-index
//! order, so `--jobs 8` is byte-identical to `--jobs 1`.

use crate::result::aggregate_csv;
use crate::spec::{DefenseSpec, ScenarioSpec, TopologySpec, WorkloadSpec};
use crate::{figure_spec, FigureSpec, Scale, FIGURES};
use accturbo_netsim::SimDuration;
use accturbo_obs::{
    shared_recorder, DatasetSink, FlightRecorder, FlowSampler, JsonlSink, Telemetry,
};
use std::fmt::Write as _;
use std::time::Duration;

/// The parsed `xp` invocation.
#[derive(Debug)]
pub struct Cli {
    /// Experiment scale (`--quick` selects [`Scale::Quick`]).
    pub scale: Scale,
    /// Resolved run targets: deduplicated, unknown names rejected, `all`
    /// expanded, first-mention order preserved. Empty means "all".
    pub targets: Vec<&'static FigureSpec>,
    /// Worker threads for the figure fan-out (`--jobs N`, default: the
    /// machine's available parallelism).
    pub jobs: usize,
    /// Explicit seeds (`--seeds a,b,c`). Empty means each figure runs
    /// once at its canonical [`FigureSpec::default_seed`].
    pub seeds: Vec<u64>,
    /// `--trace PATH`: JSONL trace export of the instrumented Fig. 2
    /// scenario, plus the run's job spans.
    pub trace: Option<String>,
    /// `--metrics PATH`: JSONL metrics export of the same scenario.
    pub metrics: Option<String>,
    /// `--faults KIND:VAL,...`: custom fault mix. Non-empty switches the
    /// run to the robustness scenario under exactly this mix (baseline +
    /// faulted cell) instead of the generic figure fan-out.
    pub faults: Vec<(String, f64)>,
    /// `--sink PATH`: stream the Fig. 2 ACC-Turbo scenario's per-period
    /// telemetry (period lines + metric aggregates) to a JSONL file.
    pub sink: Option<String>,
    /// `--dataset PATH`: export that run's reservoir-sampled flow
    /// records as a labeled dataset (CSV or JSONL by extension).
    pub dataset: Option<String>,
    /// `--flight-recorder PATH`: arm a flight recorder on the same run
    /// and write any dumped incident windows (JSONL) to PATH.
    pub flight_recorder: Option<String>,
}

/// The usage text (`xp --help`).
pub fn usage() -> String {
    let names: Vec<&str> = FIGURES.iter().map(|s| s.name).collect();
    format!(
        "xp — regenerate the paper's tables and figures\n\
         \n\
         USAGE:\n\
         \x20   xp [FIGURE...] [OPTIONS]     run the named figures (default: all)\n\
         \x20   xp run KEY=VAL[,KEY=VAL...]  run one declarative scenario: any\n\
         \x20                                workload x defense combination, not\n\
         \x20                                just the paper's. Keys: workload\n\
         \x20                                (required), defense (default fifo),\n\
         \x20                                link (10m/2.5g/bps), secs, seed,\n\
         \x20                                period (250ms/1s), topology\n\
         \x20                                (line:N/star:N/fattree:K/isp-edge\n\
         \x20                                with :delay= :uplink= :attackers=\n\
         \x20                                :edges=same :pushback=on :refresh=),\n\
         \x20                                faults (KIND:VAL+KIND:VAL; single\n\
         \x20                                switch only). Flags: --csv\n\
         \x20                                (panel only), --quick.\n\
         \x20                                e.g. xp run workload=fig2 defense=accturbo\n\
         \x20                                     xp run workload=flood:carpet \\\n\
         \x20                                            defense=accturbo:profile=hw:features=dst4\n\
         \x20                                     xp run workload=flood defense=acc \\\n\
         \x20                                            topology=star:4:attackers=0+1:pushback=on\n\
         \x20   xp search defense=SPEC [KEY=VAL...]\n\
         \x20                                adversarial worst-case search: anneal\n\
         \x20                                over the pulse-attack knobs (period,\n\
         \x20                                duty, amplitude, vector mix, spread,\n\
         \x20                                ramp) for the attack that drops the\n\
         \x20                                most benign traffic under SPEC. Keys:\n\
         \x20                                defense (required), secs, link. Flags:\n\
         \x20                                --budget N (default 32), --seed N,\n\
         \x20                                --top N (frontier size, default 10),\n\
         \x20                                --jobs N (never changes the result),\n\
         \x20                                --out PATH (write the replayable\n\
         \x20                                corpus file), --quick (corpus frame).\n\
         \x20                                e.g. xp search defense=accturbo \\\n\
         \x20                                        --budget 48 --out acc.corpus\n\
         \x20   xp trace PATH                pretty-print a JSONL trace file\n\
         \x20   xp bench-export [--smoke] [--out PATH]\n\
         \x20                                measure datapath throughput (engine\n\
         \x20                                step, cluster update, SP-PIFO enqueue)\n\
         \x20                                vs the pre-optimization reference and\n\
         \x20                                write BENCH_datapath.json\n\
         \n\
         FIGURES:\n\
         \x20   {}\n\
         \x20   all                          everything above\n\
         \n\
         OPTIONS:\n\
         \x20   --quick                      shrink durations/rates (CI scale)\n\
         \x20   --smoke                      alias for --quick (CI smoke runs)\n\
         \x20   --faults KIND:VAL,...        run the robustness scenario under a\n\
         \x20                                custom fault mix (kinds: ctrl_drop,\n\
         \x20                                ctrl_delay, stale, pkt_drop,\n\
         \x20                                pkt_reorder, link_flap; VAL in [0,1])\n\
         \x20   --jobs N                     run figures on N worker threads\n\
         \x20                                (default: available parallelism;\n\
         \x20                                output is identical for any N)\n\
         \x20   --seeds A,B,C                run every figure once per seed and\n\
         \x20                                append a mean/min/max aggregate\n\
         \x20                                (default: each figure's canonical seed)\n\
         \x20   --trace PATH                 also run the Fig. 2 ACC-Turbo scenario\n\
         \x20                                with event tracing and write the JSONL\n\
         \x20                                trace (plus this run's job spans) to PATH\n\
         \x20   --metrics PATH               write the same run's per-interval\n\
         \x20                                metrics snapshots (JSONL) to PATH\n\
         \x20   --sink PATH                  stream the same scenario's per-period\n\
         \x20                                telemetry (period lines + counter\n\
         \x20                                deltas/gauges/histogram merges) to a\n\
         \x20                                JSONL file with bounded memory\n\
         \x20                                (also an `xp run` flag)\n\
         \x20   --dataset PATH               export reservoir-sampled per-flow\n\
         \x20                                records from that run as a labeled\n\
         \x20                                dataset; .csv or .jsonl by extension\n\
         \x20                                (also an `xp run` flag)\n\
         \x20   --flight-recorder PATH       arm a flight recorder: dump a JSONL\n\
         \x20                                window of events around faults,\n\
         \x20                                degradation, or pulse onsets to PATH\n\
         \x20                                (also an `xp run` flag)\n\
         \x20   --help                       this text",
        names.join(", ")
    )
}

fn valid_names() -> String {
    let names: Vec<&str> = FIGURES.iter().map(|s| s.name).collect();
    format!("{}, all", names.join(", "))
}

/// Parses a `KIND:VAL`-separated fault mix (both the `--faults` flag,
/// comma-separated, and `xp run`'s `faults=` key, `+`-separated).
/// `ctx` prefixes every error message.
fn parse_fault_mix(ctx: &str, raw: &str, sep: char) -> Result<Vec<(String, f64)>, String> {
    let mut mix: Vec<(String, f64)> = Vec::new();
    for part in raw.split(sep) {
        let part = part.trim();
        if part.is_empty() {
            return Err(format!("{ctx}: empty entry in `{raw}`"));
        }
        let (kind, val) = part
            .split_once(':')
            .ok_or_else(|| format!("{ctx}: `{part}` is not KIND:VAL"))?;
        if !crate::robustness::FAULT_KINDS.contains(&kind) {
            return Err(format!(
                "{ctx}: unknown fault kind `{kind}`; valid kinds: {}",
                crate::robustness::FAULT_KINDS.join(", ")
            ));
        }
        let v: f64 = val
            .parse()
            .map_err(|_| format!("{ctx}: `{val}` is not an intensity"))?;
        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
            return Err(format!(
                "{ctx}: intensity {val} for `{kind}` must be in [0, 1]"
            ));
        }
        if mix.iter().any(|(k, _)| k == kind) {
            return Err(format!("{ctx}: duplicate fault kind `{kind}`"));
        }
        mix.push((kind.to_string(), v));
    }
    Ok(mix)
}

/// Parses `xp` arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        scale: Scale::Full,
        targets: Vec::new(),
        jobs: accturbo_runner::default_threads(),
        seeds: Vec::new(),
        trace: None,
        metrics: None,
        faults: Vec::new(),
        sink: None,
        dataset: None,
        flight_recorder: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" | "--smoke" => cli.scale = Scale::Quick,
            "--faults" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--faults requires a KIND:VAL,... fault mix".to_string())?;
                cli.faults = parse_fault_mix("--faults", raw, ',')?;
            }
            "--jobs" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--jobs requires a thread count".to_string())?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("--jobs: `{raw}` is not a thread count"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                cli.jobs = n;
            }
            "--seeds" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--seeds requires a comma-separated seed list".to_string())?;
                let mut seeds = Vec::new();
                for part in raw.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        return Err(format!("--seeds: empty entry in `{raw}`"));
                    }
                    let seed: u64 = part
                        .parse()
                        .map_err(|_| format!("--seeds: `{part}` is not a u64 seed"))?;
                    if seeds.contains(&seed) {
                        return Err(format!("--seeds: duplicate seed {seed}"));
                    }
                    seeds.push(seed);
                }
                cli.seeds = seeds;
            }
            "--trace" => {
                cli.trace = Some(
                    it.next()
                        .ok_or_else(|| "--trace requires a PATH argument".to_string())?
                        .clone(),
                );
            }
            "--metrics" => {
                cli.metrics = Some(
                    it.next()
                        .ok_or_else(|| "--metrics requires a PATH argument".to_string())?
                        .clone(),
                );
            }
            "--sink" => {
                cli.sink = Some(
                    it.next()
                        .ok_or_else(|| "--sink requires a PATH argument".to_string())?
                        .clone(),
                );
            }
            "--dataset" => {
                cli.dataset = Some(
                    it.next()
                        .ok_or_else(|| "--dataset requires a PATH argument".to_string())?
                        .clone(),
                );
            }
            "--flight-recorder" => {
                cli.flight_recorder = Some(
                    it.next()
                        .ok_or_else(|| "--flight-recorder requires a PATH argument".to_string())?
                        .clone(),
                );
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option `{flag}`"));
            }
            "all" => {
                for spec in FIGURES {
                    if !cli.targets.iter().any(|t| t.name == spec.name) {
                        cli.targets.push(spec);
                    }
                }
            }
            name => {
                let spec = figure_spec(name).ok_or_else(|| {
                    format!("unknown figure `{name}`; valid names: {}", valid_names())
                })?;
                if !cli.targets.iter().any(|t| t.name == spec.name) {
                    cli.targets.push(spec);
                }
            }
        }
    }
    if cli.targets.is_empty() {
        cli.targets = FIGURES.iter().collect();
    }
    Ok(cli)
}

/// One finished figure job's timing, for `--trace` job spans and the
/// speedup bench.
#[derive(Debug, Clone)]
pub struct JobSpan {
    /// The figure's registry name.
    pub figure: &'static str,
    /// The seed the figure ran at.
    pub seed: u64,
    /// The worker thread (0-based) that ran the job.
    pub worker: usize,
    /// Job start, measured from the pool's launch.
    pub started_at: Duration,
    /// Wall-clock time the job took.
    pub elapsed: Duration,
}

/// Runs the parsed figure selection on `cli.jobs` workers, handing each
/// output block to `sink` **in deterministic order** (figures in target
/// order, seeds in `--seeds` order, aggregate after a figure's last
/// seed). Returns the per-job wall-clock spans.
pub fn run_figures(cli: &Cli, mut sink: impl FnMut(&str)) -> Vec<JobSpan> {
    // A custom fault mix bypasses the registry fan-out: the registry's
    // `fn(Scale, u64)` entry points cannot carry the mix, and a faulted
    // run answers one question (baseline vs this mix), not twelve.
    if !cli.faults.is_empty() {
        let seed = cli
            .seeds
            .first()
            .copied()
            .unwrap_or(crate::robustness::DEFAULT_SEED);
        let fig = crate::robustness::figure_with(cli.scale, seed, &cli.faults);
        let mut block = String::new();
        let _ = writeln!(
            block,
            "==================== robustness (custom faults, seed {seed}) ===================="
        );
        let _ = writeln!(block, "{}", fig.rendered);
        sink(&block);
        return Vec::new();
    }
    // The job list: figure-major, seed-minor, so a figure's seeds are
    // contiguous in delivery order and the aggregate can flush as soon
    // as its last seed lands.
    let seeded = !cli.seeds.is_empty();
    let per_figure = cli.seeds.len().max(1);
    let jobs: Vec<(&'static FigureSpec, u64)> = cli
        .targets
        .iter()
        .flat_map(|spec| {
            if seeded {
                cli.seeds.iter().map(|&s| (*spec, s)).collect::<Vec<_>>()
            } else {
                vec![(*spec, spec.default_seed)]
            }
        })
        .collect();

    let mut spans = Vec::with_capacity(jobs.len());
    let mut pending = Vec::with_capacity(per_figure);
    accturbo_runner::run_streaming(
        cli.jobs,
        jobs.len(),
        |i| {
            let (spec, seed) = jobs[i];
            (spec.run)(cli.scale, seed)
        },
        |r| {
            let (spec, seed) = jobs[r.index];
            spans.push(JobSpan {
                figure: spec.name,
                seed,
                worker: r.worker,
                started_at: r.started_at,
                elapsed: r.elapsed,
            });
            let mut block = String::new();
            if seeded {
                let _ = writeln!(
                    block,
                    "==================== {} (seed {seed}) ====================",
                    spec.name
                );
            } else {
                let _ = writeln!(
                    block,
                    "==================== {} ====================",
                    spec.name
                );
            }
            let _ = writeln!(block, "{}", r.output.rendered);
            if seeded {
                pending.push(r.output);
                if pending.len() == per_figure {
                    if per_figure > 1 {
                        let _ = writeln!(
                            block,
                            "==================== {} aggregate over {} seeds ====================",
                            spec.name, per_figure
                        );
                        let results: Vec<_> =
                            pending.iter().map(|f: &crate::Figure| &f.result).collect();
                        let _ = writeln!(block, "{}", aggregate_csv(&results).trim_end());
                        let _ = writeln!(block);
                    }
                    pending.clear();
                }
            }
            sink(&block);
        },
    );
    spans
}

// ---------------------------------------------------------------------------
// `xp run` — one declarative scenario
// ---------------------------------------------------------------------------

/// The parsed `xp run` invocation: a full scenario plus output shape.
#[derive(Debug)]
pub struct RunCmd {
    /// The scenario to execute.
    pub spec: ScenarioSpec,
    /// `--csv`: emit only the per-second panel, no header or summary.
    pub csv: bool,
    /// `--sink PATH`: stream per-period telemetry to a JSONL file.
    pub sink: Option<String>,
    /// `--dataset PATH`: export sampled flow records as a labeled
    /// dataset (CSV or JSONL by extension).
    pub dataset: Option<String>,
    /// `--flight-recorder PATH`: dump incident windows (JSONL) to PATH.
    pub flight_recorder: Option<String>,
}

impl RunCmd {
    /// Whether any streaming-telemetry output was requested.
    pub fn wants_telemetry(&self) -> bool {
        self.sink.is_some() || self.dataset.is_some() || self.flight_recorder.is_some()
    }
}

/// Parses a bandwidth value: plain bps, or with a `k`/`m`/`g` suffix
/// (`10m` = 10 Mbps, `2.5g` = 2.5 Gbps).
fn parse_link(v: &str) -> Result<u64, String> {
    crate::spec::parse_bandwidth(v).map_err(|e| format!("xp run: {e}"))
}

/// Parses a control period: `250ms`, `1s`, or bare seconds (`0.25`).
fn parse_period(v: &str) -> Result<SimDuration, String> {
    let (num, div) = if let Some(ms) = v.strip_suffix("ms") {
        (ms, 1000.0)
    } else {
        (v.strip_suffix('s').unwrap_or(v), 1.0)
    };
    let x: f64 = num
        .parse()
        .map_err(|_| format!("xp run: `{v}` is not a period (e.g. 250ms, 1s)"))?;
    if !x.is_finite() || x <= 0.0 {
        return Err(format!("xp run: period `{v}` must be positive"));
    }
    Ok(SimDuration::from_secs_f64(x / div))
}

/// Parses `xp run` arguments: `key=value` pairs (comma- or
/// space-separated) plus the `--csv` / `--quick` flags and the
/// path-valued `--sink` / `--dataset` / `--flight-recorder` flags.
pub fn parse_run(args: &[String]) -> Result<RunCmd, String> {
    let mut workload: Option<WorkloadSpec> = None;
    let mut defense = DefenseSpec::Fifo;
    let mut csv = false;
    let mut quick = false;
    let mut secs: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut link: Option<u64> = None;
    let mut period: Option<SimDuration> = None;
    let mut topology: Option<TopologySpec> = None;
    let mut shards: Option<usize> = None;
    let mut fault_mix: Vec<(String, f64)> = Vec::new();
    let mut sink: Option<String> = None;
    let mut dataset: Option<String> = None;
    let mut flight_recorder: Option<String> = None;

    // Path-valued flags take their value from the *next whole argument*
    // and must be peeled off before the key=value tokenizer splits
    // everything on commas and spaces (paths may contain either).
    let mut rest: Vec<&String> = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if matches!(flag, "--sink" | "--dataset" | "--flight-recorder") {
            let val = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .ok_or_else(|| format!("xp run: {flag} requires a PATH argument"))?
                .clone();
            match flag {
                "--sink" => sink = Some(val),
                "--dataset" => dataset = Some(val),
                _ => flight_recorder = Some(val),
            }
            i += 2;
        } else {
            rest.push(&args[i]);
            i += 1;
        }
    }

    let mut seen_keys: Vec<String> = Vec::new();
    for token in rest
        .iter()
        .flat_map(|a| a.split([',', ' ']))
        .filter(|t| !t.is_empty())
    {
        match token {
            "--csv" => csv = true,
            "--quick" | "--smoke" => quick = true,
            flag if flag.starts_with("--") => {
                return Err(format!("xp run: unknown option `{flag}`"));
            }
            pair => {
                let (key, val) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("xp run: expected `key=value`, got `{pair}`"))?;
                // A repeated key is almost always a typo'd scenario, and
                // silently letting the last mention win would run the
                // wrong experiment — reject instead.
                if seen_keys.iter().any(|k| k == key) {
                    return Err(format!("xp run: duplicate key `{key}`"));
                }
                seen_keys.push(key.to_string());
                match key {
                    "workload" => {
                        workload = Some(val.parse().map_err(|e| format!("xp run: workload: {e}"))?)
                    }
                    "defense" => {
                        defense = val.parse().map_err(|e| format!("xp run: defense: {e}"))?
                    }
                    "secs" => {
                        let n: u64 = val.parse().map_err(|_| {
                            format!("xp run: `{val}` is not a run length in seconds")
                        })?;
                        if n == 0 {
                            return Err("xp run: secs must be at least 1".to_string());
                        }
                        secs = Some(n);
                    }
                    "seed" => {
                        seed = Some(
                            val.parse()
                                .map_err(|_| format!("xp run: `{val}` is not a u64 seed"))?,
                        );
                    }
                    "link" => link = Some(parse_link(val)?),
                    "period" => period = Some(parse_period(val)?),
                    "topology" => {
                        topology = Some(val.parse().map_err(|e| format!("xp run: topology: {e}"))?)
                    }
                    "shards" => {
                        let n: usize = val
                            .parse()
                            .map_err(|_| format!("xp run: `{val}` is not a shard count"))?;
                        if n == 0 {
                            return Err("xp run: shards must be at least 1".to_string());
                        }
                        shards = Some(n);
                    }
                    "faults" => fault_mix = parse_fault_mix("xp run: faults", val, '+')?,
                    other => {
                        return Err(format!(
                            "xp run: unknown key `{other}`; valid keys: workload, defense, \
                             link, secs, seed, period, topology, shards, faults"
                        ));
                    }
                }
            }
        }
    }
    let workload = workload
        .ok_or_else(|| "xp run: `workload=` is required (e.g. workload=fig2)".to_string())?;
    if topology.is_some() && !fault_mix.is_empty() {
        return Err("xp run: the fault plane models a single defended switch; \
                    combine either faults= or topology=, not both"
            .to_string());
    }
    let wants_telemetry = sink.is_some() || dataset.is_some() || flight_recorder.is_some();
    // `topology=line:1` (at default options) is byte-identical to the
    // single-switch engine — tests/topology_matrix.rs locks that down —
    // so it may carry streaming telemetry; every deeper shape is
    // genuinely multi-switch and cannot.
    if wants_telemetry && topology.as_ref().is_some_and(|t| !t.is_single_switch()) {
        return Err(
            "xp run: streaming telemetry supports only the single-switch \
                    `topology=line:1`; drop --sink/--dataset/--flight-recorder or topology="
                .to_string(),
        );
    }
    let shard_count = shards.unwrap_or(1);
    if shard_count > 1 {
        if topology.is_some() {
            return Err(
                "xp run: the sharded datapath runs the single defended switch; \
                        drop shards= or topology="
                    .to_string(),
            );
        }
        if !fault_mix.is_empty() {
            return Err("xp run: the sharded datapath has no fault plane; \
                        drop shards= or faults="
                .to_string());
        }
        if wants_telemetry {
            return Err("xp run: streaming telemetry runs the serial engine; \
                        drop --sink/--dataset/--flight-recorder or shards="
                .to_string());
        }
    }
    let quick_secs = workload.default_secs(Scale::Quick);
    let mut spec = ScenarioSpec::new(workload, defense);
    if quick {
        spec = spec.with_secs(quick_secs);
    }
    // A topology stretches the path (propagation RTT, pushback
    // convergence); inheriting the single-switch figure default would
    // silently cut the interesting tail off deep topologies. Pad the
    // default — an explicit secs= below still wins.
    if let Some(t) = &topology {
        let padded = spec.secs + t.extra_secs();
        spec = spec.with_secs(padded);
    }
    if let Some(s) = secs {
        spec = spec.with_secs(s);
    }
    if let Some(s) = seed {
        spec = spec.with_seed(s);
    }
    if let Some(l) = link {
        spec = spec.with_link(l);
    }
    if let Some(p) = period {
        spec = spec.with_period(p);
    }
    if let Some(t) = topology {
        spec = spec.with_topology(t);
    }
    if shard_count > 1 {
        spec = spec.with_shards(shard_count);
    }
    if !fault_mix.is_empty() {
        let fault_seed = spec.seed;
        spec = spec.with_faults(crate::robustness::config_from_mix(&fault_mix, fault_seed));
    }
    Ok(RunCmd {
        spec,
        csv,
        sink,
        dataset,
        flight_recorder,
    })
}

/// Default capacities for CLI-constructed telemetry: the reservoir keeps
/// this many flows, the flight recorder this many events with this much
/// post-trigger aftermath. Fixed (not flags) so two runs of the same
/// scenario always sample identically.
const SAMPLER_FLOWS: usize = 4096;
const RECORDER_EVENTS: usize = 512;
const RECORDER_POST: usize = 64;

/// Builds the [`Telemetry`] bundle for the given output paths, or `None`
/// when no path was requested. The sampler is seeded from the scenario
/// seed so dataset exports are reproducible.
pub fn build_telemetry(
    sink: Option<&str>,
    dataset: Option<&str>,
    flight_recorder: Option<&str>,
    seed: u64,
) -> Result<Option<Telemetry>, String> {
    if sink.is_none() && dataset.is_none() && flight_recorder.is_none() {
        return Ok(None);
    }
    let mut t = Telemetry::new();
    if let Some(path) = sink {
        let s = JsonlSink::create(path).map_err(|e| format!("--sink {path}: {e}"))?;
        t = t.with_sink(Box::new(s));
    }
    if let Some(path) = dataset {
        let d = DatasetSink::create(path).map_err(|e| format!("--dataset {path}: {e}"))?;
        t = t
            .with_flow_sampler(FlowSampler::new(SAMPLER_FLOWS, seed))
            .with_dataset(d);
    }
    if let Some(path) = flight_recorder {
        let s = JsonlSink::create(path).map_err(|e| format!("--flight-recorder {path}: {e}"))?;
        let rec = FlightRecorder::new(RECORDER_EVENTS, RECORDER_POST, Box::new(s));
        t = t.with_recorder(shared_recorder(rec));
    }
    Ok(Some(t))
}

/// Executes a parsed `xp run` and renders its report: the scenario
/// echo, the workload's natural per-second panel (bandwidth shares for
/// the Fig. 2/3 family, attack/benign throughput otherwise), and a
/// summary whose share/droprate means match the corresponding figure's
/// golden summary entries. `--csv` keeps only the panel. When any
/// `--sink` / `--dataset` / `--flight-recorder` path was given, the run
/// goes through the streaming engine and the summary gains a
/// `telemetry.*` section.
pub fn render_run(cmd: &RunCmd) -> Result<String, String> {
    use crate::common::{share_panel, share_series, throughput_panel};
    use accturbo_netsim::ClassId;
    use accturbo_telemetry::f;

    let spec = &cmd.spec;
    let mut telemetry = build_telemetry(
        cmd.sink.as_deref(),
        cmd.dataset.as_deref(),
        cmd.flight_recorder.as_deref(),
        spec.seed,
    )?;
    // Topology runs keep the per-node picture for the summary; the
    // single-switch path is untouched.
    let mut topo_detail: Option<(u64, u64, Option<f64>)> = None;
    let outcome = match &spec.topology {
        // `topology=line:1` with telemetry: byte-identical to the
        // single-switch engine (tests/topology_matrix.rs), so run it on
        // the streamed single-switch path the telemetry bundle needs.
        Some(t) if telemetry.is_some() && t.is_single_switch() => {
            let mut flat = spec.clone();
            flat.topology = None;
            flat.execute_streamed(telemetry.as_mut())
        }
        Some(tspec) => {
            let t = spec.execute_topology();
            let leaves = tspec.build(spec.link_bps).leaves().to_vec();
            let converge = t
                .node_first_limit
                .iter()
                .enumerate()
                .filter(|(i, _)| leaves.contains(i))
                .filter_map(|(_, at)| *at)
                .map(|at| at.as_secs_f64())
                .fold(None, |acc: Option<f64>, s| {
                    Some(acc.map_or(s, |a| a.max(s)))
                });
            topo_detail = Some((t.hops, t.pushback_installs, converge));
            crate::spec::ScenarioOutcome {
                backlog_pkts: t.backlog_pkts,
                result: t.result,
                fault_stats: None,
                missed_ticks: 0,
                stale_ticks: 0,
                fallbacks: 0,
            }
        }
        None => spec.execute_streamed(telemetry.as_mut()),
    };
    let res = &outcome.result;
    let secs = spec.secs;
    let mut out = String::new();
    if !cmd.csv {
        let _ = writeln!(out, "# scenario {spec}");
    }
    let share_classes = spec.workload.share_classes();
    if share_classes.is_some() {
        share_panel(
            &mut out,
            "Per-second bandwidth shares",
            res,
            spec.link_bps,
            secs,
            true,
        );
    } else {
        throughput_panel(&mut out, "Per-second throughput", res, secs);
    }
    if cmd.csv {
        return Ok(out);
    }

    let _ = writeln!(out, "# summary");
    let n = secs.max(1) as f64;
    match share_classes {
        Some(classes) => {
            let shares = share_series(res, spec.link_bps, &classes, secs);
            for (i, &c) in classes.iter().enumerate() {
                let mean = shares.iter().map(|row| row[i]).sum::<f64>() / n;
                let _ = writeln!(out, "agg{}.mean_share,{}", c.0, f(mean));
            }
            let droprate = (0..secs as usize)
                .map(|t| res.stats.drop_rate(t))
                .sum::<f64>()
                / n;
            let _ = writeln!(out, "mean_droprate,{}", f(droprate));
        }
        None => {
            let attack = (0..secs as usize)
                .map(|t| res.stats.attack_throughput_bps(t))
                .sum::<f64>()
                / n
                / 1e6;
            let benign = (0..secs as usize)
                .map(|t| res.stats.throughput_bps(t, ClassId::BENIGN))
                .sum::<f64>()
                / n
                / 1e6;
            let _ = writeln!(out, "mean_attack_gbps,{}", f(attack));
            let _ = writeln!(out, "mean_benign_gbps,{}", f(benign));
        }
    }
    let _ = writeln!(out, "benign_drop_pct,{}", f(res.stats.benign_drop_pct()));
    let _ = writeln!(out, "attack_drop_pct,{}", f(res.stats.attack_drop_pct()));
    let _ = writeln!(out, "arrivals,{}", res.arrivals);
    let _ = writeln!(out, "delivered,{}", res.departures);
    let _ = writeln!(out, "dropped,{}", res.drops);
    let _ = writeln!(out, "queued,{}", outcome.backlog_pkts);
    let conserved = res.arrivals == res.departures + res.drops + outcome.backlog_pkts as u64;
    let _ = writeln!(
        out,
        "conservation,{}",
        if conserved { "ok" } else { "VIOLATED" }
    );
    if let Some((hops, installs, converge)) = topo_detail {
        let _ = writeln!(out, "topology.hops,{hops}");
        if spec.topology.as_ref().is_some_and(|t| t.pushback) {
            let _ = writeln!(out, "pushback.installs,{installs}");
            let _ = writeln!(
                out,
                "pushback.converge_s,{}",
                converge.map_or_else(|| "-1".to_string(), f)
            );
        }
    }
    if let Some(fs) = &outcome.fault_stats {
        let _ = writeln!(out, "faults.ctrl_dropped,{}", fs.ctrl_dropped);
        let _ = writeln!(out, "faults.ctrl_delayed,{}", fs.ctrl_delayed);
        let _ = writeln!(out, "faults.stale_served,{}", fs.stale_served);
        let _ = writeln!(out, "faults.pkt_dropped,{}", fs.pkt_dropped);
        let _ = writeln!(out, "faults.pkt_reordered,{}", fs.pkt_reordered);
        let _ = writeln!(out, "faults.flap_windows,{}", fs.flap_windows);
        let _ = writeln!(out, "degradation.missed_ticks,{}", outcome.missed_ticks);
        let _ = writeln!(out, "degradation.stale_ticks,{}", outcome.stale_ticks);
        let _ = writeln!(out, "degradation.fallbacks,{}", outcome.fallbacks);
    }
    if let Some(tel) = &telemetry {
        let _ = writeln!(out, "telemetry.periods,{}", tel.periods());
        if cmd.sink.is_some() {
            let _ = writeln!(out, "telemetry.sink_lines,{}", tel.sink_lines());
        }
        if cmd.dataset.is_some() {
            let _ = writeln!(out, "telemetry.flows_seen,{}", tel.flows_seen());
            let _ = writeln!(out, "telemetry.dataset_rows,{}", tel.dataset_rows());
        }
        if cmd.flight_recorder.is_some() {
            let _ = writeln!(out, "telemetry.flight_windows,{}", tel.recorder_windows());
        }
        if tel.pulse_onsets() > 0 {
            let _ = writeln!(out, "telemetry.pulse_onsets,{}", tel.pulse_onsets());
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// `xp search` — adversarial worst-case search
// ---------------------------------------------------------------------------

/// The parsed `xp search` invocation: one defense, a search budget, and
/// where the found corpus goes.
#[derive(Debug)]
pub struct SearchCmd {
    /// The defense to attack.
    pub defense: DefenseSpec,
    /// Scenario evaluations to spend (`--budget N`).
    pub budget: usize,
    /// Search seed (`--seed N`).
    pub seed: u64,
    /// Worker threads for candidate evaluation (`--jobs N`; never
    /// changes the result, only the wall clock).
    pub jobs: usize,
    /// Frontier size: distinct top attacks kept (`--top N`).
    pub top: usize,
    /// Scenario length override (`secs=N`).
    pub secs: Option<u64>,
    /// Bottleneck override (`link=10m`).
    pub link_bps: Option<u64>,
    /// `--out PATH`: write the corpus file here instead of inlining it
    /// in the report.
    pub out: Option<String>,
    /// `--quick`: search in the short (corpus/CI) scenario frame.
    pub quick: bool,
}

/// Default `xp search` budget: enough for the annealing phase to engage
/// without making an interactive invocation minutes long.
const SEARCH_DEFAULT_BUDGET: usize = 32;
/// Budget ceiling — a typo'd `--budget 5000000` should fail fast, not
/// simulate for a week.
const SEARCH_MAX_BUDGET: usize = 100_000;

/// Parses `xp search` arguments: `defense=SPEC` (plus optional `secs=` /
/// `link=` overrides) and the `--budget` / `--seed` / `--jobs` / `--top`
/// / `--out PATH` / `--quick` flags.
pub fn parse_search(args: &[String]) -> Result<SearchCmd, String> {
    let mut defense: Option<DefenseSpec> = None;
    let mut budget = SEARCH_DEFAULT_BUDGET;
    let mut seed = crate::worstcase::DEFAULT_SEED;
    let mut jobs = accturbo_runner::default_threads();
    let mut top = 10;
    let mut secs: Option<u64> = None;
    let mut link_bps: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut quick = false;

    // `--out` takes a whole-argument PATH (it may contain commas or
    // spaces); peel it off before tokenizing, exactly as `xp run` does
    // for its path flags.
    let mut rest: Vec<&String> = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--out" {
            let val = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .ok_or_else(|| "xp search: --out requires a PATH argument".to_string())?
                .clone();
            out = Some(val);
            i += 2;
        } else {
            rest.push(&args[i]);
            i += 1;
        }
    }

    let tokens: Vec<&str> = rest
        .iter()
        .flat_map(|a| a.split([',', ' ']))
        .filter(|t| !t.is_empty())
        .collect();
    let mut seen_keys: Vec<String> = Vec::new();
    let mut t = 0;
    while t < tokens.len() {
        let token = tokens[t];
        t += 1;
        let mut value_of = |flag: &str| -> Result<&str, String> {
            let v = tokens
                .get(t)
                .filter(|v| !v.starts_with("--"))
                .ok_or_else(|| format!("xp search: {flag} requires a value"))?;
            t += 1;
            Ok(v)
        };
        match token {
            "--quick" | "--smoke" => quick = true,
            "--budget" => {
                let raw = value_of("--budget")?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("xp search: `{raw}` is not a budget"))?;
                if !(2..=SEARCH_MAX_BUDGET).contains(&n) {
                    return Err(format!(
                        "xp search: budget must be in 2..={SEARCH_MAX_BUDGET}, got {n}"
                    ));
                }
                budget = n;
            }
            "--seed" => {
                let raw = value_of("--seed")?;
                seed = raw
                    .parse()
                    .map_err(|_| format!("xp search: `{raw}` is not a u64 seed"))?;
            }
            "--jobs" => {
                let raw = value_of("--jobs")?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("xp search: `{raw}` is not a thread count"))?;
                if n == 0 {
                    return Err("xp search: --jobs must be at least 1".to_string());
                }
                jobs = n;
            }
            "--top" => {
                let raw = value_of("--top")?;
                let n: usize = raw
                    .parse()
                    .map_err(|_| format!("xp search: `{raw}` is not a frontier size"))?;
                if n == 0 {
                    return Err("xp search: --top must be at least 1".to_string());
                }
                top = n;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("xp search: unknown option `{flag}`"));
            }
            pair => {
                let (key, val) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("xp search: expected `key=value`, got `{pair}`"))?;
                if seen_keys.iter().any(|k| k == key) {
                    return Err(format!("xp search: duplicate key `{key}`"));
                }
                seen_keys.push(key.to_string());
                match key {
                    "defense" => {
                        defense = Some(
                            val.parse()
                                .map_err(|e| format!("xp search: defense: {e}"))?,
                        )
                    }
                    "secs" => {
                        let n: u64 = val.parse().map_err(|_| {
                            format!("xp search: `{val}` is not a run length in seconds")
                        })?;
                        if n == 0 {
                            return Err("xp search: secs must be at least 1".to_string());
                        }
                        secs = Some(n);
                    }
                    "link" => {
                        link_bps = Some(
                            crate::spec::parse_bandwidth(val)
                                .map_err(|e| format!("xp search: {e}"))?,
                        )
                    }
                    other => {
                        return Err(format!(
                            "xp search: unknown key `{other}`; valid keys: defense, secs, link"
                        ));
                    }
                }
            }
        }
    }
    let defense = defense
        .ok_or_else(|| "xp search: `defense=` is required (e.g. defense=accturbo)".to_string())?;
    Ok(SearchCmd {
        defense,
        budget,
        seed,
        jobs,
        top,
        secs,
        link_bps,
        out,
        quick,
    })
}

/// Executes a parsed `xp search` and renders its report: the search
/// frame, the best-damage trajectory, the frontier CSV, a ready-to-paste
/// `xp run` replay line for the worst attack, and the corpus itself
/// (written to `--out`, or inlined). The report depends only on the
/// parsed command, never on `--jobs`.
pub fn render_search(cmd: &SearchCmd) -> Result<String, String> {
    use accturbo_telemetry::f;

    let scale = if cmd.quick { Scale::Quick } else { Scale::Full };
    let mut frame = crate::worstcase::SearchFrame::at(scale, cmd.seed);
    if let Some(s) = cmd.secs {
        frame.secs = s;
    }
    if let Some(l) = cmd.link_bps {
        frame.link_bps = l;
    }
    let (outcome, corpus) =
        crate::worstcase::run_search(&cmd.defense, frame, cmd.budget, cmd.jobs, cmd.top);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# search defense={} budget={} seed={} secs={} link={} top={}",
        corpus.defense, cmd.budget, cmd.seed, frame.secs, frame.link_bps, cmd.top
    );
    let trajectory: Vec<String> = outcome.best_trajectory.iter().map(|d| f(*d)).collect();
    let _ = writeln!(out, "# best damage per round (explore, then annealing)");
    let _ = writeln!(out, "trajectory,{}", trajectory.join(","));
    let _ = writeln!(
        out,
        "rank,damage,benign_drop_pct,attack_drop_pct,benign_mbps,workload"
    );
    for (i, e) in corpus.entries.iter().enumerate() {
        let m = &e.metrics;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            i + 1,
            f(m.damage),
            f(m.benign_drop_pct),
            f(m.attack_drop_pct),
            f(m.benign_mbps),
            e.workload
        );
    }
    let best = &corpus.entries[0];
    let _ = writeln!(
        out,
        "# replay the worst case:\n\
         #   xp run workload={} defense={} link={} secs={} seed={}",
        best.workload, corpus.defense, frame.link_bps, frame.secs, frame.seed
    );
    match &cmd.out {
        Some(path) => {
            std::fs::write(path, corpus.to_text())
                .map_err(|e| format!("xp search: --out {path}: {e}"))?;
            let _ = writeln!(out, "corpus,{path}");
            let _ = writeln!(out, "corpus_entries,{}", corpus.entries.len());
        }
        None => {
            let _ = writeln!(out, "# corpus (re-run with --out PATH to write a file)");
            out.push_str(&corpus.to_text());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_run_everything_at_full_scale() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.scale, Scale::Full);
        assert_eq!(cli.targets.len(), FIGURES.len());
        assert!(cli.seeds.is_empty());
        assert!(cli.jobs >= 1);
        assert!(cli.trace.is_none() && cli.metrics.is_none());
    }

    #[test]
    fn quick_and_explicit_targets_parse() {
        let cli = parse(&args(&["--quick", "fig3", "fig2"])).unwrap();
        assert_eq!(cli.scale, Scale::Quick);
        let names: Vec<&str> = cli.targets.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["fig3", "fig2"], "first-mention order");
    }

    #[test]
    fn duplicate_targets_are_deduped_preserving_order() {
        let cli = parse(&args(&["fig3", "fig2", "fig3", "fig2"])).unwrap();
        let names: Vec<&str> = cli.targets.iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["fig3", "fig2"]);
    }

    #[test]
    fn all_expands_and_dedupes_against_explicit_names() {
        let cli = parse(&args(&["fig3", "all"])).unwrap();
        assert_eq!(cli.targets.len(), FIGURES.len());
        assert_eq!(
            cli.targets[0].name, "fig3",
            "explicit mention keeps its slot"
        );
    }

    #[test]
    fn unknown_figures_are_rejected_before_running() {
        let err = parse(&args(&["fig2", "fig99"])).unwrap_err();
        assert!(err.contains("unknown figure `fig99`"), "{err}");
        assert!(err.contains("valid names"), "{err}");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = parse(&args(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn jobs_rejects_zero_and_garbage_and_missing_value() {
        assert!(parse(&args(&["--jobs", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&args(&["--jobs", "many"]))
            .unwrap_err()
            .contains("not a thread count"));
        assert!(parse(&args(&["--jobs"]))
            .unwrap_err()
            .contains("requires a thread count"));
        assert_eq!(parse(&args(&["--jobs", "4"])).unwrap().jobs, 4);
    }

    #[test]
    fn seeds_parse_and_reject_malformed_lists() {
        let cli = parse(&args(&["--seeds", "1,2,33"])).unwrap();
        assert_eq!(cli.seeds, vec![1, 2, 33]);
        assert!(parse(&args(&["--seeds"]))
            .unwrap_err()
            .contains("requires a comma-separated"));
        assert!(parse(&args(&["--seeds", "1,,2"]))
            .unwrap_err()
            .contains("empty entry"));
        assert!(parse(&args(&["--seeds", "1,x"]))
            .unwrap_err()
            .contains("not a u64 seed"));
        assert!(parse(&args(&["--seeds", "7,7"]))
            .unwrap_err()
            .contains("duplicate seed 7"));
        assert!(parse(&args(&["--seeds", "-3"]))
            .unwrap_err()
            .contains("not a u64 seed"));
    }

    #[test]
    fn trace_and_metrics_require_paths() {
        assert!(parse(&args(&["--trace"])).unwrap_err().contains("--trace"));
        assert!(parse(&args(&["--metrics"]))
            .unwrap_err()
            .contains("--metrics"));
        let cli = parse(&args(&["--trace", "t.jsonl", "--metrics", "m.jsonl"])).unwrap();
        assert_eq!(cli.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(cli.metrics.as_deref(), Some("m.jsonl"));
    }

    #[test]
    fn smoke_is_an_alias_for_quick() {
        let cli = parse(&args(&["--smoke", "robustness"])).unwrap();
        assert_eq!(cli.scale, Scale::Quick);
        assert_eq!(cli.targets[0].name, "robustness");
    }

    #[test]
    fn faults_parse_a_valid_mix() {
        let cli = parse(&args(&["--faults", "ctrl_drop:0.5,link_flap:1"])).unwrap();
        assert_eq!(
            cli.faults,
            vec![
                ("ctrl_drop".to_string(), 0.5),
                ("link_flap".to_string(), 1.0)
            ]
        );
    }

    #[test]
    fn faults_reject_unknown_kinds() {
        let err = parse(&args(&["--faults", "frobnicate:0.5"])).unwrap_err();
        assert!(err.contains("unknown fault kind `frobnicate`"), "{err}");
        assert!(err.contains("valid kinds"), "{err}");
    }

    #[test]
    fn faults_reject_out_of_range_and_nan_intensities() {
        assert!(parse(&args(&["--faults", "ctrl_drop:-0.1"]))
            .unwrap_err()
            .contains("must be in [0, 1]"));
        assert!(parse(&args(&["--faults", "ctrl_drop:1.5"]))
            .unwrap_err()
            .contains("must be in [0, 1]"));
        assert!(parse(&args(&["--faults", "ctrl_drop:NaN"]))
            .unwrap_err()
            .contains("must be in [0, 1]"));
        assert!(parse(&args(&["--faults", "ctrl_drop:lots"]))
            .unwrap_err()
            .contains("not an intensity"));
    }

    #[test]
    fn faults_reject_duplicates_and_malformed_entries() {
        assert!(parse(&args(&["--faults", "stale:0.2,stale:0.3"]))
            .unwrap_err()
            .contains("duplicate fault kind `stale`"));
        assert!(parse(&args(&["--faults", "ctrl_drop"]))
            .unwrap_err()
            .contains("not KIND:VAL"));
        assert!(parse(&args(&["--faults", "ctrl_drop:0.1,,stale:0.2"]))
            .unwrap_err()
            .contains("empty entry"));
        assert!(parse(&args(&["--faults"]))
            .unwrap_err()
            .contains("requires a KIND:VAL"));
    }

    #[test]
    fn a_fault_mix_short_circuits_into_the_robustness_scenario() {
        let mut cli = parse(&args(&["--quick", "--faults", "pkt_drop:0.5"])).unwrap();
        cli.jobs = 1;
        let mut out = String::new();
        let spans = run_figures(&cli, |block| out.push_str(block));
        assert!(spans.is_empty(), "fault runs bypass the figure fan-out");
        assert!(out.contains("robustness (custom faults"), "{out}");
        assert!(out.contains("# fault pkt_drop = 0.50"), "{out}");
        // Two data rows: the fault-free baseline and the faulted cell.
        assert!(out.contains("\n250,0.00,"), "{out}");
        assert!(out.contains("\n250,1.00,"), "{out}");
    }

    #[test]
    fn run_figures_emits_one_block_per_target_in_order() {
        let mut cli = parse(&args(&["--quick", "pushback", "table3"])).unwrap();
        cli.jobs = 2;
        let mut out = String::new();
        let spans = run_figures(&cli, |block| out.push_str(block));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].figure, "pushback");
        assert_eq!(spans[1].figure, "table3");
        let pb = out.find("==================== pushback ====================");
        let t3 = out.find("==================== table3 ====================");
        assert!(pb.is_some() && t3.is_some(), "{out}");
        assert!(pb < t3, "target order must be preserved");
    }

    #[test]
    fn seeded_runs_emit_per_seed_blocks_and_an_aggregate() {
        let mut cli = parse(&args(&["--quick", "pushback", "--seeds", "1,2"])).unwrap();
        cli.jobs = 1;
        let mut out = String::new();
        let spans = run_figures(&cli, |block| out.push_str(block));
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].seed, spans[1].seed), (1, 2));
        assert!(out.contains("pushback (seed 1)"), "{out}");
        assert!(out.contains("pushback (seed 2)"), "{out}");
        assert!(out.contains("pushback aggregate over 2 seeds"), "{out}");
        assert!(out.contains("field,mean,min,max"), "{out}");
    }

    // ----- `xp run` parsing -----

    #[test]
    fn run_requires_a_workload() {
        let err = parse_run(&args(&["defense=fifo"])).unwrap_err();
        assert!(err.contains("`workload=` is required"), "{err}");
    }

    #[test]
    fn run_applies_workload_defaults() {
        let cmd = parse_run(&args(&["workload=fig2", "defense=accturbo"])).unwrap();
        assert_eq!(cmd.spec.link_bps, 10_000_000);
        assert_eq!(cmd.spec.seed, 2022);
        assert!(matches!(cmd.spec.defense, DefenseSpec::AccTurbo(_)));
        assert!(!cmd.csv);
    }

    #[test]
    fn run_parses_overrides_and_suffixes() {
        let cmd = parse_run(&args(&[
            "workload=flood:single,defense=red",
            "link=2.5g",
            "secs=12",
            "seed=7",
            "period=50ms",
            "--csv",
        ]))
        .unwrap();
        assert_eq!(cmd.spec.link_bps, 2_500_000_000);
        assert_eq!(cmd.spec.secs, 12);
        assert_eq!(cmd.spec.seed, 7);
        assert_eq!(cmd.spec.control_period, Some(SimDuration::from_millis(50)));
        assert!(cmd.csv);
    }

    #[test]
    fn run_quick_rescales_then_explicit_secs_wins() {
        let quick = parse_run(&args(&["workload=fig2", "--quick"])).unwrap();
        assert_eq!(quick.spec.secs, 25);
        let explicit = parse_run(&args(&["workload=fig2", "--quick", "secs=8"])).unwrap();
        assert_eq!(explicit.spec.secs, 8);
    }

    /// `topology=` must make the default run length topology-aware (the
    /// added path RTT / pushback convergence would otherwise be silently
    /// cut off), while an explicit `secs=` still wins and `line:1` adds
    /// nothing.
    #[test]
    fn run_topology_defaults_are_topology_aware() {
        let base = parse_run(&args(&["workload=fig2"])).unwrap();
        let line1 = parse_run(&args(&["workload=fig2", "topology=line:1"])).unwrap();
        assert_eq!(
            line1.spec.secs, base.spec.secs,
            "line:1 must not pad the default"
        );

        // 4 extra hops at 0.5 s each: +2·4·0.5 = 4 s of RTT, plus
        // 5 levels × 1 s of pushback refresh.
        let deep = parse_run(&args(&[
            "workload=fig2",
            "topology=line:5:delay=0.5:pushback=on:refresh=1",
        ]))
        .unwrap();
        assert_eq!(deep.spec.secs, base.spec.secs + 9);

        let explicit = parse_run(&args(&[
            "workload=fig2",
            "topology=line:5:delay=0.5:pushback=on:refresh=1",
            "secs=7",
        ]))
        .unwrap();
        assert_eq!(explicit.spec.secs, 7, "explicit secs= always wins");

        let quick = parse_run(&args(&[
            "workload=fig2",
            "--quick",
            "topology=line:5:delay=0.5:pushback=on:refresh=1",
        ]))
        .unwrap();
        assert_eq!(quick.spec.secs, 25 + 9, "padding applies on top of --quick");
    }

    #[test]
    fn run_topology_rejects_unsupported_combinations() {
        let err = parse_run(&args(&[
            "workload=fig2",
            "topology=star:4",
            "faults=ctrl_drop:0.5",
        ]))
        .unwrap_err();
        assert!(err.contains("not both"), "{err}");

        let err = parse_run(&args(&[
            "workload=fig2",
            "topology=star:4",
            "--sink",
            "/tmp/x.jsonl",
        ]))
        .unwrap_err();
        assert!(
            err.contains("only the single-switch `topology=line:1`"),
            "{err}"
        );

        // line:1 with all-default options is the single-switch engine, so
        // telemetry is allowed (tests/topology_matrix.rs proves byte-identity) —
        // but any non-default knob disqualifies it.
        let ok = parse_run(&args(&[
            "workload=fig2",
            "topology=line:1",
            "--sink",
            "/tmp/x.jsonl",
        ]));
        assert!(ok.is_ok(), "{ok:?}");
        let err = parse_run(&args(&[
            "workload=fig2",
            "topology=line:1:pushback=on",
            "--sink",
            "/tmp/x.jsonl",
        ]))
        .unwrap_err();
        assert!(
            err.contains("only the single-switch `topology=line:1`"),
            "{err}"
        );

        let err = parse_run(&args(&["workload=fig2", "topology=ring:4"])).unwrap_err();
        assert!(err.contains("unknown topology"), "{err}");

        let err = parse_run(&args(&["workload=fig2", "topology=star:4:attackers=9"])).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn run_parses_and_polices_shards() {
        let cmd = parse_run(&args(&["workload=fig2", "shards=8"])).unwrap();
        assert_eq!(cmd.spec.shards, 8);

        let cmd = parse_run(&args(&["workload=fig2", "shards=1"])).unwrap();
        assert_eq!(cmd.spec.shards, 1, "shards=1 is the serial engine");

        let err = parse_run(&args(&["workload=fig2", "shards=0"])).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");

        let err = parse_run(&args(&["workload=fig2", "shards=2", "topology=line:2"])).unwrap_err();
        assert!(err.contains("drop shards= or topology="), "{err}");

        let err = parse_run(&args(&[
            "workload=fig2",
            "shards=2",
            "faults=ctrl_drop:0.5",
        ]))
        .unwrap_err();
        assert!(err.contains("drop shards= or faults="), "{err}");

        let err = parse_run(&args(&[
            "workload=fig2",
            "shards=2",
            "--sink",
            "/tmp/x.jsonl",
        ]))
        .unwrap_err();
        assert!(err.contains("or shards="), "{err}");
    }

    #[test]
    fn run_render_reports_topology_summary() {
        let cmd = parse_run(&args(&[
            "workload=flood",
            "defense=acc",
            "topology=star:4:attackers=0:pushback=on",
            "secs=12",
            "link=10m",
        ]))
        .unwrap();
        let out = render_run(&cmd).unwrap();
        assert!(out.contains("# scenario"), "{out}");
        assert!(
            out.contains("topology=star:4:attackers=0:pushback=on"),
            "header must round-trip the topology: {out}"
        );
        assert!(out.contains("conservation,ok"), "{out}");
        assert!(out.contains("topology.hops,"), "{out}");
        assert!(out.contains("pushback.installs,"), "{out}");
        assert!(out.contains("pushback.converge_s,"), "{out}");
    }

    #[test]
    fn run_faults_seed_tracks_the_scenario_seed() {
        let cmd = parse_run(&args(&[
            "workload=fig2",
            "defense=accturbo",
            "faults=ctrl_drop:0.5+stale:0.25",
            "seed=99",
        ]))
        .unwrap();
        let fc = cmd.spec.faults.expect("faults set");
        assert_eq!(fc.seed, 99);
        assert_eq!(fc.ctrl_drop, 0.5);
        assert_eq!(fc.stale_snapshot, 0.25);
    }

    #[test]
    fn run_rejects_bad_input() {
        for (argv, needle) in [
            (vec!["workload=fig2", "--frob"], "unknown option `--frob`"),
            (vec!["workload=fig2", "frob"], "expected `key=value`"),
            (vec!["workload=fig2", "frob=1"], "unknown key `frob`"),
            (vec!["workload=nope"], "workload"),
            (vec!["workload=fig2", "secs=0"], "secs must be at least 1"),
            (vec!["workload=fig2", "link=-3m"], "must be positive"),
            (vec!["workload=fig2", "period=0ms"], "must be positive"),
            (
                vec!["workload=fig2", "faults=frob:0.5"],
                "unknown fault kind `frob`",
            ),
        ] {
            let err = parse_run(&args(&argv)).unwrap_err();
            assert!(err.contains(needle), "{argv:?}: {err}");
        }
    }

    #[test]
    fn run_parses_telemetry_path_flags() {
        let cmd = parse_run(&args(&[
            "workload=fig2",
            "defense=accturbo",
            "--sink",
            "out dir/t.jsonl",
            "--dataset",
            "flows,v1.csv",
            "--flight-recorder",
            "fr.jsonl",
        ]))
        .unwrap();
        assert_eq!(cmd.sink.as_deref(), Some("out dir/t.jsonl"));
        assert_eq!(cmd.dataset.as_deref(), Some("flows,v1.csv"));
        assert_eq!(cmd.flight_recorder.as_deref(), Some("fr.jsonl"));
        assert!(cmd.wants_telemetry());

        let err = parse_run(&args(&["workload=fig2", "--sink"])).unwrap_err();
        assert!(err.contains("--sink"), "{err}");
        let err = parse_run(&args(&["workload=fig2", "--dataset", "--csv"])).unwrap_err();
        assert!(err.contains("--dataset"), "{err}");
        let plain = parse_run(&args(&["workload=fig2"])).unwrap();
        assert!(!plain.wants_telemetry());
    }

    #[test]
    fn run_render_emits_panel_summary_and_conservation() {
        let cmd = parse_run(&args(&[
            "workload=fig2",
            "defense=accturbo",
            "secs=6",
            "--quick",
        ]))
        .unwrap();
        let out = render_run(&cmd).unwrap();
        assert!(
            out.starts_with("# scenario workload=fig2 defense=accturbo"),
            "{out}"
        );
        assert!(
            out.contains("t,agg1,agg2,agg3,agg4,agg5,all,droprate"),
            "{out}"
        );
        assert!(out.contains("agg1.mean_share,"), "{out}");
        assert!(out.contains("conservation,ok"), "{out}");
        let csv = render_run(&RunCmd {
            csv: true,
            ..parse_run(&args(&["workload=fig2", "secs=6"])).unwrap()
        })
        .unwrap();
        assert!(!csv.contains("# scenario"), "{csv}");
        assert!(!csv.contains("# summary"), "{csv}");
    }

    #[test]
    fn run_render_reports_fault_and_degradation_counters() {
        let cmd = parse_run(&args(&[
            "workload=fig2",
            "defense=accturbo",
            "secs=6",
            "faults=ctrl_drop:1.0",
        ]))
        .unwrap();
        let out = render_run(&cmd).unwrap();
        assert!(out.contains("faults.ctrl_dropped,"), "{out}");
        assert!(out.contains("degradation.missed_ticks,"), "{out}");
        assert!(out.contains("conservation,ok"), "{out}");
    }

    #[test]
    fn run_rejects_duplicate_keys() {
        for argv in [
            vec!["workload=fig2", "workload=fig3"],
            vec!["workload=fig2", "defense=fifo", "defense=red"],
            vec!["workload=fig2", "secs=5,secs=6"],
        ] {
            let err = parse_run(&args(&argv)).unwrap_err();
            assert!(err.contains("duplicate key"), "{argv:?}: {err}");
        }
    }

    #[test]
    fn search_parses_defaults() {
        let cmd = parse_search(&args(&["defense=accturbo"])).unwrap();
        assert!(matches!(cmd.defense, DefenseSpec::AccTurbo(_)));
        assert_eq!(cmd.budget, 32);
        assert_eq!(cmd.seed, crate::worstcase::DEFAULT_SEED);
        assert_eq!(cmd.top, 10);
        assert_eq!(cmd.secs, None);
        assert_eq!(cmd.link_bps, None);
        assert_eq!(cmd.out, None);
        assert!(!cmd.quick);
    }

    #[test]
    fn search_parses_flags_and_overrides() {
        let cmd = parse_search(&args(&[
            "defense=jaqen,secs=12",
            "link=20m",
            "--budget",
            "8",
            "--seed",
            "5",
            "--jobs",
            "3",
            "--top",
            "4",
            "--quick",
            "--out",
            "out dir/jaqen.corpus",
        ]))
        .unwrap();
        assert!(matches!(cmd.defense, DefenseSpec::Jaqen(_)));
        assert_eq!(cmd.budget, 8);
        assert_eq!(cmd.seed, 5);
        assert_eq!(cmd.jobs, 3);
        assert_eq!(cmd.top, 4);
        assert_eq!(cmd.secs, Some(12));
        assert_eq!(cmd.link_bps, Some(20_000_000));
        assert_eq!(cmd.out.as_deref(), Some("out dir/jaqen.corpus"));
        assert!(cmd.quick);
    }

    #[test]
    fn search_rejects_bad_input() {
        for (argv, needle) in [
            (vec!["--budget", "8"], "`defense=` is required"),
            (vec!["defense=nope"], "defense"),
            (vec!["defense=fifo", "--frob"], "unknown option `--frob`"),
            (vec!["defense=fifo", "frob"], "expected `key=value`"),
            (vec!["defense=fifo", "frob=1"], "unknown key `frob`"),
            (
                vec!["defense=fifo", "defense=red"],
                "duplicate key `defense`",
            ),
            (vec!["defense=fifo", "secs=0"], "secs must be at least 1"),
            (vec!["defense=fifo", "secs=abc"], "not a run length"),
            (vec!["defense=fifo", "link=0"], "must be positive"),
            (
                vec!["defense=fifo", "--budget", "1"],
                "budget must be in 2..=",
            ),
            (
                vec!["defense=fifo", "--budget", "999999"],
                "budget must be in 2..=",
            ),
            (vec!["defense=fifo", "--budget", "x"], "is not a budget"),
            (
                vec!["defense=fifo", "--budget"],
                "--budget requires a value",
            ),
            (
                vec!["defense=fifo", "--budget", "--quick"],
                "--budget requires a value",
            ),
            (vec!["defense=fifo", "--seed", "-1"], "is not a u64 seed"),
            (
                vec!["defense=fifo", "--jobs", "0"],
                "--jobs must be at least 1",
            ),
            (
                vec!["defense=fifo", "--top", "0"],
                "--top must be at least 1",
            ),
            (vec!["defense=fifo", "--out"], "--out requires a PATH"),
        ] {
            let err = parse_search(&args(&argv)).unwrap_err();
            assert!(err.contains(needle), "{argv:?}: {err}");
        }
    }

    #[test]
    fn search_render_reports_frontier_and_replay_line() {
        let cmd = parse_search(&args(&[
            "defense=fifo",
            "secs=4",
            "--budget",
            "3",
            "--top",
            "2",
            "--seed",
            "13",
            "--jobs",
            "2",
            "--quick",
        ]))
        .unwrap();
        let out = render_search(&cmd).unwrap();
        assert!(
            out.starts_with("# search defense=fifo budget=3 seed=13"),
            "{out}"
        );
        assert!(out.contains("trajectory,"), "{out}");
        assert!(
            out.contains("rank,damage,benign_drop_pct,attack_drop_pct,benign_mbps,workload"),
            "{out}"
        );
        assert!(out.contains("#   xp run workload=pulse"), "{out}");
        // No --out: the corpus is inlined.
        assert!(out.contains("# accturbo adversarial corpus v1"), "{out}");

        // --out diverts the corpus to a file whose bytes parse back.
        let path =
            std::env::temp_dir().join(format!("xp-search-cli-test-{}.corpus", std::process::id()));
        let cmd = SearchCmd {
            out: Some(path.to_string_lossy().into_owned()),
            ..cmd
        };
        let out = render_search(&cmd).unwrap();
        assert!(out.contains("corpus_entries,"), "{out}");
        assert!(!out.contains("# accturbo adversarial corpus v1"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let corpus = accturbo_adversary::Corpus::parse(&text).unwrap();
        assert_eq!(corpus.defense, "fifo");
        assert_eq!(corpus.secs, 4);
        assert_eq!(corpus.budget, 3);
        let _ = std::fs::remove_file(&path);
    }
}
