//! Figure 2: the original ACC experiment (paper §2.1).
//!
//! Five aggregates over a bottleneck: 1–4 CBR, 5 a variable-rate attack
//! ramping up at t = 13 s and down at t = 25 s. Regenerated panels:
//!
//! * (a) FIFO — the attack captures the link.
//! * (b) ACC (K = 2 s) — the attack is inferred and rate-limited within a
//!   few seconds.
//! * (c) the impact of K — mitigation-deploy time per monitoring window.
//! * (d) ACC-Turbo — mitigation within one control period.
//!
//! Each panel prints a CSV of per-second link-bandwidth shares for the
//! five aggregates plus the total, and the drop-rate series.

use crate::common::{delay_text, push_share_summary, share_panel, Scale, LINK_10G_SCALED};
use crate::result::FigureResult;
use crate::spec::{DefenseSpec, ScenarioSpec, WorkloadSpec};
use crate::Figure;
use accturbo_netsim::{ClassId, RunResult, SimDuration};
use accturbo_traffic::scenarios;
use std::fmt::Write as _;

const LINK: u64 = LINK_10G_SCALED;
/// The canonical workload seed (the historical in-module constant).
pub const DEFAULT_SEED: u64 = 2022;

/// Runs the Fig. 2 workload against `defense` (the module's scenario
/// template: 10 Mbps scaled bottleneck, natural control period).
fn run(defense: DefenseSpec, secs: u64, seed: u64) -> RunResult {
    ScenarioSpec::new(WorkloadSpec::Fig2, defense)
        .with_secs(secs)
        .with_seed(seed)
        .execute()
        .result
}

fn fifo_run(secs: u64, seed: u64) -> RunResult {
    run(DefenseSpec::Fifo, secs, seed)
}

fn acc_run(k: SimDuration, secs: u64, seed: u64) -> RunResult {
    run(DefenseSpec::Acc { k }, secs, seed)
}

fn accturbo_run(secs: u64, seed: u64) -> RunResult {
    run(DefenseSpec::accturbo(), secs, seed)
}

/// The Fig. 2d ACC-Turbo run with full observability: every engine and
/// switch decision traced into one ring, engine + switch metrics in one
/// registry. Returns `(result, tracer, metrics)` — what the `xp`
/// `--trace`/`--metrics` flags export.
pub fn accturbo_run_instrumented(
    scale: Scale,
) -> (
    RunResult,
    accturbo_obs::SharedTracer,
    accturbo_obs::MetricsHandle,
) {
    use accturbo_obs::{shared, Registry, RingTracer};
    use std::cell::RefCell;
    use std::rc::Rc;

    let secs = scale.secs(scenarios::RUN_SECS, 2);
    let tracer = shared(RingTracer::new(2_000_000));
    let metrics: accturbo_obs::MetricsHandle = Rc::new(RefCell::new(Registry::new()));
    let mut src = scenarios::fig2_source(LINK, DEFAULT_SEED);
    let mut sw = crate::spec::AccTurboSpec::simulation().build();
    sw.set_tracer(Box::new(Rc::clone(&tracer)));
    sw.set_metrics(Rc::clone(&metrics));
    sw.set_timing(true);
    let mut engine_tracer = Rc::clone(&tracer);
    let res = crate::common::simulate_instrumented(
        &mut src,
        &mut sw,
        LINK,
        secs,
        Some(SimDuration::from_millis(250)),
        &mut engine_tracer,
        Some(&metrics),
    );
    // Export the hot-path stage timings as custom events at end-of-run.
    {
        let mut t = tracer.borrow_mut();
        let ts = res.final_time.as_nanos();
        for (name, total, calls) in sw.stage_clock().report() {
            use accturbo_obs::{Event, Tracer as _};
            let per_call_ns = if calls > 0 {
                total.as_nanos() as f64 / calls as f64
            } else {
                0.0
            };
            let leaked: &'static str = match name {
                "classify" => "stage_classify_ns_per_call",
                "enqueue" => "stage_enqueue_ns_per_call",
                _ => "stage_control_tick_ns_per_call",
            };
            t.record(
                ts,
                &Event::Custom {
                    name: leaked,
                    value: per_call_ns,
                },
            );
        }
    }
    (res, tracer, metrics)
}

fn panel(out: &mut String, title: &str, res: &RunResult, secs: u64) {
    share_panel(out, title, res, LINK, secs, true);
}

/// The time (seconds from the attack start at t = 13 s) until every benign
/// aggregate is back above 85% of its fair demand *while the attack is
/// still offering more than the whole link* — "mitigation deployed" on the
/// Fig. 2 workload. Plain congestion (FIFO/RED) never satisfies this:
/// the attack's proportional share crushes benign traffic.
pub fn mitigation_delay(res: &RunResult, secs: u64) -> Option<u64> {
    let fair = 0.2125 * LINK as f64;
    (14..secs as usize).find_map(|t| {
        let offered = res.stats.arrival_bps(t, ClassId(5));
        if offered <= LINK as f64 {
            return None; // attack not congesting this second
        }
        let min_benign = (1..=4)
            .map(|c| res.stats.throughput_bps(t, ClassId(c)))
            .fold(f64::INFINITY, f64::min);
        if min_benign >= 0.85 * fair {
            Some(t as u64 - 13)
        } else {
            None
        }
    })
}

/// Regenerates Fig. 2 at `seed`, returning the rendered report and its
/// machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(scenarios::RUN_SECS, 2);
    let mut out = String::new();
    let mut r = FigureResult::new("fig2");
    let classes: Vec<ClassId> = (1..=5).map(ClassId).collect();

    let fifo = fifo_run(secs, seed);
    panel(&mut out, "Fig. 2a: No ACC (FIFO)", &fifo, secs);
    push_share_summary(&mut r, "a", &fifo, LINK, &classes, secs);

    let acc = acc_run(SimDuration::from_secs(2), secs, seed);
    panel(&mut out, "Fig. 2b: ACC (K=2s)", &acc, secs);
    push_share_summary(&mut r, "b", &acc, LINK, &classes, secs);

    let _ = writeln!(
        &mut out,
        "# Fig. 2c: Impact of K (mitigation deploy time after attack start)"
    );
    let _ = writeln!(&mut out, "K_s,deploy_after_s");
    let ks: &[u64] = match scale {
        Scale::Full => &[10, 15, 20, 25, 30, 35],
        Scale::Quick => &[5, 10],
    };
    for &k in ks {
        let res = acc_run(SimDuration::from_secs(k), secs, seed);
        let delay = delay_text(mitigation_delay(&res, secs));
        r.text(&format!("c.k{k}.deploy_after_s"), &delay);
        let _ = writeln!(&mut out, "{k},{delay}");
    }

    let turbo = accturbo_run(secs, seed);
    panel(&mut out, "Fig. 2d: ACC-Turbo", &turbo, secs);
    push_share_summary(&mut r, "d", &turbo, LINK, &classes, secs);

    // Headline comparison the paper narrates: ACC reacts in ≈4 s, driven
    // by K; ACC-Turbo within one control period.
    let acc_delay = mitigation_delay(&acc, secs);
    let turbo_delay = mitigation_delay(&turbo, secs);
    let _ = writeln!(&mut out, "# Summary");
    let _ = writeln!(&mut out, "acc_mitigation_after_s,{}", delay_text(acc_delay));
    let _ = writeln!(
        &mut out,
        "accturbo_mitigation_after_s,{}",
        delay_text(turbo_delay)
    );
    r.text("summary.acc_mitigation_after_s", &delay_text(acc_delay));
    r.text(
        "summary.accturbo_mitigation_after_s",
        &delay_text(turbo_delay),
    );
    Figure::new(out, r)
}

/// Regenerates Fig. 2 at the canonical seed and returns the textual
/// report.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_lets_the_attack_capture_the_link() {
        let secs = 32;
        let res = fifo_run(secs, DEFAULT_SEED);
        // At the ramp's peak (t in 20..25) the attack offers 4x the link
        // and FIFO serves it proportionally: attack share > 0.6.
        let share = res.stats.throughput_bps(22, ClassId(5)) / LINK as f64;
        assert!(share > 0.6, "attack share under FIFO: {share}");
        // Benign aggregate 1 is crushed below half its demand.
        let benign = res.stats.throughput_bps(22, ClassId(1)) / LINK as f64;
        assert!(benign < 0.15, "benign share under FIFO: {benign}");
    }

    #[test]
    fn acc_mitigates_within_a_few_seconds() {
        let secs = 32;
        let res = acc_run(SimDuration::from_secs(2), secs, DEFAULT_SEED);
        let delay = mitigation_delay(&res, secs).expect("ACC must mitigate");
        assert!(delay <= 6, "ACC took {delay}s (paper: ≈4s)");
        // Post-mitigation, benign aggregates recover.
        let benign = res.stats.throughput_bps(24, ClassId(1)) / LINK as f64;
        assert!(benign > 0.15, "benign share under ACC: {benign}");
    }

    #[test]
    fn accturbo_mitigates_within_a_second() {
        let secs = 32;
        let res = accturbo_run(secs, DEFAULT_SEED);
        let delay = mitigation_delay(&res, secs).expect("ACC-Turbo must mitigate");
        assert!(delay <= 2, "ACC-Turbo took {delay}s (paper: <1s)");
        let benign = res.stats.throughput_bps(22, ClassId(1)) / LINK as f64;
        assert!(benign > 0.17, "benign share under ACC-Turbo: {benign}");
    }
}
