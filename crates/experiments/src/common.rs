//! Shared experiment plumbing.
//!
//! All "hardware" experiments run at the 1/1000 rate scale documented in
//! DESIGN.md §4 (10 Gbps bottleneck → 10 Mbps simulated link) with
//! identical rate ratios, so shares, percentages and times match the
//! paper's axes.

use crate::result::FigureResult;
use accturbo_netsim::{
    run, run_instrumented, run_streamed, run_with_faults, ClassId, EngineConfig, FaultInjector,
    NoopFaultInjector, PacketSource, RunResult, ShardedEngine, SimDuration, Switch,
};
use accturbo_obs::{MetricsHandle, NoopTracer, Telemetry, Tracer};
use std::sync::atomic::{AtomicBool, Ordering};

/// Experiment fidelity: `Full` regenerates the paper's figures; `Quick`
/// shrinks durations/rates for benches and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-shaped durations and rates.
    Full,
    /// Shortened runs for benches and integration tests.
    Quick,
}

impl Scale {
    /// Scales a duration in seconds: quick mode divides by `q`.
    pub fn secs(self, full: u64, q: u64) -> u64 {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / q).max(1),
        }
    }
}

/// The scaled 10 Gbps → 10 Mbps bottleneck used by the §7 experiments.
pub const LINK_10G_SCALED: u64 = 10_000_000;

/// The undefended baseline queue used across experiments: 512 KB of
/// buffer, additionally capped at ~775 packets so near-full behaviour is
/// cell-granular like a real switch buffer (a pure byte cap would
/// preferentially admit small packets).
pub fn baseline_fifo() -> accturbo_netsim::FifoQueue {
    accturbo_netsim::FifoQueue::new(512 * 1024).with_pkt_cap(775)
}

/// Process-global test toggle: when set, every [`simulate`] call routes
/// through the fault-injection engine entry with an explicit no-op
/// injector instead of the plain `run`.
static FORCE_NOOP_FAULTS: AtomicBool = AtomicBool::new(false);

/// Fault-noop lockdown hook (`tests/fault_noop_equivalence.rs`): flips
/// [`simulate`] onto the `run_with_faults(…, Some(noop))` path so the
/// differential test can assert that threading a do-nothing injector
/// through every figure leaves the output byte-identical. Process-global
/// — tests using it must not run concurrently with other figure runs.
pub fn force_noop_fault_injection(on: bool) {
    FORCE_NOOP_FAULTS.store(on, Ordering::SeqCst);
}

fn engine_config(link_bps: u64, secs: u64, control_period: Option<SimDuration>) -> EngineConfig {
    EngineConfig::experiment(link_bps, secs, control_period)
}

/// Runs `source` through `switch` with the standard experiment engine:
/// 1-second stats buckets, the given control period, hard stop at `secs`.
pub fn simulate(
    source: &mut dyn PacketSource,
    switch: &mut dyn Switch,
    link_bps: u64,
    secs: u64,
    control_period: Option<SimDuration>,
) -> RunResult {
    let cfg = engine_config(link_bps, secs, control_period);
    if FORCE_NOOP_FAULTS.load(Ordering::SeqCst) {
        let noop: FaultInjector = NoopFaultInjector.into();
        return run_with_faults(source, switch, &cfg, &mut NoopTracer, None, Some(&noop));
    }
    run(source, switch, &cfg)
}

/// [`simulate`] on the sharded datapath: the stream is partitioned by
/// flow hash across `shards` windowed generations (feature extraction
/// batched per shard into the packet arena) and consumed by the same
/// serial event loop — byte-identical to [`simulate`] for every shard
/// count, including `1` (see `accturbo_netsim::shard`). The sharded
/// path carries no fault plane, so the fault-noop lockdown toggle does
/// not apply here.
pub fn simulate_sharded(
    mut source: Box<dyn PacketSource>,
    switch: &mut dyn Switch,
    link_bps: u64,
    secs: u64,
    control_period: Option<SimDuration>,
    shards: usize,
) -> RunResult {
    let cfg = engine_config(link_bps, secs, control_period);
    if shards <= 1 {
        return run(&mut *source, switch, &cfg);
    }
    ShardedEngine::new(shards).run_stream(source, switch, &cfg)
}

/// [`simulate`] with a fault plane: the engine consults `faults` for
/// control-tick suppression/delay and link flaps. Packet-level faults
/// are the caller's job — wrap the source in a
/// [`accturbo_netsim::FaultedSource`] holding a clone of the same
/// injector.
pub fn simulate_with_faults(
    source: &mut dyn PacketSource,
    switch: &mut dyn Switch,
    link_bps: u64,
    secs: u64,
    control_period: Option<SimDuration>,
    faults: &FaultInjector,
) -> RunResult {
    let cfg = engine_config(link_bps, secs, control_period);
    run_with_faults(source, switch, &cfg, &mut NoopTracer, None, Some(faults))
}

/// [`simulate`] with observability: engine-side events go to `tracer`,
/// engine metrics (and per-interval snapshots) to `metrics`. Install the
/// same tracer/registry on the switch beforehand to interleave its
/// enqueue/cluster/remap events into the same timeline.
pub fn simulate_instrumented<T: Tracer + ?Sized>(
    source: &mut dyn PacketSource,
    switch: &mut dyn Switch,
    link_bps: u64,
    secs: u64,
    control_period: Option<SimDuration>,
    tracer: &mut T,
    metrics: Option<&MetricsHandle>,
) -> RunResult {
    let cfg = engine_config(link_bps, secs, control_period);
    run_instrumented(source, switch, &cfg, tracer, metrics)
}

/// [`simulate`] with the full streaming-telemetry plumbing: optional
/// fault plane, engine tracer (share a flight-recorder handle with the
/// switch to get one interleaved incident timeline), engine metrics,
/// and the [`Telemetry`] bundle driven at every stats boundary. With
/// `telemetry == None` this is byte-identical to the corresponding
/// non-streamed path.
#[allow(clippy::too_many_arguments)]
pub fn simulate_streamed<T: Tracer + ?Sized>(
    source: &mut dyn PacketSource,
    switch: &mut dyn Switch,
    link_bps: u64,
    secs: u64,
    control_period: Option<SimDuration>,
    tracer: &mut T,
    metrics: Option<&MetricsHandle>,
    faults: Option<&FaultInjector>,
    telemetry: Option<&mut Telemetry>,
) -> RunResult {
    let cfg = engine_config(link_bps, secs, control_period);
    run_streamed(source, switch, &cfg, tracer, metrics, faults, telemetry)
}

/// Pushes the structural summary of a bandwidth-share panel into a
/// [`FigureResult`]: per-class mean share and the mean drop rate over
/// the run. Together with the `rendered_fnv` digest this pins the
/// panel's series against silent drift while staying compact.
pub fn push_share_summary(
    r: &mut FigureResult,
    prefix: &str,
    res: &RunResult,
    link_bps: u64,
    classes: &[ClassId],
    secs: u64,
) {
    let shares = share_series(res, link_bps, classes, secs);
    for (i, &c) in classes.iter().enumerate() {
        let mean = shares.iter().map(|row| row[i]).sum::<f64>() / secs.max(1) as f64;
        r.num(&format!("{prefix}.agg{}.mean_share", c.0), mean);
    }
    let droprate = (0..secs as usize)
        .map(|t| res.stats.drop_rate(t))
        .sum::<f64>()
        / secs.max(1) as f64;
    r.num(&format!("{prefix}.mean_droprate"), droprate);
}

/// Pushes the structural summary of an attack/benign throughput panel
/// (Figs. 6 and 7): mean delivered rate of each side over the run, at
/// the paper's axis scale (sim Mbps == paper Gbps).
pub fn push_throughput_summary(r: &mut FigureResult, prefix: &str, res: &RunResult, secs: u64) {
    let n = secs.max(1) as f64;
    let attack = (0..secs as usize)
        .map(|t| res.stats.attack_throughput_bps(t))
        .sum::<f64>()
        / n
        / 1e6;
    let benign = (0..secs as usize)
        .map(|t| res.stats.throughput_bps(t, ClassId::BENIGN))
        .sum::<f64>()
        / n
        / 1e6;
    r.num(&format!("{prefix}.mean_attack_gbps"), attack);
    r.num(&format!("{prefix}.mean_benign_gbps"), benign);
}

/// Renders the Figs. 2/3 per-second bandwidth-share CSV panel: shares
/// of aggregates 1–5 plus the total, optionally followed by the
/// drop-rate series (Fig. 2's extra column).
pub fn share_panel(
    out: &mut String,
    title: &str,
    res: &RunResult,
    link_bps: u64,
    secs: u64,
    droprate: bool,
) {
    use accturbo_telemetry::f;
    use std::fmt::Write as _;
    let classes: Vec<ClassId> = (1..=5).map(ClassId).collect();
    let shares = share_series(res, link_bps, &classes, secs);
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "t,agg1,agg2,agg3,agg4,agg5,all{}",
        if droprate { ",droprate" } else { "" }
    );
    for (t, row) in shares.iter().enumerate() {
        let all: f64 = row.iter().sum();
        let _ = write!(
            out,
            "{t},{},{},{},{},{},{}",
            f(row[0]),
            f(row[1]),
            f(row[2]),
            f(row[3]),
            f(row[4]),
            f(all),
        );
        if droprate {
            let _ = write!(out, ",{}", f(res.stats.drop_rate(t)));
        }
        out.push('\n');
    }
}

/// Renders the Figs. 6/7 per-second attack/benign throughput panel at
/// the paper's axis scale (sim Mbps == paper Gbps).
pub fn throughput_panel(out: &mut String, title: &str, res: &RunResult, secs: u64) {
    use accturbo_telemetry::f;
    use std::fmt::Write as _;
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "t,attack_gbps,benign_gbps");
    for t in 0..secs as usize {
        let attack = res.stats.attack_throughput_bps(t) / 1e6;
        let benign = res.stats.throughput_bps(t, ClassId::BENIGN) / 1e6;
        let _ = writeln!(out, "{t},{},{}", f(attack), f(benign));
    }
}

/// Renders an optional delay as the reports' `"never"` convention.
pub fn delay_text(d: Option<u64>) -> String {
    d.map(|x| x.to_string()).unwrap_or_else(|| "never".into())
}

/// Per-second fraction-of-link-bandwidth series for a set of classes —
/// the y-axis of Figs. 2 and 3.
pub fn share_series(
    result: &RunResult,
    link_bps: u64,
    classes: &[accturbo_netsim::ClassId],
    secs: u64,
) -> Vec<Vec<f64>> {
    (0..secs as usize)
        .map(|b| {
            classes
                .iter()
                .map(|&c| result.stats.throughput_bps(b, c) / link_bps as f64)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use accturbo_netsim::{ClassId, FifoQueue, Packet, SimTime, SingleQueueSwitch, VecSource};

    #[test]
    fn scale_math() {
        assert_eq!(Scale::Full.secs(50, 5), 50);
        assert_eq!(Scale::Quick.secs(50, 5), 10);
        assert_eq!(Scale::Quick.secs(3, 5), 1);
    }

    #[test]
    fn simulate_enforces_end_time() {
        let pkts: Vec<Packet> = (0..1000)
            .map(|i| Packet::new(SimTime::from_millis(i * 10)).with_size(100))
            .collect();
        let mut src = VecSource::new(pkts);
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(100_000));
        let res = simulate(&mut src, &mut sw, LINK_10G_SCALED, 5, None);
        assert_eq!(res.arrivals, 500);
    }

    #[test]
    fn share_series_shape() {
        let pkts: Vec<Packet> = (0..100)
            .map(|i| Packet::new(SimTime::from_millis(i * 10)).with_size(1250))
            .collect();
        let mut src = VecSource::new(pkts);
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(1_000_000));
        let res = simulate(&mut src, &mut sw, LINK_10G_SCALED, 2, None);
        let series = share_series(&res, LINK_10G_SCALED, &[ClassId::BENIGN], 2);
        assert_eq!(series.len(), 2);
        // 1250 B x 100 pkts in 1 s = 1 Mbps = 0.1 of the link.
        assert!((series[0][0] - 0.1).abs() < 0.01);
    }
}
