//! Forward-compatible rendering for `xp trace`.
//!
//! Traces are JSONL and append-only by design: newer builds add event
//! kinds that older `xp` binaries have never heard of. Rather than
//! silently skipping those lines (which makes a trace *look* complete
//! while hiding exactly the events someone added last week), unknown
//! kinds are rendered raw — timestamp and kind tag extracted when
//! possible, the original JSON passed through — and counted so the
//! caller can print one warning at the end.

use accturbo_obs::{raw_field, OwnedEvent};
use std::io::{self, Write};

/// Counters from one [`dump_to`] pass over a trace.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Lines parsed as known events and pretty-printed.
    pub rendered: usize,
    /// Lines rendered raw: unknown event kinds or malformed JSON.
    pub unknown: usize,
}

/// Renders one trace line: known events via [`OwnedEvent::pretty`],
/// everything else raw in the same column layout so mixed output stays
/// scannable. Returns the text plus whether the line was unknown.
pub fn render_line(line: &str) -> (String, bool) {
    if let Some((ts, ev)) = OwnedEvent::parse_jsonl_line(line) {
        return (ev.pretty(ts), false);
    }
    // Future/unknown kind: salvage the timestamp and tag so the line
    // still sorts visually with its neighbours, and keep the raw JSON.
    let ts = raw_field(line, "ts").and_then(|v| v.parse::<u64>().ok());
    let kind = raw_field(line, "ev")
        .map(|v| v.trim_matches('"').to_string())
        .unwrap_or_else(|| "?".into());
    let text = match ts {
        Some(ns) => format!(
            "{:>12.6}s  ?{:<8} {line}",
            ns as f64 / 1e9,
            kind.to_ascii_uppercase()
        ),
        None => format!("{:>12}   ?{:<8} {line}", "?", kind.to_ascii_uppercase()),
    };
    (text, true)
}

/// Renders a whole JSONL trace to `out`, one line per non-blank input
/// line. Never drops a line: unknown kinds come out raw and are tallied
/// in [`TraceStats::unknown`].
pub fn dump_to<W: Write>(text: &str, out: &mut W) -> io::Result<TraceStats> {
    let mut stats = TraceStats::default();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let (rendered, unknown) = render_line(line);
        writeln!(out, "{rendered}")?;
        if unknown {
            stats.unknown += 1;
        } else {
            stats.rendered += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_events_pretty_print() {
        let line =
            r#"{"ts":2000000000,"ev":"drop","queue":1,"class":3,"size":1500,"reason":"full"}"#;
        let (text, unknown) = render_line(line);
        assert!(!unknown);
        assert!(text.contains("DROP"), "{text}");
        assert!(!text.contains('{'), "pretty output, not raw: {text}");
    }

    #[test]
    fn future_event_kind_renders_raw_not_skipped() {
        // An event kind no current build emits — simulates reading a
        // trace written by a newer xp.
        let line = r#"{"ts":5000000000,"ev":"quantum_teleport","qubits":3}"#;
        let (text, unknown) = render_line(line);
        assert!(unknown);
        assert!(text.contains("?QUANTUM_TELEPORT"), "{text}");
        assert!(text.contains(r#""qubits":3"#), "raw JSON retained: {text}");
        assert!(text.starts_with("    5.000000s"), "{text}");
    }

    #[test]
    fn malformed_line_renders_raw_with_placeholder() {
        let (text, unknown) = render_line("not json at all");
        assert!(unknown);
        assert!(text.contains("not json at all"), "{text}");
    }

    #[test]
    fn dump_counts_both_classes_and_emits_every_line() {
        let trace = concat!(
            r#"{"ts":1000000000,"ev":"drop","queue":0,"class":1,"size":64,"reason":"full"}"#,
            "\n\n",
            r#"{"ts":2000000000,"ev":"warp_core_breach","severity":9}"#,
            "\n",
        );
        let mut out = Vec::new();
        let stats = dump_to(trace, &mut out).unwrap();
        assert_eq!(
            stats,
            TraceStats {
                rendered: 1,
                unknown: 1
            }
        );
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        assert!(text.contains("?WARP_CORE_BREACH"), "{text}");
    }
}
