//! Robustness sweep: ACC-Turbo under substrate faults (DESIGN.md §9).
//!
//! Not a paper figure — a degradation report for the fault-injection
//! layer. The Fig. 2 workload (four benign CBR aggregates plus the
//! ramping attack) runs against ACC-Turbo while a seeded
//! [`FaultSchedule`] perturbs the substrate: control ticks are dropped
//! or delayed, cluster snapshots go stale, packets are corrupt-dropped
//! or reordered, and the output link flaps. The sweep crosses fault
//! intensity with the control-plane polling period and reports, per
//! cell, the benign goodput retained relative to the fault-free
//! baseline at the same period, alongside every injection and
//! degradation counter.
//!
//! The claim locked down by the golden: degradation is *graceful* —
//! benign goodput decays boundedly with intensity, the
//! bounded-staleness policy falls back instead of panicking, and the
//! whole sweep is a deterministic function of the seed.

use crate::common::Scale;
use crate::result::FigureResult;
use crate::spec::{DefenseSpec, ScenarioSpec, WorkloadSpec};
use crate::Figure;
use accturbo_netsim::{ClassId, FaultConfig, FaultStats, RunResult, SimDuration};
use accturbo_telemetry::f;
use accturbo_traffic::scenarios;
use std::fmt::Write as _;

/// The canonical workload/fault seed.
pub const DEFAULT_SEED: u64 = 0xFA17;

/// Every fault knob the `--faults` flag can set, in report order.
pub const FAULT_KINDS: &[&str] = &[
    "ctrl_drop",
    "ctrl_delay",
    "stale",
    "pkt_drop",
    "pkt_reorder",
    "link_flap",
];

/// Builds a [`FaultConfig`] from `(kind, intensity)` pairs using the
/// [`FAULT_KINDS`] names. Panics on an unknown kind — `cli::parse`
/// validates user input before it gets here.
pub fn config_from_mix(mix: &[(String, f64)], seed: u64) -> FaultConfig {
    let mut cfg = FaultConfig::none(seed);
    for (kind, v) in mix {
        match kind.as_str() {
            "ctrl_drop" => cfg.ctrl_drop = *v,
            "ctrl_delay" => cfg.ctrl_delay = *v,
            "stale" => cfg.stale_snapshot = *v,
            "pkt_drop" => cfg.pkt_drop = *v,
            "pkt_reorder" => cfg.pkt_reorder = *v,
            "link_flap" => cfg.link_flap = *v,
            other => panic!("unknown fault kind `{other}` (cli::parse validates first)"),
        }
    }
    cfg
}

/// One sweep cell's outcome.
struct Cell {
    res: RunResult,
    faults: FaultStats,
    missed_ticks: u64,
    stale_ticks: u64,
    fallbacks: u64,
}

/// Runs the Fig. 2 workload against ACC-Turbo at `period`, faulted by
/// `fc` (or fault-free when `None` — the per-period baseline).
fn run_cell(fc: Option<FaultConfig>, period: SimDuration, secs: u64, seed: u64) -> Cell {
    let mut spec = ScenarioSpec::new(WorkloadSpec::Fig2, DefenseSpec::accturbo())
        .with_secs(secs)
        .with_seed(seed)
        .with_period(period);
    if let Some(fc) = fc {
        spec = spec.with_faults(fc);
    }
    let outcome = spec.execute();
    Cell {
        res: outcome.result,
        faults: outcome.fault_stats.unwrap_or_default(),
        missed_ticks: outcome.missed_ticks,
        stale_ticks: outcome.stale_ticks,
        fallbacks: outcome.fallbacks,
    }
}

/// Mean delivered rate of the four benign aggregates, in sim Mbps.
fn benign_mbps(res: &RunResult, secs: u64) -> f64 {
    let n = secs.max(1) as f64;
    (0..secs as usize)
        .map(|t| {
            (1..=4)
                .map(|c| res.stats.throughput_bps(t, ClassId(c)))
                .sum::<f64>()
        })
        .sum::<f64>()
        / n
        / 1e6
}

/// Mean delivered rate of the attack aggregate, in sim Mbps.
fn attack_mbps(res: &RunResult, secs: u64) -> f64 {
    let n = secs.max(1) as f64;
    (0..secs as usize)
        .map(|t| res.stats.throughput_bps(t, ClassId(5)))
        .sum::<f64>()
        / n
        / 1e6
}

const CSV_HEADER: &str = "period_ms,intensity,benign_mbps,attack_mbps,retention,\
                          ctrl_dropped,ctrl_delayed,stale_served,pkt_dropped,pkt_reordered,\
                          flap_windows,missed_ticks,fallbacks";

/// Emits one sweep row into the report and the result. `baseline` is
/// the fault-free benign goodput at the same period; returns this
/// cell's retention relative to it.
#[allow(clippy::too_many_arguments)]
fn emit_cell(
    out: &mut String,
    r: &mut FigureResult,
    key: &str,
    period_ms: u64,
    intensity: f64,
    cell: &Cell,
    secs: u64,
    baseline: f64,
) -> f64 {
    let benign = benign_mbps(&cell.res, secs);
    let attack = attack_mbps(&cell.res, secs);
    let retention = benign / baseline.max(1e-9);
    let _ = writeln!(
        out,
        "{period_ms},{},{},{},{},{},{},{},{},{},{},{},{}",
        f(intensity),
        f(benign),
        f(attack),
        f(retention),
        cell.faults.ctrl_dropped,
        cell.faults.ctrl_delayed,
        cell.faults.stale_served,
        cell.faults.pkt_dropped,
        cell.faults.pkt_reordered,
        cell.faults.flap_windows,
        cell.missed_ticks,
        cell.fallbacks,
    );
    // Rates carry a loose tolerance (the sweep pins trends, not every
    // float digit — the rendered_fnv digest still backstops the exact
    // text); injection counters are exact integers.
    r.num_tol(&format!("{key}.benign_mbps"), benign, 1e-6);
    r.num_tol(&format!("{key}.retention"), retention, 1e-6);
    r.int(
        &format!("{key}.ctrl_dropped"),
        cell.faults.ctrl_dropped as i64,
    );
    r.int(
        &format!("{key}.ctrl_delayed"),
        cell.faults.ctrl_delayed as i64,
    );
    r.int(
        &format!("{key}.stale_served"),
        cell.faults.stale_served as i64,
    );
    r.int(
        &format!("{key}.pkt_dropped"),
        cell.faults.pkt_dropped as i64,
    );
    r.int(&format!("{key}.missed_ticks"), cell.missed_ticks as i64);
    r.int(&format!("{key}.stale_ticks"), cell.stale_ticks as i64);
    r.int(&format!("{key}.fallbacks"), cell.fallbacks as i64);
    retention
}

/// Regenerates the robustness sweep at `seed`, returning the rendered
/// degradation report and its machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(scenarios::RUN_SECS, 2);
    let (periods_ms, intensities): (&[u64], &[f64]) = match scale {
        Scale::Full => (&[100, 250, 1000], &[0.0, 0.25, 0.5, 0.75, 1.0]),
        Scale::Quick => (&[250], &[0.0, 0.5, 1.0]),
    };

    let mut out = String::new();
    let mut r = FigureResult::new("robustness");
    let _ = writeln!(out, "# Robustness sweep: fault intensity x control period");
    let _ = writeln!(out, "{CSV_HEADER}");

    let mut worst_retention = f64::INFINITY;
    for &period_ms in periods_ms {
        let period = SimDuration::from_millis(period_ms);
        let mut baseline = 0.0;
        for &intensity in intensities {
            let fc = (intensity > 0.0).then(|| FaultConfig::uniform(intensity, seed));
            let cell = run_cell(fc, period, secs, seed);
            if intensity == 0.0 {
                baseline = benign_mbps(&cell.res, secs);
            }
            let key = format!("p{period_ms}ms.i{:03}", (intensity * 100.0).round() as u32);
            let ret = emit_cell(
                &mut out, &mut r, &key, period_ms, intensity, &cell, secs, baseline,
            );
            if intensity > 0.0 {
                worst_retention = worst_retention.min(ret);
            }
        }
    }
    let _ = writeln!(out, "# Summary");
    let _ = writeln!(out, "worst_retention,{}", f(worst_retention));
    r.num_tol("summary.worst_retention", worst_retention, 1e-6);
    Figure::new(out, r)
}

/// Runs the robustness scenario under a custom fault mix (the `--faults`
/// flag): the fault-free baseline plus the mix, at the canonical 250 ms
/// control period.
pub fn figure_with(scale: Scale, seed: u64, mix: &[(String, f64)]) -> Figure {
    let secs = scale.secs(scenarios::RUN_SECS, 2);
    let period = SimDuration::from_millis(250);

    let mut out = String::new();
    let mut r = FigureResult::new("robustness");
    let _ = writeln!(
        out,
        "# Robustness: custom fault mix at 250 ms control period"
    );
    for (kind, v) in mix {
        let _ = writeln!(out, "# fault {kind} = {}", f(*v));
    }
    let _ = writeln!(out, "{CSV_HEADER}");

    let base = run_cell(None, period, secs, seed);
    let baseline = benign_mbps(&base.res, secs);
    emit_cell(
        &mut out, &mut r, "baseline", 250, 0.0, &base, secs, baseline,
    );

    let faulted = run_cell(Some(config_from_mix(mix, seed)), period, secs, seed);
    emit_cell(
        &mut out, &mut r, "faulted", 250, 1.0, &faulted, secs, baseline,
    );
    Figure::new(out, r)
}

/// Regenerates the sweep at the canonical seed.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_is_bounded_up_to_max_intensity() {
        // The acceptance bar: at full fault intensity the defense may
        // lose throughput but must neither collapse nor panic.
        let secs = Scale::Quick.secs(scenarios::RUN_SECS, 2);
        let period = SimDuration::from_millis(250);
        let base = run_cell(None, period, secs, DEFAULT_SEED);
        let full = run_cell(
            Some(FaultConfig::uniform(1.0, DEFAULT_SEED)),
            period,
            secs,
            DEFAULT_SEED,
        );
        let baseline = benign_mbps(&base.res, secs);
        let retained = benign_mbps(&full.res, secs);
        assert!(baseline > 0.0);
        let retention = retained / baseline;
        assert!(
            retention > 0.2,
            "benign goodput collapsed at max intensity: {retention:.3}"
        );
        assert!(retention <= 1.05, "faults cannot create goodput");
        // At intensity 1.0 every fault class must actually fire, and the
        // degradation policy must have made decisions.
        assert!(full.faults.ctrl_dropped > 0);
        assert!(full.faults.pkt_dropped > 0);
        assert!(full.missed_ticks > 0);
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = figure(Scale::Quick, 42);
        let b = figure(Scale::Quick, 42);
        assert_eq!(a.rendered, b.rendered);
        assert_eq!(a.result.to_golden(), b.result.to_golden());
        let c = figure(Scale::Quick, 43);
        assert_ne!(
            a.result.to_golden(),
            c.result.to_golden(),
            "different seeds must produce different sweeps"
        );
    }

    #[test]
    fn custom_mix_matches_the_named_knobs() {
        let mix = vec![
            ("ctrl_drop".to_string(), 0.7),
            ("link_flap".to_string(), 0.3),
        ];
        let cfg = config_from_mix(&mix, 9);
        assert_eq!(cfg.ctrl_drop, 0.7);
        assert_eq!(cfg.link_flap, 0.3);
        assert_eq!(cfg.pkt_drop, 0.0);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    #[should_panic(expected = "unknown fault kind")]
    fn unknown_mix_kind_panics() {
        let _ = config_from_mix(&[("frobnicate".to_string(), 0.5)], 1);
    }
}
