//! Machine-readable experiment results and the golden-snapshot codec.
//!
//! Every figure module returns a [`FigureResult`] alongside its rendered
//! report: a flat, ordered list of named fields. Numeric fields carry a
//! declared relative tolerance; everything else compares exactly. The
//! golden-figure regression tests (`tests/figure_goldens.rs`) serialize
//! these to `tests/goldens/<figure>.golden` with [`FigureResult::to_golden`]
//! and compare re-runs structurally with [`FigureResult::compare`], so a
//! silent drift in clustering, scheduling or the simulator fails with a
//! message naming the exact field that moved.
//!
//! The text format is line-based and diff-friendly:
//!
//! ```text
//! figure fig2
//! num d.agg1.mean_share 0.2124999 tol 1e-9
//! int rendered_fnv 1234567890123
//! text summary.acc_mitigation_after_s 4
//! ```

use std::fmt::Write as _;

/// Default relative tolerance for numeric fields. The simulator is
/// bit-deterministic, so this only has to absorb cross-platform float
/// formatting/libm noise, not run-to-run variance.
pub const DEFAULT_TOL: f64 = 1e-9;

/// A field value: numeric (tolerance-compared), integer or text (exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A float, compared within the field's declared relative tolerance.
    Num(f64),
    /// An integer, compared exactly.
    Int(i64),
    /// Free text, compared exactly.
    Text(String),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Num(_) => "num",
            Value::Int(_) => "int",
            Value::Text(_) => "text",
        }
    }
}

/// One named field of a figure's result.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (no whitespace; dotted paths by convention).
    pub key: String,
    /// The value.
    pub value: Value,
    /// Relative tolerance for [`Value::Num`] comparison.
    pub tol: f64,
}

/// The machine-readable result of one figure/table regeneration.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// The figure's registry name (`fig2`, `table3`, ...).
    pub figure: String,
    /// Ordered fields.
    pub fields: Vec<Field>,
}

impl FigureResult {
    /// Creates an empty result for `figure`.
    pub fn new(figure: &str) -> Self {
        FigureResult {
            figure: figure.to_string(),
            fields: Vec::new(),
        }
    }

    fn push(&mut self, key: &str, value: Value, tol: f64) {
        debug_assert!(
            !key.is_empty() && !key.contains(char::is_whitespace),
            "field keys must be non-empty and whitespace-free: {key:?}"
        );
        debug_assert!(
            self.fields.iter().all(|f| f.key != key),
            "duplicate field key: {key:?}"
        );
        self.fields.push(Field {
            key: key.to_string(),
            value,
            tol,
        });
    }

    /// Adds a numeric field with the default tolerance.
    pub fn num(&mut self, key: &str, v: f64) {
        self.push(key, Value::Num(v), DEFAULT_TOL);
    }

    /// Adds a numeric field with an explicit relative tolerance.
    pub fn num_tol(&mut self, key: &str, v: f64, tol: f64) {
        self.push(key, Value::Num(v), tol);
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, v: i64) {
        self.push(key, Value::Int(v), 0.0);
    }

    /// Adds a text field (newlines are escaped in the golden encoding).
    pub fn text(&mut self, key: &str, v: &str) {
        self.push(key, Value::Text(v.to_string()), 0.0);
    }

    /// Looks a field up by key.
    pub fn get(&self, key: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.key == key)
    }

    /// Serializes to the golden-snapshot text format. Floats use Rust's
    /// shortest round-trip formatting, so `parse_golden` recovers them
    /// bit-exactly.
    pub fn to_golden(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "figure {}", self.figure);
        for f in &self.fields {
            match &f.value {
                Value::Num(v) => {
                    let _ = writeln!(out, "num {} {:?} tol {:e}", f.key, v, f.tol);
                }
                Value::Int(v) => {
                    let _ = writeln!(out, "int {} {v}", f.key);
                }
                Value::Text(v) => {
                    let _ = writeln!(out, "text {} {}", f.key, escape(v));
                }
            }
        }
        out
    }

    /// Parses the golden-snapshot text format back.
    pub fn parse_golden(text: &str) -> Result<FigureResult, String> {
        let mut lines = text
            .lines()
            .map(str::trim_end)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header = lines.next().ok_or("empty golden file")?;
        let figure = header
            .strip_prefix("figure ")
            .ok_or_else(|| format!("expected `figure <name>` header, got {header:?}"))?;
        let mut result = FigureResult::new(figure);
        for (i, line) in lines.enumerate() {
            let err = |what: &str| format!("golden line {}: {what}: {line:?}", i + 2);
            let (kind, rest) = line.split_once(' ').ok_or_else(|| err("missing key"))?;
            match kind {
                "num" => {
                    let (key, rest) = rest.split_once(' ').ok_or_else(|| err("missing value"))?;
                    let (raw, tol) = match rest.split_once(" tol ") {
                        Some((raw, tol)) => {
                            (raw, tol.parse::<f64>().map_err(|_| err("unparseable tol"))?)
                        }
                        None => (rest, DEFAULT_TOL),
                    };
                    let v = raw.parse::<f64>().map_err(|_| err("unparseable float"))?;
                    result.num_tol(key, v, tol);
                }
                "int" => {
                    let (key, raw) = rest.split_once(' ').ok_or_else(|| err("missing value"))?;
                    let v = raw.parse::<i64>().map_err(|_| err("unparseable int"))?;
                    result.int(key, v);
                }
                "text" => {
                    let (key, raw) = rest.split_once(' ').ok_or_else(|| err("missing value"))?;
                    result.text(key, &unescape(raw));
                }
                _ => return Err(err("unknown field kind")),
            }
        }
        Ok(result)
    }

    /// Structural comparison: `self` is the golden (expected), `actual`
    /// the fresh run. Returns one human-readable line per drifted,
    /// missing or extra field — empty means the snapshot holds. Numeric
    /// fields pass when within the golden's declared relative tolerance
    /// (with a small absolute floor near zero); everything else must
    /// match exactly.
    pub fn compare(&self, actual: &FigureResult) -> Vec<String> {
        let mut diffs = Vec::new();
        if self.figure != actual.figure {
            diffs.push(format!(
                "figure name changed: golden `{}` vs actual `{}`",
                self.figure, actual.figure
            ));
        }
        for exp in &self.fields {
            let Some(act) = actual.get(&exp.key) else {
                diffs.push(format!("field `{}` missing from the new result", exp.key));
                continue;
            };
            match (&exp.value, &act.value) {
                (Value::Num(e), Value::Num(a)) if !within(*e, *a, exp.tol) => {
                    diffs.push(format!(
                        "field `{}` drifted: golden {e:?} vs actual {a:?} (tol {:e} rel)",
                        exp.key, exp.tol
                    ));
                }
                (Value::Int(e), Value::Int(a)) if e != a => {
                    diffs.push(format!(
                        "field `{}` drifted: golden {e} vs actual {a}",
                        exp.key
                    ));
                }
                (Value::Text(e), Value::Text(a)) if e != a => {
                    diffs.push(format!(
                        "field `{}` drifted: golden {e:?} vs actual {a:?}",
                        exp.key
                    ));
                }
                (e, a) if e.kind() != a.kind() => {
                    diffs.push(format!(
                        "field `{}` changed kind: golden {} vs actual {}",
                        exp.key,
                        e.kind(),
                        a.kind()
                    ));
                }
                _ => {}
            }
        }
        for act in &actual.fields {
            if self.get(&act.key).is_none() {
                diffs.push(format!("new field `{}` not in the golden", act.key));
            }
        }
        diffs
    }
}

fn within(expected: f64, actual: f64, tol: f64) -> bool {
    if expected == actual || (expected.is_nan() && actual.is_nan()) {
        return true;
    }
    let scale = expected.abs().max(actual.abs());
    (expected - actual).abs() <= tol * scale + 1e-12
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// FNV-1a (64-bit) of a string — the rendered-report digest stored as a
/// golden backstop field, so *any* drift in the full report (including
/// series a summary field misses) fails the snapshot.
pub fn fnv1a64(s: &str) -> i64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h as i64
}

/// The mean/min/max aggregate of numeric fields across several same-figure
/// results (one per seed) — the `--seeds` summary block. Non-numeric
/// fields are skipped; fields are reported in the first result's order.
pub fn aggregate_csv(results: &[&FigureResult]) -> String {
    let mut out = String::from("field,mean,min,max\n");
    let Some(first) = results.first() else {
        return out;
    };
    for field in &first.fields {
        let values: Vec<f64> = results
            .iter()
            .filter_map(|r| match r.get(&field.key).map(|f| &f.value) {
                Some(Value::Num(v)) => Some(*v),
                Some(Value::Int(v)) => Some(*v as f64),
                _ => None,
            })
            .collect();
        if values.is_empty() || field.key == "rendered_fnv" {
            continue;
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let _ = writeln!(out, "{},{mean},{min},{max}", field.key);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        let mut r = FigureResult::new("figX");
        r.num("a.mean", 0.123456789123);
        r.num_tol("b.loose", 10.0, 1e-2);
        r.int("count", 42);
        r.text("status", "never");
        r.text("multi", "line one\nline two\\slash");
        r
    }

    #[test]
    fn golden_round_trips_bit_exactly() {
        let r = sample();
        let parsed = FigureResult::parse_golden(&r.to_golden()).unwrap();
        assert_eq!(parsed, r);
        assert!(r.compare(&parsed).is_empty());
    }

    #[test]
    fn drift_is_reported_per_field() {
        let golden = sample();
        let mut actual = sample();
        actual.fields[0].value = Value::Num(0.125);
        actual.fields[2].value = Value::Int(43);
        let diffs = golden.compare(&actual);
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        assert!(diffs[0].contains("a.mean"), "{}", diffs[0]);
        assert!(diffs[1].contains("count"), "{}", diffs[1]);
    }

    #[test]
    fn tolerance_absorbs_small_noise_only() {
        let golden = sample();
        let mut actual = sample();
        actual.fields[1].value = Value::Num(10.05); // within 1e-2 rel
        assert!(golden.compare(&actual).is_empty());
        actual.fields[1].value = Value::Num(10.5); // outside
        assert_eq!(golden.compare(&actual).len(), 1);
    }

    #[test]
    fn missing_extra_and_kind_changes_are_caught() {
        let golden = sample();
        let mut actual = sample();
        actual.fields.remove(3); // drop "status"
        actual.num("fresh", 1.0);
        actual.fields[2].value = Value::Text("42".into()); // kind change
        let diffs = golden.compare(&actual);
        assert_eq!(diffs.len(), 3, "{diffs:?}");
        assert!(diffs.iter().any(|d| d.contains("missing")));
        assert!(diffs.iter().any(|d| d.contains("not in the golden")));
        assert!(diffs.iter().any(|d| d.contains("changed kind")));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(FigureResult::parse_golden("").is_err());
        assert!(FigureResult::parse_golden("nope").is_err());
        assert!(FigureResult::parse_golden("figure x\nnum k abc tol 1e-9").is_err());
        assert!(FigureResult::parse_golden("figure x\nblob k 1").is_err());
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(""), 0xcbf29ce484222325u64 as i64);
        assert_ne!(fnv1a64("a"), fnv1a64("b"));
    }

    #[test]
    fn aggregate_reports_mean_min_max() {
        let mut a = FigureResult::new("f");
        a.num("x", 1.0);
        a.int("n", 10);
        a.text("t", "hi");
        let mut b = FigureResult::new("f");
        b.num("x", 3.0);
        b.int("n", 20);
        b.text("t", "hi");
        let csv = aggregate_csv(&[&a, &b]);
        assert!(csv.contains("x,2,1,3"), "{csv}");
        assert!(csv.contains("n,15,10,20"), "{csv}");
        assert!(!csv.contains("t,"), "{csv}");
    }
}
