//! `xp` — regenerate the paper's tables and figures.
//!
//! ```text
//! xp [FIGURE...] [--quick] [--jobs N] [--seeds A,B,C]
//!    [--trace PATH] [--metrics PATH]
//! xp run KEY=VAL[,KEY=VAL...] [--csv] [--quick]   # one ad-hoc scenario
//! xp search defense=SPEC [--budget N] [--seed N] [--top N]
//!    [--jobs N] [--out PATH] [--quick]   # adversarial worst-case search
//! xp trace PATH        # pretty-print a JSONL trace
//! xp bench-export [--smoke] [--out PATH]   # datapath throughput JSON
//! xp --help
//! ```
//!
//! All parsing and orchestration lives in `accturbo_experiments::cli`;
//! this binary only wires stdout/stderr, the process exit code and the
//! observability exports together.

use accturbo_experiments::cli::{self, Cli, JobSpan};
use accturbo_obs::{Event, Tracer as _};
use std::process::ExitCode;

/// `xp trace PATH`: pretty-print a JSONL trace written by `--trace`.
/// Forward-compatible: unknown event kinds come out raw with a warning
/// rather than being silently dropped (`accturbo_experiments::trace`).
fn dump_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    // A closed pipe (`xp trace … | head`) is a normal exit.
    let stats = match accturbo_experiments::trace::dump_to(&text, &mut out) {
        Ok(stats) => stats,
        Err(_) => return Ok(()),
    };
    if stats.unknown > 0 {
        eprintln!(
            "warning: {} line(s) with unknown event kinds rendered raw \
             (trace written by a newer xp?)",
            stats.unknown
        );
    }
    Ok(())
}

/// Runs the instrumented Fig. 2 ACC-Turbo scenario and writes the
/// requested JSONL exports. The figure run's own job spans are appended
/// to the trace so a parallel `xp all --jobs N --trace …` shows where
/// every figure ran and for how long.
fn export_observability(cli: &Cli, spans: &[JobSpan]) -> Result<(), String> {
    eprintln!("running the instrumented Fig. 2 ACC-Turbo scenario ...");
    let (_, tracer, metrics) = accturbo_experiments::fig2::accturbo_run_instrumented(cli.scale);
    if let Some(path) = &cli.trace {
        for span in spans {
            tracer.borrow_mut().record(
                span.started_at.as_nanos() as u64,
                &Event::JobSpan {
                    job: span.figure,
                    seed: span.seed,
                    worker: span.worker,
                    elapsed_ns: span.elapsed.as_nanos() as u64,
                },
            );
        }
        let t = tracer.borrow();
        t.write_jsonl_to(std::path::Path::new(path))
            .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
        eprintln!(
            "wrote {} events ({} recorded in total) to {path}",
            t.len(),
            t.total_recorded()
        );
    }
    if let Some(path) = &cli.metrics {
        let m = metrics.borrow();
        m.write_jsonl_to(std::path::Path::new(path))
            .map_err(|e| format!("cannot write metrics to `{path}`: {e}"))?;
        eprintln!("wrote {} metric snapshots to {path}", m.snapshot_count());
    }
    Ok(())
}

/// Runs the Fig. 2 ACC-Turbo scenario through the streaming engine and
/// writes whichever of `--sink` / `--dataset` / `--flight-recorder` was
/// requested alongside a figure run. Mirrors [`export_observability`]
/// but with bounded-memory streaming outputs instead of accumulating
/// in-process buffers.
fn export_streaming(cli: &Cli) -> Result<(), String> {
    eprintln!("running the streamed Fig. 2 ACC-Turbo scenario ...");
    let mut argv: Vec<String> = vec!["workload=fig2".into(), "defense=accturbo".into()];
    if cli.scale == accturbo_experiments::Scale::Quick {
        argv.push("--quick".into());
    }
    let spec = cli::parse_run(&argv)?.spec;
    let mut tel = cli::build_telemetry(
        cli.sink.as_deref(),
        cli.dataset.as_deref(),
        cli.flight_recorder.as_deref(),
        spec.seed,
    )?
    .expect("export_streaming is only called when a telemetry flag is set");
    let _ = spec.execute_streamed(Some(&mut tel));
    if let Some(path) = &cli.sink {
        eprintln!(
            "wrote {} telemetry lines ({} periods) to {path}",
            tel.sink_lines(),
            tel.periods()
        );
    }
    if let Some(path) = &cli.dataset {
        eprintln!(
            "wrote {} labeled flow records ({} flows seen) to {path}",
            tel.dataset_rows(),
            tel.flows_seen()
        );
    }
    if let Some(path) = &cli.flight_recorder {
        eprintln!(
            "wrote {} flight window(s) to {path}",
            tel.recorder_windows()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", cli::usage());
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("bench-export") {
        use accturbo_experiments::benchx;
        return match benchx::parse_args(&args[1..]).and_then(|a| benchx::run_export(&a)) {
            Ok(path) => {
                eprintln!("wrote datapath bench baseline to {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("run") {
        return match cli::parse_run(&args[1..]).and_then(|cmd| cli::render_run(&cmd)) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{}", cli::usage());
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("search") {
        return match cli::parse_search(&args[1..]).and_then(|cmd| cli::render_search(&cmd)) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{}", cli::usage());
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("trace") {
        return match args.get(1) {
            Some(path) => match dump_trace(path) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            None => {
                eprintln!("error: `xp trace` requires a PATH argument");
                ExitCode::FAILURE
            }
        };
    }

    let cli = match cli::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::usage());
            return ExitCode::FAILURE;
        }
    };

    let spans = cli::run_figures(&cli, |block| print!("{block}"));

    if cli.trace.is_some() || cli.metrics.is_some() {
        if let Err(e) = export_observability(&cli, &spans) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if cli.sink.is_some() || cli.dataset.is_some() || cli.flight_recorder.is_some() {
        if let Err(e) = export_streaming(&cli) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
