//! `xp` — regenerate the paper's tables and figures.

use accturbo_experiments::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let which: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let all = which.is_empty() || which.contains(&"all");

    let run = |name: &str, f: fn(Scale) -> String| {
        if all || which.contains(&name) {
            println!("==================== {name} ====================");
            println!("{}", f(scale));
        }
    };

    run("fig2", accturbo_experiments::fig2::report);
    run("fig3", accturbo_experiments::fig3::report);
    run("fig6", accturbo_experiments::fig6::report);
    run("fig7", accturbo_experiments::fig7::report);
    run("table3", accturbo_experiments::table3::report);
    run("fig8", accturbo_experiments::fig8::report);
    run("fig9", accturbo_experiments::fig9::report);
    run("fig10", accturbo_experiments::fig10::report);
    run("fig11", accturbo_experiments::fig11::report);
    run("adversarial", accturbo_experiments::adversarial::report);
    run("ablations", accturbo_experiments::ablations::report);
    run("pushback", accturbo_experiments::pushback::report);
}
