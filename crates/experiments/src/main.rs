//! `xp` — regenerate the paper's tables and figures.
//!
//! ```text
//! xp [FIGURE...] [--quick] [--jobs N] [--seeds A,B,C]
//!    [--trace PATH] [--metrics PATH]
//! xp run KEY=VAL[,KEY=VAL...] [--csv] [--quick]   # one ad-hoc scenario
//! xp trace PATH        # pretty-print a JSONL trace
//! xp bench-export [--smoke] [--out PATH]   # datapath throughput JSON
//! xp --help
//! ```
//!
//! All parsing and orchestration lives in `accturbo_experiments::cli`;
//! this binary only wires stdout/stderr, the process exit code and the
//! observability exports together.

use accturbo_experiments::cli::{self, Cli, JobSpan};
use accturbo_obs::{Event, OwnedEvent, Tracer as _};
use std::process::ExitCode;

/// `xp trace PATH`: pretty-print a JSONL trace written by `--trace`.
fn dump_trace(path: &str) -> Result<(), String> {
    use std::io::Write as _;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match OwnedEvent::parse_jsonl_line(line) {
            Some((ts, ev)) => {
                // A closed pipe (`xp trace … | head`) is a normal exit.
                if writeln!(out, "{}", ev.pretty(ts)).is_err() {
                    return Ok(());
                }
            }
            None => skipped += 1,
        }
    }
    let _ = out.flush();
    if skipped > 0 {
        eprintln!("({skipped} unparseable lines skipped)");
    }
    Ok(())
}

/// Runs the instrumented Fig. 2 ACC-Turbo scenario and writes the
/// requested JSONL exports. The figure run's own job spans are appended
/// to the trace so a parallel `xp all --jobs N --trace …` shows where
/// every figure ran and for how long.
fn export_observability(cli: &Cli, spans: &[JobSpan]) -> Result<(), String> {
    eprintln!("running the instrumented Fig. 2 ACC-Turbo scenario ...");
    let (_, tracer, metrics) = accturbo_experiments::fig2::accturbo_run_instrumented(cli.scale);
    if let Some(path) = &cli.trace {
        for span in spans {
            tracer.borrow_mut().record(
                span.started_at.as_nanos() as u64,
                &Event::JobSpan {
                    job: span.figure,
                    seed: span.seed,
                    worker: span.worker,
                    elapsed_ns: span.elapsed.as_nanos() as u64,
                },
            );
        }
        let t = tracer.borrow();
        t.write_jsonl_to(std::path::Path::new(path))
            .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
        eprintln!(
            "wrote {} events ({} recorded in total) to {path}",
            t.len(),
            t.total_recorded()
        );
    }
    if let Some(path) = &cli.metrics {
        let m = metrics.borrow();
        m.write_jsonl_to(std::path::Path::new(path))
            .map_err(|e| format!("cannot write metrics to `{path}`: {e}"))?;
        eprintln!("wrote {} metric snapshots to {path}", m.snapshot_count());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", cli::usage());
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("bench-export") {
        use accturbo_experiments::benchx;
        return match benchx::parse_args(&args[1..]).and_then(|a| benchx::run_export(&a)) {
            Ok(path) => {
                eprintln!("wrote datapath bench baseline to {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("run") {
        return match cli::parse_run(&args[1..]) {
            Ok(cmd) => {
                print!("{}", cli::render_run(&cmd));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{}", cli::usage());
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("trace") {
        return match args.get(1) {
            Some(path) => match dump_trace(path) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            None => {
                eprintln!("error: `xp trace` requires a PATH argument");
                ExitCode::FAILURE
            }
        };
    }

    let cli = match cli::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::usage());
            return ExitCode::FAILURE;
        }
    };

    let spans = cli::run_figures(&cli, |block| print!("{block}"));

    if cli.trace.is_some() || cli.metrics.is_some() {
        if let Err(e) = export_observability(&cli, &spans) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
