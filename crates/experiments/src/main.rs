//! `xp` — regenerate the paper's tables and figures.
//!
//! ```text
//! xp [FIGURE...] [--quick] [--trace PATH] [--metrics PATH]
//! xp trace PATH        # pretty-print a JSONL trace
//! xp --help
//! ```

use accturbo_experiments::Scale;
use accturbo_obs::OwnedEvent;
use std::process::ExitCode;

/// Every figure/table `xp` can regenerate, in the paper's order.
const FIGURES: &[(&str, fn(Scale) -> String)] = &[
    ("fig2", accturbo_experiments::fig2::report),
    ("fig3", accturbo_experiments::fig3::report),
    ("fig6", accturbo_experiments::fig6::report),
    ("fig7", accturbo_experiments::fig7::report),
    ("table3", accturbo_experiments::table3::report),
    ("fig8", accturbo_experiments::fig8::report),
    ("fig9", accturbo_experiments::fig9::report),
    ("fig10", accturbo_experiments::fig10::report),
    ("fig11", accturbo_experiments::fig11::report),
    ("adversarial", accturbo_experiments::adversarial::report),
    ("ablations", accturbo_experiments::ablations::report),
    ("pushback", accturbo_experiments::pushback::report),
];

fn usage() -> String {
    let names: Vec<&str> = FIGURES.iter().map(|(n, _)| *n).collect();
    format!(
        "xp — regenerate the paper's tables and figures\n\
         \n\
         USAGE:\n\
         \x20   xp [FIGURE...] [OPTIONS]     run the named figures (default: all)\n\
         \x20   xp trace PATH                pretty-print a JSONL trace file\n\
         \n\
         FIGURES:\n\
         \x20   {}\n\
         \x20   all                          everything above\n\
         \n\
         OPTIONS:\n\
         \x20   --quick                      shrink durations/rates (CI scale)\n\
         \x20   --trace PATH                 also run the Fig. 2 ACC-Turbo scenario\n\
         \x20                                with event tracing and write the JSONL\n\
         \x20                                trace to PATH\n\
         \x20   --metrics PATH               write the same run's per-interval\n\
         \x20                                metrics snapshots (JSONL) to PATH\n\
         \x20   --help                       this text",
        names.join(", ")
    )
}

struct Cli {
    scale: Scale,
    targets: Vec<String>,
    trace: Option<String>,
    metrics: Option<String>,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        scale: Scale::Full,
        targets: Vec::new(),
        trace: None,
        metrics: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cli.scale = Scale::Quick,
            "--trace" => {
                cli.trace = Some(
                    it.next()
                        .ok_or_else(|| "--trace requires a PATH argument".to_string())?
                        .clone(),
                );
            }
            "--metrics" => {
                cli.metrics = Some(
                    it.next()
                        .ok_or_else(|| "--metrics requires a PATH argument".to_string())?
                        .clone(),
                );
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option `{flag}`"));
            }
            name => {
                let known = name == "all" || FIGURES.iter().any(|(n, _)| *n == name);
                if !known {
                    let names: Vec<&str> = FIGURES.iter().map(|(n, _)| *n).collect();
                    return Err(format!(
                        "unknown figure `{name}`; valid names: {}, all",
                        names.join(", ")
                    ));
                }
                cli.targets.push(name.to_string());
            }
        }
    }
    Ok(cli)
}

/// `xp trace PATH`: pretty-print a JSONL trace written by `--trace`.
fn dump_trace(path: &str) -> Result<(), String> {
    use std::io::Write as _;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match OwnedEvent::parse_jsonl_line(line) {
            Some((ts, ev)) => {
                // A closed pipe (`xp trace … | head`) is a normal exit.
                if writeln!(out, "{}", ev.pretty(ts)).is_err() {
                    return Ok(());
                }
            }
            None => skipped += 1,
        }
    }
    let _ = out.flush();
    if skipped > 0 {
        eprintln!("({skipped} unparseable lines skipped)");
    }
    Ok(())
}

/// Runs the instrumented Fig. 2 ACC-Turbo scenario and writes the
/// requested JSONL exports.
fn export_observability(cli: &Cli) -> Result<(), String> {
    eprintln!("running the instrumented Fig. 2 ACC-Turbo scenario ...");
    let (_, tracer, metrics) = accturbo_experiments::fig2::accturbo_run_instrumented(cli.scale);
    if let Some(path) = &cli.trace {
        let t = tracer.borrow();
        t.write_jsonl_to(std::path::Path::new(path))
            .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
        eprintln!(
            "wrote {} events ({} recorded in total) to {path}",
            t.len(),
            t.total_recorded()
        );
    }
    if let Some(path) = &cli.metrics {
        let m = metrics.borrow();
        m.write_jsonl_to(std::path::Path::new(path))
            .map_err(|e| format!("cannot write metrics to `{path}`: {e}"))?;
        eprintln!("wrote {} metric snapshots to {path}", m.snapshot_count());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("trace") {
        return match args.get(1) {
            Some(path) => match dump_trace(path) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            None => {
                eprintln!("error: `xp trace` requires a PATH argument");
                ExitCode::FAILURE
            }
        };
    }

    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let all = cli.targets.is_empty() || cli.targets.iter().any(|t| t == "all");
    for (name, f) in FIGURES {
        if all || cli.targets.iter().any(|t| t == name) {
            println!("==================== {name} ====================");
            println!("{}", f(cli.scale));
        }
    }

    if cli.trace.is_some() || cli.metrics.is_some() {
        if let Err(e) = export_observability(&cli) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
