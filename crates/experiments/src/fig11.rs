//! Figure 11: impact of scheduling for mitigation (paper §8.2).
//!
//! * (a) ranking-algorithm score on the two hardest reflection vectors
//!   (MSSQL and SSDP): the percentage of one-second intervals where
//!   benign traffic received a better average priority than attack
//!   traffic. Expected: adding the cluster-size factor ("/Size")
//!   improves both packet-rate and throughput ranking.
//! * (b) % of benign packets dropped vs. bottleneck capacity for FIFO,
//!   the ground-truth ideal PIFO, and ACC-Turbo variants (Anime-fast,
//!   Manhattan-fast with Th. and Th./Size ranking, Manhattan-exhaustive).
//!   Expected: the deployable Manhattan-fast tracks the ideal scheduler
//!   within a few percent at small bottlenecks and saves tens of percent
//!   of benign traffic over FIFO.
//!
//! Axis note: capacities are the paper's Gbps values at the 1/1000 scale
//! (0.05 Gbps → 50 Mbps, …, 0.001 Gbps → 1 Mbps).

use crate::common::{simulate, Scale};
use crate::result::FigureResult;
use crate::spec::{AccTurboSpec, DefenseSpec, ScenarioSpec, WorkloadSpec};
use crate::Figure;
use accturbo_clustering::{DistanceKind, SearchKind};
use accturbo_netsim::SimDuration;
use accturbo_sched::RankingAlgorithm;
use accturbo_telemetry::{f, SchedulingScore};
use accturbo_traffic::AttackVector;
use std::fmt::Write as _;

/// Control period for the §8 simulation experiments.
const POLL: SimDuration = SimDuration::from_millis(50);
/// The canonical workload seed (the CICDDoS-like day's default). The
/// Fig. 11a "elephant" supplement keeps its own calibrated seeds — its
/// regime is the experiment, not the draw.
pub const DEFAULT_SEED: u64 = 0xC1C;

/// The CICDDoS-style day as a declarative workload (quick runs shrink
/// the episode/gap timing, as the figure always has).
fn day_spec(vectors: Vec<AttackVector>, scale: Scale) -> WorkloadSpec {
    let (episode, gap) = match scale {
        Scale::Quick => (
            Some(SimDuration::from_secs(2)),
            Some(SimDuration::from_secs(1)),
        ),
        Scale::Full => (None, None),
    };
    WorkloadSpec::CicDay {
        vectors: Some(vectors),
        episode,
        gap,
    }
}

/// Runs one vector through ACC-Turbo at `link_bps` with `ranking` and
/// returns the Fig. 11a scheduling score under the paper's protocol
/// (the CICDDoS-style episode of the given vector over background).
///
/// With this repository's re-anchored clustering, the inference isolates
/// MSSQL and SSDP completely at the simulated rates, so every ranking
/// achieves the maximum score — the comparison saturates (see
/// EXPERIMENTS.md). [`elephant_drops`] exercises the regime where the
/// ranking actually decides the outcome.
pub fn ranking_score(
    vector: AttackVector,
    ranking: RankingAlgorithm,
    link_bps: u64,
    scale: Scale,
    seed: u64,
) -> f64 {
    let cfg = day_spec(vec![vector], scale).cic_config(seed);
    let total = cfg.total_duration();
    let mut src = cfg.into_source();
    let mut score = SchedulingScore::new();
    let mut sw = AccTurboSpec::simulation().with_ranking(ranking).build();
    sw.set_tap(Box::new(|pkt, _cluster, queue| {
        score.record(pkt.arrival, queue, pkt.class);
    }));
    let secs = total.as_secs_f64().ceil() as u64;
    simulate(&mut src, &mut sw, link_bps, secs, Some(POLL));
    drop(sw);
    score.score()
}

/// The regime where the ranking algorithm decides the outcome: a *tight*
/// volumetric flood (10 Mbps single flow) next to a *legitimate
/// high-bandwidth service* (an 11 Mbps spread "CDN" aggregate) plus
/// background, on an 18 Mbps bottleneck. A purely rate-based ranking
/// deprioritizes the elephant below the attack; the similarity factor
/// ("/Size") recognizes the elephant's low self-similarity — the design
/// insight Fig. 11a supports. Returns (benign drop %, attack drop %).
pub fn elephant_drops(ranking: RankingAlgorithm) -> (f64, f64) {
    let res = ScenarioSpec::new(
        WorkloadSpec::Elephant,
        DefenseSpec::AccTurbo(AccTurboSpec::simulation().with_ranking(ranking)),
    )
    .with_period(POLL)
    .execute()
    .result;
    (res.stats.benign_drop_pct(), res.stats.attack_drop_pct())
}

/// The ACC-Turbo variants of Fig. 11b.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No defense.
    Fifo,
    /// Ground-truth rank-ordered queue (upper bound).
    PifoIdeal,
    /// Anime distance, fast search, throughput ranking.
    AnimeFastTh,
    /// Manhattan distance, fast search, throughput ranking (deployable).
    ManhattanFastTh,
    /// Manhattan fast, throughput/size ranking (deployable).
    ManhattanFastThSize,
    /// Manhattan exhaustive, throughput ranking.
    ManhattanExhTh,
}

impl Scheme {
    /// All schemes in the paper's legend order.
    pub const ALL: [Scheme; 6] = [
        Scheme::Fifo,
        Scheme::PifoIdeal,
        Scheme::AnimeFastTh,
        Scheme::ManhattanFastTh,
        Scheme::ManhattanFastThSize,
        Scheme::ManhattanExhTh,
    ];

    /// Legend label.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Fifo => "FIFO",
            Scheme::PifoIdeal => "PIFO Ideal",
            Scheme::AnimeFastTh => "An. Fast Th.",
            Scheme::ManhattanFastTh => "* Manh. Fast Th.",
            Scheme::ManhattanFastThSize => "* Manh. F. Th./S.",
            Scheme::ManhattanExhTh => "Manh. Exh. Th.",
        }
    }
}

/// Maps a Fig. 11b scheme to its declarative defense.
pub fn scheme_defense(scheme: Scheme) -> DefenseSpec {
    match scheme {
        Scheme::Fifo => DefenseSpec::Fifo,
        Scheme::PifoIdeal => DefenseSpec::IdealPifo,
        Scheme::AnimeFastTh => {
            DefenseSpec::AccTurbo(AccTurboSpec::simulation().with_distance(DistanceKind::Anime))
        }
        Scheme::ManhattanFastTh => DefenseSpec::AccTurbo(AccTurboSpec::simulation()),
        Scheme::ManhattanFastThSize => DefenseSpec::AccTurbo(
            AccTurboSpec::simulation().with_ranking(RankingAlgorithm::ThroughputOverSize),
        ),
        Scheme::ManhattanExhTh => {
            DefenseSpec::AccTurbo(AccTurboSpec::simulation().with_search(SearchKind::Exhaustive))
        }
    }
}

/// Runs the full attack day through `scheme` at `link_bps`, returning the
/// % of benign packets dropped.
pub fn benign_drop_pct(scheme: Scheme, link_bps: u64, scale: Scale, seed: u64) -> f64 {
    let defense = scheme_defense(scheme);
    let mut spec = ScenarioSpec::new(day_spec(AttackVector::ALL.to_vec(), scale), defense)
        .with_link(link_bps)
        .with_seed(seed);
    if matches!(spec.defense, DefenseSpec::AccTurbo(_)) {
        spec = spec.with_period(POLL);
    }
    spec.execute().result.stats.benign_drop_pct()
}

/// The Fig. 11b bottleneck capacities, scaled (paper: 0.05–0.001 Gbps).
pub const BOTTLENECKS_MBPS: [u64; 5] = [50, 20, 10, 5, 1];

/// Regenerates Fig. 11 at `seed`, returning the rendered report and its
/// machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let mut out = String::new();
    let mut r = FigureResult::new("fig11");
    let slug = |s: &str| {
        s.to_lowercase()
            .replace(['*', '.', '/'], "")
            .trim()
            .replace(' ', "_")
    };

    let _ = writeln!(&mut out, "# Fig. 11a: ranking-algorithm score (%)");
    let _ = writeln!(&mut out, "vector,N.P.,Th.,N.P./Size,Th./Size");
    let vectors: &[AttackVector] = match scale {
        Scale::Full => &[AttackVector::Mssql, AttackVector::Ssdp],
        Scale::Quick => &[AttackVector::Mssql],
    };
    for &v in vectors {
        let _ = write!(&mut out, "{}", v.name());
        for alg in RankingAlgorithm::ALL {
            let s = ranking_score(v, alg, 15_000_000, scale, seed);
            r.num(&format!("a.{}.{}.score", v.name(), slug(alg.name())), s);
            let _ = write!(&mut out, ",{}", f(s));
        }
        let _ = writeln!(&mut out);
    }

    let _ = writeln!(
        &mut out,
        "# Fig. 11a supplement: tight flood vs legitimate elephant (benign/attack drop %)"
    );
    let _ = writeln!(&mut out, "ranking,benign_drop_pct,attack_drop_pct");
    if scale == Scale::Full {
        for alg in RankingAlgorithm::ALL {
            let (b, a) = elephant_drops(alg);
            r.num(&format!("a_supp.{}.benign_drop_pct", slug(alg.name())), b);
            r.num(&format!("a_supp.{}.attack_drop_pct", slug(alg.name())), a);
            let _ = writeln!(&mut out, "{},{},{}", alg.name(), f(b), f(a));
        }
    }

    let _ = writeln!(
        &mut out,
        "# Fig. 11b: % benign packets dropped vs bottleneck"
    );
    let _ = write!(&mut out, "bottleneck_mbps");
    for s in Scheme::ALL {
        let _ = write!(&mut out, ",{}", s.name());
    }
    let _ = writeln!(&mut out);
    let capacities: &[u64] = match scale {
        Scale::Full => &BOTTLENECKS_MBPS,
        Scale::Quick => &[10],
    };
    for &mbps in capacities {
        let _ = write!(&mut out, "{mbps}");
        for s in Scheme::ALL {
            let pct = benign_drop_pct(s, mbps * 1_000_000, scale, seed);
            r.num(&format!("b.{}mbps.{}", mbps, slug(s.name())), pct);
            let _ = write!(&mut out, ",{}", f(pct));
        }
        let _ = writeln!(&mut out);
    }
    Figure::new(out, r)
}

/// Regenerates Fig. 11 at the canonical seed and returns the textual
/// report.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_factor_improves_the_ranking() {
        // Fig. 11a's conclusion ("adding the similarity factor improves
        // performance"), in the regime where the ranking decides the
        // outcome: /Size must save more of the legitimate elephant than
        // plain throughput, and the packet-rate variants must not lose
        // to it either.
        let (th, _) = elephant_drops(RankingAlgorithm::Throughput);
        let (th_size, _) = elephant_drops(RankingAlgorithm::ThroughputOverSize);
        let (np, _) = elephant_drops(RankingAlgorithm::NumPackets);
        assert!(
            th_size < th - 3.0,
            "Th./Size ({th_size:.1}%) must beat Th. ({th:.1}%) on benign drops"
        );
        assert!(np < th, "N.P. ({np:.1}%) must beat Th. ({th:.1}%) here");
    }

    #[test]
    fn paper_protocol_scores_saturate() {
        // With the full 12-feature inference the attack is isolated in
        // every window, so every ranking achieves the maximum score.
        let s = ranking_score(
            AttackVector::Mssql,
            RankingAlgorithm::Throughput,
            15_000_000,
            Scale::Full,
            DEFAULT_SEED,
        );
        assert!(s > 95.0, "MSSQL Th. score {s:.1}");
    }

    #[test]
    fn accturbo_beats_fifo_and_tracks_the_ideal() {
        let mbps = 50;
        let fifo = benign_drop_pct(Scheme::Fifo, mbps * 1_000_000, Scale::Full, DEFAULT_SEED);
        let ideal = benign_drop_pct(
            Scheme::PifoIdeal,
            mbps * 1_000_000,
            Scale::Full,
            DEFAULT_SEED,
        );
        let turbo = benign_drop_pct(
            Scheme::ManhattanFastTh,
            mbps * 1_000_000,
            Scale::Full,
            DEFAULT_SEED,
        );
        assert!(
            fifo - turbo > 15.0,
            "ACC-Turbo ({turbo:.1}%) must save ≫ benign vs FIFO ({fifo:.1}%); paper: 29%"
        );
        assert!(
            turbo - ideal < 15.0,
            "ACC-Turbo ({turbo:.1}%) should track the ideal ({ideal:.1}%); paper: 5.13%"
        );
    }

    #[test]
    fn ideal_pifo_dominates_everything() {
        let mbps = 10;
        let ideal = benign_drop_pct(
            Scheme::PifoIdeal,
            mbps * 1_000_000,
            Scale::Quick,
            DEFAULT_SEED,
        );
        for s in [Scheme::Fifo, Scheme::ManhattanFastTh] {
            let pct = benign_drop_pct(s, mbps * 1_000_000, Scale::Quick, DEFAULT_SEED);
            assert!(
                ideal <= pct + 1.0,
                "{} ({pct:.1}%) must not beat the oracle ({ideal:.1}%)",
                s.name()
            );
        }
    }
}
