//! Figure 7: reaction-time evaluation (paper §7.2.2).
//!
//! A single-flow UDP flood on top of CAIDA-like background:
//!
//! * (a) FIFO — no defense, benign crushed for the attack's duration.
//! * (b) ACC-Turbo — the unoptimized controller polls every 1 s, so the
//!   attack is deprioritized within ≈1 s.
//! * (c) program-swap downtime — the ≈11.5 s of total traffic loss a
//!   Tofino incurs when swapping P4 programs (what Jaqen pays when the
//!   needed mitigation module is not loaded).
//! * (d) Jaqen with the mitigation pre-loaded — the threshold must be hit
//!   in two consecutive windows and the rule deployed: ≈10 s.
//!
//! Expected shape: ACC-Turbo reacts ≈10–11× faster than Jaqen's best and
//! worst cases respectively.

use crate::common::{push_throughput_summary, throughput_panel, Scale, LINK_10G_SCALED};
use crate::result::FigureResult;
use crate::spec::{
    AccTurboSpec, DefenseSpec, FeatureProfile, JaqenSpec, ScenarioSpec, WorkloadSpec,
};
use crate::Figure;
use accturbo_jaqen::Signature;
use accturbo_netsim::{ClassId, MergedSource, RunResult, SimDuration, SimTime};
use accturbo_telemetry::{benign_recovery_time, f};
use accturbo_traffic::workloads;
use std::fmt::Write as _;

/// The program-swap outage model (now a netsim building block).
pub use accturbo_netsim::ProgramSwapSwitch;

const LINK: u64 = LINK_10G_SCALED;
/// The canonical workload seed (the historical in-module constant).
pub const DEFAULT_SEED: u64 = 0x716;
/// Attack start (seconds).
pub const ATTACK_START_S: u64 = workloads::REACTION_ATTACK_START_S;

/// Builds the workload: background for the whole run, single-flow UDP
/// flood from t = 20 s to t = end − 20 s.
pub fn source(secs: u64, seed: u64) -> MergedSource {
    workloads::reaction_flood(secs, seed)
}

/// Runs the reaction-flood workload against `defense`.
fn run(defense: DefenseSpec, secs: u64, seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(WorkloadSpec::Fig7, defense)
        .with_secs(secs)
        .with_seed(seed)
}

/// Runs the workload through FIFO.
pub fn fifo_run(secs: u64, seed: u64) -> RunResult {
    run(DefenseSpec::Fifo, secs, seed).execute().result
}

/// Runs the workload through ACC-Turbo with the paper's unoptimized 1 s
/// controller.
pub fn accturbo_run(secs: u64, seed: u64) -> RunResult {
    run(
        DefenseSpec::AccTurbo(AccTurboSpec::hardware(FeatureProfile::HwDstBytes)),
        secs,
        seed,
    )
    .with_period(SimDuration::from_secs(1))
    .execute()
    .result
}

/// Runs benign-only traffic through the program-swap model (the paper's
/// Fig. 7c swaps between two trivial programs with no attack).
pub fn swap_run(secs: u64, seed: u64) -> RunResult {
    ScenarioSpec::new(
        WorkloadSpec::Background,
        DefenseSpec::ProgramSwap {
            start: SimTime::from_secs(secs * 3 / 5),
            downtime: SimDuration::from_millis(11_500),
        },
    )
    .with_secs(secs)
    .with_seed(seed)
    .execute()
    .result
}

/// Runs the workload through the best-case Jaqen model: mitigation
/// pre-loaded, sketch read periodically, threshold optimized — reaction is
/// dominated by needing the threshold in two consecutive windows plus the
/// controller round (≈10 s in the paper).
pub fn jaqen_run(secs: u64, seed: u64) -> RunResult {
    let spec = JaqenSpec::new(Signature::FiveTuple, 2_000)
        .with_window(SimDuration::from_secs(4))
        .with_deploy_delay(SimDuration::from_millis(1_500));
    run(DefenseSpec::Jaqen(spec), secs, seed).execute().result
}

fn panel(out: &mut String, title: &str, res: &RunResult, secs: u64) {
    throughput_panel(out, title, res, secs);
}

/// Reaction time per the paper's definition (§7.2.2): the time from the
/// first attack packet until the defense *starts mitigating* — here, the
/// first second in which the attack's delivered throughput is suppressed
/// below 65% of the link despite offering 6× the link. An undefended
/// FIFO serves the attack its dominant proportional share (≈90% of the
/// link) and never qualifies.
pub fn reaction_secs(res: &RunResult) -> Option<f64> {
    (ATTACK_START_S as usize + 1..res.stats.num_buckets()).find_map(|t| {
        let offered: f64 = res.stats.arrival_bps(t, ClassId(1));
        if offered < 2.0 * LINK as f64 {
            return None; // attack over (or not yet ramped)
        }
        let delivered = res.stats.attack_throughput_bps(t);
        (delivered < 0.65 * LINK as f64).then(|| (t as u64 - ATTACK_START_S) as f64)
    })
}

/// Benign recovery time (to 80% of the pre-attack level), for reports.
pub fn benign_recovery_secs(res: &RunResult) -> Option<f64> {
    benign_recovery_time(&res.stats, SimTime::from_secs(ATTACK_START_S), 0.8)
        .map(|d| d.as_nanos() as f64 / 1e9)
}

/// Regenerates Fig. 7 at `seed`, returning the rendered report and its
/// machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(100, 4);
    let mut out = String::new();
    let mut r = FigureResult::new("fig7");

    let fifo = fifo_run(secs, seed);
    panel(&mut out, "Fig. 7a: FIFO", &fifo, secs);
    push_throughput_summary(&mut r, "a", &fifo, secs);
    let turbo = accturbo_run(secs, seed);
    panel(&mut out, "Fig. 7b: ACC-Turbo", &turbo, secs);
    push_throughput_summary(&mut r, "b", &turbo, secs);
    let swap = swap_run(secs, seed);
    panel(&mut out, "Fig. 7c: Program swap downtime", &swap, secs);
    push_throughput_summary(&mut r, "c", &swap, secs);
    let jaqen = jaqen_run(secs, seed);
    panel(
        &mut out,
        "Fig. 7d: Jaqen (defense already deployed)",
        &jaqen,
        secs,
    );
    push_throughput_summary(&mut r, "d", &jaqen, secs);

    let _ = writeln!(&mut out, "# Summary");
    let show = |r: Option<f64>| {
        r.map(|x| format!("{x:.1}"))
            .unwrap_or_else(|| "never".into())
    };
    let turbo_r = reaction_secs(&turbo);
    let jaqen_r = reaction_secs(&jaqen);
    let _ = writeln!(&mut out, "reaction_s_accturbo,{}", show(turbo_r));
    let _ = writeln!(&mut out, "reaction_s_jaqen_best_case,{}", show(jaqen_r));
    let _ = writeln!(&mut out, "program_swap_downtime_s,11.5");
    r.text("summary.reaction_s_accturbo", &show(turbo_r));
    r.text("summary.reaction_s_jaqen_best_case", &show(jaqen_r));
    if let (Some(t), Some(j)) = (turbo_r, jaqen_r) {
        let _ = writeln!(&mut out, "speedup_vs_jaqen_best,{}", f(j / t.max(0.1)));
        let _ = writeln!(
            &mut out,
            "speedup_vs_jaqen_worst,{}",
            f((j + 11.5) / t.max(0.1))
        );
        r.num("summary.speedup_vs_jaqen_best", j / t.max(0.1));
        r.num("summary.speedup_vs_jaqen_worst", (j + 11.5) / t.max(0.1));
    }
    Figure::new(out, r)
}

/// Regenerates Fig. 7 at the canonical seed and returns the textual
/// report.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_never_mitigates() {
        let res = fifo_run(60, DEFAULT_SEED);
        assert!(
            reaction_secs(&res).is_none(),
            "FIFO never suppresses the attack"
        );
        // Benign throughput only recovers when the attack itself ends.
        let r = benign_recovery_secs(&res).expect("recovers at attack end");
        assert!(r >= 18.0, "FIFO benign recovery {r}s ≈ the attack length");
    }

    #[test]
    fn accturbo_reacts_within_about_a_second() {
        let res = accturbo_run(60, DEFAULT_SEED);
        let r = reaction_secs(&res).expect("ACC-Turbo must recover");
        assert!(r <= 3.0, "ACC-Turbo reaction {r}s (paper: ≈1s)");
    }

    #[test]
    fn jaqen_takes_around_ten_seconds() {
        let res = jaqen_run(60, DEFAULT_SEED);
        let r = reaction_secs(&res).expect("Jaqen must eventually mitigate");
        assert!(
            (6.0..16.0).contains(&r),
            "Jaqen best-case reaction {r}s (paper: ≈10s)"
        );
    }

    #[test]
    fn accturbo_is_an_order_of_magnitude_faster() {
        let turbo = reaction_secs(&accturbo_run(60, DEFAULT_SEED)).expect("recovers");
        let jaqen = reaction_secs(&jaqen_run(60, DEFAULT_SEED)).expect("recovers");
        assert!(
            jaqen / turbo >= 4.0,
            "speedup only {:.1}x (paper: ≥10x; 1 s stat buckets floor ours)",
            jaqen / turbo
        );
    }

    #[test]
    fn program_swap_blackholes_for_11_5_seconds() {
        let res = swap_run(100, DEFAULT_SEED);
        // Throughput zero during the downtime window.
        for t in 61..71 {
            let total = res.stats.throughput_bps(t, ClassId::BENIGN);
            assert!(total < 1e5, "t={t}: throughput {total} during swap");
        }
        let before = res.stats.throughput_bps(55, ClassId::BENIGN);
        let after = res.stats.throughput_bps(75, ClassId::BENIGN);
        assert!(
            before > 1e6 && after > 1e6,
            "traffic flows outside the swap"
        );
    }
}
