//! The adversarial scenarios of paper §9, executable.
//!
//! §9.1 — evading ACC-Turbo:
//! * **Packet-level evasion**: randomize every clustering feature so the
//!   attack spreads across all clusters. The paper predicts ACC-Turbo
//!   cannot isolate such traffic; congestion then hurts benign and attack
//!   proportionally (FIFO-like), no worse.
//! * **Aggregate-level evasion**: |C| simultaneous low-rate vectors, one
//!   per cluster, so no single cluster stands out.
//!
//! §9.2 — weaponizing ACC-Turbo:
//! * **Swapping attack**: benign traffic is a tight high-rate aggregate;
//!   the attacker sends *randomized* traffic so the benign aggregate looks
//!   like the attack and gets deprioritized.
//! * **Imitation attack**: attack traffic replicates the victim's own
//!   feature signature, dragging the victim's cluster down with it.
//!
//! Each scenario reports benign/attack drop percentages under ACC-Turbo
//! and FIFO, quantifying how much of the defense survives.

use crate::common::{simulate, Scale, LINK_10G_SCALED};
use crate::result::FigureResult;
use crate::Figure;
use accturbo_clustering::FeatureSet;
use accturbo_core::{AccTurboConfig, AccTurboSwitch};
use accturbo_netsim::{
    ClassId, MergedSource, PacketSource, SimDuration, SimTime, SingleQueueSwitch,
};
use accturbo_prng::{Rng, SeedableRng, StdRng};
use accturbo_telemetry::{f, Table};
use accturbo_traffic::{
    AttackConfig, AttackSource, AttackVector, BackgroundConfig, BackgroundSource, CbrSource,
    FlowTemplate, MapSource, Spread, SpreadSource,
};
use std::net::Ipv4Addr;

const LINK: u64 = LINK_10G_SCALED;
const SECS: u64 = 40;
/// The canonical workload seed (the historical in-module constant).
pub const DEFAULT_SEED: u64 = 0xADE5;

/// The §9 scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Baseline: a plain single-flow flood (the defense's home turf).
    PlainFlood,
    /// §9.1: every feature randomized per packet.
    PacketLevelEvasion,
    /// §9.1: |C| spread-out low-rate vectors, one per cluster.
    AggregateLevelEvasion,
    /// §9.2: tight high-rate benign + randomized attack.
    Swapping,
    /// §9.2: attack replicates the benign service's signature.
    Imitation,
}

impl Scenario {
    /// All scenarios, report order.
    pub const ALL: [Scenario; 5] = [
        Scenario::PlainFlood,
        Scenario::PacketLevelEvasion,
        Scenario::AggregateLevelEvasion,
        Scenario::Swapping,
        Scenario::Imitation,
    ];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::PlainFlood => "Plain flood (baseline)",
            Scenario::PacketLevelEvasion => "Packet-level evasion",
            Scenario::AggregateLevelEvasion => "Aggregate-level evasion",
            Scenario::Swapping => "Swapping attack",
            Scenario::Imitation => "Imitation attack",
        }
    }
}

/// The benign service all §9.2 scenarios target: a tight, high-rate
/// aggregate (one /24, one port band, fixed size).
fn victim_service(end: SimTime, rate_bps: u64, seed: u64) -> Box<dyn PacketSource> {
    let cbr = CbrSource::new(
        FlowTemplate::udp(
            Ipv4Addr::new(95, 10, 1, 1),
            Ipv4Addr::new(203, 7, 44, 0),
            30_000,
            443,
            ClassId::BENIGN,
        )
        .with_size(1200),
        rate_bps,
        SimTime::ZERO,
        end,
    );
    Box::new(SpreadSource::new(
        cbr,
        Spread {
            dst_low_bits: 8,
            sport: Some((30_000, 30_200)),
            ..Spread::default()
        },
        seed + 9,
    ))
}

/// Builds the workload for a scenario.
pub fn workload(scenario: Scenario, secs: u64, seed: u64) -> MergedSource {
    let end = SimTime::from_secs(secs);
    let start = SimTime::from_secs(5);
    let mut sources: Vec<Box<dyn PacketSource>> = vec![Box::new(BackgroundSource::new(
        BackgroundConfig::new(5_000_000, SimTime::ZERO, end, seed),
    ))];
    match scenario {
        Scenario::PlainFlood => {
            sources.push(Box::new(AttackSource::new(
                AttackConfig::new(
                    AttackVector::UdpFlood,
                    40_000_000,
                    start,
                    end,
                    ClassId(1),
                    seed + 1,
                )
                .with_single_flow(),
            )));
        }
        Scenario::PacketLevelEvasion => {
            // Randomize *everything*: source, destination, both ports,
            // size, TTL — nothing left to correlate on.
            let flood = AttackSource::new(
                AttackConfig::new(
                    AttackVector::UdpFlood,
                    40_000_000,
                    start,
                    end,
                    ClassId(1),
                    seed + 1,
                )
                .with_source_spoofing(),
            );
            let mut rng = StdRng::seed_from_u64(seed + 2);
            sources.push(Box::new(MapSource::new(flood, move |p| {
                p.dst = Ipv4Addr::new(rng.gen(), rng.gen(), rng.gen(), rng.gen());
                p.ttl = rng.gen();
                p.ip_len = rng.gen();
                p.ip_id = rng.gen();
            })));
        }
        Scenario::AggregateLevelEvasion => {
            // Ten spread-out vectors at 4 Mbps each (same 40 Mbps total),
            // one per cluster slot of the simulation profile.
            for (i, vector) in AttackVector::ALL.iter().enumerate() {
                sources.push(Box::new(AttackSource::new(
                    AttackConfig::new(
                        *vector,
                        4_000_000,
                        start,
                        end,
                        ClassId(1 + i as u16),
                        seed + 10 + i as u64,
                    )
                    .with_victim(Ipv4Addr::new(10 + 20 * i as u8, 50, 7, 9), 4000 + i as u16),
                )));
            }
        }
        Scenario::Swapping => {
            // Benign = tight 6 Mbps service; attack = randomized 12 Mbps.
            sources.push(victim_service(end, 6_000_000, seed));
            let flood = AttackSource::new(
                AttackConfig::new(
                    AttackVector::UdpFlood,
                    12_000_000,
                    start,
                    end,
                    ClassId(1),
                    seed + 3,
                )
                .with_source_spoofing(),
            );
            let mut rng = StdRng::seed_from_u64(seed + 4);
            sources.push(Box::new(MapSource::new(flood, move |p| {
                p.dst = Ipv4Addr::new(rng.gen(), rng.gen(), rng.gen(), rng.gen());
                p.ttl = rng.gen();
            })));
        }
        Scenario::Imitation => {
            // The attack replicates the victim service's exact signature.
            sources.push(victim_service(end, 6_000_000, seed));
            let imitation = CbrSource::new(
                FlowTemplate::udp(
                    Ipv4Addr::new(95, 10, 1, 1),
                    Ipv4Addr::new(203, 7, 44, 0),
                    30_000,
                    443,
                    ClassId(1),
                )
                .with_size(1200),
                40_000_000,
                start,
                end,
            );
            sources.push(Box::new(SpreadSource::new(
                imitation,
                Spread {
                    dst_low_bits: 8,
                    sport: Some((30_000, 30_200)),
                    ..Spread::default()
                },
                seed + 5,
            )));
        }
    }
    MergedSource::new(sources)
}

/// Runs a scenario through ACC-Turbo and FIFO; returns
/// `(accturbo benign%, accturbo attack%, fifo benign%)` drop percentages.
pub fn run_scenario(scenario: Scenario, secs: u64, seed: u64) -> (f64, f64, f64) {
    let mut src = workload(scenario, secs, seed);
    let mut sw = AccTurboSwitch::new(AccTurboConfig::simulation(FeatureSet::simulation_default()));
    let res = simulate(
        &mut src,
        &mut sw,
        LINK,
        secs,
        Some(SimDuration::from_millis(50)),
    );
    let (at_benign, at_attack) = (res.stats.benign_drop_pct(), res.stats.attack_drop_pct());

    let mut src = workload(scenario, secs, seed);
    let mut fifo = SingleQueueSwitch::new(crate::common::baseline_fifo());
    let res = simulate(&mut src, &mut fifo, LINK, secs, None);
    (at_benign, at_attack, res.stats.benign_drop_pct())
}

/// Regenerates the §9 adversarial table at `seed`, returning the
/// rendered report and its machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(SECS, 4);
    let mut r = FigureResult::new("adversarial");
    let mut table = Table::new(&[
        "Scenario (§9)",
        "ACC-Turbo benign%",
        "ACC-Turbo attack%",
        "FIFO benign%",
    ]);
    let slug = |s: &str| {
        s.to_lowercase()
            .replace(['(', ')'], "")
            .trim()
            .replace([' ', '-'], "_")
    };
    for s in Scenario::ALL {
        let (b, a, fb) = run_scenario(s, secs, seed);
        r.num(&format!("{}.accturbo_benign_pct", slug(s.name())), b);
        r.num(&format!("{}.accturbo_attack_pct", slug(s.name())), a);
        r.num(&format!("{}.fifo_benign_pct", slug(s.name())), fb);
        table.row(vec![s.name().into(), f(b), f(a), f(fb)]);
    }
    Figure::new(table.render(), r)
}

/// Regenerates the §9 adversarial table at the canonical seed.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_flood_is_mitigated() {
        let (benign, attack, fifo) = run_scenario(Scenario::PlainFlood, SECS, DEFAULT_SEED);
        assert!(
            benign < fifo / 2.0,
            "defense must beat FIFO: {benign:.1} vs {fifo:.1}"
        );
        assert!(attack > 60.0, "the flood must absorb the loss: {attack:.1}");
    }

    #[test]
    fn packet_level_evasion_degrades_to_fifo_but_not_worse() {
        // §9.1: with every feature randomized, ACC-Turbo "can not infer
        // attack traffic" — mitigation efficiency collapses, but because
        // mitigation is scheduling (not filtering), benign traffic fares
        // no worse than under FIFO.
        let (benign, _attack, fifo) =
            run_scenario(Scenario::PacketLevelEvasion, SECS, DEFAULT_SEED);
        assert!(
            benign < fifo + 10.0,
            "evasion must not make the defense worse than FIFO: {benign:.1} vs {fifo:.1}"
        );
        // And the defense visibly degrades vs the plain flood.
        let (plain_benign, _, _) = run_scenario(Scenario::PlainFlood, SECS, DEFAULT_SEED);
        assert!(
            benign > plain_benign,
            "evasion should cost the defense something: {benign:.1} vs {plain_benign:.1}"
        );
    }

    #[test]
    fn aggregate_level_evasion_is_harder_but_bounded() {
        let (benign, _attack, fifo) =
            run_scenario(Scenario::AggregateLevelEvasion, SECS, DEFAULT_SEED);
        assert!(
            benign < fifo + 10.0,
            "aggregate evasion must not be worse than FIFO: {benign:.1} vs {fifo:.1}"
        );
    }

    #[test]
    fn swapping_attack_hurts_the_tight_benign_service() {
        // §9.2: the tight high-rate benign aggregate is the one that looks
        // malicious; expect it to suffer more than under the plain flood.
        let (benign, _, _) = run_scenario(Scenario::Swapping, SECS, DEFAULT_SEED);
        let (plain_benign, _, _) = run_scenario(Scenario::PlainFlood, SECS, DEFAULT_SEED);
        assert!(
            benign > plain_benign,
            "swapping should hurt benign more than a plain flood: {benign:.1} vs {plain_benign:.1}"
        );
    }

    #[test]
    fn imitation_attack_drags_the_victim_down() {
        // The victim's cluster carries the attack: both are deprioritized
        // together; the victim suffers while total collateral stays below
        // FIFO (the rest of the background is protected).
        let (benign, attack, fifo) = run_scenario(Scenario::Imitation, SECS, DEFAULT_SEED);
        assert!(benign > 5.0, "imitation must hurt the victim: {benign:.1}");
        assert!(
            benign < fifo + 5.0,
            "but not exceed FIFO: {benign:.1} vs {fifo:.1}"
        );
        assert!(attack > 30.0, "the imitation flood still pays: {attack:.1}");
    }
}
