//! The adversarial scenarios of paper §9, executable.
//!
//! §9.1 — evading ACC-Turbo:
//! * **Packet-level evasion**: randomize every clustering feature so the
//!   attack spreads across all clusters. The paper predicts ACC-Turbo
//!   cannot isolate such traffic; congestion then hurts benign and attack
//!   proportionally (FIFO-like), no worse.
//! * **Aggregate-level evasion**: |C| simultaneous low-rate vectors, one
//!   per cluster, so no single cluster stands out.
//!
//! §9.2 — weaponizing ACC-Turbo:
//! * **Swapping attack**: benign traffic is a tight high-rate aggregate;
//!   the attacker sends *randomized* traffic so the benign aggregate looks
//!   like the attack and gets deprioritized.
//! * **Imitation attack**: attack traffic replicates the victim's own
//!   feature signature, dragging the victim's cluster down with it.
//!
//! Each scenario reports benign/attack drop percentages under ACC-Turbo
//! and FIFO, quantifying how much of the defense survives.

use crate::common::Scale;
use crate::result::FigureResult;
use crate::spec::{DefenseSpec, ScenarioSpec, WorkloadSpec};
use crate::Figure;
use accturbo_netsim::{MergedSource, SimDuration};
use accturbo_telemetry::{f, Table};
use accturbo_traffic::workloads;

const SECS: u64 = 40;
/// The canonical workload seed (the historical in-module constant).
pub const DEFAULT_SEED: u64 = 0xADE5;

/// The §9 scenarios (now a traffic-crate building block shared with the
/// spec grammar).
pub use accturbo_traffic::AdversarialScenario as Scenario;

/// Builds the workload for a scenario.
pub fn workload(scenario: Scenario, secs: u64, seed: u64) -> MergedSource {
    workloads::adversarial(scenario, secs, seed)
}

/// Runs a scenario through ACC-Turbo and FIFO; returns
/// `(accturbo benign%, accturbo attack%, fifo benign%)` drop percentages.
pub fn run_scenario(scenario: Scenario, secs: u64, seed: u64) -> (f64, f64, f64) {
    let res = ScenarioSpec::new(WorkloadSpec::Adversarial(scenario), DefenseSpec::accturbo())
        .with_secs(secs)
        .with_seed(seed)
        .with_period(SimDuration::from_millis(50))
        .execute()
        .result;
    let (at_benign, at_attack) = (res.stats.benign_drop_pct(), res.stats.attack_drop_pct());

    let fifo = ScenarioSpec::new(WorkloadSpec::Adversarial(scenario), DefenseSpec::Fifo)
        .with_secs(secs)
        .with_seed(seed)
        .execute()
        .result;
    (at_benign, at_attack, fifo.stats.benign_drop_pct())
}

/// Regenerates the §9 adversarial table at `seed`, returning the
/// rendered report and its machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(SECS, 4);
    let mut r = FigureResult::new("adversarial");
    let mut table = Table::new(&[
        "Scenario (§9)",
        "ACC-Turbo benign%",
        "ACC-Turbo attack%",
        "FIFO benign%",
    ]);
    let slug = |s: &str| {
        s.to_lowercase()
            .replace(['(', ')'], "")
            .trim()
            .replace([' ', '-'], "_")
    };
    for s in Scenario::ALL {
        let (b, a, fb) = run_scenario(s, secs, seed);
        r.num(&format!("{}.accturbo_benign_pct", slug(s.name())), b);
        r.num(&format!("{}.accturbo_attack_pct", slug(s.name())), a);
        r.num(&format!("{}.fifo_benign_pct", slug(s.name())), fb);
        table.row(vec![s.name().into(), f(b), f(a), f(fb)]);
    }
    Figure::new(table.render(), r)
}

/// Regenerates the §9 adversarial table at the canonical seed.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_flood_is_mitigated() {
        let (benign, attack, fifo) = run_scenario(Scenario::PlainFlood, SECS, DEFAULT_SEED);
        assert!(
            benign < fifo / 2.0,
            "defense must beat FIFO: {benign:.1} vs {fifo:.1}"
        );
        assert!(attack > 60.0, "the flood must absorb the loss: {attack:.1}");
    }

    #[test]
    fn packet_level_evasion_degrades_to_fifo_but_not_worse() {
        // §9.1: with every feature randomized, ACC-Turbo "can not infer
        // attack traffic" — mitigation efficiency collapses, but because
        // mitigation is scheduling (not filtering), benign traffic fares
        // no worse than under FIFO.
        let (benign, _attack, fifo) =
            run_scenario(Scenario::PacketLevelEvasion, SECS, DEFAULT_SEED);
        assert!(
            benign < fifo + 10.0,
            "evasion must not make the defense worse than FIFO: {benign:.1} vs {fifo:.1}"
        );
        // And the defense visibly degrades vs the plain flood.
        let (plain_benign, _, _) = run_scenario(Scenario::PlainFlood, SECS, DEFAULT_SEED);
        assert!(
            benign > plain_benign,
            "evasion should cost the defense something: {benign:.1} vs {plain_benign:.1}"
        );
    }

    #[test]
    fn aggregate_level_evasion_is_harder_but_bounded() {
        let (benign, _attack, fifo) =
            run_scenario(Scenario::AggregateLevelEvasion, SECS, DEFAULT_SEED);
        assert!(
            benign < fifo + 10.0,
            "aggregate evasion must not be worse than FIFO: {benign:.1} vs {fifo:.1}"
        );
    }

    #[test]
    fn swapping_attack_hurts_the_tight_benign_service() {
        // §9.2: the tight high-rate benign aggregate is the one that looks
        // malicious; expect it to suffer more than under the plain flood.
        let (benign, _, _) = run_scenario(Scenario::Swapping, SECS, DEFAULT_SEED);
        let (plain_benign, _, _) = run_scenario(Scenario::PlainFlood, SECS, DEFAULT_SEED);
        assert!(
            benign > plain_benign,
            "swapping should hurt benign more than a plain flood: {benign:.1} vs {plain_benign:.1}"
        );
    }

    #[test]
    fn imitation_attack_drags_the_victim_down() {
        // The victim's cluster carries the attack: both are deprioritized
        // together; the victim suffers while total collateral stays below
        // FIFO (the rest of the background is protected).
        let (benign, attack, fifo) = run_scenario(Scenario::Imitation, SECS, DEFAULT_SEED);
        assert!(benign > 5.0, "imitation must hurt the victim: {benign:.1}");
        assert!(
            benign < fifo + 5.0,
            "but not exceed FIFO: {benign:.1} vs {fifo:.1}"
        );
        assert!(attack > 30.0, "the imitation flood still pays: {attack:.1}");
    }
}
