//! Figure 10: performance of clustering strategies vs. number of clusters
//! (paper §8.1).
//!
//! Purity and benign recall on the attack day for the full design space:
//! {Anime, Manhattan, Euclidean} × {exhaustive, fast}, the hybrid
//! "Eucl. Fast In." (offline-initialized, online-updated), and offline
//! k-means with unlimited resources, for 2–10 clusters.
//!
//! Expected shape: more clusters help everywhere with diminishing
//! returns; exhaustive ≥ fast (clearest for the range-based Anime and
//! Manhattan); center-based approaches lose less when downgraded to
//! fast; the deployable Manhattan-fast stays within a few percent of
//! offline k-means.

use crate::common::Scale;
use crate::fig9::cluster_quality;
use crate::result::FigureResult;
use crate::Figure;
use accturbo_clustering::{
    kmeans, nearest, ClusteringConfig, DistanceKind, FeatureSet, HybridClusterer, NominalMode,
    QualitySummary, SearchKind, WindowedEval,
};
use accturbo_netsim::{PacketSource, SimDuration};
use accturbo_telemetry::f;
use accturbo_traffic::{AttackVector, CicDdosConfig};
use std::fmt::Write as _;

/// The clustering strategies of Fig. 10, in the legend's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Anime distance, exhaustive search.
    AnimeExhaustive,
    /// Manhattan distance, exhaustive search.
    ManhattanExhaustive,
    /// Euclidean (center-based), exhaustive search.
    EuclideanExhaustive,
    /// Anime distance, fast search.
    AnimeFast,
    /// Manhattan distance, fast search — deployable ACC-Turbo (starred in
    /// the paper's legend).
    ManhattanFast,
    /// Euclidean, fast search.
    EuclideanFast,
    /// "Eucl. Fast In.": hybrid offline-initialized, online-updated.
    EuclideanFastInit,
    /// Offline k-means with unlimited resources.
    OfflineKMeans,
}

impl Strategy {
    /// All strategies in the paper's legend order.
    pub const ALL: [Strategy; 8] = [
        Strategy::AnimeExhaustive,
        Strategy::ManhattanExhaustive,
        Strategy::EuclideanExhaustive,
        Strategy::AnimeFast,
        Strategy::ManhattanFast,
        Strategy::EuclideanFast,
        Strategy::EuclideanFastInit,
        Strategy::OfflineKMeans,
    ];

    /// Legend label.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::AnimeExhaustive => "Anime Exh.",
            Strategy::ManhattanExhaustive => "Manh. Exh.",
            Strategy::EuclideanExhaustive => "Eucl. Exh.",
            Strategy::AnimeFast => "Anime Fast",
            Strategy::ManhattanFast => "* Manh. Fast",
            Strategy::EuclideanFast => "Eucl. Fast",
            Strategy::EuclideanFastInit => "Eucl. Fast In.",
            Strategy::OfflineKMeans => "Off. KMeans",
        }
    }

    fn online_config(self, k: usize) -> Option<ClusteringConfig> {
        let (distance, search) = match self {
            Strategy::AnimeExhaustive => (DistanceKind::Anime, SearchKind::Exhaustive),
            Strategy::ManhattanExhaustive => (DistanceKind::Manhattan, SearchKind::Exhaustive),
            Strategy::EuclideanExhaustive => (DistanceKind::Euclidean, SearchKind::Exhaustive),
            Strategy::AnimeFast => (DistanceKind::Anime, SearchKind::Fast),
            Strategy::ManhattanFast => (DistanceKind::Manhattan, SearchKind::Fast),
            Strategy::EuclideanFast => (DistanceKind::Euclidean, SearchKind::Fast),
            _ => return None,
        };
        let mut cfg = ClusteringConfig::deployable(k, FeatureSet::simulation_default());
        cfg.distance = distance;
        cfg.search = search;
        cfg.nominal = NominalMode::Exact;
        Some(cfg)
    }
}

/// The canonical workload seed (the CICDDoS-like day's default).
pub const DEFAULT_SEED: u64 = 0xC1C;

fn day(scale: Scale, seed: u64) -> CicDdosConfig {
    let mut cfg = CicDdosConfig {
        seed,
        ..CicDdosConfig::default()
    };
    if scale == Scale::Quick {
        cfg.vectors = vec![AttackVector::Ntp, AttackVector::UdpFlood];
        cfg.episode = SimDuration::from_secs(2);
        cfg.gap = SimDuration::from_secs(1);
        cfg.background_bps /= 2;
        cfg.attack_bps /= 2;
    }
    cfg
}

/// Evaluation window (matches Fig. 9's protocol).
const EVAL_WINDOW: SimDuration = SimDuration::from_secs(4);

/// Runs one (strategy, k) cell and returns its quality.
pub fn run_cell(strategy: Strategy, k: usize, scale: Scale, seed: u64) -> QualitySummary {
    match strategy {
        Strategy::OfflineKMeans => offline_kmeans_quality(k, scale, seed),
        Strategy::EuclideanFastInit => hybrid_quality(k, scale, seed),
        _ => {
            let cfg = strategy.online_config(k).expect("online strategy");
            cluster_quality(day(scale, seed), cfg)
        }
    }
}

fn hybrid_quality(k: usize, scale: Scale, seed: u64) -> QualitySummary {
    let mut source = day(scale, seed).into_source();
    let mut hc = HybridClusterer::new(FeatureSet::simulation_default(), k, 0.2, 20_000, 42);
    let mut eval = WindowedEval::new(EVAL_WINDOW);
    while let Some(pkt) = source.next_packet() {
        let cluster = hc.assign(&pkt);
        eval.record(pkt.arrival, cluster, pkt.class);
    }
    eval.finish()
}

fn offline_kmeans_quality(k: usize, scale: Scale, seed: u64) -> QualitySummary {
    // Offline, unlimited resources: fit k-means per evaluation window on
    // the window's own packets (subsampled for tractability), then score
    // the window's assignment.
    let features = FeatureSet::simulation_default();
    let mut source = day(scale, seed).into_source();
    let mut eval = WindowedEval::new(EVAL_WINDOW);
    let mut window_points: Vec<Vec<f64>> = Vec::new();
    let mut window_pkts: Vec<(accturbo_netsim::SimTime, accturbo_netsim::ClassId, Vec<f64>)> =
        Vec::new();
    let mut current_window = 0u64;
    let flush = |points: &mut Vec<Vec<f64>>,
                 pkts: &mut Vec<(accturbo_netsim::SimTime, accturbo_netsim::ClassId, Vec<f64>)>,
                 eval: &mut WindowedEval| {
        if pkts.is_empty() {
            return;
        }
        // Subsample the fit set for tractability (assignment uses all).
        let stride = (points.len() / 20_000).max(1);
        let sample: Vec<Vec<f64>> = points.iter().step_by(stride).cloned().collect();
        let fit = kmeans(&sample, k, 10, 42);
        for (at, class, point) in pkts.drain(..) {
            let cluster = nearest(&fit.centers, &point);
            eval.record(at, cluster, class);
        }
        points.clear();
    };
    while let Some(pkt) = source.next_packet() {
        let w = pkt.arrival.bucket(EVAL_WINDOW);
        if w != current_window {
            flush(&mut window_points, &mut window_pkts, &mut eval);
            current_window = w;
        }
        let point: Vec<f64> = features
            .extract(&pkt)
            .into_iter()
            .map(|v| v as f64)
            .collect();
        window_points.push(point.clone());
        window_pkts.push((pkt.arrival, pkt.class, point));
    }
    flush(&mut window_points, &mut window_pkts, &mut eval);
    eval.finish()
}

/// Regenerates Fig. 10 at `seed`, returning the rendered report and its
/// machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let mut out = String::new();
    let mut r = FigureResult::new("fig10");
    let ks: &[usize] = match scale {
        Scale::Full => &[2, 4, 6, 8, 10],
        Scale::Quick => &[2, 10],
    };
    let strategies: &[Strategy] = match scale {
        Scale::Full => &Strategy::ALL,
        Scale::Quick => &[Strategy::ManhattanFast, Strategy::OfflineKMeans],
    };
    let slug = |s: &str| {
        s.to_lowercase()
            .replace(['*', '.'], "")
            .trim()
            .replace(' ', "_")
    };
    for (title, panel, pick) in [
        ("Fig. 10a: Purity (%)", "a", 0usize),
        ("Fig. 10b: Recall benign (%)", "b", 1),
    ] {
        let _ = writeln!(&mut out, "# {title}");
        let _ = write!(&mut out, "clusters");
        for s in strategies {
            let _ = write!(&mut out, ",{}", s.name());
        }
        let _ = writeln!(&mut out);
        for &k in ks {
            let _ = write!(&mut out, "{k}");
            for &s in strategies {
                let q = run_cell(s, k, scale, seed);
                let v = if pick == 0 { q.purity } else { q.recall_benign };
                r.num(&format!("{panel}.k{k}.{}", slug(s.name())), v);
                let _ = write!(&mut out, ",{}", f(v));
            }
            let _ = writeln!(&mut out);
        }
    }
    Figure::new(out, r)
}

/// Regenerates Fig. 10 at the canonical seed and returns the textual
/// report.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_clusters_help_with_diminishing_returns() {
        let p2 = run_cell(Strategy::ManhattanFast, 2, Scale::Full, DEFAULT_SEED).purity;
        let p6 = run_cell(Strategy::ManhattanFast, 6, Scale::Full, DEFAULT_SEED).purity;
        let p10 = run_cell(Strategy::ManhattanFast, 10, Scale::Full, DEFAULT_SEED).purity;
        assert!(p6 > p2, "6 clusters ({p6:.1}) must beat 2 ({p2:.1})");
        assert!(
            p10 >= p6 - 1.0,
            "10 clusters ({p10:.1}) must not regress vs 6 ({p6:.1})"
        );
        assert!(
            p10 > p2 + 2.0,
            "2→10 must show a clear gain ({p2:.1} → {p10:.1})"
        );
    }

    #[test]
    fn exhaustive_at_least_matches_fast_for_manhattan() {
        let fast = run_cell(Strategy::ManhattanFast, 6, Scale::Full, DEFAULT_SEED).purity;
        let exh = run_cell(Strategy::ManhattanExhaustive, 6, Scale::Full, DEFAULT_SEED).purity;
        // Paper Fig. 10: the two perform similarly, and fast's greedy
        // merge choice can come out a couple of points ahead on some
        // traffic draws — allow that much noise, no more.
        assert!(
            exh >= fast - 3.0,
            "exhaustive ({exh:.1}) must not lose to fast ({fast:.1})"
        );
    }

    #[test]
    fn deployable_is_close_to_offline_kmeans() {
        let fast = run_cell(Strategy::ManhattanFast, 10, Scale::Full, DEFAULT_SEED).purity;
        let offline = run_cell(Strategy::OfflineKMeans, 10, Scale::Full, DEFAULT_SEED).purity;
        assert!(
            offline - fast < 10.0,
            "deployable ({fast:.1}) should be within ~5% of offline k-means ({offline:.1})"
        );
    }

    #[test]
    fn every_strategy_runs_at_every_cluster_count() {
        for s in Strategy::ALL {
            let q = run_cell(s, 4, Scale::Quick, DEFAULT_SEED);
            assert!(q.windows > 0, "{}: no windows scored", s.name());
            assert!(q.purity > 50.0, "{}: purity {:.1}", s.name(), q.purity);
        }
    }
}
