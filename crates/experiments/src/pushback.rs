//! Pushback extension experiment (the original ACC's upstream
//! rate-limiting, which the paper scopes out in §2.1's footnote).
//!
//! Topology: two upstreams feed a bottleneck ACC switch. The attack
//! enters upstream 0 and congests its 12 Mbps link, which a benign
//! service shares; upstream 1 carries benign traffic only. Local-only ACC
//! protects the bottleneck but cannot help the shared upstream link;
//! pushback moves the attack drops upstream and rescues the co-located
//! benign service.

use crate::common::Scale;
use crate::result::FigureResult;
use crate::Figure;
use accturbo_acc::{run_pushback, PushbackConfig};
use accturbo_netsim::{Bandwidth, ClassId, PacketSource, RedConfig, SimTime};
use accturbo_telemetry::{f, Table};
use accturbo_traffic::workloads;

/// Ground-truth classes of the scenario.
pub const SHARED_BENIGN: ClassId = workloads::PUSHBACK_SHARED_BENIGN;
/// Benign class on the attack-free upstream.
pub const CLEAN_BENIGN: ClassId = workloads::PUSHBACK_CLEAN_BENIGN;
/// The attack class.
pub const ATTACK: ClassId = workloads::PUSHBACK_ATTACK;
/// The canonical workload seed (the historical in-module attack seed).
pub const DEFAULT_SEED: u64 = 0xACC;

fn sources(secs: u64, seed: u64) -> Vec<Box<dyn PacketSource>> {
    workloads::pushback_upstreams(secs, seed)
}

fn config(enabled: bool) -> PushbackConfig {
    let mut cfg = PushbackConfig::new(Bandwidth::from_mbps(12), Bandwidth::from_mbps(10));
    cfg.acc.red = RedConfig {
        min_th: 20.0,
        max_th: 60.0,
        cap_bytes: 100_000,
        ..RedConfig::default()
    };
    if !enabled {
        cfg = cfg.without_pushback();
    }
    cfg
}

/// Delivery percentage of `class` with/without pushback.
pub fn delivery_pct(enabled: bool, class: ClassId, secs: u64, seed: u64) -> f64 {
    let res = run_pushback(
        sources(secs, seed),
        &config(enabled),
        SimTime::from_secs(secs),
    );
    let arrived = res.stats.total_arrived(class).pkts;
    if arrived == 0 {
        return 0.0;
    }
    100.0 * res.stats.total_departed(class).pkts as f64 / arrived as f64
}

/// Regenerates the pushback comparison table at `seed`, returning the
/// rendered report and its machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(30, 3);
    let mut r = FigureResult::new("pushback");
    let mut t = Table::new(&[
        "Traffic",
        "local ACC only (% delivered)",
        "ACC + pushback (% delivered)",
    ]);
    for (name, class, key) in [
        (
            "benign sharing the attacked upstream",
            SHARED_BENIGN,
            "shared_benign",
        ),
        ("benign on the clean upstream", CLEAN_BENIGN, "clean_benign"),
        ("attack", ATTACK, "attack"),
    ] {
        let local = delivery_pct(false, class, secs, seed);
        let push = delivery_pct(true, class, secs, seed);
        r.num(&format!("{key}.local_only_delivered_pct"), local);
        r.num(&format!("{key}.pushback_delivered_pct"), push);
        t.row(vec![name.into(), f(local), f(push)]);
    }
    Figure::new(t.render(), r)
}

/// Regenerates the pushback comparison table at the canonical seed.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushback_rescues_the_co_located_benign_service() {
        let without = delivery_pct(false, SHARED_BENIGN, 30, DEFAULT_SEED);
        let with = delivery_pct(true, SHARED_BENIGN, 30, DEFAULT_SEED);
        assert!(
            with > without + 15.0,
            "pushback {with:.1}% vs local-only {without:.1}%"
        );
    }

    #[test]
    fn the_attack_gains_nothing_from_pushback() {
        let without = delivery_pct(false, ATTACK, 30, DEFAULT_SEED);
        let with = delivery_pct(true, ATTACK, 30, DEFAULT_SEED);
        assert!(with <= without + 2.0, "attack {with:.1}% vs {without:.1}%");
    }
}
