//! Worst-case frontier: per-defense adversarial attack search
//! (DESIGN.md §12, ROADMAP item 3).
//!
//! Not a paper figure — the paper only evaluates hand-scripted pulse
//! patterns, and CCLab-style results show those badly under-explore the
//! attack space. This figure runs the `accturbo-adversary` optimizer
//! against each baseline defense (fifo, RED, ACC, ACC-Turbo, Jaqen),
//! hunting through the `pulse:` workload knobs — period, duty,
//! amplitude, vector mix, spreading, ramp — for the attack that drops
//! the most *benign* traffic. Per defense it reports the evaluation
//! count, the worst attack found (as a one-line replayable spec), and
//! the damage it inflicted.
//!
//! The claim locked down by the golden: the search itself is a
//! deterministic function of the seed, and each defense's worst case —
//! attack shape and damage — stays put until the datapath actually
//! changes. The committed `tests/corpus/` files extend the same lock to
//! a whole frontier per defense (see `tests/attack_corpus.rs`).

use crate::common::Scale;
use crate::result::FigureResult;
use crate::spec::{DefenseSpec, ScenarioSpec, WorkloadSpec};
use crate::Figure;
use accturbo_adversary::{
    search, AttackGenome, Corpus, CorpusEntry, DamageMetrics, SearchConfig, SearchOutcome,
    SearchSpace,
};
use accturbo_netsim::ClassId;
use accturbo_telemetry::f;
use std::fmt::Write as _;

/// The canonical search seed.
pub const DEFAULT_SEED: u64 = 0xBAD_CA5E;

/// The defenses the frontier probes, by grammar name.
pub const FRONTIER_DEFENSES: &[&str] = &["fifo", "red", "acc", "accturbo", "jaqen"];

/// Replays `genome` against `defense` and measures the damage: the
/// objective is the benign drop fraction, with the drop percentages and
/// benign goodput carried along for the corpus record.
pub fn evaluate(
    defense: &DefenseSpec,
    genome: &AttackGenome,
    link_bps: u64,
    secs: u64,
    seed: u64,
) -> DamageMetrics {
    evaluate_workload(
        defense,
        &WorkloadSpec::Pulse(genome.to_config()),
        link_bps,
        secs,
        seed,
    )
}

/// [`evaluate`] for an already-parsed workload spec — the replay path:
/// a corpus line (`pulse:...`) plus the corpus header's frame must
/// reproduce the recorded metrics bit-exactly (`tests/attack_corpus.rs`).
pub fn evaluate_workload(
    defense: &DefenseSpec,
    workload: &WorkloadSpec,
    link_bps: u64,
    secs: u64,
    seed: u64,
) -> DamageMetrics {
    let spec = ScenarioSpec::new(workload.clone(), defense.clone())
        .with_link(link_bps)
        .with_secs(secs)
        .with_seed(seed);
    let outcome = spec.execute();
    let stats = &outcome.result.stats;
    let benign_drop_pct = stats.benign_drop_pct();
    let benign_mbps = (0..secs as usize)
        .map(|t| stats.throughput_bps(t, ClassId::BENIGN))
        .sum::<f64>()
        / secs.max(1) as f64
        / 1e6;
    DamageMetrics {
        damage: benign_drop_pct / 100.0,
        benign_drop_pct,
        attack_drop_pct: stats.attack_drop_pct(),
        benign_mbps,
    }
}

/// The scenario frame a search runs in: every candidate replays at the
/// same link, duration, and seed, so a corpus line plus these three
/// numbers reproduces the exact evaluation.
#[derive(Debug, Clone, Copy)]
pub struct SearchFrame {
    /// Bottleneck bandwidth, bits per second.
    pub link_bps: u64,
    /// Scenario length, seconds.
    pub secs: u64,
    /// Workload (and search) seed.
    pub seed: u64,
}

impl SearchFrame {
    /// The canonical frame: the pulse workload's default link, `secs`
    /// from the scale (quick = the corpus frame), the canonical seed.
    pub fn at(scale: Scale, seed: u64) -> Self {
        let workload = WorkloadSpec::Pulse(Default::default());
        SearchFrame {
            link_bps: workload.default_link_bps(),
            secs: match scale {
                Scale::Full => 20,
                Scale::Quick => 8,
            },
            seed,
        }
    }
}

/// Runs the adversarial search against one defense and freezes the
/// frontier into a [`Corpus`] whose entries are one-line `pulse:` specs.
pub fn run_search(
    defense: &DefenseSpec,
    frame: SearchFrame,
    budget: usize,
    jobs: usize,
    top: usize,
) -> (SearchOutcome, Corpus) {
    let space = SearchSpace::default();
    let cfg = SearchConfig::new(budget, frame.seed)
        .with_jobs(jobs)
        .with_corpus_size(top);
    let outcome = search(&space, &cfg, |g| {
        evaluate(defense, g, frame.link_bps, frame.secs, frame.seed)
    });
    let entries = outcome
        .frontier
        .iter()
        .map(|e| CorpusEntry {
            workload: WorkloadSpec::Pulse(e.genome.to_config()).to_string(),
            metrics: e.metrics,
        })
        .collect();
    let corpus = Corpus {
        defense: defense.to_string(),
        link_bps: frame.link_bps,
        secs: frame.secs,
        seed: frame.seed,
        budget,
        entries,
    };
    (outcome, corpus)
}

/// Regenerates the worst-case frontier at `seed`: one search per
/// defense, rendered as a CSV of each defense's worst attack.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let budget = match scale {
        Scale::Full => 48,
        Scale::Quick => 6,
    };
    let frame = SearchFrame::at(scale, seed);

    let mut out = String::new();
    let mut r = FigureResult::new("worstcase");
    let _ = writeln!(out, "# Worst-case frontier: adversarial search per defense");
    let _ = writeln!(
        out,
        "# budget={budget} secs={} link={} seed={seed}",
        frame.secs, frame.link_bps
    );
    let _ = writeln!(
        out,
        "defense,evals,best_damage,benign_drop_pct,attack_drop_pct,benign_mbps,workload"
    );

    let mut best_by_defense: Vec<(String, f64)> = Vec::new();
    for name in FRONTIER_DEFENSES {
        let defense: DefenseSpec = name.parse().expect("frontier defense names parse");
        let (outcome, corpus) = run_search(&defense, frame, budget, 1, 3);
        let best = outcome.best();
        let m = &best.metrics;
        let workload = &corpus.entries[0].workload;
        let _ = writeln!(
            out,
            "{name},{},{},{},{},{},{workload}",
            outcome.evaluated.len(),
            f(m.damage),
            f(m.benign_drop_pct),
            f(m.attack_drop_pct),
            f(m.benign_mbps),
        );
        // Damage rates carry the sweep's loose tolerance (trends, not
        // every digit — the rendered digest still pins exact text); the
        // found attack itself must match verbatim.
        r.num_tol(&format!("{name}.damage"), m.damage, 1e-6);
        r.num_tol(&format!("{name}.benign_drop_pct"), m.benign_drop_pct, 1e-6);
        r.num_tol(&format!("{name}.benign_mbps"), m.benign_mbps, 1e-6);
        r.int(&format!("{name}.evals"), outcome.evaluated.len() as i64);
        r.text(&format!("{name}.workload"), workload);
        best_by_defense.push((name.to_string(), m.damage));
    }

    let most_vulnerable = best_by_defense
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty frontier");
    let most_robust = best_by_defense
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty frontier");
    let _ = writeln!(out, "# Summary");
    let _ = writeln!(
        out,
        "most_vulnerable,{},{}",
        most_vulnerable.0,
        f(most_vulnerable.1)
    );
    let _ = writeln!(out, "most_robust,{},{}", most_robust.0, f(most_robust.1));
    r.text("summary.most_vulnerable", &most_vulnerable.0);
    r.text("summary.most_robust", &most_robust.0);
    Figure::new(out, r)
}

/// Regenerates the frontier at the canonical seed.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_is_deterministic_and_damage_is_a_fraction() {
        let defense: DefenseSpec = "fifo".parse().unwrap();
        let genome = AttackGenome {
            period_ms: 1000,
            duty_pct: 50,
            amp_mbps: 40,
            vectors: vec![accturbo_traffic::AttackVector::UdpFlood],
            spread: 1,
            ramp_ms: 0,
        };
        let a = evaluate(&defense, &genome, 10_000_000, 6, 7);
        let b = evaluate(&defense, &genome, 10_000_000, 6, 7);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a.damage));
        assert!(a.benign_drop_pct > 0.0, "a 4x-link pulse must hurt fifo");
    }

    #[test]
    fn search_against_fifo_finds_a_replayable_worst_case() {
        let defense: DefenseSpec = "fifo".parse().unwrap();
        let frame = SearchFrame {
            link_bps: 10_000_000,
            secs: 6,
            seed: 11,
        };
        let (outcome, corpus) = run_search(&defense, frame, 6, 2, 3);
        assert_eq!(outcome.evaluated.len(), 6);
        assert!(!corpus.entries.is_empty());
        // Every corpus line must parse back through the workload
        // grammar and re-evaluate to the recorded damage, bit-exactly:
        // this is the replay contract `tests/attack_corpus.rs` enforces
        // for the committed corpus.
        for entry in &corpus.entries {
            let workload: WorkloadSpec = entry.workload.parse().unwrap();
            let WorkloadSpec::Pulse(cfg) = &workload else {
                panic!("corpus entries are pulse workloads");
            };
            let spec = ScenarioSpec::new(workload.clone(), defense.clone())
                .with_link(frame.link_bps)
                .with_secs(frame.secs)
                .with_seed(frame.seed);
            let stats = spec.execute().result.stats;
            assert_eq!(
                stats.benign_drop_pct(),
                entry.metrics.benign_drop_pct,
                "replay of {} diverged (cfg {cfg:?})",
                entry.workload
            );
        }
    }
}
