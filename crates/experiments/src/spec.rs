//! The declarative scenario layer (DESIGN.md §10).
//!
//! Every experiment in this crate is the same sentence: *run workload W
//! against defense D on link L for S seconds at seed R (optionally under
//! faults F)*. This module makes that sentence a value:
//!
//! * [`WorkloadSpec`] — names a traffic generator from
//!   `accturbo_traffic` together with its parameters.
//! * [`DefenseSpec`] — names a switch under test and knows how to build
//!   it ([`DefenseSpec::build`]) and what control-plane period it
//!   naturally wants ([`DefenseSpec::control_period`]).
//! * [`ScenarioSpec`] — the full sentence, with one [`execute`]
//!   entry point routing through the same engine paths
//!   (`common::simulate` / `simulate_with_faults`) the figures have
//!   always used, so spec-driven runs are byte-identical to the
//!   hand-rolled ones they replaced.
//!
//! Both spec types round-trip through a colon-separated textual grammar
//! (`accturbo:profile=hw:clusters=8`, `flood:carpet`, …) — the `xp run`
//! subcommand's surface. `parse(display(x)) == x` for every spec, and
//! `Display` emits only non-default knobs so canonical strings stay
//! short.
//!
//! [`execute`]: ScenarioSpec::execute

use crate::common::{
    baseline_fifo, simulate, simulate_sharded, simulate_streamed, simulate_with_faults, Scale,
    LINK_10G_SCALED,
};
use accturbo_acc::{AccConfig, AccSwitch};
use accturbo_clustering::{DistanceKind, FeatureSet, InitMode, NominalMode, RepMode, SearchKind};
use accturbo_core::{AccTurboConfig, AccTurboSwitch, IdealPifoSwitch, RankedAccTurboSwitch};
use accturbo_jaqen::{JaqenConfig, JaqenSwitch, Signature};
use accturbo_netsim::{
    run_topology, Bandwidth, ClassId, FaultConfig, FaultInjector, FaultSchedule, FaultStats,
    FaultedSource, LinkSpec, PacketSource, ProgramSwapSwitch, PushbackPlan, RedConfig, RedQueue,
    RunResult, SimDuration, SimTime, SingleQueueSwitch, Switch, Topology, TopologyConfig,
    TopologyRunResult,
};
use accturbo_obs::{MetricsHandle, NoopTracer, Registry, Telemetry, Tracer};
use accturbo_sched::RankingAlgorithm;
use accturbo_traffic::workloads::{self, AdversarialScenario, FloodVariation, PulseAttackConfig};
use accturbo_traffic::{scenarios, AttackVector, CicDdosConfig, LeafPlacement};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::str::FromStr;

/// Renders a duration as seconds — integer when whole, decimal
/// otherwise — the value format of the spec grammar.
fn fmt_secs(d: SimDuration) -> String {
    let s = d.as_secs_f64();
    if s == s.trunc() {
        format!("{}", s as u64)
    } else {
        format!("{s}")
    }
}

pub(crate) fn parse_secs(v: &str) -> Result<SimDuration, String> {
    let s: f64 = v
        .parse()
        .map_err(|_| format!("expected a duration in seconds, got `{v}`"))?;
    if !s.is_finite() || s <= 0.0 {
        return Err(format!("duration must be positive, got `{v}`"));
    }
    Ok(SimDuration::from_secs_f64(s))
}

/// Parses a duration that may be zero (ramp shapes: `0` = square pulse).
fn parse_secs_or_zero(v: &str) -> Result<SimDuration, String> {
    let s: f64 = v
        .parse()
        .map_err(|_| format!("expected a duration in seconds, got `{v}`"))?;
    if !s.is_finite() || s < 0.0 {
        return Err(format!("duration must be non-negative, got `{v}`"));
    }
    Ok(SimDuration::from_secs_f64(s))
}

/// Renders bits-per-second in the grammar's bandwidth notation: `2g`,
/// `40m`, `750k` when evenly divisible, raw bps otherwise.
pub(crate) fn fmt_bandwidth(bps: u64) -> String {
    if bps.is_multiple_of(1_000_000_000) {
        format!("{}g", bps / 1_000_000_000)
    } else if bps.is_multiple_of(1_000_000) {
        format!("{}m", bps / 1_000_000)
    } else if bps.is_multiple_of(1_000) {
        format!("{}k", bps / 1_000)
    } else {
        format!("{bps}")
    }
}

/// Parses the grammar's bandwidth notation (`10m`, `2.5g`, raw bps).
pub(crate) fn parse_bandwidth(v: &str) -> Result<u64, String> {
    let lower = v.to_ascii_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix('g') {
        (n, 1e9)
    } else if let Some(n) = lower.strip_suffix('m') {
        (n, 1e6)
    } else if let Some(n) = lower.strip_suffix('k') {
        (n, 1e3)
    } else {
        (lower.as_str(), 1.0)
    };
    let x: f64 = num
        .parse()
        .map_err(|_| format!("`{v}` is not a bandwidth (e.g. 10m, 2.5g, 10000000)"))?;
    if !x.is_finite() || x <= 0.0 {
        return Err(format!("bandwidth `{v}` must be positive"));
    }
    Ok((x * mult).round() as u64)
}

/// Parses a `+`-separated attack-vector mix (`udp+syn+ntp`).
fn parse_vector_mix(val: &str) -> Result<Vec<AttackVector>, String> {
    let parsed = val
        .split('+')
        .map(|name| {
            AttackVector::by_name(name).ok_or_else(|| format!("unknown attack vector `{name}`"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if parsed.is_empty() {
        return Err("vectors list must be non-empty".into());
    }
    Ok(parsed)
}

/// A spec string split into its head token and `key=val` options.
type SpecParts<'a> = (&'a str, Vec<(&'a str, &'a str)>);

/// Splits `spec` into its head token and `key=val` options.
fn split_spec(spec: &str) -> Result<SpecParts<'_>, String> {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or_default();
    let opts = parts
        .map(|p| {
            p.split_once('=')
                .ok_or_else(|| format!("expected `key=value`, got `{p}`"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((head, opts))
}

// ---------------------------------------------------------------------------
// Defenses
// ---------------------------------------------------------------------------

/// Which base profile an [`AccTurboSpec`] starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// [`AccTurboConfig::hardware`] — the Tofino-1 §6/§7 profile.
    Hardware,
    /// [`AccTurboConfig::simulation`] — the §8 simulation profile.
    Simulation,
}

/// Named feature sets the grammar can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureProfile {
    /// [`FeatureSet::simulation_default`] (`sim`).
    Simulation,
    /// [`FeatureSet::hardware_fig6`] (`fig6`).
    HwFig6,
    /// [`FeatureSet::hardware_dst_bytes`] (`dst4`).
    HwDstBytes,
}

impl FeatureProfile {
    /// The concrete feature set.
    pub fn feature_set(self) -> FeatureSet {
        match self {
            FeatureProfile::Simulation => FeatureSet::simulation_default(),
            FeatureProfile::HwFig6 => FeatureSet::hardware_fig6(),
            FeatureProfile::HwDstBytes => FeatureSet::hardware_dst_bytes(),
        }
    }

    /// Grammar token.
    pub fn name(self) -> &'static str {
        match self {
            FeatureProfile::Simulation => "sim",
            FeatureProfile::HwFig6 => "fig6",
            FeatureProfile::HwDstBytes => "dst4",
        }
    }

    /// Inverse of [`FeatureProfile::name`].
    pub fn parse(s: &str) -> Option<FeatureProfile> {
        match s {
            "sim" => Some(FeatureProfile::Simulation),
            "fig6" => Some(FeatureProfile::HwFig6),
            "dst4" => Some(FeatureProfile::HwDstBytes),
            _ => None,
        }
    }
}

/// A declarative ACC-Turbo configuration: a base profile plus the §8.1
/// design-space knobs the ablation experiments sweep. `None` means "keep
/// the profile's value", so [`AccTurboSpec::config`] reproduces exactly
/// the configurations the figure modules used to assemble by hand.
#[derive(Debug, Clone, PartialEq)]
pub struct AccTurboSpec {
    /// Base profile (hardware/simulation).
    pub profile: Profile,
    /// Feature set fed to the base profile.
    pub features: FeatureProfile,
    /// Override: cluster (and queue) count.
    pub clusters: Option<usize>,
    /// Override: distance function.
    pub distance: Option<DistanceKind>,
    /// Override: search strategy.
    pub search: Option<SearchKind>,
    /// Override: reset representative.
    pub rep: Option<RepMode>,
    /// Override: slot initialization.
    pub init: Option<InitMode>,
    /// Override: per-window cluster-update budget (`Some(None)` =
    /// explicitly unlimited).
    pub budget: Option<Option<u64>>,
    /// Override: Bloom-filter nominal sets with this many bits
    /// (3 hashes, the ablation's shape). `None` keeps exact sets.
    pub bloom_bits: Option<u64>,
    /// Override: ranking algorithm.
    pub ranking: Option<RankingAlgorithm>,
}

impl AccTurboSpec {
    /// The §8 simulation baseline: 10 clusters over the full feature set.
    pub fn simulation() -> Self {
        AccTurboSpec {
            profile: Profile::Simulation,
            features: FeatureProfile::Simulation,
            clusters: None,
            distance: None,
            search: None,
            rep: None,
            init: None,
            budget: None,
            bloom_bits: None,
            ranking: None,
        }
    }

    /// The Tofino-1 hardware baseline over `features` (≤ 4 features).
    pub fn hardware(features: FeatureProfile) -> Self {
        AccTurboSpec {
            profile: Profile::Hardware,
            features,
            ..AccTurboSpec::simulation()
        }
    }

    /// Overrides the ranking algorithm.
    pub fn with_ranking(mut self, ranking: RankingAlgorithm) -> Self {
        self.ranking = Some(ranking);
        self
    }

    /// Overrides the distance function.
    pub fn with_distance(mut self, distance: DistanceKind) -> Self {
        self.distance = Some(distance);
        self
    }

    /// Overrides the search strategy.
    pub fn with_search(mut self, search: SearchKind) -> Self {
        self.search = Some(search);
        self
    }

    /// Overrides the reset representative.
    pub fn with_rep(mut self, rep: RepMode) -> Self {
        self.rep = Some(rep);
        self
    }

    /// Overrides slot initialization.
    pub fn with_init(mut self, init: InitMode) -> Self {
        self.init = Some(init);
        self
    }

    /// Overrides the update budget (`None` = explicitly unlimited).
    pub fn with_budget(mut self, budget: Option<u64>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Switches nominal sets to Bloom filters of `bits` bits (3 hashes).
    pub fn with_bloom(mut self, bits: u64) -> Self {
        self.bloom_bits = Some(bits);
        self
    }

    /// Overrides the cluster count.
    pub fn with_clusters(mut self, n: usize) -> Self {
        self.clusters = Some(n);
        self
    }

    /// Materializes the [`AccTurboConfig`], applying overrides on top of
    /// the base profile.
    pub fn config(&self) -> AccTurboConfig {
        let mut cfg = match self.profile {
            Profile::Hardware => AccTurboConfig::hardware(self.features.feature_set()),
            Profile::Simulation => AccTurboConfig::simulation(self.features.feature_set()),
        };
        if let Some(n) = self.clusters {
            cfg = cfg.with_clusters(n);
        }
        if let Some(d) = self.distance {
            cfg.clustering.distance = d;
        }
        if let Some(s) = self.search {
            cfg.clustering.search = s;
        }
        if let Some(rep) = self.rep {
            cfg.clustering = cfg.clustering.clone().with_rep(rep);
        }
        if let Some(init) = self.init {
            cfg.clustering = cfg.clustering.clone().with_init(init);
        }
        if let Some(budget) = self.budget {
            cfg.clustering = cfg.clustering.clone().with_update_budget(budget);
        }
        if let Some(bits) = self.bloom_bits {
            cfg.clustering.nominal = NominalMode::Bloom { bits, hashes: 3 };
        }
        if let Some(rank) = self.ranking {
            cfg = cfg.with_ranking(rank);
        }
        cfg
    }

    /// Builds a fresh (untapped) switch from this spec.
    pub fn build<'a>(&self) -> AccTurboSwitch<'a> {
        AccTurboSwitch::new(self.config())
    }

    /// The profile's natural control-plane period: the prototype polls
    /// hardware at 50 ms; the §8 simulations poll at 250 ms.
    pub fn control_period(&self) -> SimDuration {
        match self.profile {
            Profile::Hardware => SimDuration::from_millis(50),
            Profile::Simulation => SimDuration::from_millis(250),
        }
    }

    fn fmt_knobs(&self, out: &mut String) {
        use std::fmt::Write as _;
        let default_features = match self.profile {
            Profile::Simulation => FeatureProfile::Simulation,
            Profile::Hardware => FeatureProfile::HwFig6,
        };
        if self.profile == Profile::Hardware {
            let _ = write!(out, ":profile=hw");
        }
        if self.features != default_features {
            let _ = write!(out, ":features={}", self.features.name());
        }
        if let Some(n) = self.clusters {
            let _ = write!(out, ":clusters={n}");
        }
        if let Some(d) = self.distance {
            let name = match d {
                DistanceKind::Manhattan => "manhattan",
                DistanceKind::Anime => "anime",
                DistanceKind::Euclidean => "euclidean",
            };
            let _ = write!(out, ":distance={name}");
        }
        if let Some(s) = self.search {
            let name = match s {
                SearchKind::Fast => "fast",
                SearchKind::Exhaustive => "exhaustive",
            };
            let _ = write!(out, ":search={name}");
        }
        if let Some(rep) = self.rep {
            let name = match rep {
                RepMode::LastPacket => "last",
                RepMode::RangeMidpoint => "midpoint",
            };
            let _ = write!(out, ":rep={name}");
        }
        if let Some(init) = self.init {
            let name = match init {
                InitMode::Anchors => "anchors",
                InitMode::FromTraffic => "traffic",
            };
            let _ = write!(out, ":init={name}");
        }
        if let Some(budget) = self.budget {
            match budget {
                Some(n) => {
                    let _ = write!(out, ":budget={n}");
                }
                None => {
                    let _ = write!(out, ":budget=unlimited");
                }
            }
        }
        if let Some(bits) = self.bloom_bits {
            let _ = write!(out, ":nominal=bloom{bits}");
        }
        if let Some(rank) = self.ranking {
            let name = match rank {
                RankingAlgorithm::Throughput => "th",
                RankingAlgorithm::NumPackets => "np",
                RankingAlgorithm::ThroughputOverSize => "thsize",
                RankingAlgorithm::NumPacketsOverSize => "npsize",
            };
            let _ = write!(out, ":ranking={name}");
        }
    }

    fn parse_opts(opts: &[(&str, &str)]) -> Result<AccTurboSpec, String> {
        let mut profile: Option<Profile> = None;
        let mut features: Option<FeatureProfile> = None;
        let mut spec = AccTurboSpec::simulation();
        for &(key, val) in opts {
            match key {
                "profile" => {
                    profile = Some(match val {
                        "sim" => Profile::Simulation,
                        "hw" => Profile::Hardware,
                        _ => return Err(format!("unknown profile `{val}` (sim|hw)")),
                    });
                }
                "features" => {
                    features = Some(
                        FeatureProfile::parse(val)
                            .ok_or_else(|| format!("unknown features `{val}` (sim|fig6|dst4)"))?,
                    );
                }
                "clusters" => {
                    let n: usize = val
                        .parse()
                        .map_err(|_| format!("bad cluster count `{val}`"))?;
                    if n == 0 {
                        return Err("cluster count must be positive".into());
                    }
                    spec.clusters = Some(n);
                }
                "distance" => {
                    spec.distance = Some(match val {
                        "manhattan" => DistanceKind::Manhattan,
                        "anime" => DistanceKind::Anime,
                        "euclidean" => DistanceKind::Euclidean,
                        _ => {
                            return Err(format!(
                                "unknown distance `{val}` (manhattan|anime|euclidean)"
                            ))
                        }
                    });
                }
                "search" => {
                    spec.search = Some(match val {
                        "fast" => SearchKind::Fast,
                        "exhaustive" => SearchKind::Exhaustive,
                        _ => return Err(format!("unknown search `{val}` (fast|exhaustive)")),
                    });
                }
                "rep" => {
                    spec.rep = Some(match val {
                        "last" => RepMode::LastPacket,
                        "midpoint" => RepMode::RangeMidpoint,
                        _ => return Err(format!("unknown rep `{val}` (last|midpoint)")),
                    });
                }
                "init" => {
                    spec.init = Some(match val {
                        "anchors" => InitMode::Anchors,
                        "traffic" => InitMode::FromTraffic,
                        _ => return Err(format!("unknown init `{val}` (anchors|traffic)")),
                    });
                }
                "budget" => {
                    spec.budget = Some(if val == "unlimited" {
                        None
                    } else {
                        Some(
                            val.parse()
                                .map_err(|_| format!("bad update budget `{val}`"))?,
                        )
                    });
                }
                "nominal" => {
                    if val == "exact" {
                        spec.bloom_bits = None;
                    } else if let Some(bits) = val.strip_prefix("bloom") {
                        spec.bloom_bits = Some(
                            bits.parse()
                                .map_err(|_| format!("bad bloom size `{val}`"))?,
                        );
                    } else {
                        return Err(format!("unknown nominal mode `{val}` (exact|bloomN)"));
                    }
                }
                "ranking" => {
                    spec.ranking = Some(match val {
                        "th" => RankingAlgorithm::Throughput,
                        "np" => RankingAlgorithm::NumPackets,
                        "thsize" => RankingAlgorithm::ThroughputOverSize,
                        "npsize" => RankingAlgorithm::NumPacketsOverSize,
                        _ => return Err(format!("unknown ranking `{val}` (th|np|thsize|npsize)")),
                    });
                }
                other => return Err(format!("unknown accturbo option `{other}`")),
            }
        }
        spec.profile = profile.unwrap_or(Profile::Simulation);
        spec.features = features.unwrap_or(match spec.profile {
            Profile::Simulation => FeatureProfile::Simulation,
            Profile::Hardware => FeatureProfile::HwFig6,
        });
        if spec.profile == Profile::Hardware && spec.features == FeatureProfile::Simulation {
            return Err(
                "profile=hw supports at most 4 features; pick features=fig6 or features=dst4"
                    .into(),
            );
        }
        Ok(spec)
    }
}

/// A declarative Jaqen configuration: signature and threshold plus the
/// optional knobs Fig. 7/8 sweep. `None` keeps
/// [`JaqenConfig::best_case`]'s value.
#[derive(Debug, Clone, PartialEq)]
pub struct JaqenSpec {
    /// Sketch signature.
    pub signature: Signature,
    /// Per-window packet-count threshold.
    pub threshold: u64,
    /// Override: detection window.
    pub window: Option<SimDuration>,
    /// Override: detection-to-mitigation deploy delay.
    pub deploy_delay: Option<SimDuration>,
}

/// Table 3's Jaqen threshold — the grammar's default.
pub const JAQEN_DEFAULT_THRESHOLD: u64 = 1_500;

impl JaqenSpec {
    /// Best-case Jaqen over `signature` at `threshold`.
    pub fn new(signature: Signature, threshold: u64) -> Self {
        JaqenSpec {
            signature,
            threshold,
            window: None,
            deploy_delay: None,
        }
    }

    /// Overrides the detection window.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = Some(window);
        self
    }

    /// Overrides the deploy delay.
    pub fn with_deploy_delay(mut self, delay: SimDuration) -> Self {
        self.deploy_delay = Some(delay);
        self
    }

    /// Materializes the [`JaqenConfig`].
    pub fn config(&self) -> JaqenConfig {
        let mut cfg = JaqenConfig::best_case(self.signature, self.threshold);
        if let Some(w) = self.window {
            cfg = cfg.with_window(w);
        }
        if let Some(d) = self.deploy_delay {
            cfg = cfg.with_deploy_delay(d);
        }
        cfg
    }
}

/// A defense under test: everything a scenario needs to know to put a
/// switch in front of the bottleneck link.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseSpec {
    /// Undefended drop-tail FIFO ([`crate::common::baseline_fifo`]).
    Fifo,
    /// A single RED queue (default parameters).
    Red,
    /// Classic ACC with monitoring window `k` (Table 4 defaults
    /// otherwise).
    Acc {
        /// The `K` monitoring window.
        k: SimDuration,
    },
    /// ACC-Turbo (the paper's system).
    AccTurbo(AccTurboSpec),
    /// ACC-Turbo with the SP-PIFO ranked scheduler ablation.
    RankedAccTurbo(AccTurboSpec),
    /// Jaqen (sketch-based detect-and-block baseline).
    Jaqen(JaqenSpec),
    /// The ground-truth PIFO-ideal upper bound.
    IdealPifo,
    /// Fig. 7c's reprogramming outage: a FIFO that blackholes during
    /// `[start, start + downtime)`.
    ProgramSwap {
        /// When the switch goes down.
        start: SimTime,
        /// How long reprogramming takes.
        downtime: SimDuration,
    },
}

impl DefenseSpec {
    /// The default ACC-Turbo defense (simulation profile).
    pub fn accturbo() -> Self {
        DefenseSpec::AccTurbo(AccTurboSpec::simulation())
    }

    /// The control-plane polling period this defense naturally wants —
    /// `None` for pure data-plane defenses.
    pub fn control_period(&self) -> Option<SimDuration> {
        match self {
            DefenseSpec::Fifo
            | DefenseSpec::Red
            | DefenseSpec::IdealPifo
            | DefenseSpec::ProgramSwap { .. } => None,
            DefenseSpec::Acc { k } => Some(AccConfig::default().with_k(*k).control_tick()),
            DefenseSpec::Jaqen(_) => Some(SimDuration::from_millis(100)),
            DefenseSpec::AccTurbo(s) | DefenseSpec::RankedAccTurbo(s) => Some(s.control_period()),
        }
    }

    /// Builds the switch for a bottleneck of `link_bps`.
    pub fn build(&self, link_bps: u64) -> Box<dyn Switch> {
        match self {
            DefenseSpec::Fifo => Box::new(SingleQueueSwitch::new(crate::common::baseline_fifo())),
            DefenseSpec::Red => {
                Box::new(SingleQueueSwitch::new(RedQueue::new(RedConfig::default())))
            }
            DefenseSpec::Acc { k } => Box::new(AccSwitch::new(
                AccConfig::default().with_k(*k),
                Bandwidth::from_bps(link_bps),
            )),
            DefenseSpec::AccTurbo(s) => Box::new(s.build()),
            DefenseSpec::RankedAccTurbo(s) => Box::new(RankedAccTurboSwitch::new(s.config())),
            DefenseSpec::Jaqen(j) => Box::new(JaqenSwitch::new(j.config())),
            DefenseSpec::IdealPifo => Box::new(IdealPifoSwitch::new(512 * 1024)),
            DefenseSpec::ProgramSwap { start, downtime } => {
                Box::new(ProgramSwapSwitch::new(*start, *downtime))
            }
        }
    }
}

impl fmt::Display for DefenseSpec {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseSpec::Fifo => write!(out, "fifo"),
            DefenseSpec::Red => write!(out, "red"),
            DefenseSpec::IdealPifo => write!(out, "ideal-pifo"),
            DefenseSpec::Acc { k } => {
                if *k == SimDuration::from_secs(2) {
                    write!(out, "acc")
                } else {
                    write!(out, "acc:k={}", fmt_secs(*k))
                }
            }
            DefenseSpec::AccTurbo(s) | DefenseSpec::RankedAccTurbo(s) => {
                let head = if matches!(self, DefenseSpec::AccTurbo(_)) {
                    "accturbo"
                } else {
                    "ranked-accturbo"
                };
                let mut knobs = String::new();
                s.fmt_knobs(&mut knobs);
                write!(out, "{head}{knobs}")
            }
            DefenseSpec::Jaqen(j) => {
                write!(out, "jaqen")?;
                if j.signature != Signature::FiveTuple {
                    write!(out, ":sig={}", j.signature.name())?;
                }
                if j.threshold != JAQEN_DEFAULT_THRESHOLD {
                    write!(out, ":th={}", j.threshold)?;
                }
                if let Some(w) = j.window {
                    write!(out, ":window={}", fmt_secs(w))?;
                }
                if let Some(d) = j.deploy_delay {
                    write!(out, ":deploy={}", fmt_secs(d))?;
                }
                Ok(())
            }
            DefenseSpec::ProgramSwap { start, downtime } => {
                write!(out, "swap")?;
                if *start != SimTime::from_secs(60) {
                    write!(
                        out,
                        ":at={}",
                        fmt_secs(start.saturating_since(SimTime::ZERO))
                    )?;
                }
                if *downtime != SimDuration::from_millis(11_500) {
                    write!(out, ":down={}", fmt_secs(*downtime))?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for DefenseSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (head, opts) = split_spec(s)?;
        let no_opts = |opts: &[(&str, &str)], name: &str| -> Result<(), String> {
            if opts.is_empty() {
                Ok(())
            } else {
                Err(format!("`{name}` takes no options"))
            }
        };
        match head {
            "fifo" => {
                no_opts(&opts, "fifo")?;
                Ok(DefenseSpec::Fifo)
            }
            "red" => {
                no_opts(&opts, "red")?;
                Ok(DefenseSpec::Red)
            }
            "ideal-pifo" => {
                no_opts(&opts, "ideal-pifo")?;
                Ok(DefenseSpec::IdealPifo)
            }
            "acc" => {
                let mut k = SimDuration::from_secs(2);
                for (key, val) in opts {
                    match key {
                        "k" => k = parse_secs(val)?,
                        other => return Err(format!("unknown acc option `{other}`")),
                    }
                }
                Ok(DefenseSpec::Acc { k })
            }
            "accturbo" => Ok(DefenseSpec::AccTurbo(AccTurboSpec::parse_opts(&opts)?)),
            "ranked-accturbo" => Ok(DefenseSpec::RankedAccTurbo(AccTurboSpec::parse_opts(
                &opts,
            )?)),
            "jaqen" => {
                let mut spec = JaqenSpec::new(Signature::FiveTuple, JAQEN_DEFAULT_THRESHOLD);
                for (key, val) in opts {
                    match key {
                        "sig" => {
                            spec.signature = Signature::parse(val).ok_or_else(|| {
                                format!("unknown signature `{val}` (5tuple|srcip)")
                            })?;
                        }
                        "th" => {
                            spec.threshold =
                                val.parse().map_err(|_| format!("bad threshold `{val}`"))?;
                        }
                        "window" => spec.window = Some(parse_secs(val)?),
                        "deploy" => spec.deploy_delay = Some(parse_secs(val)?),
                        other => return Err(format!("unknown jaqen option `{other}`")),
                    }
                }
                Ok(DefenseSpec::Jaqen(spec))
            }
            "swap" => {
                let mut start = SimTime::from_secs(60);
                let mut downtime = SimDuration::from_millis(11_500);
                for (key, val) in opts {
                    match key {
                        "at" => {
                            start = SimTime::from_secs_f64(
                                val.parse::<f64>()
                                    .map_err(|_| format!("bad start time `{val}`"))?,
                            );
                        }
                        "down" => downtime = parse_secs(val)?,
                        other => return Err(format!("unknown swap option `{other}`")),
                    }
                }
                Ok(DefenseSpec::ProgramSwap { start, downtime })
            }
            other => Err(format!(
                "unknown defense `{other}` \
                 (fifo|red|acc|accturbo|ranked-accturbo|jaqen|ideal-pifo|swap)"
            )),
        }
    }
}

/// Every defense head the grammar accepts, with its canonical default
/// spec — the CI matrix's row set.
pub fn all_defenses() -> Vec<DefenseSpec> {
    vec![
        DefenseSpec::Fifo,
        DefenseSpec::Red,
        DefenseSpec::Acc {
            k: SimDuration::from_secs(2),
        },
        DefenseSpec::accturbo(),
        DefenseSpec::AccTurbo(AccTurboSpec::hardware(FeatureProfile::HwFig6)),
        DefenseSpec::RankedAccTurbo(AccTurboSpec::simulation()),
        DefenseSpec::Jaqen(JaqenSpec::new(
            Signature::FiveTuple,
            JAQEN_DEFAULT_THRESHOLD,
        )),
        DefenseSpec::IdealPifo,
        DefenseSpec::ProgramSwap {
            start: SimTime::from_secs(60),
            downtime: SimDuration::from_millis(11_500),
        },
    ]
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// A named traffic generator plus its parameters. Each variant maps to
/// one `accturbo-traffic` builder and carries the scenario defaults
/// (link, duration, seed) the corresponding figure uses.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The Fig. 2 ramping-attack scenario (4 CBR aggregates + ramp).
    Fig2,
    /// The Fig. 3 distributed-aggregate variant.
    Fig3,
    /// Fig. 6's pulse-wave attack over background traffic.
    Fig6,
    /// Fig. 7's reaction-time flood (attack from t = 20 s).
    Fig7,
    /// Background traffic only (the program-swap control).
    Background,
    /// Table 3's flood variations.
    Flood(FloodVariation),
    /// The §9 adversarial scenarios.
    Adversarial(AdversarialScenario),
    /// Fig. 11c's elephant-flow workload.
    Elephant,
    /// The parameterized pulse-wave attack the adversarial search
    /// explores: every knob (`period`, `duty`, `amp`, `vectors`,
    /// `spread`, `ramp`) is a grammar option, so any point of the
    /// search space is a one-line replayable spec.
    Pulse(PulseAttackConfig),
    /// A CICDDoS2019-style day of pulsed episodes (Figs. 9–11).
    CicDay {
        /// Vectors in episode order (`None` = the default 10).
        vectors: Option<Vec<AttackVector>>,
        /// Override: episode length.
        episode: Option<SimDuration>,
        /// Override: inter-episode gap.
        gap: Option<SimDuration>,
    },
}

impl WorkloadSpec {
    /// The CICDDoS config this spec describes (panics unless
    /// [`WorkloadSpec::CicDay`] — callers that need episode timing, like
    /// Fig. 11, use this).
    pub fn cic_config(&self, seed: u64) -> CicDdosConfig {
        let WorkloadSpec::CicDay {
            vectors,
            episode,
            gap,
        } = self
        else {
            panic!("cic_config is only defined for cicday workloads");
        };
        let mut cfg = CicDdosConfig {
            seed,
            ..CicDdosConfig::default()
        };
        if let Some(v) = vectors {
            cfg.vectors = v.clone();
        }
        if let Some(e) = episode {
            cfg.episode = *e;
        }
        if let Some(g) = gap {
            cfg.gap = *g;
        }
        cfg
    }

    /// Builds the packet source. `link_bps` parameterizes the Fig. 2/3
    /// demand matrix; `secs` bounds generators that take an end time
    /// (Fig. 2/3 run to their scripted [`scenarios::RUN_SECS`] and rely
    /// on the engine's end-time cutoff, exactly as the figures do).
    pub fn build(&self, link_bps: u64, secs: u64, seed: u64) -> Box<dyn PacketSource> {
        match self {
            WorkloadSpec::Fig2 => Box::new(scenarios::fig2_source(link_bps, seed)),
            WorkloadSpec::Fig3 => Box::new(scenarios::fig3_source(link_bps, seed)),
            WorkloadSpec::Fig6 => Box::new(workloads::fig6_pulses(secs, seed)),
            WorkloadSpec::Fig7 => Box::new(workloads::reaction_flood(secs, seed)),
            WorkloadSpec::Background => Box::new(workloads::background_only(secs, seed)),
            WorkloadSpec::Flood(v) => Box::new(workloads::flood(*v, secs, seed)),
            WorkloadSpec::Adversarial(s) => Box::new(workloads::adversarial(*s, secs, seed)),
            WorkloadSpec::Elephant => Box::new(workloads::elephant(secs)),
            WorkloadSpec::Pulse(cfg) => Box::new(workloads::pulse_attack(cfg, secs, seed)),
            WorkloadSpec::CicDay { .. } => Box::new(self.cic_config(seed).into_source()),
        }
    }

    /// The bottleneck bandwidth the workload's figure runs at.
    pub fn default_link_bps(&self) -> u64 {
        match self {
            WorkloadSpec::Elephant => 18_000_000,
            _ => LINK_10G_SCALED,
        }
    }

    /// The run length the workload's figure uses at `scale`.
    pub fn default_secs(&self, scale: Scale) -> u64 {
        match self {
            WorkloadSpec::Fig2 | WorkloadSpec::Fig3 => scale.secs(scenarios::RUN_SECS, 2),
            WorkloadSpec::Fig6 | WorkloadSpec::Fig7 | WorkloadSpec::Background => {
                scale.secs(100, 4)
            }
            WorkloadSpec::Flood(_) => scale.secs(100, 5),
            WorkloadSpec::Adversarial(_) => scale.secs(40, 4),
            WorkloadSpec::Pulse(_) => scale.secs(30, 10),
            WorkloadSpec::Elephant => 30,
            WorkloadSpec::CicDay { .. } => {
                self.cic_config(0).total_duration().as_secs_f64().ceil() as u64
            }
        }
    }

    /// The canonical seed of the workload's figure.
    pub fn default_seed(&self) -> u64 {
        match self {
            WorkloadSpec::Fig2 => 2022,
            WorkloadSpec::Fig3 => 33,
            WorkloadSpec::Fig6 => 0xF16,
            WorkloadSpec::Fig7 | WorkloadSpec::Background => 0x716,
            WorkloadSpec::Flood(_) => 0x7AB,
            WorkloadSpec::Adversarial(_) => 0xADE5,
            WorkloadSpec::Pulse(_) => 0xA77,
            WorkloadSpec::Elephant => 0,
            WorkloadSpec::CicDay { .. } => 0xC1C,
        }
    }

    /// The aggregate classes a per-second share panel should plot, when
    /// the workload has the Fig. 2/3 five-aggregate structure.
    pub fn share_classes(&self) -> Option<Vec<ClassId>> {
        match self {
            WorkloadSpec::Fig2 | WorkloadSpec::Fig3 => Some((1..=5).map(ClassId).collect()),
            _ => None,
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpec::Fig2 => write!(out, "fig2"),
            WorkloadSpec::Fig3 => write!(out, "fig3"),
            WorkloadSpec::Fig6 => write!(out, "fig6"),
            WorkloadSpec::Fig7 => write!(out, "fig7"),
            WorkloadSpec::Background => write!(out, "background"),
            WorkloadSpec::Elephant => write!(out, "elephant"),
            WorkloadSpec::Flood(v) => match v {
                FloodVariation::SingleFlow => write!(out, "flood"),
                FloodVariation::NoAttack => write!(out, "flood:none"),
                FloodVariation::CarpetBombing => write!(out, "flood:carpet"),
                FloodVariation::SourceSpoofing => write!(out, "flood:spoof"),
            },
            WorkloadSpec::Adversarial(s) => {
                let name = match s {
                    AdversarialScenario::PlainFlood => "plain",
                    AdversarialScenario::PacketLevelEvasion => "evade-pkt",
                    AdversarialScenario::AggregateLevelEvasion => "evade-agg",
                    AdversarialScenario::Swapping => "swap",
                    AdversarialScenario::Imitation => "imitate",
                };
                write!(out, "adversarial:{name}")
            }
            WorkloadSpec::Pulse(cfg) => {
                let d = PulseAttackConfig::default();
                write!(out, "pulse")?;
                if cfg.period != d.period {
                    write!(out, ":period={}", fmt_secs(cfg.period))?;
                }
                if cfg.duty != d.duty {
                    write!(out, ":duty={}", cfg.duty)?;
                }
                if cfg.amp_bps != d.amp_bps {
                    write!(out, ":amp={}", fmt_bandwidth(cfg.amp_bps))?;
                }
                if cfg.vectors != d.vectors {
                    let names: Vec<&str> = cfg.vectors.iter().map(|x| x.name()).collect();
                    write!(out, ":vectors={}", names.join("+"))?;
                }
                if cfg.spread != d.spread {
                    write!(out, ":spread={}", cfg.spread)?;
                }
                if cfg.ramp != d.ramp {
                    write!(out, ":ramp={}", fmt_secs(cfg.ramp))?;
                }
                Ok(())
            }
            WorkloadSpec::CicDay {
                vectors,
                episode,
                gap,
            } => {
                write!(out, "cicday")?;
                if let Some(v) = vectors {
                    let names: Vec<&str> = v.iter().map(|x| x.name()).collect();
                    write!(out, ":vectors={}", names.join("+"))?;
                }
                if let Some(e) = episode {
                    write!(out, ":episode={}", fmt_secs(*e))?;
                }
                if let Some(g) = gap {
                    write!(out, ":gap={}", fmt_secs(*g))?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for WorkloadSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        // `flood:<variation>` and `adversarial:<scenario>` take a bare
        // token, not key=val — handle them before the generic split.
        if let Some(rest) = s.strip_prefix("flood") {
            let v = match rest {
                "" | ":single" => FloodVariation::SingleFlow,
                ":none" => FloodVariation::NoAttack,
                ":carpet" => FloodVariation::CarpetBombing,
                ":spoof" => FloodVariation::SourceSpoofing,
                _ => {
                    return Err(format!(
                        "unknown flood variation `{rest}` (none|single|carpet|spoof)"
                    ))
                }
            };
            return Ok(WorkloadSpec::Flood(v));
        }
        if let Some(rest) = s.strip_prefix("adversarial") {
            let sc = match rest {
                ":plain" => AdversarialScenario::PlainFlood,
                ":evade-pkt" => AdversarialScenario::PacketLevelEvasion,
                ":evade-agg" => AdversarialScenario::AggregateLevelEvasion,
                ":swap" => AdversarialScenario::Swapping,
                ":imitate" => AdversarialScenario::Imitation,
                _ => {
                    return Err(format!(
                        "unknown adversarial scenario `{rest}` \
                         (plain|evade-pkt|evade-agg|swap|imitate)"
                    ))
                }
            };
            return Ok(WorkloadSpec::Adversarial(sc));
        }
        let (head, opts) = split_spec(s)?;
        match head {
            "fig2" | "fig3" | "fig6" | "fig7" | "background" | "elephant" => {
                if !opts.is_empty() {
                    return Err(format!("`{head}` takes no options"));
                }
                Ok(match head {
                    "fig2" => WorkloadSpec::Fig2,
                    "fig3" => WorkloadSpec::Fig3,
                    "fig6" => WorkloadSpec::Fig6,
                    "fig7" => WorkloadSpec::Fig7,
                    "background" => WorkloadSpec::Background,
                    _ => WorkloadSpec::Elephant,
                })
            }
            "pulse" => {
                let mut cfg = PulseAttackConfig::default();
                for (key, val) in opts {
                    match key {
                        "period" => cfg.period = parse_secs(val)?,
                        "duty" => {
                            let d: f64 = val.parse().map_err(|_| format!("bad duty `{val}`"))?;
                            if !d.is_finite() || d <= 0.0 || d > 1.0 {
                                return Err(format!("duty `{val}` must be in (0, 1]"));
                            }
                            cfg.duty = d;
                        }
                        "amp" => cfg.amp_bps = parse_bandwidth(val)?,
                        "vectors" => {
                            let mix = parse_vector_mix(val)?;
                            if mix.len() > 8 {
                                return Err(format!(
                                    "vector mix of {} is too long (≤8)",
                                    mix.len()
                                ));
                            }
                            cfg.vectors = mix;
                        }
                        "spread" => {
                            let s: u8 = val.parse().map_err(|_| format!("bad spread `{val}`"))?;
                            if s > 3 {
                                return Err(format!("spread `{val}` must be 0..=3"));
                            }
                            cfg.spread = s;
                        }
                        "ramp" => cfg.ramp = parse_secs_or_zero(val)?,
                        other => return Err(format!("unknown pulse option `{other}`")),
                    }
                }
                Ok(WorkloadSpec::Pulse(cfg))
            }
            "cicday" => {
                let mut vectors = None;
                let mut episode = None;
                let mut gap = None;
                for (key, val) in opts {
                    match key {
                        "vectors" => vectors = Some(parse_vector_mix(val)?),
                        "episode" => episode = Some(parse_secs(val)?),
                        "gap" => gap = Some(parse_secs(val)?),
                        other => return Err(format!("unknown cicday option `{other}`")),
                    }
                }
                Ok(WorkloadSpec::CicDay {
                    vectors,
                    episode,
                    gap,
                })
            }
            other => Err(format!(
                "unknown workload `{other}` \
                 (fig2|fig3|fig6|fig7|background|flood|adversarial|pulse|elephant|cicday)"
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Topologies
// ---------------------------------------------------------------------------

/// The topology vocabulary: which tree of switches fronts the bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyShape {
    /// `line:N` — a chain of `N` switches (1–32); `line:1` is the
    /// single-switch model.
    Line(u32),
    /// `star:N` — `N` edge switches (1–64) feeding one core.
    Star(u32),
    /// `fattree:K` — `K²` edges, `K` aggregations (2–6), one core.
    FatTree(u32),
    /// `isp-edge` — the fixed asymmetric 4-edge / 2-regional / 1-core
    /// shape.
    IspEdge,
}

/// What defends the non-bottleneck switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeDefense {
    /// Plain tail-drop FIFOs upstream (the default): only the bottleneck
    /// runs the scenario's defense.
    #[default]
    Fifo,
    /// `edges=same` — every switch runs the scenario's defense.
    Same,
}

/// The `topology=` half of a scenario sentence: shape plus link and
/// pushback knobs. `Display` emits only non-default knobs and
/// `parse(display(x)) == x`, like every other spec grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// The tree shape.
    pub shape: TopologyShape,
    /// Per-link propagation delay; `None` = the 50 µs default.
    pub delay: Option<SimDuration>,
    /// Uplink (non-bottleneck link) bandwidth; `None` = 1.2× the
    /// scenario's bottleneck so the core, not the edges, congests.
    pub uplink_bps: Option<u64>,
    /// Leaf ordinals hosting the attack sources (strictly ascending);
    /// `None` = attackers spread over all leaves.
    pub attackers: Option<Vec<usize>>,
    /// What runs on the non-bottleneck switches.
    pub edges: EdgeDefense,
    /// Whether the bottleneck's aggregate limits propagate upstream
    /// hop by hop.
    pub pushback: bool,
    /// Pushback refresh period at the root; `None` = the 500 ms default.
    pub refresh: Option<SimDuration>,
}

impl TopologySpec {
    /// A topology at the shape's defaults.
    pub fn new(shape: TopologyShape) -> Self {
        TopologySpec {
            shape,
            delay: None,
            uplink_bps: None,
            attackers: None,
            edges: EdgeDefense::Fifo,
            pushback: false,
            refresh: None,
        }
    }

    /// True when this topology is the trivial one-node line at default
    /// options — semantically (and, per `tests/topology_matrix.rs`,
    /// byte-for-byte) the classic single-switch engine. Only this case
    /// may route through single-switch-only paths such as streaming
    /// telemetry; any non-default knob (delay, uplink, pushback, …)
    /// disqualifies it.
    pub fn is_single_switch(&self) -> bool {
        self == &TopologySpec::new(TopologyShape::Line(1))
    }

    /// Number of ingress leaves.
    pub fn leaf_count(&self) -> usize {
        match self.shape {
            TopologyShape::Line(_) => 1,
            TopologyShape::Star(n) => n as usize,
            TopologyShape::FatTree(k) => (k * k) as usize,
            TopologyShape::IspEdge => 4,
        }
    }

    /// Switch count on the longest leaf → root path.
    pub fn depth(&self) -> usize {
        match self.shape {
            TopologyShape::Line(n) => n as usize,
            TopologyShape::Star(_) => 2,
            TopologyShape::FatTree(_) | TopologyShape::IspEdge => 3,
        }
    }

    /// The effective per-link propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay.unwrap_or(SimDuration::from_micros(50))
    }

    /// The effective uplink bandwidth for a scenario at `link_bps`.
    pub fn uplink(&self, link_bps: u64) -> u64 {
        self.uplink_bps.unwrap_or(link_bps * 12 / 10)
    }

    /// The effective pushback refresh period.
    pub fn refresh(&self) -> SimDuration {
        self.refresh.unwrap_or(SimDuration::from_millis(500))
    }

    /// Extra run-length the topology wants on top of a single-switch
    /// default: the added path RTT (propagation both ways across the
    /// extra hops) plus, with pushback on, one refresh per level for
    /// limits to reach the leaves. Whole seconds, rounded up; zero for
    /// `line:1`.
    pub fn extra_secs(&self) -> u64 {
        let depth = self.depth() as f64;
        let mut extra = 2.0 * (depth - 1.0) * self.delay().as_secs_f64();
        if self.pushback {
            extra += depth * self.refresh().as_secs_f64();
        }
        extra.ceil() as u64
    }

    /// Materializes the [`Topology`] for a scenario at `link_bps`.
    pub fn build(&self, link_bps: u64) -> Topology {
        let uplink = LinkSpec::new(Bandwidth::from_bps(self.uplink(link_bps)), self.delay());
        let bottleneck = LinkSpec::new(Bandwidth::from_bps(link_bps), SimDuration::ZERO);
        match self.shape {
            TopologyShape::Line(n) => Topology::line(n as usize, uplink, bottleneck),
            TopologyShape::Star(n) => Topology::star(n as usize, uplink, bottleneck),
            TopologyShape::FatTree(k) => Topology::fattree(k as usize, uplink, bottleneck),
            TopologyShape::IspEdge => Topology::isp_edge(uplink, bottleneck),
        }
    }

    fn validate(&self) -> Result<(), String> {
        match self.shape {
            TopologyShape::Line(n) if !(1..=32).contains(&n) => {
                return Err(format!("line arity must be 1..=32, got {n}"));
            }
            TopologyShape::Star(n) if !(1..=64).contains(&n) => {
                return Err(format!("star arity must be 1..=64, got {n}"));
            }
            TopologyShape::FatTree(k) if !(2..=6).contains(&k) => {
                return Err(format!("fattree arity must be 2..=6, got {k}"));
            }
            _ => {}
        }
        if let Some(att) = &self.attackers {
            if att.is_empty() {
                return Err("attackers list must be non-empty".into());
            }
            let leaves = self.leaf_count();
            if !att.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("attackers must be strictly ascending: {att:?}"));
            }
            if let Some(&worst) = att.last() {
                if worst >= leaves {
                    return Err(format!(
                        "attacker leaf {worst} out of range (the shape has {leaves} leaves)"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shape {
            TopologyShape::Line(n) => write!(out, "line:{n}")?,
            TopologyShape::Star(n) => write!(out, "star:{n}")?,
            TopologyShape::FatTree(k) => write!(out, "fattree:{k}")?,
            TopologyShape::IspEdge => write!(out, "isp-edge")?,
        }
        if let Some(d) = self.delay {
            write!(out, ":delay={}", fmt_secs(d))?;
        }
        if let Some(b) = self.uplink_bps {
            write!(out, ":uplink={}", fmt_bandwidth(b))?;
        }
        if let Some(att) = &self.attackers {
            let list: Vec<String> = att.iter().map(|a| a.to_string()).collect();
            write!(out, ":attackers={}", list.join("+"))?;
        }
        if self.edges == EdgeDefense::Same {
            write!(out, ":edges=same")?;
        }
        if self.pushback {
            write!(out, ":pushback=on")?;
        }
        if let Some(r) = self.refresh {
            write!(out, ":refresh={}", fmt_secs(r))?;
        }
        Ok(())
    }
}

impl FromStr for TopologySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Hand-rolled: the arity segment (`line:4`) is a bare token, so
        // this grammar cannot go through `split_spec`.
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        let mut spec = match head {
            "isp-edge" => TopologySpec::new(TopologyShape::IspEdge),
            "line" | "star" | "fattree" => {
                let arity = parts
                    .next()
                    .ok_or_else(|| format!("`{head}` needs an arity, e.g. `{head}:4`"))?;
                let n: u32 = arity
                    .parse()
                    .map_err(|_| format!("`{arity}` is not a {head} arity"))?;
                TopologySpec::new(match head {
                    "line" => TopologyShape::Line(n),
                    "star" => TopologyShape::Star(n),
                    _ => TopologyShape::FatTree(n),
                })
            }
            other => {
                return Err(format!(
                    "unknown topology `{other}` (expected line:N, star:N, fattree:K or isp-edge)"
                ));
            }
        };
        for part in parts {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("expected `key=value`, got `{part}`"))?;
            match key {
                "delay" => spec.delay = Some(parse_secs(val)?),
                "uplink" => spec.uplink_bps = Some(parse_bandwidth(val)?),
                "attackers" => {
                    let att = val
                        .split('+')
                        .map(|a| {
                            a.parse::<usize>()
                                .map_err(|_| format!("`{a}` is not a leaf ordinal"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    spec.attackers = Some(att);
                }
                "edges" => {
                    spec.edges = match val {
                        "same" => EdgeDefense::Same,
                        "fifo" => EdgeDefense::Fifo,
                        other => return Err(format!("unknown edges mode `{other}`")),
                    }
                }
                "pushback" => {
                    spec.pushback = match val {
                        "on" => true,
                        "off" => false,
                        other => return Err(format!("pushback must be on/off, got `{other}`")),
                    }
                }
                "refresh" => spec.refresh = Some(parse_secs(val)?),
                other => return Err(format!("unknown topology option `{other}`")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// The full experiment sentence: workload × defense × engine parameters,
/// with one [`execute`](ScenarioSpec::execute) entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// What traffic hits the switch.
    pub workload: WorkloadSpec,
    /// What defends the link.
    pub defense: DefenseSpec,
    /// Bottleneck bandwidth, bits per second.
    pub link_bps: u64,
    /// Run length, seconds (1-second stats buckets).
    pub secs: u64,
    /// Control-plane period override; `None` uses the defense's natural
    /// period ([`DefenseSpec::control_period`]).
    pub control_period: Option<SimDuration>,
    /// Workload (and fault) seed.
    pub seed: u64,
    /// Substrate fault plane (`None` = fault-free).
    pub faults: Option<FaultConfig>,
    /// Multi-switch topology (`None` = the classic single switch).
    pub topology: Option<TopologySpec>,
    /// Datapath shard count (`1` = the classic serial engine). Higher
    /// counts route through the sharded engine — byte-identical output
    /// by construction. Only the plain single-switch path shards;
    /// combining `shards>1` with faults or a topology is rejected.
    pub shards: usize,
}

/// What [`ScenarioSpec::execute`] returns: the engine's result plus the
/// end-of-run switch backlog (for conservation checks) and — on faulted
/// runs — the injection and degradation counters.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The engine's run result.
    pub result: RunResult,
    /// Packets still queued in the switch at end-of-run.
    pub backlog_pkts: usize,
    /// Injection counters (faulted runs only).
    pub fault_stats: Option<FaultStats>,
    /// Control ticks suppressed by the fault plane (ACC-Turbo only).
    pub missed_ticks: u64,
    /// Control ticks served stale statistics (ACC-Turbo only).
    pub stale_ticks: u64,
    /// Bounded-staleness fallback decisions (ACC-Turbo only).
    pub fallbacks: u64,
}

impl ScenarioSpec {
    /// A scenario at the workload's full-scale defaults.
    pub fn new(workload: WorkloadSpec, defense: DefenseSpec) -> Self {
        let link_bps = workload.default_link_bps();
        let secs = workload.default_secs(Scale::Full);
        let seed = workload.default_seed();
        ScenarioSpec {
            workload,
            defense,
            link_bps,
            secs,
            control_period: None,
            seed,
            faults: None,
            topology: None,
            shards: 1,
        }
    }

    /// Overrides the run length.
    pub fn with_secs(mut self, secs: u64) -> Self {
        self.secs = secs;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the bottleneck bandwidth.
    pub fn with_link(mut self, link_bps: u64) -> Self {
        self.link_bps = link_bps;
        self
    }

    /// Overrides the control-plane period.
    pub fn with_period(mut self, period: SimDuration) -> Self {
        self.control_period = Some(period);
        self
    }

    /// Attaches a fault plane.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Runs the scenario on a multi-switch topology.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Runs the datapath with `shards` generation shards (`1` = serial).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The control period this scenario will run with.
    pub fn effective_period(&self) -> Option<SimDuration> {
        self.control_period
            .or_else(|| self.defense.control_period())
    }

    /// Runs the scenario on its topology and returns the full per-node
    /// picture. Panics without a topology or with a fault plane attached
    /// (the fault plane models a single defended switch).
    pub fn execute_topology(&self) -> TopologyRunResult {
        let tspec = self
            .topology
            .as_ref()
            .expect("execute_topology needs a topology");
        assert!(
            self.faults.is_none(),
            "the fault plane is not topology-aware; drop faults= or topology="
        );
        assert!(
            self.shards == 1,
            "the sharded datapath runs the single defended switch; drop shards= or topology="
        );
        let topo = tspec.build(self.link_bps);
        let uplink = tspec.uplink(self.link_bps);
        let mut switches: Vec<Box<dyn Switch>> = (0..topo.num_nodes())
            .map(|i| {
                if i == topo.root() {
                    self.defense.build(self.link_bps)
                } else {
                    match tspec.edges {
                        EdgeDefense::Fifo => Box::new(SingleQueueSwitch::new(baseline_fifo())),
                        EdgeDefense::Same => self.defense.build(uplink),
                    }
                }
            })
            .collect();
        let mut src = self.workload.build(self.link_bps, self.secs, self.seed);
        let placement = LeafPlacement::new(topo.leaves().len(), tspec.attackers.as_deref());
        let mut cfg = TopologyConfig::experiment(self.secs, self.effective_period());
        if tspec.pushback {
            cfg = cfg.with_pushback(PushbackPlan::new(tspec.refresh()));
        }
        run_topology(
            &topo,
            &mut switches,
            &mut *src,
            &mut |p| placement.place(p),
            &cfg,
        )
    }

    /// Runs the scenario through the standard engine paths.
    pub fn execute(&self) -> ScenarioOutcome {
        if self.topology.is_some() {
            let t = self.execute_topology();
            return ScenarioOutcome {
                backlog_pkts: t.backlog_pkts,
                result: t.result,
                fault_stats: None,
                missed_ticks: 0,
                stale_ticks: 0,
                fallbacks: 0,
            };
        }
        let period = self.effective_period();
        assert!(
            self.shards == 1 || self.faults.is_none(),
            "the sharded datapath has no fault plane; drop shards= or faults="
        );
        match &self.faults {
            None => {
                let mut sw = self.defense.build(self.link_bps);
                let src = self.workload.build(self.link_bps, self.secs, self.seed);
                let result = if self.shards > 1 {
                    simulate_sharded(src, &mut *sw, self.link_bps, self.secs, period, self.shards)
                } else {
                    let mut src = src;
                    simulate(&mut *src, &mut *sw, self.link_bps, self.secs, period)
                };
                ScenarioOutcome {
                    backlog_pkts: sw.backlog_pkts(),
                    result,
                    fault_stats: None,
                    missed_ticks: 0,
                    stale_ticks: 0,
                    fallbacks: 0,
                }
            }
            Some(fc) => {
                let inj = FaultInjector::new(FaultSchedule::new(fc.clone()));
                // ACC-Turbo exposes graceful-degradation hooks the boxed
                // `Switch` trait cannot carry — wire them concretely.
                if let DefenseSpec::AccTurbo(spec) = &self.defense {
                    let mut sw = spec.build();
                    sw.set_faults(inj.clone());
                    let mut src = FaultedSource::new(
                        self.workload.build(self.link_bps, self.secs, self.seed),
                        inj.clone(),
                    );
                    let result = simulate_with_faults(
                        &mut src,
                        &mut sw,
                        self.link_bps,
                        self.secs,
                        period,
                        &inj,
                    );
                    let (missed, stale, fallbacks) = {
                        let d = sw.degradation();
                        (d.total_missed(), d.total_stale(), d.fallbacks())
                    };
                    ScenarioOutcome {
                        backlog_pkts: sw.backlog_pkts(),
                        result,
                        fault_stats: Some(inj.stats()),
                        missed_ticks: missed,
                        stale_ticks: stale,
                        fallbacks,
                    }
                } else {
                    let mut sw = self.defense.build(self.link_bps);
                    let mut src = FaultedSource::new(
                        self.workload.build(self.link_bps, self.secs, self.seed),
                        inj.clone(),
                    );
                    let result = simulate_with_faults(
                        &mut src,
                        &mut *sw,
                        self.link_bps,
                        self.secs,
                        period,
                        &inj,
                    );
                    ScenarioOutcome {
                        backlog_pkts: sw.backlog_pkts(),
                        result,
                        fault_stats: Some(inj.stats()),
                        missed_ticks: 0,
                        stale_ticks: 0,
                        fallbacks: 0,
                    }
                }
            }
        }
    }

    /// [`ScenarioSpec::execute`] with a streaming-telemetry bundle.
    ///
    /// With `telemetry == None` this delegates to [`execute`]
    /// (byte-identical, keeping the goldens honest). When streaming, the
    /// engine gets a fresh metrics registry so the aggregation stage has
    /// per-period counters/gauges/histograms to delta; an ACC-Turbo
    /// defense additionally shares that registry (control-loop timing,
    /// queue depths, degradation gauges) and — when the bundle carries a
    /// flight recorder — installs the recorder as its tracer so switch
    /// and engine events land in one incident timeline.
    ///
    /// [`execute`]: ScenarioSpec::execute
    pub fn execute_streamed(&self, telemetry: Option<&mut Telemetry>) -> ScenarioOutcome {
        let Some(tel) = telemetry else {
            return self.execute();
        };
        // The streaming bundle wires a single switch's metrics/tracer;
        // the CLI rejects telemetry + topology before reaching here.
        assert!(
            self.topology.is_none(),
            "streaming telemetry is not topology-aware; drop the telemetry flags or topology="
        );
        assert!(
            self.shards == 1,
            "streaming telemetry runs the serial engine; drop the telemetry flags or shards="
        );
        let period = self.effective_period();
        let metrics: MetricsHandle = Rc::new(RefCell::new(Registry::new()));
        let recorder = tel.recorder_handle();
        let mut engine_tracer: Box<dyn Tracer> = match &recorder {
            Some(rec) => Box::new(rec.clone()),
            None => Box::new(NoopTracer),
        };
        let inj = self
            .faults
            .as_ref()
            .map(|fc| FaultInjector::new(FaultSchedule::new(fc.clone())));
        if let DefenseSpec::AccTurbo(spec) = &self.defense {
            let mut sw = spec.build();
            sw.set_metrics(Rc::clone(&metrics));
            if let Some(rec) = &recorder {
                sw.set_tracer(Box::new(rec.clone()));
            }
            if let Some(inj) = &inj {
                sw.set_faults(inj.clone());
            }
            let mut src: Box<dyn PacketSource> = {
                let inner = self.workload.build(self.link_bps, self.secs, self.seed);
                match &inj {
                    Some(inj) => Box::new(FaultedSource::new(inner, inj.clone())),
                    None => inner,
                }
            };
            let result = simulate_streamed(
                &mut *src,
                &mut sw,
                self.link_bps,
                self.secs,
                period,
                &mut *engine_tracer,
                Some(&metrics),
                inj.as_ref(),
                Some(tel),
            );
            let d = sw.degradation().counters();
            ScenarioOutcome {
                backlog_pkts: sw.backlog_pkts(),
                result,
                fault_stats: inj.map(|i| i.stats()),
                missed_ticks: d.total_missed,
                stale_ticks: d.total_stale,
                fallbacks: d.fallbacks,
            }
        } else {
            let mut sw = self.defense.build(self.link_bps);
            let mut src: Box<dyn PacketSource> = {
                let inner = self.workload.build(self.link_bps, self.secs, self.seed);
                match &inj {
                    Some(inj) => Box::new(FaultedSource::new(inner, inj.clone())),
                    None => inner,
                }
            };
            let result = simulate_streamed(
                &mut *src,
                &mut *sw,
                self.link_bps,
                self.secs,
                period,
                &mut *engine_tracer,
                Some(&metrics),
                inj.as_ref(),
                Some(tel),
            );
            ScenarioOutcome {
                backlog_pkts: sw.backlog_pkts(),
                result,
                fault_stats: inj.map(|i| i.stats()),
                missed_ticks: 0,
                stale_ticks: 0,
                fallbacks: 0,
            }
        }
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            out,
            "workload={} defense={} link={} secs={} seed={}",
            self.workload, self.defense, self.link_bps, self.secs, self.seed
        )?;
        if let Some(p) = self.control_period {
            write!(out, " period={}", fmt_secs(p))?;
        }
        if let Some(t) = &self.topology {
            write!(out, " topology={t}")?;
        }
        if self.shards != 1 {
            write!(out, " shards={}", self.shards)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every canonical string must survive parse → Display unchanged.
    #[test]
    fn defense_grammar_round_trips() {
        let cases = [
            "fifo",
            "red",
            "acc",
            "acc:k=0.1",
            "acc:k=1.5",
            "accturbo",
            "accturbo:profile=hw",
            "accturbo:profile=hw:features=dst4",
            "accturbo:clusters=8:distance=anime:search=exhaustive",
            "accturbo:rep=midpoint:init=traffic:budget=256:nominal=bloom1024:ranking=np",
            "accturbo:budget=unlimited",
            "ranked-accturbo:profile=hw",
            "jaqen",
            "jaqen:sig=srcip:th=2000:window=4:deploy=1.5",
            "ideal-pifo",
            "swap",
            "swap:at=30:down=5.5",
        ];
        for s in cases {
            let spec: DefenseSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s, "canonical form of `{s}`");
            let again: DefenseSpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
    }

    #[test]
    fn workload_grammar_round_trips() {
        let cases = [
            "fig2",
            "fig3",
            "fig6",
            "fig7",
            "background",
            "flood",
            "flood:none",
            "flood:carpet",
            "flood:spoof",
            "adversarial:plain",
            "adversarial:evade-agg",
            "adversarial:imitate",
            "elephant",
            "cicday",
            "cicday:vectors=MSSQL+SSDP",
            "cicday:vectors=NTP:episode=2:gap=1",
            "pulse",
            "pulse:period=0.5",
            "pulse:duty=0.25:amp=60m",
            "pulse:period=1.5:duty=0.05:amp=80m:vectors=SYN+NTP:spread=3:ramp=0.4",
            "pulse:vectors=UDP+UDPLag:spread=0",
        ];
        for s in cases {
            let spec: WorkloadSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s, "canonical form of `{s}`");
        }
    }

    #[test]
    fn grammar_rejects_nonsense() {
        assert!("wibble".parse::<DefenseSpec>().is_err());
        assert!("fifo:k=2".parse::<DefenseSpec>().is_err());
        assert!("accturbo:profile=hw:features=sim"
            .parse::<DefenseSpec>()
            .is_err());
        assert!("accturbo:distance=cosine".parse::<DefenseSpec>().is_err());
        assert!("jaqen:sig=6tuple".parse::<DefenseSpec>().is_err());
        assert!("acc:k=0".parse::<DefenseSpec>().is_err());
        assert!("flood:tsunami".parse::<WorkloadSpec>().is_err());
        assert!("adversarial".parse::<WorkloadSpec>().is_err());
        assert!("cicday:vectors=WIBBLE".parse::<WorkloadSpec>().is_err());
        assert!("pulse:duty=0".parse::<WorkloadSpec>().is_err());
        assert!("pulse:duty=1.5".parse::<WorkloadSpec>().is_err());
        assert!("pulse:spread=4".parse::<WorkloadSpec>().is_err());
        assert!("pulse:period=0".parse::<WorkloadSpec>().is_err());
        assert!("pulse:ramp=-1".parse::<WorkloadSpec>().is_err());
        assert!("pulse:vectors=".parse::<WorkloadSpec>().is_err());
        assert!("pulse:amp=0".parse::<WorkloadSpec>().is_err());
        assert!("pulse:wibble=1".parse::<WorkloadSpec>().is_err());
    }

    /// Every canonical topology string must survive parse → Display
    /// unchanged.
    #[test]
    fn topology_grammar_round_trips() {
        let cases = [
            "line:1",
            "line:4",
            "star:4",
            "star:4:attackers=0+2",
            "fattree:2",
            "isp-edge",
            "line:3:delay=0.002:pushback=on:refresh=0.25",
            "star:8:uplink=12m:edges=same",
            "isp-edge:attackers=1+2+3:pushback=on",
        ];
        for s in cases {
            let spec: TopologySpec = s.parse().unwrap_or_else(|e| panic!("`{s}`: {e}"));
            assert_eq!(spec.to_string(), s, "canonical form changed");
            let again: TopologySpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
    }

    #[test]
    fn topology_grammar_rejects_nonsense() {
        assert!("ring:4".parse::<TopologySpec>().is_err());
        assert!("line".parse::<TopologySpec>().is_err());
        assert!("line:0".parse::<TopologySpec>().is_err());
        assert!("line:33".parse::<TopologySpec>().is_err());
        assert!("star:65".parse::<TopologySpec>().is_err());
        assert!("fattree:1".parse::<TopologySpec>().is_err());
        assert!("fattree:7".parse::<TopologySpec>().is_err());
        assert!("isp-edge:4".parse::<TopologySpec>().is_err());
        assert!("line:x".parse::<TopologySpec>().is_err());
        assert!("star:4:attackers=".parse::<TopologySpec>().is_err());
        assert!("star:4:attackers=2+1".parse::<TopologySpec>().is_err());
        assert!("star:4:attackers=1+1".parse::<TopologySpec>().is_err());
        assert!("star:4:attackers=4".parse::<TopologySpec>().is_err());
        assert!("star:4:edges=none".parse::<TopologySpec>().is_err());
        assert!("star:4:pushback=maybe".parse::<TopologySpec>().is_err());
        assert!("star:4:refresh=0".parse::<TopologySpec>().is_err());
        assert!("star:4:delay=-1".parse::<TopologySpec>().is_err());
        assert!("star:4:wibble=1".parse::<TopologySpec>().is_err());
    }

    #[test]
    fn topology_shape_arithmetic_matches_the_structures() {
        for s in ["line:5", "star:6", "fattree:3", "isp-edge"] {
            let spec: TopologySpec = s.parse().unwrap();
            let topo = spec.build(10_000_000);
            assert_eq!(spec.leaf_count(), topo.leaves().len(), "{s}");
            assert_eq!(spec.depth(), topo.depth(), "{s}");
        }
        let line1: TopologySpec = "line:1".parse().unwrap();
        assert_eq!(line1.extra_secs(), 0, "line:1 must not pad the run");
        let deep: TopologySpec = "line:4:delay=0.2:pushback=on".parse().unwrap();
        assert!(deep.extra_secs() >= 3, "deep paths must pad the run");
    }

    #[test]
    fn topology_execute_smoke_and_conservation() {
        let out = ScenarioSpec::new(
            WorkloadSpec::Flood(FloodVariation::SingleFlow),
            DefenseSpec::accturbo(),
        )
        .with_secs(10)
        .with_topology("star:4:attackers=0".parse().unwrap())
        .execute();
        assert!(out.result.arrivals > 0);
        assert_eq!(
            out.result.arrivals,
            out.result.departures + out.result.drops + out.backlog_pkts as u64,
            "packet conservation across the topology"
        );
    }

    /// The natural control periods encode each figure's wiring.
    #[test]
    fn natural_control_periods() {
        assert_eq!(DefenseSpec::Fifo.control_period(), None);
        assert_eq!(DefenseSpec::IdealPifo.control_period(), None);
        // ACC ticks at its EWMA interval, or faster when K is shorter.
        assert_eq!(
            DefenseSpec::Acc {
                k: SimDuration::from_secs(2)
            }
            .control_period(),
            Some(SimDuration::from_millis(100))
        );
        assert_eq!(
            DefenseSpec::Acc {
                k: SimDuration::from_millis(50)
            }
            .control_period(),
            Some(SimDuration::from_millis(50))
        );
        assert_eq!(
            DefenseSpec::accturbo().control_period(),
            Some(SimDuration::from_millis(250))
        );
        assert_eq!(
            DefenseSpec::AccTurbo(AccTurboSpec::hardware(FeatureProfile::HwFig6)).control_period(),
            Some(SimDuration::from_millis(50))
        );
        assert_eq!(
            DefenseSpec::Jaqen(JaqenSpec::new(Signature::FiveTuple, 1_500)).control_period(),
            Some(SimDuration::from_millis(100))
        );
    }

    /// `accturbo:profile=hw` must mean hardware_fig6, and overrides must
    /// land in the materialized config.
    #[test]
    fn accturbo_spec_materializes_overrides() {
        let spec: DefenseSpec = "accturbo:profile=hw:clusters=8:ranking=np".parse().unwrap();
        let DefenseSpec::AccTurbo(s) = &spec else {
            panic!("not accturbo")
        };
        let cfg = s.config();
        assert_eq!(cfg.clustering.num_clusters, 8);
        assert_eq!(cfg.num_queues, 8);
        assert_eq!(cfg.ranking, RankingAlgorithm::NumPackets);
        assert_eq!(cfg.clustering.features.len(), 4);
    }

    /// The workload defaults match the figures they came from.
    #[test]
    fn workload_defaults_match_figures() {
        assert_eq!(WorkloadSpec::Fig2.default_seed(), 2022);
        assert_eq!(WorkloadSpec::Fig2.default_secs(Scale::Full), 50);
        assert_eq!(WorkloadSpec::Fig2.default_secs(Scale::Quick), 25);
        assert_eq!(WorkloadSpec::Elephant.default_link_bps(), 18_000_000);
        assert_eq!(
            WorkloadSpec::Flood(FloodVariation::SingleFlow).default_seed(),
            0x7AB
        );
        assert!(WorkloadSpec::Fig2.share_classes().is_some());
        assert!(WorkloadSpec::Fig6.share_classes().is_none());
    }

    /// A spec-driven run conserves packets and actually moves traffic.
    #[test]
    fn execute_smoke_and_conservation() {
        let out = ScenarioSpec::new(
            WorkloadSpec::Flood(FloodVariation::SingleFlow),
            DefenseSpec::accturbo(),
        )
        .with_secs(10)
        .execute();
        assert!(out.result.arrivals > 0);
        assert_eq!(
            out.result.arrivals,
            out.result.departures + out.result.drops + out.backlog_pkts as u64,
            "packet conservation"
        );
        assert!(out.fault_stats.is_none());
    }
}
