//! Ablations of the design decisions this reproduction had to concretize
//! (DESIGN.md §4), each run on the Fig. 6 pulse-wave scenario and scored
//! by benign loss during the pulses:
//!
//! * cluster initialization: Alg-1 anchors vs. seed-from-traffic;
//! * representative choice at re-seeding: range midpoint vs. last packet;
//! * the resubmission-modeled growth budget;
//! * the control-plane period (the paper's reaction-time knob);
//! * nominal-set storage: exact sets vs. hardware bloom filters.

use crate::common::Scale;
use crate::fig6;
use crate::result::FigureResult;
use crate::spec::{AccTurboSpec, DefenseSpec, FeatureProfile, ScenarioSpec, WorkloadSpec};
use crate::Figure;
use accturbo_clustering::{InitMode, RepMode};
use accturbo_netsim::SimDuration;
use accturbo_telemetry::{f, Table};
use std::fmt::Write as _;

/// The canonical workload seed — ablations run on Fig. 6's workload, so
/// they share its seed.
pub const DEFAULT_SEED: u64 = fig6::DEFAULT_SEED;

/// The baseline every ablation perturbs: Fig. 6's hardware profile.
fn base() -> AccTurboSpec {
    AccTurboSpec::hardware(FeatureProfile::HwFig6)
}

/// Runs the Fig. 6 workload through `defense` at `period_ms` and returns
/// the benign loss during pulses.
fn pulse_loss(defense: DefenseSpec, period_ms: u64, secs: u64, seed: u64) -> f64 {
    let res = ScenarioSpec::new(WorkloadSpec::Fig6, defense)
        .with_secs(secs)
        .with_seed(seed)
        .with_period(SimDuration::from_millis(period_ms))
        .execute()
        .result;
    fig6::benign_loss_during_pulses(&res, secs)
}

/// Runs the Fig. 6 workload through a customized hardware-profile switch
/// and returns the benign loss during pulses.
fn benign_loss(spec: AccTurboSpec, period_ms: u64, secs: u64, seed: u64) -> f64 {
    pulse_loss(DefenseSpec::AccTurbo(spec), period_ms, secs, seed)
}

/// Benign pulse-loss for the two initialization modes.
pub fn init_mode_ablation(secs: u64, seed: u64) -> (f64, f64) {
    let anchors = benign_loss(base(), 50, secs, seed);
    let from_traffic = benign_loss(base().with_init(InitMode::FromTraffic), 50, secs, seed);
    (anchors, from_traffic)
}

/// Benign pulse-loss for the two representative modes.
pub fn rep_mode_ablation(secs: u64, seed: u64) -> (f64, f64) {
    let midpoint = benign_loss(base().with_rep(RepMode::RangeMidpoint), 50, secs, seed);
    let last_packet = benign_loss(base().with_rep(RepMode::LastPacket), 50, secs, seed);
    (midpoint, last_packet)
}

/// Benign pulse-loss per growth budget (`None` = unlimited).
pub fn budget_ablation(budget: Option<u64>, secs: u64, seed: u64) -> f64 {
    benign_loss(base().with_budget(budget), 50, secs, seed)
}

/// Benign pulse-loss per control-plane period.
pub fn period_ablation(period_ms: u64, secs: u64, seed: u64) -> f64 {
    benign_loss(base(), period_ms, secs, seed)
}

/// Benign pulse-loss with the per-packet SP-PIFO rank scheduler instead
/// of the control-plane cluster→queue mapping (§5.1's other design point).
pub fn ranked_scheduler_ablation(secs: u64, seed: u64) -> (f64, f64) {
    let bank = benign_loss(base(), 50, secs, seed);
    let ranked = pulse_loss(DefenseSpec::RankedAccTurbo(base()), 50, secs, seed);
    (bank, ranked)
}

/// Benign pulse-loss with bloom-filter nominal sets of the given size
/// (`None` = exact sets).
pub fn nominal_ablation(bloom_bits: Option<u64>, secs: u64, seed: u64) -> f64 {
    let spec = match bloom_bits {
        Some(bits) => base().with_bloom(bits),
        None => base(),
    };
    benign_loss(spec, 50, secs, seed)
}

/// Regenerates the ablation report at `seed`, returning the rendered
/// report and its machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(100, 4);
    let mut out = String::new();
    let mut r = FigureResult::new("ablations");

    let mut t = Table::new(&["Ablation", "variant", "benign loss during pulses (%)"]);
    let (anchors, seeded) = init_mode_ablation(secs, seed);
    t.row(vec![
        "init".into(),
        "anchors (Alg. 1)".into(),
        f(100.0 * anchors),
    ]);
    t.row(vec![
        "init".into(),
        "seed-from-traffic".into(),
        f(100.0 * seeded),
    ]);
    r.num("init.anchors.benign_loss_pct", 100.0 * anchors);
    r.num("init.from_traffic.benign_loss_pct", 100.0 * seeded);
    let (midpoint, last) = rep_mode_ablation(secs, seed);
    t.row(vec![
        "representative".into(),
        "range midpoint".into(),
        f(100.0 * midpoint),
    ]);
    t.row(vec![
        "representative".into(),
        "last packet".into(),
        f(100.0 * last),
    ]);
    r.num("rep.midpoint.benign_loss_pct", 100.0 * midpoint);
    r.num("rep.last_packet.benign_loss_pct", 100.0 * last);
    for budget in [Some(64), Some(256), Some(4096), None] {
        let label = budget
            .map(|b| b.to_string())
            .unwrap_or_else(|| "unlimited".into());
        let loss = 100.0 * budget_ablation(budget, secs, seed);
        r.num(&format!("budget.{label}.benign_loss_pct"), loss);
        t.row(vec!["growth budget".into(), label, f(loss)]);
    }
    for period in [50u64, 250, 1000] {
        let loss = 100.0 * period_ablation(period, secs, seed);
        r.num(&format!("period.{period}ms.benign_loss_pct"), loss);
        t.row(vec![
            "control period".into(),
            format!("{period} ms"),
            f(loss),
        ]);
    }
    let (bank, ranked) = ranked_scheduler_ablation(secs, seed);
    t.row(vec![
        "scheduler".into(),
        "cluster→queue bank".into(),
        f(100.0 * bank),
    ]);
    t.row(vec![
        "scheduler".into(),
        "per-packet SP-PIFO".into(),
        f(100.0 * ranked),
    ]);
    r.num("scheduler.bank.benign_loss_pct", 100.0 * bank);
    r.num("scheduler.sp_pifo.benign_loss_pct", 100.0 * ranked);
    let exact = 100.0 * nominal_ablation(None, secs, seed);
    r.num("nominal.exact.benign_loss_pct", exact);
    t.row(vec!["nominal sets".into(), "exact".into(), f(exact)]);
    for bits in [64u64, 1024] {
        let loss = 100.0 * nominal_ablation(Some(bits), secs, seed);
        r.num(&format!("nominal.bloom{bits}b.benign_loss_pct"), loss);
        t.row(vec![
            "nominal sets".into(),
            format!("bloom {bits}b"),
            f(loss),
        ]);
    }
    let _ = write!(&mut out, "{}", t.render());
    Figure::new(out, r)
}

/// Regenerates the ablation report at the canonical seed.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECS: u64 = 60;

    #[test]
    fn unlimited_growth_is_worse_under_midpoint_reps() {
        // The growth budget and the representative mode interact:
        // last-packet re-seeding alone stops the within-window snowball,
        // but under midpoint re-seeding (where the seed inherits the
        // grown range's center) the budget is load-bearing.
        let loss = |budget: Option<u64>| {
            benign_loss(
                base().with_rep(RepMode::RangeMidpoint).with_budget(budget),
                50,
                SECS,
                DEFAULT_SEED,
            )
        };
        let budgeted = loss(Some(256));
        let unlimited = loss(None);
        assert!(
            unlimited > budgeted,
            "unlimited growth ({unlimited:.2}) must lose to the budget ({budgeted:.2})"
        );
    }

    #[test]
    fn very_slow_control_planes_protect_less() {
        // Sub-second periods are statistically indistinguishable on this
        // workload; a controller slower than half a pulse is not.
        let fast = period_ablation(50, SECS, DEFAULT_SEED);
        let glacial = period_ablation(5_000, SECS, DEFAULT_SEED);
        assert!(
            glacial > fast,
            "a 5 s controller ({glacial:.2}) must lose to a 50 ms one ({fast:.2})"
        );
    }

    #[test]
    fn tiny_bloom_filters_saturate_and_hurt() {
        // A saturated admission list makes every port look already
        // admitted, erasing the nominal features.
        let exact = nominal_ablation(None, SECS, DEFAULT_SEED);
        let tiny = nominal_ablation(Some(64), SECS, DEFAULT_SEED);
        assert!(
            tiny >= exact - 0.03,
            "64-bit blooms ({tiny:.2}) should not beat exact sets ({exact:.2})"
        );
    }

    #[test]
    fn both_scheduler_architectures_defend() {
        let (bank, ranked) = ranked_scheduler_ablation(SECS, DEFAULT_SEED);
        assert!(bank < 0.35, "bank loss {bank:.2}");
        assert!(ranked < 0.35, "ranked loss {ranked:.2}");
    }

    #[test]
    fn all_ablation_axes_run() {
        let (a, b) = init_mode_ablation(30, DEFAULT_SEED);
        let (c, d) = rep_mode_ablation(30, DEFAULT_SEED);
        for v in [a, b, c, d] {
            assert!((0.0..=1.0).contains(&v), "loss fraction out of range: {v}");
        }
    }
}
