//! Figure 8: threshold-configuration sensitivity (paper §7.2.3).
//!
//! Jaqen's simplest defense (the 5-tuple heavy hitter) depends on two
//! parameters: the packet-count threshold and the periodicity at which it
//! is checked (= the sketch inter-reset time). Both are swept over a
//! single-flow UDP flood on CAIDA-like background, against the FIFO and
//! ACC-Turbo horizontal lines.
//!
//! Expected shape: (a) low thresholds false-positive on benign flows
//! (worse than no defense), high thresholds never fire (FIFO-like), and
//! the sweet spot is narrow; (b) a threshold tuned for one reset period
//! performs badly at another — the low threshold degrades as the window
//! grows (benign counts accumulate), the high threshold only starts
//! working once the window is long enough for the attack to reach it.
//! ACC-Turbo has no threshold at all and sits flat.
//!
//! Axis note: packet counts scale with the 1/1000 rate scaling
//! (DESIGN.md §4); the paper's 10^4–10^7 packet thresholds correspond to
//! 10–10^4 here.

use crate::common::Scale;
use crate::result::FigureResult;
use crate::spec::{DefenseSpec, JaqenSpec, ScenarioSpec, WorkloadSpec};
use crate::table3::{cell, Defense, Variation};
use crate::Figure;
use accturbo_jaqen::Signature;
use accturbo_netsim::SimDuration;
use accturbo_telemetry::f;
use std::fmt::Write as _;

/// The canonical workload seed — Fig. 8 sweeps run on Table 3's
/// single-flow workload, so they share its seed.
pub const DEFAULT_SEED: u64 = crate::table3::DEFAULT_SEED;

/// Runs Jaqen(5-tuple) with `threshold` and `window` on the single-flow
/// workload, returning the benign-drop percentage.
pub fn jaqen_pct(threshold: u64, window: SimDuration, secs: u64, seed: u64) -> f64 {
    let spec = JaqenSpec::new(Signature::FiveTuple, threshold).with_window(window);
    ScenarioSpec::new(
        WorkloadSpec::Flood(Variation::SingleFlow),
        DefenseSpec::Jaqen(spec),
    )
    .with_secs(secs)
    .with_seed(seed)
    .execute()
    .result
    .stats
    .benign_drop_pct()
}

/// Regenerates Fig. 8 at `seed`, returning the rendered report and its
/// machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let secs = scale.secs(100, 5);
    let mut out = String::new();
    let mut r = FigureResult::new("fig8");

    let fifo = cell(Defense::Fifo, Variation::SingleFlow, secs, seed);
    let turbo = cell(Defense::AccTurbo, Variation::SingleFlow, secs, seed);
    r.num("fifo_benign_drop_pct", fifo);
    r.num("accturbo_benign_drop_pct", turbo);

    let _ = writeln!(
        &mut out,
        "# Fig. 8a: benign drops vs dropping threshold (packets/window)"
    );
    let _ = writeln!(&mut out, "threshold,jaqen,accturbo,fifo");
    let thresholds: &[u64] = match scale {
        Scale::Full => &[
            1, 10, 100, 500, 1_000, 3_000, 5_000, 7_000, 10_000, 100_000, 1_000_000,
        ],
        Scale::Quick => &[10, 1_000, 100_000],
    };
    for &th in thresholds {
        let pct = jaqen_pct(th, SimDuration::from_secs(1), secs, seed);
        r.num(&format!("a.th{th}.jaqen_benign_drop_pct"), pct);
        let _ = writeln!(&mut out, "{th},{},{},{}", f(pct), f(turbo), f(fifo));
    }

    let _ = writeln!(
        &mut out,
        "# Fig. 8b: benign drops vs sketch inter-reset time (s)"
    );
    let _ = writeln!(
        &mut out,
        "inter_reset_s,jaqen_th_low,jaqen_th_high,accturbo,fifo"
    );
    let (th_low, th_high) = (2_000u64, 100_000u64);
    let resets: &[u64] = match scale {
        Scale::Full => &[1, 2, 5, 10, 15, 20],
        Scale::Quick => &[1, 10],
    };
    for &rs in resets {
        let low = jaqen_pct(th_low, SimDuration::from_secs(rs), secs, seed);
        let high = jaqen_pct(th_high, SimDuration::from_secs(rs), secs, seed);
        r.num(&format!("b.reset{rs}.jaqen_th_low_pct"), low);
        r.num(&format!("b.reset{rs}.jaqen_th_high_pct"), high);
        let _ = writeln!(
            &mut out,
            "{rs},{},{},{},{}",
            f(low),
            f(high),
            f(turbo),
            f(fifo)
        );
    }
    Figure::new(out, r)
}

/// Regenerates Fig. 8 at the canonical seed and returns the textual
/// report.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECS: u64 = 60;

    #[test]
    fn tiny_thresholds_false_positive_on_benign_flows() {
        // Threshold 10: every benign flow sustaining 10 pkts/s for two
        // windows gets a drop rule — heavy false positives even though
        // there is no congestion at all outside the attack.
        let pct = jaqen_pct(10, SimDuration::from_secs(1), SECS, DEFAULT_SEED);
        let tuned = jaqen_pct(2_000, SimDuration::from_secs(1), SECS, DEFAULT_SEED);
        assert!(
            pct > 3.0 * tuned && pct > 10.0,
            "threshold 10 dropped {pct:.1}% vs tuned {tuned:.1}%"
        );
    }

    #[test]
    fn huge_thresholds_never_fire() {
        // Threshold 1M/window: the attack (≈10.7k pps) never reaches it,
        // so Jaqen behaves like FIFO.
        let fifo = cell(Defense::Fifo, Variation::SingleFlow, SECS, DEFAULT_SEED);
        let pct = jaqen_pct(1_000_000, SimDuration::from_secs(1), SECS, DEFAULT_SEED);
        assert!(
            (pct - fifo).abs() < 5.0,
            "no detection should look like FIFO: {pct:.1} vs {fifo:.1}"
        );
    }

    #[test]
    fn a_tuned_threshold_wins_and_the_sweet_spot_is_narrow() {
        let tuned = jaqen_pct(2_000, SimDuration::from_secs(1), SECS, DEFAULT_SEED);
        assert!(tuned < 15.0, "tuned threshold: {tuned:.1}%");
        let low = jaqen_pct(10, SimDuration::from_secs(1), SECS, DEFAULT_SEED);
        let high = jaqen_pct(1_000_000, SimDuration::from_secs(1), SECS, DEFAULT_SEED);
        assert!(low > 3.0 * tuned, "low threshold must be much worse");
        assert!(high > tuned + 30.0, "high threshold must be much worse");
    }

    #[test]
    fn threshold_quality_depends_on_the_reset_period() {
        // The high threshold fails at 1 s windows but works at 15 s
        // windows (counts accumulate); crossing behaviour per Fig. 8b.
        let high_short = jaqen_pct(100_000, SimDuration::from_secs(1), SECS, DEFAULT_SEED);
        let high_long = jaqen_pct(100_000, SimDuration::from_secs(15), SECS, DEFAULT_SEED);
        assert!(
            high_long < high_short - 20.0,
            "long windows must rescue the high threshold: {high_short:.1} -> {high_long:.1}"
        );
    }

    #[test]
    fn accturbo_sits_below_any_mistuned_jaqen() {
        let turbo = cell(Defense::AccTurbo, Variation::SingleFlow, SECS, DEFAULT_SEED);
        let mistuned_low = jaqen_pct(10, SimDuration::from_secs(1), SECS, DEFAULT_SEED);
        let mistuned_high = jaqen_pct(1_000_000, SimDuration::from_secs(1), SECS, DEFAULT_SEED);
        assert!(turbo < mistuned_low && turbo < mistuned_high);
    }
}
