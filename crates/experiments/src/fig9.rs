//! Figure 9: clustering performance by attack type and feature (§8.1).
//!
//! The CICDDoS-2019-like attack day is clustered with the simulation
//! profile (10 clusters) and scored with the windowed purity/recall
//! protocol:
//!
//! * (a) purity per attack vector, split into reflection-based and
//!   exploitation-based vectors. Expected: all ≥ ~87%; reflection beats
//!   exploitation on average; high-variance vectors (MSSQL, SSDP) are the
//!   weakest reflectors.
//! * (b) clustering quality per *single* feature. Expected: addresses and
//!   source port are strong identifiers; protocol is almost useless
//!   (attacks and benign traffic share it).

use accturbo_clustering::{
    ClusteringConfig, Feature, FeatureSet, FeatureSpec, OnlineClusterer, QualitySummary,
    WindowedEval,
};
use accturbo_netsim::{PacketSource, SimDuration};
use accturbo_telemetry::f;
use accturbo_traffic::{AttackVector, CicDdosConfig};
use std::fmt::Write as _;

use crate::common::Scale;
use crate::result::FigureResult;
use crate::Figure;

/// The evaluation window width. The paper uses one minute on a day-long
/// trace; our time-compressed day uses windows matching the episode
/// length so each window sees one attack plus background.
const EVAL_WINDOW: SimDuration = SimDuration::from_secs(4);
/// The control-plane window at which clusters are polled and re-seeded.
const POLL: SimDuration = SimDuration::from_millis(50);
/// The canonical workload seed (the CICDDoS-like day's default).
pub const DEFAULT_SEED: u64 = 0xC1C;

fn day_config(vectors: Vec<AttackVector>, scale: Scale, seed: u64) -> CicDdosConfig {
    let mut cfg = CicDdosConfig {
        vectors,
        seed,
        ..CicDdosConfig::default()
    };
    if scale == Scale::Quick {
        cfg.episode = SimDuration::from_secs(2);
        cfg.gap = SimDuration::from_secs(1);
        cfg.background_bps /= 2;
        cfg.attack_bps /= 2;
    }
    cfg
}

/// Clusters the traffic of `cfg` with `clustering` and returns the
/// windowed quality summary. This drives the clustering engine directly —
/// inference quality is independent of the queueing — while reproducing
/// the switch's control-loop (poll + re-seed every `POLL`).
pub fn cluster_quality(cfg: CicDdosConfig, clustering: ClusteringConfig) -> QualitySummary {
    let mut source = cfg.into_source();
    let mut clusterer = OnlineClusterer::new(clustering);
    let mut eval = WindowedEval::new(EVAL_WINDOW);
    let mut next_poll = POLL;
    while let Some(pkt) = source.next_packet() {
        while pkt.arrival.as_nanos() >= next_poll.as_nanos() {
            clusterer.take_window();
            clusterer.reset_clusters();
            next_poll += POLL;
        }
        let cluster = clusterer.assign(&pkt);
        eval.record(pkt.arrival, cluster, pkt.class);
    }
    eval.finish()
}

/// Purity for a single attack vector over background (one-vector day).
pub fn vector_purity(vector: AttackVector, scale: Scale, seed: u64) -> QualitySummary {
    let cfg = day_config(vec![vector], scale, seed);
    let clustering = ClusteringConfig::deployable(10, FeatureSet::simulation_default());
    cluster_quality(cfg, clustering)
}

/// Quality when clustering on one single feature (Fig. 9b).
pub fn single_feature_quality(feature: Feature, scale: Scale, seed: u64) -> QualitySummary {
    let cfg = day_config(AttackVector::ALL.to_vec(), scale, seed);
    let clustering =
        ClusteringConfig::deployable(10, FeatureSet::new(vec![FeatureSpec::ordinal(feature)]));
    cluster_quality(cfg, clustering)
}

/// The features of Fig. 9b, in the paper's order.
pub const FIG9B_FEATURES: [Feature; 9] = [
    Feature::DstIp,
    Feature::SrcIp,
    Feature::SrcPort,
    Feature::DstPort,
    Feature::Ttl,
    Feature::IpLen,
    Feature::FragOffset,
    Feature::IpId,
    Feature::Proto,
];

/// Regenerates Fig. 9 at `seed`, returning the rendered report and its
/// machine-readable result.
pub fn figure(scale: Scale, seed: u64) -> Figure {
    let mut out = String::new();
    let mut r = FigureResult::new("fig9");
    let _ = writeln!(&mut out, "# Fig. 9a: purity by attack vector");
    let _ = writeln!(&mut out, "vector,kind,purity_pct");
    let vectors: &[AttackVector] = match scale {
        Scale::Full => &AttackVector::ALL,
        Scale::Quick => &[AttackVector::Ntp, AttackVector::UdpFlood],
    };
    for &v in vectors {
        let q = vector_purity(v, scale, seed);
        let kind = if v.is_reflection() {
            "reflection"
        } else {
            "exploitation"
        };
        r.num(&format!("a.{}.purity_pct", v.name()), q.purity);
        let _ = writeln!(&mut out, "{},{},{}", v.name(), kind, f(q.purity));
    }

    if scale == Scale::Full {
        let _ = writeln!(
            &mut out,
            "# Fig. 9a extension: vectors beyond CICDDoS-2019 (Memcached, LDAP, ACK, ICMP)"
        );
        let _ = writeln!(&mut out, "vector,kind,purity_pct");
        for v in [
            AttackVector::Memcached,
            AttackVector::Ldap,
            AttackVector::AckFlood,
            AttackVector::IcmpFlood,
        ] {
            let q = vector_purity(v, scale, seed);
            let kind = if v.is_reflection() {
                "reflection"
            } else {
                "exploitation"
            };
            r.num(&format!("a_ext.{}.purity_pct", v.name()), q.purity);
            let _ = writeln!(&mut out, "{},{},{}", v.name(), kind, f(q.purity));
        }
    }

    let _ = writeln!(&mut out, "# Fig. 9b: clustering quality per feature");
    let _ = writeln!(
        &mut out,
        "feature,purity_pct,recall_benign_pct,recall_malicious_pct"
    );
    let features: &[Feature] = match scale {
        Scale::Full => &FIG9B_FEATURES,
        Scale::Quick => &[Feature::DstIp, Feature::Proto],
    };
    for &feat in features {
        let q = single_feature_quality(feat, scale, seed);
        r.num(&format!("b.{}.purity_pct", feat.name()), q.purity);
        r.num(
            &format!("b.{}.recall_benign_pct", feat.name()),
            q.recall_benign,
        );
        r.num(
            &format!("b.{}.recall_malicious_pct", feat.name()),
            q.recall_malicious,
        );
        let _ = writeln!(
            &mut out,
            "{},{},{},{}",
            feat.name(),
            f(q.purity),
            f(q.recall_benign),
            f(q.recall_malicious)
        );
    }
    Figure::new(out, r)
}

/// Regenerates Fig. 9 at the canonical seed and returns the textual
/// report.
pub fn report(scale: Scale) -> String {
    figure(scale, DEFAULT_SEED).rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_vectors_cluster_with_high_purity() {
        let mut failures = Vec::new();
        for v in AttackVector::ALL {
            let q = vector_purity(v, Scale::Full, DEFAULT_SEED);
            // Paper: ≥87% everywhere. Our exploitation floods randomize
            // more fields than the CICDDoS-2019 tools did, so we allow
            // them a slightly lower floor (see EXPERIMENTS.md); the plain
            // UDP flood randomizes the whole 4-tuple and sits lowest
            // (≈74%). MSSQL and SSDP are the paper's two weakest
            // reflectors (high source-port variance) and sit a couple of
            // points below the rest here too.
            let floor = if matches!(v, AttackVector::Mssql | AttackVector::Ssdp) {
                82.0
            } else if v.is_reflection() {
                85.0
            } else {
                72.0
            };
            println!("{}: purity {:.1}% (floor {floor}%)", v.name(), q.purity);
            if q.purity <= floor {
                failures.push(format!(
                    "{}: purity {:.1}% (floor {floor}%)",
                    v.name(),
                    q.purity
                ));
            }
            assert!(q.windows > 0, "{}: no mixed windows scored", v.name());
        }
        assert!(failures.is_empty(), "purity floors violated: {failures:?}");
    }

    #[test]
    fn mssql_and_ssdp_are_the_weakest_reflectors() {
        // The paper singles out MSSQL and SSDP (high source-port
        // variance) as the worst-performing reflection vectors.
        let purities: Vec<(AttackVector, f64)> = AttackVector::ALL
            .into_iter()
            .filter(|v| v.is_reflection())
            .map(|v| (v, vector_purity(v, Scale::Full, DEFAULT_SEED).purity))
            .collect();
        let mssql = purities
            .iter()
            .find(|(v, _)| *v == AttackVector::Mssql)
            .expect("present")
            .1;
        let ssdp = purities
            .iter()
            .find(|(v, _)| *v == AttackVector::Ssdp)
            .expect("present")
            .1;
        for (v, p) in &purities {
            if !matches!(v, AttackVector::Mssql | AttackVector::Ssdp) {
                assert!(
                    *p > mssql.min(ssdp),
                    "{} ({p:.1}%) should beat MSSQL/SSDP",
                    v.name()
                );
            }
        }
    }

    #[test]
    fn reflection_beats_exploitation_on_average() {
        let mean = |vectors: Vec<AttackVector>| -> f64 {
            let n = vectors.len() as f64;
            vectors
                .into_iter()
                .map(|v| vector_purity(v, Scale::Full, DEFAULT_SEED).purity)
                .sum::<f64>()
                / n
        };
        let reflection = mean(
            AttackVector::ALL
                .into_iter()
                .filter(|v| v.is_reflection())
                .collect(),
        );
        let exploitation = mean(
            AttackVector::ALL
                .into_iter()
                .filter(|v| !v.is_reflection())
                .collect(),
        );
        assert!(
            reflection > exploitation,
            "reflection {reflection:.1}% vs exploitation {exploitation:.1}% (paper: +5.4%)"
        );
    }

    #[test]
    fn addresses_are_strong_identifiers_protocol_is_not() {
        // Purity alone is insensitive for coarse features (a
        // majority-malicious catch-all cluster still scores well when the
        // attack dominates packet counts); benign recall exposes it —
        // with only the IP protocol, benign TCP shares its cluster with
        // the SYN flood and benign UDP with every UDP vector.
        let daddr = single_feature_quality(Feature::DstIp, Scale::Full, DEFAULT_SEED);
        let proto = single_feature_quality(Feature::Proto, Scale::Full, DEFAULT_SEED);
        assert!(
            daddr.recall_benign > proto.recall_benign + 5.0,
            "daddr benign recall {:.1}% vs proto {:.1}%",
            daddr.recall_benign,
            proto.recall_benign
        );
        assert!(daddr.purity > 85.0, "daddr purity {:.1}%", daddr.purity);
    }
}
