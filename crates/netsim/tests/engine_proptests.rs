//! Property tests for the engine event loop (the regression guard for
//! the `EventCalendar` refactor): across randomized interleavings of
//! arrivals, transmissions and control ticks,
//!
//! 1. events are processed in non-decreasing `SimTime` order,
//! 2. packet conservation holds exactly,
//! 3. the old `SimTime::MAX` sentinel paths never elect a phantom event —
//!    a drained simulation is never kept alive by its own control plane,
//! 4. (with the `reference` feature) the calendar loop is
//!    result-identical to the original min-scan loop.

use accturbo_netsim::engine::{run, EngineConfig};
use accturbo_netsim::{
    Bandwidth, Dropped, FifoQueue, Packet, SimDuration, SimTime, SingleQueueSwitch, Switch,
    VecSource,
};
use accturbo_prng::{Rng, SeedableRng, StdRng};

/// Wraps the single-queue switch and records every datapath callback the
/// engine makes, with its timestamp.
struct RecordingSwitch {
    inner: SingleQueueSwitch<FifoQueue>,
    events: Vec<(&'static str, SimTime)>,
}

impl RecordingSwitch {
    fn new(cap_bytes: u64) -> Self {
        RecordingSwitch {
            inner: SingleQueueSwitch::new(FifoQueue::new(cap_bytes)),
            events: Vec::new(),
        }
    }
}

impl Switch for RecordingSwitch {
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        self.events.push(("arrival", now));
        self.inner.ingress(pkt, now, drops);
    }
    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let pkt = self.inner.dequeue(now);
        if pkt.is_some() {
            self.events.push(("tx_start", now));
        }
        pkt
    }
    fn backlog_pkts(&self) -> usize {
        self.inner.backlog_pkts()
    }
    fn control_tick(&mut self, now: SimTime) {
        self.events.push(("control", now));
    }
}

/// A randomized workload: bursty arrivals with random gaps and sizes.
fn random_packets(rng: &mut StdRng) -> Vec<Packet> {
    let n = rng.gen_range(0..400u32);
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            // Mix dense bursts (likely simultaneous with tx completions)
            // with idle gaps (forcing drain/restart of the link).
            t += match rng.gen_range(0..3u32) {
                0 => 0,
                1 => rng.gen_range(1..200u64),
                _ => rng.gen_range(10_000..200_000u64),
            };
            Packet::new(SimTime::from_nanos(t)).with_size(rng.gen_range(64..1500u32))
        })
        .collect()
}

fn random_config(rng: &mut StdRng) -> EngineConfig {
    let mut cfg = EngineConfig::new(Bandwidth::from_mbps(rng.gen_range(1..100u64)))
        .with_stats_interval(SimDuration::from_millis(rng.gen_range(1..50u64)));
    if rng.gen_bool(0.7) {
        cfg = cfg.with_control_period(SimDuration::from_micros(rng.gen_range(50..5_000u64)));
    }
    if rng.gen_bool(0.3) {
        cfg = cfg.with_end_time(SimTime::from_micros(rng.gen_range(100..50_000u64)));
    }
    cfg
}

#[test]
fn events_fire_in_nondecreasing_time_order_with_conservation() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(0xE4E7 ^ seed);
        let packets = random_packets(&mut rng);
        let cfg = random_config(&mut rng);
        let mut src = VecSource::new(packets);
        let mut sw = RecordingSwitch::new(rng.gen_range(2_000..50_000u64));
        let res = run(&mut src, &mut sw, &cfg);

        for w in sw.events.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "seed {seed}: {:?} fired before {:?}",
                w[1],
                w[0]
            );
        }
        assert_eq!(
            res.arrivals,
            res.departures + res.drops,
            "seed {seed}: conservation"
        );
        let arrivals_seen = sw.events.iter().filter(|(k, _)| *k == "arrival").count() as u64;
        assert_eq!(
            arrivals_seen, res.arrivals,
            "seed {seed}: every arrival hit ingress"
        );
        let tx_started = sw.events.iter().filter(|(k, _)| *k == "tx_start").count() as u64;
        assert_eq!(
            tx_started, res.departures,
            "seed {seed}: every tx completed"
        );
    }
}

#[test]
fn control_ticks_never_fire_without_work() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(0xC011 ^ seed);
        let packets = random_packets(&mut rng);
        let cfg = random_config(&mut rng);
        let period = cfg.control_period;
        let mut src = VecSource::new(packets);
        let mut sw = RecordingSwitch::new(rng.gen_range(2_000..50_000u64));
        let res = run(&mut src, &mut sw, &cfg);

        let ticks: Vec<SimTime> = sw
            .events
            .iter()
            .filter(|(k, _)| *k == "control")
            .map(|&(_, t)| t)
            .collect();
        if res.arrivals == 0 {
            assert!(
                ticks.is_empty(),
                "seed {seed}: phantom ticks in an empty run"
            );
            assert_eq!(
                res.final_time,
                SimTime::ZERO,
                "seed {seed}: empty run has no events"
            );
            continue;
        }
        // Ticks only fire while packets are pending, queued or in flight,
        // so none can land after the final event of the run...
        for &t in &ticks {
            assert!(
                t <= res.final_time,
                "seed {seed}: tick at {t:?} after drain"
            );
        }
        // ...and the tick count is bounded by the drained timespan (no
        // tick storm past the workload either).
        if let Some(p) = period {
            let max_ticks = res.final_time.as_nanos() / p.as_nanos() + 1;
            assert!(
                (ticks.len() as u64) <= max_ticks,
                "seed {seed}: {} ticks in {:?}",
                ticks.len(),
                res.final_time
            );
        } else {
            assert!(ticks.is_empty(), "seed {seed}: ticks without a period");
        }
    }
}

/// Differential: the calendar loop must be result-identical to the
/// original sentinel min-scan loop on randomized workloads.
#[cfg(feature = "reference")]
#[test]
fn calendar_loop_matches_reference_loop() {
    use accturbo_netsim::engine::reference::run_reference;
    use accturbo_netsim::ClassId;

    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(0xD1FF ^ seed);
        let packets = random_packets(&mut rng);
        let cfg = random_config(&mut rng);
        let cap = rng.gen_range(2_000..50_000u64);

        let mut src_a = VecSource::new(packets.clone());
        let mut sw_a = SingleQueueSwitch::new(FifoQueue::new(cap));
        let a = run(&mut src_a, &mut sw_a, &cfg);

        let mut src_b = VecSource::new(packets);
        let mut sw_b = SingleQueueSwitch::new(FifoQueue::new(cap));
        let b = run_reference(&mut src_b, &mut sw_b, &cfg);

        assert_eq!(a.arrivals, b.arrivals, "seed {seed}");
        assert_eq!(a.departures, b.departures, "seed {seed}");
        assert_eq!(a.drops, b.drops, "seed {seed}");
        assert_eq!(a.final_time, b.final_time, "seed {seed}");
        for p in [25.0, 50.0, 99.0, 100.0] {
            assert_eq!(
                a.delays.percentile(ClassId::BENIGN, p),
                b.delays.percentile(ClassId::BENIGN, p),
                "seed {seed}: p{p} delay"
            );
        }
        assert_eq!(
            a.stats.total_departed(ClassId::BENIGN),
            b.stats.total_departed(ClassId::BENIGN),
            "seed {seed}"
        );
    }
}
