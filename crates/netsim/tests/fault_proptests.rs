//! Property tests for the fault-injection layer (DESIGN.md §9):
//!
//! 1. a fault schedule is a pure function of its seed — the same seed
//!    reproduces the same fault event stream bit-for-bit, different
//!    seeds diverge;
//! 2. the per-concern decision streams are isolated — turning one fault
//!    class off never shifts another class's decisions;
//! 3. packet conservation holds under arbitrary drop/reorder/flap
//!    schedules: every packet pulled from the wrapped source is either
//!    delivered, dropped by the switch, or corrupt-dropped by the fault
//!    plane, and the faulted stream stays time-ordered;
//! 4. the full engine under control-plane faults is deterministic: two
//!    identical runs see identical tick/missed sequences and identical
//!    packet accounting.

use accturbo_netsim::engine::EngineConfig;
use accturbo_netsim::{
    run_with_faults, Bandwidth, ControlAction, Dropped, FaultConfig, FaultInjector, FaultSchedule,
    FaultedSource, FifoQueue, Packet, PacketSource, PktFate, SimDuration, SimTime,
    SingleQueueSwitch, Switch, VecSource,
};
use accturbo_obs::NoopTracer;
use accturbo_prng::{Rng, SeedableRng, StdRng};

/// A randomized fault mix: every probability in [0, 1) independently,
/// with shapes kept in sane ranges.
fn random_fault_config(rng: &mut StdRng, seed: u64) -> FaultConfig {
    FaultConfig {
        ctrl_drop: rng.gen_range(0.0..1.0),
        ctrl_delay: rng.gen_range(0.0..1.0),
        ctrl_delay_max: SimDuration::from_micros(rng.gen_range(1..100_000u64)),
        stale_snapshot: rng.gen_range(0.0..1.0),
        pkt_drop: rng.gen_range(0.0..1.0),
        pkt_reorder: rng.gen_range(0.0..1.0),
        pkt_jitter_max: SimDuration::from_micros(rng.gen_range(1..10_000u64)),
        link_flap: rng.gen_range(0.0..1.0),
        link_derate: rng.gen_range(0.05..1.0),
        flap_period: SimDuration::from_micros(rng.gen_range(100..1_000_000u64)),
        ..FaultConfig::none(seed)
    }
}

/// Drives a schedule through a scripted mix of decision points (the same
/// script for every schedule built from the same meta-seed).
fn drive(schedule: &mut FaultSchedule, script_seed: u64, steps: u32) {
    let mut rng = StdRng::seed_from_u64(script_seed);
    let mut t = 0u64;
    for _ in 0..steps {
        t += rng.gen_range(1..500_000u64);
        let now = SimTime::from_nanos(t);
        match rng.gen_range(0..4u32) {
            0 => {
                let _ = schedule.control_action(now, &mut NoopTracer);
            }
            1 => {
                let _ = schedule.stale_snapshot(now, &mut NoopTracer);
            }
            2 => {
                let _ = schedule.pkt_fate(now, &mut NoopTracer);
            }
            _ => {
                let _ = schedule.link_scale(now, &mut NoopTracer);
            }
        }
    }
}

/// Same seed ⇒ identical fault logs and counters; different seed ⇒ the
/// streams diverge (checked over many randomized configs).
#[test]
fn fault_streams_are_a_pure_function_of_the_seed() {
    let mut meta = StdRng::seed_from_u64(0xDE7E_2217);
    for case in 0..30u64 {
        let cfg = random_fault_config(&mut meta, 1000 + case);
        let mut a = FaultSchedule::new(cfg.clone());
        let mut b = FaultSchedule::new(cfg.clone());
        a.enable_log();
        b.enable_log();
        drive(&mut a, case, 2_000);
        drive(&mut b, case, 2_000);
        let log_a = a.take_log();
        assert_eq!(a.stats(), b.stats(), "case {case}: stats diverged");
        assert_eq!(log_a, b.take_log(), "case {case}: logs diverged");

        // A re-seeded schedule must not reproduce the original stream (a
        // collision over 2 000 decision points is astronomically unlikely
        // for any non-noop config).
        let mut c = FaultSchedule::new(FaultConfig {
            seed: 999_000 + case,
            ..cfg
        });
        c.enable_log();
        drive(&mut c, case, 2_000);
        if !log_a.is_empty() {
            assert_ne!(
                log_a,
                c.take_log(),
                "case {case}: different seeds produced identical streams"
            );
        }
    }
}

/// Turning the control-fault knobs off must not shift the packet-fate
/// stream (and vice versa): the per-concern streams are isolated.
#[test]
fn per_concern_streams_are_isolated() {
    let full = FaultConfig {
        ctrl_drop: 0.5,
        ctrl_delay: 0.5,
        stale_snapshot: 0.5,
        pkt_drop: 0.3,
        pkt_reorder: 0.3,
        ..FaultConfig::none(77)
    };
    let pkt_only = FaultConfig {
        ctrl_drop: 0.0,
        ctrl_delay: 0.0,
        stale_snapshot: 0.0,
        ..full.clone()
    };
    let mut with_ctrl = FaultSchedule::new(full);
    let mut without_ctrl = FaultSchedule::new(pkt_only);
    for i in 0..5_000u64 {
        let now = SimTime::from_micros(i * 50);
        // Interleave: the full schedule burns control randomness between
        // packet decisions, the pkt-only schedule does not.
        let _ = with_ctrl.control_action(now, &mut NoopTracer);
        let _ = with_ctrl.stale_snapshot(now, &mut NoopTracer);
        let a = with_ctrl.pkt_fate(now, &mut NoopTracer);
        let _ = without_ctrl.control_action(now, &mut NoopTracer);
        let _ = without_ctrl.stale_snapshot(now, &mut NoopTracer);
        let b = without_ctrl.pkt_fate(now, &mut NoopTracer);
        assert_eq!(a, b, "packet fate shifted at step {i}");
    }
    assert!(with_ctrl.stats().ctrl_dropped > 0);
    assert_eq!(without_ctrl.stats().ctrl_dropped, 0);
    assert_eq!(
        with_ctrl.stats().pkt_dropped,
        without_ctrl.stats().pkt_dropped
    );
}

/// A randomized workload for the conservation tests.
fn random_packets(rng: &mut StdRng, n: u32) -> Vec<Packet> {
    let mut t = 0u64;
    (0..n)
        .map(|_| {
            t += rng.gen_range(1..100_000u64);
            Packet::new(SimTime::from_nanos(t)).with_size(rng.gen_range(64..1500u32))
        })
        .collect()
}

/// Source-level conservation: injected = emitted + corrupt-dropped, and
/// the emitted stream is nondecreasing in time, under arbitrary fault
/// mixes.
#[test]
fn faulted_source_conserves_packets_under_random_schedules() {
    let mut meta = StdRng::seed_from_u64(0xC0_15_EE);
    for case in 0..40u64 {
        let cfg = random_fault_config(&mut meta, case);
        let n = meta.gen_range(0..3_000u32);
        let pkts = random_packets(&mut meta, n);
        let inj = FaultInjector::new(FaultSchedule::new(cfg));
        let mut src = FaultedSource::new(VecSource::new(pkts), inj.clone());
        let mut emitted = 0u64;
        let mut last = SimTime::ZERO;
        while let Some(p) = src.next_packet() {
            assert!(
                p.arrival >= last,
                "case {case}: faulted stream went back in time"
            );
            last = p.arrival;
            emitted += 1;
        }
        assert_eq!(src.injected(), n as u64, "case {case}");
        assert_eq!(
            emitted + inj.stats().pkt_dropped,
            n as u64,
            "case {case}: injected != emitted + corrupt-dropped"
        );
    }
}

/// Wraps the single-queue switch and records every control-plane
/// callback, so two runs can be compared tick-for-tick.
struct TickRecorder {
    inner: SingleQueueSwitch<FifoQueue>,
    ticks: Vec<(&'static str, u64)>,
}

impl TickRecorder {
    fn new() -> Self {
        TickRecorder {
            inner: SingleQueueSwitch::new(FifoQueue::new(64 * 1024)),
            ticks: Vec::new(),
        }
    }
}

impl Switch for TickRecorder {
    fn ingress(&mut self, pkt: Packet, now: SimTime, drops: &mut Vec<Dropped>) {
        self.inner.ingress(pkt, now, drops);
    }
    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.inner.dequeue(now)
    }
    fn backlog_pkts(&self) -> usize {
        self.inner.backlog_pkts()
    }
    fn control_tick(&mut self, now: SimTime) {
        self.ticks.push(("tick", now.as_nanos()));
    }
    fn control_missed(&mut self, now: SimTime) {
        self.ticks.push(("missed", now.as_nanos()));
    }
}

/// End-to-end conservation and determinism through the engine: with
/// drops, reordering, flaps and control faults all active, the run
/// drains completely (injected = departures + switch drops + fault
/// drops), and two identical runs agree on every control-plane event
/// and every counter.
#[test]
fn engine_under_faults_conserves_packets_and_is_deterministic() {
    let mut meta = StdRng::seed_from_u64(0xE2E_FA17);
    for case in 0..15u64 {
        let fc = random_fault_config(&mut meta, 31 + case);
        let n = meta.gen_range(100..2_000u32);
        let pkts = random_packets(&mut meta, n);

        let one_run = |fc: FaultConfig, pkts: Vec<Packet>| {
            let inj = FaultInjector::new(FaultSchedule::new(fc));
            let mut src = FaultedSource::new(VecSource::new(pkts), inj.clone());
            let mut sw = TickRecorder::new();
            let cfg = EngineConfig::new(Bandwidth::from_mbps(50))
                .with_stats_interval(SimDuration::from_millis(10))
                .with_control_period(SimDuration::from_micros(500));
            let res = run_with_faults(&mut src, &mut sw, &cfg, &mut NoopTracer, None, Some(&inj));
            (
                res.arrivals,
                res.departures,
                res.drops,
                inj.stats(),
                sw.ticks,
                sw.inner.backlog_pkts(),
            )
        };

        let a = one_run(fc.clone(), pkts.clone());
        let b = one_run(fc, pkts);
        assert_eq!(a, b, "case {case}: identical runs diverged");

        let (arrivals, departures, drops, stats, ticks, backlog) = a;
        assert_eq!(backlog, 0, "case {case}: run did not drain");
        assert_eq!(
            arrivals + stats.pkt_dropped,
            n as u64,
            "case {case}: fault drops + switch arrivals != injected"
        );
        assert_eq!(
            departures + drops,
            arrivals,
            "case {case}: packet conservation through the switch"
        );
        // Suppressed ticks surface as `missed` callbacks, 1:1.
        let missed = ticks.iter().filter(|(k, _)| *k == "missed").count() as u64;
        assert_eq!(missed, stats.ctrl_dropped, "case {case}");
    }
}

/// A delayed control tick is late, never lost: with delay as the only
/// fault, every scheduled tick still runs exactly once, strictly after
/// its nominal time when delayed.
#[test]
fn delayed_control_ticks_run_exactly_once() {
    let fc = FaultConfig {
        ctrl_delay: 0.8,
        ctrl_delay_max: SimDuration::from_micros(300),
        ..FaultConfig::none(4242)
    };
    let inj = FaultInjector::new(FaultSchedule::new(fc));
    let mut rng = StdRng::seed_from_u64(9);
    let mut src = FaultedSource::new(VecSource::new(random_packets(&mut rng, 800)), inj.clone());
    let mut sw = TickRecorder::new();
    let cfg = EngineConfig::new(Bandwidth::from_mbps(50))
        .with_stats_interval(SimDuration::from_millis(10))
        .with_control_period(SimDuration::from_micros(500));
    run_with_faults(&mut src, &mut sw, &cfg, &mut NoopTracer, None, Some(&inj));
    let stats = inj.stats();
    assert!(stats.ctrl_delayed > 0, "delay prob 0.8 must bite");
    assert_eq!(stats.ctrl_dropped, 0);
    assert!(
        sw.ticks.iter().all(|(k, _)| *k == "tick"),
        "no tick may be reported missed under delay-only faults"
    );
    // Tick times stay strictly increasing even when individual ticks
    // slip past their nominal period boundary.
    for w in sw.ticks.windows(2) {
        assert!(w[0].1 < w[1].1, "tick order violated: {:?}", sw.ticks);
    }
}

/// The decision API itself never panics across the whole configuration
/// space, including the degenerate corners (all-zero, all-one).
#[test]
fn fault_decisions_never_panic_at_config_corners() {
    for intensity in [0.0, 1.0] {
        let mut s = FaultSchedule::new(FaultConfig::uniform(intensity, 1));
        for i in 0..1_000u64 {
            let now = SimTime::from_micros(i * 37);
            match s.control_action(now, &mut NoopTracer) {
                ControlAction::Run | ControlAction::Skip => {}
                ControlAction::Delay(d) => assert!(d.as_nanos() > 0),
            }
            let _ = s.stale_snapshot(now, &mut NoopTracer);
            match s.pkt_fate(now, &mut NoopTracer) {
                PktFate::Deliver | PktFate::Drop => {}
                PktFate::Delay(d) => assert!(d.as_nanos() > 0),
            }
            let scale = s.link_scale(now, &mut NoopTracer);
            assert!(scale > 0.0 && scale <= 1.0);
        }
    }
}
