//! Locks down the fast path's "no allocation after warmup" claim: the
//! engine loop reuses its calendar slots and drop buffer, so the number
//! of heap allocations during a run must not scale with the number of
//! packets simulated.
//!
//! This lives in its own integration-test binary because it installs a
//! counting global allocator.

use accturbo_netsim::engine::{run, EngineConfig};
use accturbo_netsim::{
    Bandwidth, FifoQueue, Packet, SimDuration, SimTime, SingleQueueSwitch, VecSource,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count of one engine run over `n` overload packets (workload
/// construction excluded; a wide stats interval keeps the bucket vectors
/// from dominating).
fn allocs_during_run(n: u64) -> u64 {
    let packets: Vec<Packet> = (0..n)
        .map(|i| Packet::new(SimTime::from_nanos(i * 50_000)).with_size(1000))
        .collect();
    let mut src = VecSource::new(packets);
    let mut sw = SingleQueueSwitch::new(FifoQueue::new(20_000));
    let cfg = EngineConfig::new(Bandwidth::from_mbps(20))
        .with_stats_interval(SimDuration::from_secs(10))
        .with_control_period(SimDuration::from_millis(10));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let res = run(&mut src, &mut sw, &cfg);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(res.arrivals, n, "workload must actually run");
    after - before
}

#[test]
fn engine_steady_state_does_not_allocate() {
    // Warm up binary-wide lazies (stdio, etc.) outside the measurement.
    let _ = allocs_during_run(100);
    let small = allocs_during_run(2_000);
    let large = allocs_during_run(8_000);
    // 4x the packets must not mean 4x the allocations: only warmup (stats
    // buckets, drop-buffer growth) may allocate, and that is sublinear.
    assert!(
        large <= small + 64,
        "allocations scale with packet count: {small} allocs for 2k pkts, {large} for 8k"
    );
}
