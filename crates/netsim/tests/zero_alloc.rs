//! Locks down the fast path's "no allocation after warmup" claim: the
//! engine loop reuses its calendar slots and drop buffer, so the number
//! of heap allocations during a run must not scale with the number of
//! packets simulated.
//!
//! This lives in its own integration-test binary because it installs a
//! counting global allocator.

use accturbo_netsim::engine::{run, EngineConfig};
use accturbo_netsim::topology::{run_topology, LinkSpec, Topology, TopologyConfig};
use accturbo_netsim::{
    run_sharded, Bandwidth, FifoQueue, Packet, PacketSource, SimDuration, SimTime,
    SingleQueueSwitch, Switch, VecSource,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the measured sections: the allocation counter is
/// process-global, so concurrent test threads would count into each
/// other's deltas.
static MEASURE: Mutex<()> = Mutex::new(());

/// Allocation count of one engine run over `n` overload packets (workload
/// construction excluded; a wide stats interval keeps the bucket vectors
/// from dominating).
fn allocs_during_run(n: u64) -> u64 {
    let packets: Vec<Packet> = (0..n)
        .map(|i| Packet::new(SimTime::from_nanos(i * 50_000)).with_size(1000))
        .collect();
    let mut src = VecSource::new(packets);
    let mut sw = SingleQueueSwitch::new(FifoQueue::new(20_000));
    let cfg = EngineConfig::new(Bandwidth::from_mbps(20))
        .with_stats_interval(SimDuration::from_secs(10))
        .with_control_period(SimDuration::from_millis(10));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let res = run(&mut src, &mut sw, &cfg);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(res.arrivals, n, "workload must actually run");
    after - before
}

#[test]
fn engine_steady_state_does_not_allocate() {
    let _guard = MEASURE.lock().unwrap();
    // Warm up binary-wide lazies (stdio, etc.) outside the measurement.
    let _ = allocs_during_run(100);
    let small = allocs_during_run(2_000);
    let large = allocs_during_run(8_000);
    // 4x the packets must not mean 4x the allocations: only warmup (stats
    // buckets, drop-buffer growth) may allocate, and that is sublinear.
    assert!(
        large <= small + 64,
        "allocations scale with packet count: {small} allocs for 2k pkts, {large} for 8k"
    );
}

/// Allocation count of one sharded run (4 sources, 4 shards) over `n`
/// total packets. The arena columns, per-shard buffers and window heap
/// all warm up during the first window; after that the only allowed
/// growth is sublinear (stats buckets).
fn allocs_during_sharded_run(n: u64) -> u64 {
    let per_source = (n / 4) as usize;
    let sources: Vec<Box<dyn PacketSource>> = (0..4u64)
        .map(|j| {
            let packets: Vec<Packet> = (0..per_source as u64)
                .map(|i| {
                    let g = i * 4 + j;
                    Packet::new(SimTime::from_nanos(g * 50_000))
                        .with_size(1000)
                        .with_src([10, j as u8, 0, 1].into())
                })
                .collect();
            Box::new(VecSource::new(packets)) as Box<dyn PacketSource>
        })
        .collect();
    let mut sw = SingleQueueSwitch::new(FifoQueue::new(20_000));
    let cfg = EngineConfig::new(Bandwidth::from_mbps(20))
        .with_stats_interval(SimDuration::from_secs(10))
        .with_control_period(SimDuration::from_millis(10));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let res = run_sharded(sources, &mut sw, &cfg, 4);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(res.arrivals, (per_source * 4) as u64, "workload must run");
    after - before
}

#[test]
fn sharded_engine_steady_state_does_not_allocate() {
    let _guard = MEASURE.lock().unwrap();
    let _ = allocs_during_sharded_run(400);
    let small = allocs_during_sharded_run(2_000);
    let large = allocs_during_sharded_run(8_000);
    // The packet arena and window-merge state must reach a fixed point:
    // 4x the packets may not mean 4x the allocations.
    assert!(
        large <= small + 64,
        "sharded datapath allocations scale with packet count: \
         {small} allocs for 2k pkts, {large} for 8k"
    );
}

/// Allocation count of one 2-hop line-topology run over `n` packets.
fn allocs_during_topology_run(n: u64) -> u64 {
    let packets: Vec<Packet> = (0..n)
        .map(|i| Packet::new(SimTime::from_nanos(i * 50_000)).with_size(1000))
        .collect();
    let mut src = VecSource::new(packets);
    let link = LinkSpec::new(Bandwidth::from_mbps(20), SimDuration::from_micros(10));
    let topo = Topology::line(2, link, link);
    let mut switches: Vec<Box<dyn Switch>> = (0..topo.num_nodes())
        .map(|_| Box::new(SingleQueueSwitch::new(FifoQueue::new(20_000))) as Box<dyn Switch>)
        .collect();
    let cfg = TopologyConfig {
        stats_interval: SimDuration::from_secs(10),
        control_period: Some(SimDuration::from_millis(10)),
        end_time: None,
        pushback: None,
    };
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = run_topology(&topo, &mut switches, &mut src, &mut |_| 0, &cfg);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(out.result.arrivals, n, "workload must actually run");
    after - before
}

#[test]
fn topology_engine_steady_state_does_not_allocate() {
    let _guard = MEASURE.lock().unwrap();
    let _ = allocs_during_topology_run(400);
    let small = allocs_during_topology_run(2_000);
    let large = allocs_during_topology_run(8_000);
    // Wires, in-flight slots and the drop buffer are all reused; only
    // warmup growth (stats buckets, buffer capacity) may allocate.
    assert!(
        large <= small + 64,
        "topology engine allocations scale with packet count: \
         {small} allocs for 2k pkts, {large} for 8k"
    );
}
