//! Property-based tests for the simulator substrate's core invariants.

use accturbo_netsim::{
    Bandwidth, ClassId, EngineConfig, FifoQueue, Packet, PifoQueue, PriorityBank,
    QueueDiscipline, SimDuration, SimTime, SingleQueueSwitch, VecSource,
};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = (u64, u32, u64, u16)> {
    // (arrival_us, size, rank, class)
    (0u64..1_000_000, 64u32..1600, 0u64..1000, 0u16..8)
}

proptest! {
    /// FIFO never exceeds its byte capacity and conserves packets.
    #[test]
    fn fifo_respects_capacity(ops in prop::collection::vec(arb_packet(), 1..200),
                              cap in 1000u64..20_000) {
        let mut q = FifoQueue::new(cap);
        let mut drops = Vec::new();
        let mut enqueued = 0u64;
        for (i, (t, size, _, _)) in ops.iter().enumerate() {
            let mut p = Packet::new(SimTime::from_micros(*t)).with_size(*size);
            p.seq = i as u64;
            let before = drops.len();
            q.enqueue(p, SimTime::from_micros(*t), &mut drops);
            if drops.len() == before {
                enqueued += 1;
            }
            prop_assert!(q.len_bytes() <= cap);
        }
        let mut dequeued = 0u64;
        while q.dequeue(SimTime::ZERO).is_some() {
            dequeued += 1;
        }
        prop_assert_eq!(enqueued, dequeued);
        prop_assert_eq!(enqueued + drops.len() as u64, ops.len() as u64);
        prop_assert_eq!(q.len_bytes(), 0);
    }

    /// PIFO always dequeues in nondecreasing rank order and conserves
    /// packets and bytes.
    #[test]
    fn pifo_rank_order_and_conservation(ops in prop::collection::vec(arb_packet(), 1..200),
                                        cap in 1000u64..20_000) {
        let mut q = PifoQueue::new(cap);
        let mut drops = Vec::new();
        for (i, (t, size, rank, _)) in ops.iter().enumerate() {
            let mut p = Packet::new(SimTime::from_micros(*t)).with_size(*size);
            p.seq = i as u64;
            q.enqueue_ranked(p, *rank, &mut drops);
            prop_assert!(q.len_bytes() <= cap);
        }
        let resident = q.len_pkts();
        prop_assert_eq!(resident + drops.len(), ops.len());
        let mut last_rank = 0u64;
        let mut count = 0usize;
        while let Some(pkt) = q.dequeue(SimTime::ZERO) {
            let rank = ops[pkt.seq as usize].2;
            prop_assert!(rank >= last_rank, "rank order violated");
            last_rank = rank;
            count += 1;
        }
        prop_assert_eq!(count, resident);
    }

    /// A strict-priority bank never reorders within a queue and always
    /// serves a lower-index queue before a higher one.
    #[test]
    fn priority_bank_strictness(ops in prop::collection::vec(arb_packet(), 1..200)) {
        let nq = 4usize;
        let mut bank = PriorityBank::new(nq, 1_000_000);
        let mut drops = Vec::new();
        for (i, (t, size, _, class)) in ops.iter().enumerate() {
            let mut p = Packet::new(SimTime::from_micros(*t)).with_size(*size);
            p.seq = i as u64;
            bank.enqueue_to((*class as usize) % nq, p, SimTime::ZERO, &mut drops);
        }
        prop_assert!(drops.is_empty());
        // Drain fully: output must be exactly queue 0's FIFO order, then
        // queue 1's, etc. (no arrivals interleave in this test).
        let mut out: Vec<u64> = Vec::new();
        while let Some(p) = bank.dequeue(SimTime::ZERO) {
            out.push(p.seq);
        }
        let mut expected: Vec<u64> = Vec::new();
        for q in 0..nq {
            for (i, (_, _, _, class)) in ops.iter().enumerate() {
                if (*class as usize) % nq == q {
                    expected.push(i as u64);
                }
            }
        }
        prop_assert_eq!(out, expected);
    }

    /// End-to-end engine conservation: arrivals = departures + drops, for
    /// arbitrary CBR-ish workloads and link speeds.
    #[test]
    fn engine_conserves_packets(gap_us in 1u64..500,
                                n in 1u64..500,
                                size in 64u32..1500,
                                mbps in 1u64..100,
                                cap in 2_000u64..100_000) {
        let pkts: Vec<Packet> = (0..n)
            .map(|i| Packet::new(SimTime::from_micros(i * gap_us)).with_size(size))
            .collect();
        let mut src = VecSource::new(pkts);
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(cap));
        let cfg = EngineConfig::new(Bandwidth::from_mbps(mbps))
            .with_stats_interval(SimDuration::from_millis(100));
        let res = accturbo_netsim::run(&mut src, &mut sw, &cfg);
        prop_assert_eq!(res.arrivals, n);
        prop_assert_eq!(res.departures + res.drops, n);
        prop_assert_eq!(res.stats.total_departed(ClassId::BENIGN).pkts, res.departures);
        prop_assert_eq!(res.stats.total_dropped(ClassId::BENIGN).pkts, res.drops);
    }

    /// The engine never beats the speed of light: departed bytes per stats
    /// bucket can never exceed the link capacity (plus one packet of
    /// boundary slop).
    #[test]
    fn engine_respects_link_capacity(gap_us in 1u64..100,
                                     n in 100u64..2_000,
                                     mbps in 1u64..50) {
        let size = 1000u32;
        let pkts: Vec<Packet> = (0..n)
            .map(|i| Packet::new(SimTime::from_micros(i * gap_us)).with_size(size))
            .collect();
        let mut src = VecSource::new(pkts);
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(1_000_000_000));
        let interval = SimDuration::from_millis(100);
        let cfg = EngineConfig::new(Bandwidth::from_mbps(mbps)).with_stats_interval(interval);
        let res = accturbo_netsim::run(&mut src, &mut sw, &cfg);
        let cap_bits = mbps as f64 * 1e6 * interval.as_secs_f64();
        for b in 0..res.stats.num_buckets() {
            let bits = res.stats.throughput_bps(b, ClassId::BENIGN) * interval.as_secs_f64();
            prop_assert!(bits <= cap_bits + (size as f64 * 8.0),
                "bucket {} carried {} bits > cap {}", b, bits, cap_bits);
        }
    }
}
