//! Randomized property tests for the simulator substrate's core
//! invariants.
//!
//! Originally written against `proptest`; the build environment has no
//! crates.io access, so these now run as seeded randomized loops over
//! `accturbo_prng` (deterministic per seed, so failures reproduce).

use accturbo_netsim::{
    Bandwidth, ClassId, EngineConfig, FifoQueue, Packet, PifoQueue, PriorityBank, QueueDiscipline,
    SimDuration, SimTime, SingleQueueSwitch, VecSource,
};
use accturbo_prng::{Rng, SeedableRng, StdRng};

const CASES: usize = 64;

/// Draws one `(arrival_us, size, rank, class)` tuple.
fn arb_packet(rng: &mut StdRng) -> (u64, u32, u64, u16) {
    (
        rng.gen_range(0u64..1_000_000),
        rng.gen_range(64u32..1600),
        rng.gen_range(0u64..1000),
        rng.gen_range(0u16..8),
    )
}

fn arb_ops(rng: &mut StdRng, max: usize) -> Vec<(u64, u32, u64, u16)> {
    let n = rng.gen_range(1usize..max);
    (0..n).map(|_| arb_packet(rng)).collect()
}

/// FIFO never exceeds its byte capacity and conserves packets.
#[test]
fn fifo_respects_capacity() {
    let mut rng = StdRng::seed_from_u64(0x5e7_0001);
    for case in 0..CASES {
        let ops = arb_ops(&mut rng, 200);
        let cap = rng.gen_range(1000u64..20_000);
        let mut q = FifoQueue::new(cap);
        let mut drops = Vec::new();
        let mut enqueued = 0u64;
        for (i, (t, size, _, _)) in ops.iter().enumerate() {
            let mut p = Packet::new(SimTime::from_micros(*t)).with_size(*size);
            p.seq = i as u64;
            let before = drops.len();
            q.enqueue(p, SimTime::from_micros(*t), &mut drops);
            if drops.len() == before {
                enqueued += 1;
            }
            assert!(q.len_bytes() <= cap, "case {case}");
        }
        let mut dequeued = 0u64;
        while q.dequeue(SimTime::ZERO).is_some() {
            dequeued += 1;
        }
        assert_eq!(enqueued, dequeued, "case {case}");
        assert_eq!(
            enqueued + drops.len() as u64,
            ops.len() as u64,
            "case {case}"
        );
        assert_eq!(q.len_bytes(), 0, "case {case}");
    }
}

/// PIFO always dequeues in nondecreasing rank order and conserves
/// packets and bytes.
#[test]
fn pifo_rank_order_and_conservation() {
    let mut rng = StdRng::seed_from_u64(0x5e7_0002);
    for case in 0..CASES {
        let ops = arb_ops(&mut rng, 200);
        let cap = rng.gen_range(1000u64..20_000);
        let mut q = PifoQueue::new(cap);
        let mut drops = Vec::new();
        for (i, (t, size, rank, _)) in ops.iter().enumerate() {
            let mut p = Packet::new(SimTime::from_micros(*t)).with_size(*size);
            p.seq = i as u64;
            q.enqueue_ranked(p, *rank, &mut drops);
            assert!(q.len_bytes() <= cap, "case {case}");
        }
        let resident = q.len_pkts();
        assert_eq!(resident + drops.len(), ops.len(), "case {case}");
        let mut last_rank = 0u64;
        let mut count = 0usize;
        while let Some(pkt) = q.dequeue(SimTime::ZERO) {
            let rank = ops[pkt.seq as usize].2;
            assert!(rank >= last_rank, "case {case}: rank order violated");
            last_rank = rank;
            count += 1;
        }
        assert_eq!(count, resident, "case {case}");
    }
}

/// A strict-priority bank never reorders within a queue and always
/// serves a lower-index queue before a higher one.
#[test]
fn priority_bank_strictness() {
    let mut rng = StdRng::seed_from_u64(0x5e7_0003);
    for case in 0..CASES {
        let ops = arb_ops(&mut rng, 200);
        let nq = 4usize;
        let mut bank = PriorityBank::new(nq, 1_000_000);
        let mut drops = Vec::new();
        for (i, (t, size, _, class)) in ops.iter().enumerate() {
            let mut p = Packet::new(SimTime::from_micros(*t)).with_size(*size);
            p.seq = i as u64;
            bank.enqueue_to((*class as usize) % nq, p, SimTime::ZERO, &mut drops);
        }
        assert!(drops.is_empty(), "case {case}");
        // Drain fully: output must be exactly queue 0's FIFO order, then
        // queue 1's, etc. (no arrivals interleave in this test).
        let mut out: Vec<u64> = Vec::new();
        while let Some(p) = bank.dequeue(SimTime::ZERO) {
            out.push(p.seq);
        }
        let mut expected: Vec<u64> = Vec::new();
        for q in 0..nq {
            for (i, (_, _, _, class)) in ops.iter().enumerate() {
                if (*class as usize) % nq == q {
                    expected.push(i as u64);
                }
            }
        }
        assert_eq!(out, expected, "case {case}");
    }
}

/// End-to-end engine conservation: arrivals = departures + drops, for
/// arbitrary CBR-ish workloads and link speeds.
#[test]
fn engine_conserves_packets() {
    let mut rng = StdRng::seed_from_u64(0x5e7_0004);
    for case in 0..CASES {
        let gap_us = rng.gen_range(1u64..500);
        let n = rng.gen_range(1u64..500);
        let size = rng.gen_range(64u32..1500);
        let mbps = rng.gen_range(1u64..100);
        let cap = rng.gen_range(2_000u64..100_000);
        let pkts: Vec<Packet> = (0..n)
            .map(|i| Packet::new(SimTime::from_micros(i * gap_us)).with_size(size))
            .collect();
        let mut src = VecSource::new(pkts);
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(cap));
        let cfg = EngineConfig::new(Bandwidth::from_mbps(mbps))
            .with_stats_interval(SimDuration::from_millis(100));
        let res = accturbo_netsim::run(&mut src, &mut sw, &cfg);
        assert_eq!(res.arrivals, n, "case {case}");
        assert_eq!(res.departures + res.drops, n, "case {case}");
        assert_eq!(
            res.stats.total_departed(ClassId::BENIGN).pkts,
            res.departures,
            "case {case}"
        );
        assert_eq!(
            res.stats.total_dropped(ClassId::BENIGN).pkts,
            res.drops,
            "case {case}"
        );
    }
}

/// The engine never beats the speed of light: departed bytes per stats
/// bucket can never exceed the link capacity (plus one packet of
/// boundary slop).
#[test]
fn engine_respects_link_capacity() {
    let mut rng = StdRng::seed_from_u64(0x5e7_0005);
    for case in 0..CASES {
        let gap_us = rng.gen_range(1u64..100);
        let n = rng.gen_range(100u64..2_000);
        let mbps = rng.gen_range(1u64..50);
        let size = 1000u32;
        let pkts: Vec<Packet> = (0..n)
            .map(|i| Packet::new(SimTime::from_micros(i * gap_us)).with_size(size))
            .collect();
        let mut src = VecSource::new(pkts);
        let mut sw = SingleQueueSwitch::new(FifoQueue::new(1_000_000_000));
        let interval = SimDuration::from_millis(100);
        let cfg = EngineConfig::new(Bandwidth::from_mbps(mbps)).with_stats_interval(interval);
        let res = accturbo_netsim::run(&mut src, &mut sw, &cfg);
        let cap_bits = mbps as f64 * 1e6 * interval.as_secs_f64();
        for b in 0..res.stats.num_buckets() {
            let bits = res.stats.throughput_bps(b, ClassId::BENIGN) * interval.as_secs_f64();
            assert!(
                bits <= cap_bits + (size as f64 * 8.0),
                "case {case}: bucket {b} carried {bits} bits > cap {cap_bits}"
            );
        }
    }
}
